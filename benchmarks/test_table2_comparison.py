"""E2 — Table II: HOF/VOF/WL/RT of Commercial*, RePlAce-like, and PUFFER.

Runs all three flows on every suite design at the benchmark scale,
evaluates each legalized placement with the global router, and prints the
Table-II reproduction (absolute rows plus the normalized Average and
Pass-Count rows).  Expected shape versus the paper:

* PUFFER attains the best average HOF and VOF and the best pass counts;
* the commercial substitute is close in quality but several times slower;
* the RePlAce-like flow is clearly worse on the congested designs.

Runtime at the default scale is tens of minutes; set ``REPRO_SCALE=0.002``
for a quick pass.
"""

import json
import os

from repro.evalkit import SuiteRunConfig, format_table2, run_suite

from conftest import save_artifact


def test_table2_comparison(benchmark, scale, out_dir):
    config = SuiteRunConfig(scale=scale)
    rows = benchmark.pedantic(
        lambda: run_suite(
            config,
            progress=lambda r: print(
                f"    {r.benchmark:16s} {r.placer:16s} "
                f"HOF {r.hof:6.2f}  VOF {r.vof:6.2f}  RT {r.runtime:6.1f}s"
            ),
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table2(rows)
    print()
    print(table)
    save_artifact(out_dir, "table2.txt", table)
    with open(os.path.join(out_dir, "table2.json"), "w") as f:
        json.dump(
            [
                {
                    "benchmark": r.benchmark,
                    "placer": r.placer,
                    "hof": r.hof,
                    "vof": r.vof,
                    "wl": r.wirelength,
                    "rt": r.runtime,
                }
                for r in rows
            ],
            f,
            indent=2,
        )

    from repro.evalkit import aggregate

    averages = {a.placer: a for a in aggregate(rows, "PUFFER")}
    puffer = averages["PUFFER"]
    commercial = averages["Commercial_Inn*"]
    replace = averages["RePlAce-like"]
    # Paper shape: PUFFER best overflow averages and pass counts.
    assert puffer.hof_mean <= commercial.hof_mean + 1e-9
    assert puffer.hof_mean <= replace.hof_mean + 1e-9
    assert puffer.vof_mean <= replace.vof_mean + 1e-9
    assert puffer.pass_h >= max(commercial.pass_h, replace.pass_h)
    # Paper shape: the commercial tool is substantially slower.
    assert commercial.rt_ratio > 1.2
