"""Microbenchmarks of the :mod:`repro.kernels` hot paths.

Times each kernel's vectorized backend against the retained reference
loops on synthetic inputs sized like a large placement (config in the
report), verifies the two backends agree while doing so, and writes
seconds + speedups to ``benchmarks/out/BENCH_kernels.json``.

The tentpole acceptance bar (gated by ``check_regression.py``) is a
>= 3x speedup on:

* ``demand`` — weighted-rectangle demand accumulation (``rect_add``,
  the RSMT/RUDY rasterizer), and
* ``density`` — the full electrostatic charge-density map: smoothed
  movable bin overlap (``bin_overlap``) plus exact fixed-object
  rasterization (``rect_area``), the two per-bin loop nests of
  ``placer/density.py``.

``rudy`` and ``maze`` are recorded for visibility alongside, as are the
round-2 kernels: ``abacus`` (suffix-scan cluster-merge trials of the
Abacus legalizer) and ``steiner`` (batched per-net RSMT construction on
a netlist-like degree mix).  Their speedups are regression-checked
against the committed baseline rather than floored.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.kernels import reference, vectorized

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

FULL = dict(
    demand_rects=150_000, demand_grid=128,
    rudy_nets=120_000, rudy_grid=128,
    density_cells=100_000, density_dim=256, density_fixed=616,
    maze_routes=40, maze_grid=64,
    abacus_clusters=600, abacus_trials=400,
    steiner_nets=20_000,
)
QUICK = dict(
    demand_rects=20_000, demand_grid=96,
    rudy_nets=15_000, rudy_grid=96,
    density_cells=15_000, density_dim=128, density_fixed=110,
    maze_routes=10, maze_grid=48,
    abacus_clusters=200, abacus_trials=80,
    steiner_nets=3_000,
)


def best_of(fn, repeats: int) -> float:
    wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        wall = min(wall, time.perf_counter() - start)
    return wall


def check_close(a, b, what: str) -> None:
    if not np.allclose(a, b, rtol=1e-9, atol=1e-9):
        raise AssertionError(f"{what}: backends disagree (max |d| = {abs(a - b).max()})")


def bench_demand(cfg, repeats):
    """RSMT-edge-like weighted rectangles on the Gcell grid."""
    rng = np.random.default_rng(0)
    g = cfg["demand_grid"]
    n = cfg["demand_rects"]
    x0 = rng.integers(0, g, n)
    x1 = np.minimum(x0 + rng.geometric(0.2, n).clip(max=40), g - 1)
    y0 = rng.integers(0, g, n)
    y1 = np.minimum(y0 + rng.geometric(0.2, n).clip(max=40), g - 1)
    w = 1.0 / (y1 - y0 + 1.0)  # the L-shape average-demand weight
    check_close(
        reference.rect_add(g, g, x0, x1, y0, y1, w),
        vectorized.rect_add(g, g, x0, x1, y0, y1, w),
        "demand",
    )
    return (
        best_of(lambda: reference.rect_add(g, g, x0, x1, y0, y1, w), max(repeats // 2, 1)),
        best_of(lambda: vectorized.rect_add(g, g, x0, x1, y0, y1, w), repeats),
    )


def bench_rudy(cfg, repeats):
    """Net-bbox rectangles with per-net 1/span weights."""
    rng = np.random.default_rng(1)
    g = cfg["rudy_grid"]
    n = cfg["rudy_nets"]
    x0 = rng.integers(0, g, n)
    x1 = np.minimum(x0 + rng.geometric(0.15, n).clip(max=g), g - 1)
    y0 = rng.integers(0, g, n)
    y1 = np.minimum(y0 + rng.geometric(0.15, n).clip(max=g), g - 1)
    w = 1.0 / (x1 - x0 + 1.0)
    check_close(
        reference.rect_add(g, g, x0, x1, y0, y1, w),
        vectorized.rect_add(g, g, x0, x1, y0, y1, w),
        "rudy",
    )
    return (
        best_of(lambda: reference.rect_add(g, g, x0, x1, y0, y1, w), max(repeats // 2, 1)),
        best_of(lambda: vectorized.rect_add(g, g, x0, x1, y0, y1, w), repeats),
    )


def bench_density(cfg, repeats):
    """The full charge-density map: movable bin overlap + fixed raster."""
    rng = np.random.default_rng(2)
    dim = cfg["density_dim"]
    n = cfg["density_cells"]
    bin_w, bin_h = 1.7, 1.9
    die_w, die_h = dim * bin_w, dim * bin_h
    # ePlace-smoothed movable extents (>= sqrt(2) bins), some wider.
    w_s = np.maximum(rng.uniform(1.0, 3.2, n), np.sqrt(2.0) * bin_w)
    h_s = np.maximum(rng.uniform(1.4, 2.1, n), np.sqrt(2.0) * bin_h)
    cx = rng.uniform(0.0, die_w, n)
    cy = rng.uniform(0.0, die_h, n)
    xlo = np.clip(cx - w_s / 2, 0.0, die_w)
    xhi = np.clip(cx + w_s / 2, 0.0, die_w)
    ylo = np.clip(cy - h_s / 2, 0.0, die_h)
    yhi = np.clip(cy + h_s / 2, 0.0, die_h)
    ix0 = np.floor(xlo / bin_w).astype(np.int64)
    iy0 = np.floor(ylo / bin_h).astype(np.int64)
    kx = int(np.ceil(w_s.max() / bin_w)) + 1
    ky = int(np.ceil(h_s.max() / bin_h)) + 1
    scale = rng.uniform(0.4, 1.0, n)
    # Fixed objects: macro blockages covering many bins + pad-sized cells.
    n_macro = max(cfg["density_fixed"] // 12, 1)
    n_pad = cfg["density_fixed"] - n_macro
    span = dim // 4
    fx0 = np.concatenate([
        rng.uniform(0.0, die_w * 0.8, n_macro), rng.uniform(0.0, die_w - 3, n_pad)
    ])
    fx1 = np.concatenate([
        np.clip(fx0[:n_macro] + rng.uniform(span, 2 * span, n_macro) * bin_w, 0, die_w),
        fx0[n_macro:] + rng.uniform(0.5, 2.5, n_pad),
    ])
    fy0 = np.concatenate([
        rng.uniform(0.0, die_h * 0.8, n_macro), rng.uniform(0.0, die_h - 3, n_pad)
    ])
    fy1 = np.concatenate([
        np.clip(fy0[:n_macro] + rng.uniform(span, 2 * span, n_macro) * bin_h, 0, die_h),
        fy0[n_macro:] + rng.uniform(0.5, 2.5, n_pad),
    ])

    def charge_map(mod):
        mov = mod.bin_overlap(
            xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale, dim, bin_w, bin_h
        )
        fix = mod.rect_area(fx0, fx1, fy0, fy1, dim, bin_w, bin_h)
        return mov + np.minimum(fix, bin_w * bin_h)

    check_close(charge_map(reference), charge_map(vectorized), "density")
    return (
        best_of(lambda: charge_map(reference), max(repeats // 2, 1)),
        best_of(lambda: charge_map(vectorized), repeats),
    )


def bench_maze(cfg, repeats):
    """A batch of congested window routes (history walls on the grid)."""
    rng = np.random.default_rng(3)
    g = cfg["maze_grid"]
    cost_h = 1.0 + 4.0 * rng.random((g, g))
    cost_v = 1.0 + 4.0 * rng.random((g, g))
    for _ in range(g // 8):  # congestion ridges that force detours
        cost_h[int(rng.integers(0, g)), :] += 300.0
        cost_v[:, int(rng.integers(0, g))] += 300.0
    segments = []
    while len(segments) < cfg["maze_routes"]:
        gx0, gy0, gx1, gy1 = (int(v) for v in rng.integers(0, g, 4))
        if (gx0, gy0) != (gx1, gy1):
            segments.append((gx0, gy0, gx1, gy1))

    def run_all(mod):
        return [
            mod.maze_search(
                gx0, gy0, gx1, gy1, cost_h, cost_v,
                max(min(gx0, gx1) - 8, 0), min(max(gx0, gx1) + 8, g - 1),
                max(min(gy0, gy1) - 8, 0), min(max(gy0, gy1) + 8, g - 1),
            )
            for gx0, gy0, gx1, gy1 in segments
        ]

    for ref_route, vec_route in zip(run_all(reference), run_all(vectorized)):
        assert (ref_route is None) == (vec_route is None)
        if ref_route is None:
            continue
        ref_cost = cost_h.ravel()[ref_route[0]].sum() + cost_v.ravel()[ref_route[1]].sum()
        vec_cost = cost_h.ravel()[vec_route[0]].sum() + cost_v.ravel()[vec_route[1]].sum()
        if abs(ref_cost - vec_cost) > 1e-6 * (1.0 + abs(ref_cost)):
            raise AssertionError(f"maze: path costs differ ({ref_cost} vs {vec_cost})")
    return (
        best_of(lambda: run_all(reference), max(repeats // 2, 1)),
        best_of(lambda: run_all(vectorized), repeats),
    )


def bench_abacus(cfg, repeats):
    """Deep cluster-merge trials on a fully packed Abacus row.

    A high-utilization row — clusters legalized back-to-back with no
    gaps — so every trial insertion cascades through the whole chain,
    the workload the suffix-scan formulation wins on.
    """
    rng = np.random.default_rng(4)
    n = cfg["abacus_clusters"]
    w = rng.uniform(1.0, 4.0, n)
    x = np.cumsum(w) - w
    xlo, xhi = 0.0, float(x[-1] + w[-1] + 50.0)
    e = rng.uniform(0.5, 3.0, n)
    q = e * (x + rng.uniform(-2.0, 2.0, n))
    trials = [
        (
            float(rng.uniform(1.0, 3.0)),           # width
            float(rng.uniform(0.5, 2.0)),           # weight
            float(rng.uniform(xlo, x[n // 4])),     # target_x, forces merges
        )
        for _ in range(cfg["abacus_trials"])
    ]

    def run_all(mod):
        return [
            mod.abacus_trial(e, q, w, x, n, xlo, xhi, xhi - xlo, tw, te, tx)
            for tw, te, tx in trials
        ]

    for ref_t, vec_t in zip(run_all(reference), run_all(vectorized)):
        assert (ref_t is None) == (vec_t is None)
        if ref_t is None:
            continue
        if abs(ref_t[0] - vec_t[0]) > 1e-6 or ref_t[1] != vec_t[1]:
            raise AssertionError(f"abacus: trials disagree ({ref_t} vs {vec_t})")
    return (
        best_of(lambda: run_all(reference), max(repeats // 2, 1)),
        best_of(lambda: run_all(vectorized), repeats),
    )


def bench_steiner(cfg, repeats):
    """Batched RSMT over a netlist-like degree mix (mostly 2-3 pins)."""
    rng = np.random.default_rng(5)
    n = cfg["steiner_nets"]
    # Typical netlists are dominated by 2-3 pin nets with a fanout tail.
    deg = np.clip(rng.geometric(0.55, n) + 1, 2, 12)
    start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=start[1:])
    total = int(start[-1])
    x = rng.integers(0, 512, total).astype(np.float64)
    y = rng.integers(0, 512, total).astype(np.float64)

    for ref_t, vec_t in zip(
        reference.steiner_batch(x, y, start, 64),
        vectorized.steiner_batch(x, y, start, 64),
    ):
        for a, b in zip(ref_t, vec_t):
            if not np.array_equal(a, b):
                raise AssertionError("steiner: backends disagree")
    return (
        best_of(lambda: reference.steiner_batch(x, y, start, 64), max(repeats // 2, 1)),
        best_of(lambda: vectorized.steiner_batch(x, y, start, 64), repeats),
    )


BENCHES = {
    "demand": bench_demand,
    "rudy": bench_rudy,
    "density": bench_density,
    "maze": bench_maze,
    "abacus": bench_abacus,
    "steiner": bench_steiner,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke-mode sizes (CI nightly); records quick=true in the report",
    )
    parser.add_argument("--out", default=os.path.join(OUT_DIR, "BENCH_kernels.json"))
    args = parser.parse_args(argv)
    cfg = QUICK if args.quick else FULL

    report = {
        "bench": "kernels",
        "quick": bool(args.quick),
        "repeats": args.repeats,
        "config": dict(cfg),
    }
    for name, bench in BENCHES.items():
        ref_wall, vec_wall = bench(cfg, args.repeats)
        report[f"{name}_reference_seconds"] = round(ref_wall, 5)
        report[f"{name}_vectorized_seconds"] = round(vec_wall, 5)
        report[f"{name}_speedup"] = round(ref_wall / max(vec_wall, 1e-12), 2)
        print(
            f"{name:8s} reference {ref_wall * 1e3:8.1f} ms   "
            f"vectorized {vec_wall * 1e3:8.1f} ms   "
            f"{report[f'{name}_speedup']:6.2f}x"
        )

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
