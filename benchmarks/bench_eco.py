"""Benchmark incremental (ECO) edits against a full cold rerun.

Converges one session on a medium synthetic design, then applies a
stream of single-cell resize edits incrementally.  The headline metric
is ``resize_speedup``: the converged cold start (global placement +
routing from scratch — exactly the work a rerun of the full flow would
repeat for every edit) divided by the mean per-edit incremental repair
time.  The issue's acceptance floor is 10x, enforced by
``check_regression.py`` regardless of baseline availability.

Writes ``benchmarks/out/BENCH_eco.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_eco.py [--scale S] [--edits N]
        [--quick]
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np

from repro import api
from repro.eco import EcoSession, ResizeCell

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="OR1200")
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--edits", type=int, default=8)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller design, fewer edits",
    )
    parser.add_argument("--out", default=os.path.join(OUT_DIR, "BENCH_eco.json"))
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 0.002)
        args.edits = min(args.edits, 4)

    session = EcoSession(
        args.design, config=api.RunConfig(scale=args.scale, seed=args.seed)
    )
    baseline = session.start()
    cold = sum(baseline.seconds.get(k, 0.0) for k in ("place", "route"))
    print(
        f"{args.design} @ scale {args.scale}: "
        f"{session.design.num_cells} cells, cold start {cold:.3f}s "
        f"(HPWL {baseline.hpwl:.6g}, HOF {baseline.hof:.3f}%)"
    )

    rng = np.random.default_rng(args.seed)
    movable = np.flatnonzero(session.design.movable & ~session.design.is_macro)
    edit_seconds, dirty_cells = [], []
    for i in range(args.edits):
        cell = int(rng.choice(movable))
        grow = float(rng.uniform(1.0, 4.0))
        step = session.apply(
            ResizeCell(cell=cell, width=float(session.design.w[cell]) + grow)
        )
        edit_seconds.append(step.seconds["total"])
        dirty_cells.append(step.dirty_cells)
        print(
            f"  edit {i + 1}: resize cell {cell} (+{grow:.2f}) "
            f"{step.seconds['total']:.4f}s, {step.dirty_cells} dirty cells"
            + (f", fallbacks {step.full_fallbacks}" if step.full_fallbacks else "")
        )

    resize_mean = float(np.mean(edit_seconds))
    speedup = cold / max(resize_mean, 1e-9)
    print(f"incremental resize: {resize_mean:.4f}s mean -> {speedup:.1f}x speedup")

    report = {
        "bench": "eco",
        "design": args.design,
        "scale": args.scale,
        "seed": args.seed,
        "edits": args.edits,
        "quick": args.quick,
        "cells": int(session.design.num_cells),
        "cold_seconds": round(cold, 4),
        "resize_seconds": round(resize_mean, 4),
        "resize_speedup": round(speedup, 2),
        "dirty_cells_mean": round(float(np.mean(dirty_cells)), 1),
        "hpwl": float(session.design.hpwl()),
        "hof": float(session.route_report.hof),
        "vof": float(session.route_report.vof),
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
