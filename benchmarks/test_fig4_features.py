"""E7 — Figure 4: multi-feature extraction for one cell.

Figure 4 shows the three feature classes — local, CNN-inspired
(surrounding), and GNN-inspired (pin/topology) — extracted for a cell in
a congested region.  This bench places a congested design, extracts all
features, and prints the feature vector of the hottest cell plus
population statistics per feature.
"""

import numpy as np

from repro.benchgen import make_design
from repro.core import (
    FEATURE_NAMES,
    CongestionEstimator,
    FeatureExtractor,
    FeatureParams,
)
from repro.placer import GlobalPlacer, PlacementParams

from conftest import save_artifact

FEATURE_CLASS = {
    "local_cg": "local",
    "local_pin": "local",
    "around_cg": "CNN-inspired",
    "around_pin": "CNN-inspired",
    "pin_cg": "GNN-inspired",
}


def test_fig4_feature_extraction(benchmark, out_dir):
    design = make_design("MEDIA_SUBSYS", scale=0.002)
    GlobalPlacer(design, PlacementParams(max_iters=500)).run()
    estimator = CongestionEstimator(design)
    cmap, topologies, _ = estimator.estimate()
    extractor = FeatureExtractor(design, FeatureParams(kernel_size=3))
    features = benchmark.pedantic(
        lambda: extractor.extract(cmap, topologies), rounds=1, iterations=1
    )

    movable = design.movable & ~design.is_macro
    hottest = int(np.argmax(np.where(movable, features["local_cg"], -np.inf)))
    lines = [
        "FIGURE 4  feature extraction (local | CNN-inspired | GNN-inspired)",
        f"design: {design.name}, hottest cell: {design.cell_names[hottest]}",
        "",
        f"{'feature':<12}{'class':<14}{'hot cell':>10}{'mean':>10}{'p95':>10}",
    ]
    for name in FEATURE_NAMES:
        values = features[name][movable]
        lines.append(
            f"{name:<12}{FEATURE_CLASS[name]:<14}"
            f"{features[name][hottest]:>10.3f}{values.mean():>10.3f}"
            f"{np.percentile(values, 95):>10.3f}"
        )
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "fig4_features.txt", text)

    # The hottest cell must score above the population on every
    # congestion-carrying feature class.
    assert features["local_cg"][hottest] >= np.percentile(
        features["local_cg"][movable], 95
    )
    assert features["around_cg"][hottest] > features["around_cg"][movable].mean()
