"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures.  The generation
scale defaults to ``0.004`` (designs of roughly 0.5K-6.4K movable cells)
and can be overridden with the ``REPRO_SCALE`` environment variable; all
printed artifacts are also written under ``benchmarks/out/``.
"""

from __future__ import annotations

import os

import pytest

from repro.benchgen import env_scale

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def scale() -> float:
    return env_scale(default=0.004)


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def save_artifact(out_dir: str, name: str, text: str) -> None:
    """Persist a printed artifact next to the benchmark outputs."""
    with open(os.path.join(out_dir, name), "w") as f:
        f.write(text + "\n")
