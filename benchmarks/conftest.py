"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures.  The generation
scale defaults to ``0.004`` (designs of roughly 0.5K-6.4K movable cells)
and can be overridden with the ``REPRO_SCALE`` environment variable; all
printed artifacts are also written under ``benchmarks/out/``.
"""

from __future__ import annotations

import os

import pytest

from repro.benchgen import env_scale

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
os.makedirs(OUT_DIR, exist_ok=True)

#: whole-flow comparisons that rerun the placer many times; ``--quick``
#: smoke mode (the nightly CI job) skips these.
SLOW_FILES = {
    "test_ablation_expansion.py",
    "test_ablation_features.py",
    "test_ablation_initial_placer.py",
    "test_ablation_recycling.py",
    "test_ablation_router.py",
    "test_exploration_transfer.py",
    "test_ext_detailed_place.py",
    "test_table2_comparison.py",
}


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="smoke mode: skip slow-marked benchmarks and halve the scale",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if os.path.basename(str(item.fspath)) in SLOW_FILES:
            item.add_marker(pytest.mark.slow)
    if config.getoption("--quick"):
        skip = pytest.mark.skip(reason="--quick smoke mode")
        for item in items:
            if "slow" in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def scale(request) -> float:
    if request.config.getoption("--quick"):
        return env_scale(default=0.002)
    return env_scale(default=0.004)


@pytest.fixture(scope="session")
def out_dir() -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def save_artifact(out_dir: str, name: str, text: str) -> None:
    """Persist a printed artifact next to the benchmark outputs."""
    with open(os.path.join(out_dir, name), "w") as f:
        f.write(text + "\n")
