"""A5 — ablation: initial placement algorithm (star vs quadratic).

The engine supports two seeds: the damped star-model fixed point and the
sparse-CG quadratic solve.  Both are run through the full wirelength-
driven flow on two designs; the ablation reports seed HPWL, final HPWL,
and engine iterations to convergence.
"""

from repro.benchgen import make_design
from repro.legalizer import legalize_abacus
from repro.placer import GlobalPlacer, PlacementParams

from conftest import save_artifact

DESIGNS = ["OR1200", "CT_TOP"]
SEEDS = ["star", "quadratic"]


def test_ablation_initial_placer(benchmark, scale, out_dir):
    def run_all():
        results = {}
        for name in DESIGNS:
            for seed in SEEDS:
                design = make_design(name, scale)
                params = PlacementParams(max_iters=900, initial_placer=seed)
                gp = GlobalPlacer(design, params).run()
                legalize_abacus(design)
                results[(name, seed)] = (gp, design.hpwl())
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "ABLATION A5  initial placement seed",
        f"{'design':<12}{'seed':<12}{'iters':>7}{'final HPWL':>13}{'converged':>11}",
    ]
    for (name, seed), (gp, hpwl) in results.items():
        lines.append(
            f"{name:<12}{seed:<12}{gp.iterations:>7}{hpwl:>13.4g}"
            f"{str(gp.converged):>11}"
        )
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "ablation_initial_placer.txt", text)

    for key, (gp, _) in results.items():
        assert gp.converged, key
    # Both seeds must land within 10% of each other in final quality.
    for name in DESIGNS:
        star = results[(name, "star")][1]
        quad = results[(name, "quadratic")][1]
        assert abs(star - quad) / max(star, quad) < 0.10
