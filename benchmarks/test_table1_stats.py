"""E1 — Table I: statistics of the benchmarks.

Regenerates all ten suite designs and prints the paper's Table I next to
the statistics of the regenerated (scaled) designs.
"""

from repro.benchgen import make_design, suite_names
from repro.evalkit import format_table1

from conftest import save_artifact


def test_table1_stats(benchmark, scale, out_dir):
    designs = benchmark.pedantic(
        lambda: [make_design(name, scale) for name in suite_names()],
        rounds=1,
        iterations=1,
    )
    table = format_table1(scale, designs=designs)
    print()
    print(table)
    save_artifact(out_dir, "table1.txt", table)
    assert len(designs) == 10
    # Ratio fidelity: pins-per-net of each regenerated design must track
    # the paper's Table-I ratio.
    from repro.benchgen import SUITE_BY_NAME

    for design in designs:
        entry = SUITE_BY_NAME[design.name]
        measured = design.num_pins / design.num_nets
        assert abs(measured - entry.pins_per_net) / entry.pins_per_net < 0.2
