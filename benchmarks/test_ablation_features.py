"""A1 — ablation: padding feature classes.

The paper motivates three feature classes (local, CNN-inspired
surrounding, GNN-inspired pin congestion).  This ablation runs PUFFER
with (a) local features only — the prior-work configuration, (b) local +
CNN, and (c) all features, on a congested design, and compares routed
overflow.
"""

from repro.benchgen import make_design
from repro.core import FeatureParams, PufferPlacer
from repro.placer import PlacementParams
from repro.router import GlobalRouter

from conftest import save_artifact

VARIANTS = [
    ("local only", FeatureParams(use_cnn=False, use_gnn=False)),
    ("local + CNN", FeatureParams(use_cnn=True, use_gnn=False)),
    ("all features", FeatureParams(use_cnn=True, use_gnn=True)),
]

DESIGNS = ["OR1200", "MEDIA_SUBSYS"]


def test_ablation_feature_classes(benchmark, scale, out_dir):
    placement = PlacementParams(max_iters=900)

    def run_all():
        results = {}
        for design_name in DESIGNS:
            for variant, feature_params in VARIANTS:
                design = make_design(design_name, scale)
                PufferPlacer(
                    design, placement=placement, feature_params=feature_params
                ).run()
                results[(design_name, variant)] = GlobalRouter(design).run()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "ABLATION A1  feature classes",
        f"{'design':<16}{'variant':<16}{'HOF(%)':>9}{'VOF(%)':>9}{'total':>9}",
    ]
    for (design_name, variant), report in results.items():
        lines.append(
            f"{design_name:<16}{variant:<16}{report.hof:>9.3f}"
            f"{report.vof:>9.3f}{report.total_overflow:>9.3f}"
        )
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "ablation_features.txt", text)

    # Expected shape: richer features never lose badly to local-only on
    # the congested design, and all variants finish.
    media_local = results[("MEDIA_SUBSYS", "local only")].total_overflow
    media_all = results[("MEDIA_SUBSYS", "all features")].total_overflow
    assert media_all <= media_local * 1.5 + 0.5
