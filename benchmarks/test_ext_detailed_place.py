"""E8 (extension) — detailed placement on top of the PUFFER flow.

The paper stops at legalization; this extension measures what a
legality-preserving detailed-placement pass (global swap + intra-row
reordering, padding-footprint aware) adds on top of each flow.
"""

from repro.benchgen import make_design
from repro.core import PufferPlacer
from repro.dplace import DetailedPlacer
from repro.legalizer import padded_widths
from repro.netlist import check_legal
from repro.placer import PlacementParams
from repro.router import GlobalRouter

from conftest import save_artifact


def test_extension_detailed_placement(benchmark, scale, out_dir):
    design = make_design("OR1200", scale)
    placer = PufferPlacer(design, placement=PlacementParams(max_iters=900))
    placer.run()
    before_route = GlobalRouter(design).run()
    hpwl_before = design.hpwl()

    widths = padded_widths(
        design,
        placer.optimizer.padding.pad,
        theta=placer.strategy.theta,
        area_cap=placer.strategy.legal_area_cap,
    )

    result = benchmark.pedantic(
        lambda: DetailedPlacer(design, widths=widths).run(passes=2),
        rounds=1,
        iterations=1,
    )
    after_route = GlobalRouter(design).run()

    lines = [
        "EXTENSION E8  detailed placement after PUFFER",
        f"HPWL: {hpwl_before:.6g} -> {design.hpwl():.6g} "
        f"({result.improvement * 100:.2f}% better)",
        f"moves: {result.swaps} swaps, {result.reorders} reorders "
        f"in {result.passes} passes ({result.runtime:.1f}s)",
        f"routed: {before_route.summary()}",
        f"     -> {after_route.summary()}",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "ext_detailed_place.txt", text)

    assert check_legal(design).ok
    assert design.hpwl() <= hpwl_before + 1e-6
    # Detailed placement must not wreck routability.
    assert after_route.total_overflow <= before_route.total_overflow + 1.0
