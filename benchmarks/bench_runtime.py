"""Benchmark the job-execution runtime: serial vs parallel vs warm cache.

Runs a reduced Table-II matrix three ways — inline serial, with
``--jobs N`` worker processes, and a second parallel pass against the
warm artifact cache — and writes machine-readable timings to
``benchmarks/out/BENCH_runtime.json`` so the perf trajectory of the
runtime is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--scale S]
        [--jobs N] [--designs NAME ...]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.evalkit import SuiteRunConfig, run_suite
from repro.runtime import Telemetry

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def timed_run(config: SuiteRunConfig, **kwargs) -> tuple:
    telemetry = Telemetry()
    start = time.perf_counter()
    rows = run_suite(config, telemetry=telemetry, **kwargs)
    wall = time.perf_counter() - start
    return rows, wall, telemetry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--jobs", type=int, default=max(os.cpu_count() or 1, 2))
    parser.add_argument(
        "--designs", nargs="*", default=["OR1200", "ASIC_ENTITY"]
    )
    parser.add_argument(
        "--out", default=os.path.join(OUT_DIR, "BENCH_runtime.json")
    )
    args = parser.parse_args(argv)

    import tempfile

    config = SuiteRunConfig(scale=args.scale, benchmarks=args.designs)
    cells = len(args.designs) * 3

    print(f"matrix: {len(args.designs)} designs x 3 flows at scale {args.scale}")
    _rows, serial_wall, _ = timed_run(config)
    print(f"serial (jobs=1):      {serial_wall:8.2f}s")

    with tempfile.TemporaryDirectory() as cache_dir:
        _rows, parallel_wall, tel = timed_run(config, jobs=args.jobs, cache=cache_dir)
        print(f"parallel (jobs={args.jobs}):    {parallel_wall:8.2f}s   [{tel.summary()}]")

        _rows, warm_wall, tel = timed_run(config, jobs=args.jobs, cache=cache_dir)
        print(f"warm cache rerun:     {warm_wall:8.2f}s   [{tel.summary()}]")
        cache_hits = tel.cache_hits

    report = {
        "bench": "runtime",
        "scale": args.scale,
        "designs": args.designs,
        "cells": cells,
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_wall, 4),
        "parallel_seconds": round(parallel_wall, 4),
        "warm_cache_seconds": round(warm_wall, 4),
        "parallel_speedup": round(serial_wall / max(parallel_wall, 1e-9), 3),
        "warm_cache_speedup": round(serial_wall / max(warm_wall, 1e-9), 3),
        "warm_cache_hits": cache_hits,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
