"""A4 — strategy exploration and transfer (paper Sec. III-C protocol).

The paper explores strategy parameters on *a small design with the
routability problem* and applies the resulting configuration to the
large benchmarks.  This bench runs a compact exploration (Algorithms 2-3,
objective: total overflow of a PUFFER placement routed by the evaluator)
on a small OR1200 instance, then compares the explored configuration
against the hand-set defaults on other designs.
"""

from repro.benchgen import EXPLORATION_DESIGN, make_design
from repro.core import PufferPlacer, StrategyParams
from repro.core.exploration import make_placement_objective, strategy_exploration
from repro.placer import PlacementParams
from repro.router import GlobalRouter

from conftest import save_artifact

#: The exploration design must actually exhibit the routability problem
#: (Sec. III-C explores on "a small design with the routability
#: problem"); OR1200 at twice the benchmark scale is small but congested.
EXPLORE_SCALE = 0.008
TRANSFER_DESIGNS = ["MEDIA_SUBSYS", "OPENC910"]


def _evaluate(design_name, scale, strategy, placement) -> float:
    design = make_design(design_name, scale)
    PufferPlacer(design, strategy=strategy, placement=placement).run()
    return GlobalRouter(design).run().total_overflow


def test_exploration_transfer(benchmark, scale, out_dir):
    placement = PlacementParams(max_iters=700)
    objective = make_placement_objective(
        lambda: make_design(EXPLORATION_DESIGN, EXPLORE_SCALE),
        placement=placement,
    )

    def run_all():
        report = strategy_exploration(
            objective,
            global_evals=12,
            group_evals=5,
            patience=4,
            max_group_rounds=1,
            rng=7,
        )
        rows = []
        for name in TRANSFER_DESIGNS:
            default_loss = _evaluate(name, scale, StrategyParams(), placement)
            explored_loss = _evaluate(name, scale, report.params, placement)
            rows.append((name, default_loss, explored_loss))
        return report, rows

    report, rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "ABLATION A4  strategy exploration transfer",
        f"explored on {EXPLORATION_DESIGN}@{EXPLORE_SCALE:g}: "
        f"{report.evaluations} evaluations, best objective "
        f"{report.best_loss:.3f}",
        f"final configuration: mu={report.params.mu:.2f} "
        f"beta={report.params.beta:.2f} tau={report.params.tau:.2f} "
        f"xi={report.params.xi} pu=[{report.params.pu_low:.2f},"
        f"{report.params.pu_high:.2f}] legalizer={report.params.legalizer}",
        "",
        f"{'design':<16}{'default total OF':>17}{'explored total OF':>19}",
    ]
    for name, default_loss, explored_loss in rows:
        lines.append(f"{name:<16}{default_loss:>17.3f}{explored_loss:>19.3f}")
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "exploration_transfer.txt", text)

    # Transfer must be sane: the explored configuration stays within 2x
    # of the defaults on every transfer design (the paper's point is
    # that exploration replaces manual tuning, not that it wins by
    # miracle margins on every design).
    for name, default_loss, explored_loss in rows:
        assert explored_loss <= max(default_loss * 2.0, default_loss + 2.0)
