"""E3 — Figure 5: congestion maps of MEDIA_SUBSYS for the three placers.

Regenerates the paper's side-by-side horizontal and vertical congestion
maps reported by the evaluation router for the placements of the
commercial substitute, the RePlAce-like flow, and PUFFER.  ASCII heatmaps
are printed; PGM images are written under ``benchmarks/out/``.
"""

import os


from repro.baselines import place_commercial_like, place_replace_like
from repro.benchgen import make_design
from repro.evalkit import place_puffer, side_by_side, utilization_maps, write_pgm
from repro.placer import PlacementParams
from repro.router import GlobalRouter

from conftest import save_artifact

FLOWS = [
    ("Commercial_Inn*", place_commercial_like),
    ("RePlAce-like", place_replace_like),
    ("PUFFER", place_puffer),
]


def test_fig5_congestion_maps(benchmark, scale, out_dir):
    placement = PlacementParams(max_iters=900)

    def run_all():
        reports = {}
        for name, flow in FLOWS:
            design = make_design("MEDIA_SUBSYS", scale)
            flow(design, placement)
            reports[name] = GlobalRouter(design).run()
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    h_maps = {}
    v_maps = {}
    for name, report in reports.items():
        util_h, util_v = utilization_maps(report)
        h_maps[name] = util_h
        v_maps[name] = util_v
        stem = name.replace("*", "").replace("-", "_").lower()
        write_pgm(os.path.join(out_dir, f"fig5_{stem}_h.pgm"), util_h, vmax=1.5)
        write_pgm(os.path.join(out_dir, f"fig5_{stem}_v.pgm"), util_v, vmax=1.5)

    text = "\n".join(
        [
            "FIGURE 5  MEDIA_SUBSYS congestion maps (router utilization)",
            "",
            "(a-c) horizontal:",
            side_by_side(h_maps, vmax=1.5, width=30),
            "",
            "(d-f) vertical:",
            side_by_side(v_maps, vmax=1.5, width=30),
            "",
            "overflow summary:",
        ]
        + [
            f"  {name:16s} HOF {r.hof:6.2f}%  VOF {r.vof:6.2f}%"
            for name, r in reports.items()
        ]
    )
    print()
    print(text)
    save_artifact(out_dir, "fig5_congestion_maps.txt", text)

    # Paper shape: PUFFER's maps carry the least overflow of the three.
    puffer = reports["PUFFER"]
    replace = reports["RePlAce-like"]
    assert puffer.hof <= replace.hof + 0.25
    assert puffer.total_overflow <= replace.total_overflow + 0.5
