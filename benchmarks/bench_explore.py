"""Benchmark distributed strategy exploration vs the serial loop.

Runs the same TPE strategy exploration twice with a fixed-latency
synthetic evaluation (every trial costs ``--eval-ms`` of wall clock, a
stand-in for a real place+route):

* **serial** — ``batch_size=1`` through the local
  :func:`repro.core.exploration.make_batch_evaluator`, the pre-PR-10
  CLI path: one trial at a time, end to end;
* **distributed** — ``batch_size == --shards`` through a
  :class:`repro.serve.DistributedEvaluator` over a
  :class:`repro.serve.LocalServiceHost` (the ``repro explore --jobs N``
  path): each TPE wave is submitted before any result is awaited, so
  trials saturate every shard.

The headline metric is ``explore_speedup`` (distributed trials/sec over
serial trials/sec).  Because the per-trial latency is pinned, the ratio
measures exactly what the issue asks for — wave submission keeping N
shards busy — independent of machine speed.  The acceptance floor
(>= 2x, enforced by ``check_regression.py`` with or without a baseline)
leaves headroom under the ~``--shards``x ideal for service overhead.

Writes ``benchmarks/out/BENCH_explore.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_explore.py [--budget N]
        [--shards N] [--eval-ms MS] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro import api
from repro.core.exploration import make_batch_evaluator
from repro.core.strategy import StrategyParams
from repro.serve import LocalServiceHost, ServiceConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def _fake_raw(params: dict) -> tuple:
    """Deterministic (overflow, wirelength) from the strategy params."""
    alpha = float(params.get("alpha_local_cg", 1.0))
    beta = float(params.get("beta", 1.0))
    mu = float(params.get("mu", 1.0))
    overflow = (alpha - 1.1) ** 2 + 0.3 * (beta - 0.9) ** 2 + 0.01 * (mu - 2.0) ** 2
    return overflow, 1000.0 + 10.0 * alpha + mu


class _SleepObjective:
    """The serial side: a fixed-latency placement-objective stand-in."""

    def __init__(self, eval_seconds: float) -> None:
        self.eval_seconds = eval_seconds

    def evaluate_raw(self, params: dict) -> tuple:
        time.sleep(self.eval_seconds)
        return _fake_raw(params)

    def loss_from_raw(self, raw: tuple) -> float:
        return raw[0]

    def cache_key(self, params: dict):
        return None  # every trial pays full latency, like a fresh design


def bench_runner(request):
    """Picklable service-side twin of :class:`_SleepObjective`.

    The per-trial latency rides in on the job's ``scale`` (the
    distributed evaluator copies ``ExploreConfig.scale`` into every
    request), so shard workers need no shared state with the parent.
    """
    config = request.get("config") or {}
    strategy = config.get("strategy") or {}
    params = StrategyParams.from_dict(strategy).to_dict()
    time.sleep(float(config.get("scale", 0.05)))
    overflow, wirelength = _fake_raw(params)
    return {
        "design": request["design"], "flow": "puffer", "hpwl": 1.0,
        "place_seconds": 0.0,
        "route": {
            "hof": 0.0, "vof": 0.0, "total_overflow": overflow,
            "wirelength": wirelength, "runtime": 0.0, "rounds": 1,
            "num_segments": 1, "via_count": 1,
        },
        "legal": True, "verify": None,
    }


def run_serial(budget: int, seed: int, eval_seconds: float) -> dict:
    config = api.ExploreConfig(scale=eval_seconds, budget=budget, seed=seed,
                               batch_size=1, priors="off")
    evaluator = make_batch_evaluator(_SleepObjective(eval_seconds))
    start = time.perf_counter()
    outcome = api.run_exploration(config, evaluator=evaluator)
    wall = time.perf_counter() - start
    return {"wall": wall, "evaluations": outcome.wire.evaluations,
            "best_loss": outcome.wire.best_loss}


def run_distributed(budget: int, seed: int, shards: int,
                    eval_seconds: float) -> dict:
    config = api.ExploreConfig(scale=eval_seconds, budget=budget, seed=seed,
                               batch_size=shards, priors="off")
    service = ServiceConfig(shards=shards, capacity=max(2 * shards, 8))
    with LocalServiceHost(service, runner=bench_runner) as host:
        evaluator = host.evaluator(config)
        start = time.perf_counter()
        outcome = api.run_exploration(config, evaluator=evaluator)
        wall = time.perf_counter() - start
    return {"wall": wall, "evaluations": outcome.wire.evaluations,
            "best_loss": outcome.wire.best_loss,
            "jobs": evaluator.jobs_submitted}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=16,
                        help="global-stage evaluation budget")
    parser.add_argument("--shards", type=int, default=4,
                        help="service shards = TPE batch size")
    parser.add_argument("--eval-ms", type=float, default=80.0,
                        help="synthetic per-trial latency, milliseconds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller budget and latency",
    )
    parser.add_argument("--out",
                        default=os.path.join(OUT_DIR, "BENCH_explore.json"))
    args = parser.parse_args(argv)
    if args.quick:
        # Keep the per-trial sleep long relative to service overhead:
        # the speedup ratio is what CI gates, and sleep is the only
        # machine-independent part of the wall clock.
        args.budget = min(args.budget, 10)
        args.eval_ms = min(args.eval_ms, 100.0)
    eval_seconds = args.eval_ms / 1000.0

    print(f"budget {args.budget}, {args.shards} shards, "
          f"{args.eval_ms:g}ms per trial")
    serial = run_serial(args.budget, args.seed, eval_seconds)
    serial_tps = serial["evaluations"] / serial["wall"]
    print(f"  serial     : {serial['wall']:.2f}s wall, "
          f"{serial['evaluations']} trials, {serial_tps:.1f} trials/s")
    distributed = run_distributed(args.budget, args.seed, args.shards,
                                  eval_seconds)
    distributed_tps = distributed["evaluations"] / distributed["wall"]
    print(f"  distributed: {distributed['wall']:.2f}s wall, "
          f"{distributed['evaluations']} trials "
          f"({distributed['jobs']} jobs), {distributed_tps:.1f} trials/s")
    speedup = distributed_tps / serial_tps
    print(f"distributed vs serial: {speedup:.2f}x trials/sec")

    report = {
        "bench": "explore",
        "quick": args.quick,
        "budget": args.budget,
        "shards": args.shards,
        "batch_size": args.shards,
        "eval_ms": args.eval_ms,
        "seed": args.seed,
        "serial_seconds": round(serial["wall"], 3),
        "distributed_seconds": round(distributed["wall"], 3),
        "serial_trials": serial["evaluations"],
        "distributed_trials": distributed["evaluations"],
        "serial_trials_per_sec": round(serial_tps, 2),
        "distributed_trials_per_sec": round(distributed_tps, 2),
        "explore_speedup": round(speedup, 2),
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
