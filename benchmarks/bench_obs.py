"""Benchmark the observability layer's overhead on the PUFFER flow.

Runs the OR1200 puffer flow three ways — tracing disabled (the no-op
default), tracing into an in-memory :class:`repro.obs.Tracer`, and
tracing into a JSONL file — and writes the walls plus the disabled-path
slowdown to ``benchmarks/out/BENCH_obs.json``.

The acceptance bar is the *disabled* path: with no tracer installed the
instrumented flow must stay within a few percent of the seed flow, so
the guard fails loudly when someone puts real work on the no-op path.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--scale S] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro import api, obs

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Maximum tolerated slowdown of the tracing-*disabled* path, as a
#: fraction of the fastest observed disabled wall (ISSUE bar: 5%).
DISABLED_SLOWDOWN_BUDGET = 0.05


def timed_flow(design: str, scale: float, trace=None) -> float:
    start = time.perf_counter()
    api.run(design, config=api.RunConfig(scale=scale), trace=trace, route=True)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="OR1200")
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=os.path.join(OUT_DIR, "BENCH_obs.json"))
    args = parser.parse_args(argv)

    timed_flow(args.design, args.scale)  # warm caches before timing

    disabled = [timed_flow(args.design, args.scale) for _ in range(args.repeats)]
    memory = []
    records = 0
    for _ in range(args.repeats):
        tracer = obs.Tracer(ring_size=1 << 20)
        memory.append(timed_flow(args.design, args.scale, trace=tracer))
        records = len(tracer.ring)

    import tempfile

    jsonl = []
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(args.repeats):
            path = os.path.join(tmp, f"trace_{i}.jsonl")
            jsonl.append(timed_flow(args.design, args.scale, trace=path))

    disabled_wall = min(disabled)
    memory_wall = min(memory)
    jsonl_wall = min(jsonl)
    # The disabled-path guard compares best-vs-worst across repeats of
    # the *same* configuration: jitter beyond the budget on a no-op path
    # means instrumentation is doing real work while switched off.
    disabled_spread = max(disabled) / disabled_wall - 1.0

    report = {
        "bench": "obs",
        "design": args.design,
        "scale": args.scale,
        "repeats": args.repeats,
        "trace_records": records,
        "disabled_seconds": round(disabled_wall, 4),
        "memory_tracer_seconds": round(memory_wall, 4),
        "jsonl_tracer_seconds": round(jsonl_wall, 4),
        "memory_overhead_pct": round(100.0 * (memory_wall / disabled_wall - 1.0), 2),
        "jsonl_overhead_pct": round(100.0 * (jsonl_wall / disabled_wall - 1.0), 2),
        "disabled_spread_pct": round(100.0 * disabled_spread, 2),
        "disabled_budget_pct": 100.0 * DISABLED_SLOWDOWN_BUDGET,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"disabled:      {disabled_wall:7.3f}s (spread {report['disabled_spread_pct']:.1f}%)")
    print(f"memory tracer: {memory_wall:7.3f}s (+{report['memory_overhead_pct']:.1f}%)")
    print(f"jsonl tracer:  {jsonl_wall:7.3f}s (+{report['jsonl_overhead_pct']:.1f}%)")
    print(f"trace records: {records}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
