"""E4 — Figure 1: the grid-graph model of global routing.

Figure 1 is a conceptual illustration: the routing region partitioned
into Gcells modelled as a grid graph.  This bench regenerates the
artifact from a real design — it dumps the Gcell grid, per-direction
capacities, and the implied node/edge counts of the grid graph.
"""

from repro.benchgen import make_design
from repro.placer import GlobalPlacer, PlacementParams
from repro.router import GlobalRouter, assign_layers, build_grid, format_layer_table

from conftest import save_artifact


def test_fig1_grid_graph(benchmark, out_dir):
    design = make_design("OR1200", scale=0.002)
    grid = benchmark.pedantic(lambda: build_grid(design), rounds=1, iterations=1)

    num_nodes = grid.num_gcells
    # Grid-graph edges: boundaries between abutting Gcells.
    num_edges = grid.nx * (grid.ny - 1) + (grid.nx - 1) * grid.ny
    lines = [
        "FIGURE 1  grid-graph model of the routing region",
        f"design          : {design.name} (die {design.die.width:g} x {design.die.height:g})",
        f"Gcell size      : {grid.gcell_w:g} x {grid.gcell_h:g}",
        f"grid            : {grid.nx} x {grid.ny} Gcells",
        f"graph nodes     : {num_nodes}",
        f"graph edges     : {num_edges}",
        f"H capacity/Gcell: {grid.cap_h.mean():.1f} tracks (min {grid.cap_h.min():.1f})",
        f"V capacity/Gcell: {grid.cap_v.mean():.1f} tracks (min {grid.cap_v.min():.1f})",
    ]
    # The layer dimension of Fig. 1: route the design and redistribute
    # the demand back onto the metal stack.
    GlobalPlacer(design, PlacementParams(max_iters=300)).run()
    report = GlobalRouter(design).run()
    lines.append("")
    lines.append("per-layer usage after routing:")
    lines.append(format_layer_table(assign_layers(design, report)))
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "fig1_grid_graph.txt", text)
    assert num_nodes == grid.nx * grid.ny
    assert grid.cap_h.min() >= 0
