"""M1-M5 — micro-benchmarks of the computational kernels.

Real pytest-benchmark measurements (multiple rounds) of the kernels the
flows are built from: WA wirelength gradients, the spectral density
solve, RSMT construction, congestion estimation, and global routing.
"""

import numpy as np
import pytest

from repro.benchgen import make_design
from repro.core import CongestionEstimator
from repro.placer import ElectrostaticDensity, GlobalPlacer, PlacementParams, WirelengthModel
from repro.router import GlobalRouter, RouterParams
from repro.rsmt import build_rsmt


@pytest.fixture(scope="module")
def perf_design():
    design = make_design("BIT_COIN", scale=0.004)
    GlobalPlacer(design, PlacementParams(max_iters=200)).run()
    return design


def test_m1_wa_gradient(benchmark, perf_design):
    model = WirelengthModel(perf_design)
    benchmark(model.wa_and_grad, perf_design.x, perf_design.y, 8.0)


def test_m2_density_penalty(benchmark, perf_design):
    density = ElectrostaticDensity(perf_design)
    benchmark(density.penalty_and_grad, perf_design.x, perf_design.y)


def test_m3_rsmt(benchmark, rng=np.random.default_rng(5)):
    nets = [
        (rng.uniform(0, 100, n), rng.uniform(0, 100, n))
        for n in rng.integers(2, 12, size=200)
    ]

    def build_all():
        return [build_rsmt(x, y) for x, y in nets]

    topologies = benchmark(build_all)
    assert len(topologies) == 200


def test_m4_congestion_estimation(benchmark, perf_design):
    estimator = CongestionEstimator(perf_design)

    def estimate():
        estimator._topology_cache.clear()  # measure the cold path
        return estimator.estimate()

    cmap, topologies, _ = benchmark(estimate)
    assert cmap.dmd_h.sum() > 0


def test_m5_global_routing(benchmark, perf_design):
    report = benchmark.pedantic(
        lambda: GlobalRouter(perf_design, RouterParams(rrr_rounds=1)).run(),
        rounds=2,
        iterations=1,
    )
    assert report.num_segments > 0
