"""E5 — Figure 2: the PUFFER algorithm flow.

Figure 2 shows the flow: global placement, routability optimization
rounds triggered inside it, and white-space-assisted legalization.  This
bench runs the full flow on a congested design and prints the recorded
flow trace — the executable version of the figure.
"""

from repro.benchgen import make_design
from repro.core import PufferPlacer
from repro.placer import PlacementParams

from conftest import save_artifact


def test_fig2_flow(benchmark, out_dir):
    design = make_design("OR1200", scale=0.004)
    result = benchmark.pedantic(
        lambda: PufferPlacer(
            design, placement=PlacementParams(max_iters=900)
        ).run(),
        rounds=1,
        iterations=1,
    )
    lines = ["FIGURE 2  algorithm flow trace"]
    for event in result.events:
        lines.append(f"  [{event.time:6.2f}s] {event.stage:26s} {event.detail}")
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "fig2_flow.txt", text)

    stages = [e.stage for e in result.events]
    assert stages[0] == "global_placement"
    assert stages[-1] == "legalization"
    assert stages.count("routability_optimization") == result.padding_rounds
    assert result.padding_rounds >= 1
