"""Benchmark zero-copy shared-memory design transfer to shard workers.

Runs the same job stream through one :class:`repro.serve.shards.ProcessShard`
twice.  Each job evaluates HPWL on a mid-size design; the only difference
between the modes is how the design reaches the worker process:

* ``pickle`` — the request carries the fully pickled design, so every
  submit pays serialize + IPC + deserialize for the whole netlist (the
  pre-shm wire cost, measured honestly per job).
* ``shm`` — the design is published once into
  :mod:`repro.runtime.shm`; every request carries only the ~500-byte
  handle and the worker attaches read-only views (memoized after the
  first job).

Headline metrics: ``shm_latency_speedup`` (per-job p50 submit-to-result,
pickle over shm — floored at >= 2x by ``check_regression.py``) and
``shm_speedup`` (jobs/sec ratio).  The one-time publish cost and the
wire sizes are reported for context.

Writes ``benchmarks/out/BENCH_shm.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shm.py [--jobs N]
        [--design NAME] [--scale S] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import time

from repro.benchgen import make_design
from repro.runtime import shm
from repro.serve.shards import ProcessShard

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def shm_job(request):
    """Picklable worker body: materialize the design, score it.

    ``_shm`` requests attach the published segment (zero-copy);
    ``design_blob`` requests unpickle the netlist shipped in the
    request — the per-job cost the shared-memory path removes.
    """
    handle = request.get("_shm")
    if handle is not None:
        design = shm.attach_design(shm.SharedDesignHandle.from_dict(handle))
    else:
        design = pickle.loads(request["design_blob"])
    return {"hpwl": design.hpwl(), "cells": design.num_cells}


def run_mode(shard: ProcessShard, requests: list) -> dict:
    """Execute the stream sequentially, timing each job."""
    latencies = []
    start = time.perf_counter()
    for i, request in enumerate(requests):
        t0 = time.perf_counter()
        result = shard.execute(shm_job, request, key=f"job-{i}")
        latencies.append(time.perf_counter() - t0)
        if not result.ok:
            raise RuntimeError(f"bench job failed: {result.error!r}")
    wall = time.perf_counter() - start
    latencies.sort()
    return {
        "wall_seconds": wall,
        "jobs_per_sec": len(requests) / wall,
        "p50_seconds": latencies[len(latencies) // 2],
        "p99_seconds": latencies[min(len(latencies) - 1,
                                     int(len(latencies) * 0.99))],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=40, help="jobs per mode")
    parser.add_argument("--design", default="OR1200")
    parser.add_argument("--scale", type=float, default=0.04,
                        help="benchmark-generation scale (design size)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer jobs")
    parser.add_argument("--out", default=os.path.join(OUT_DIR, "BENCH_shm.json"))
    args = parser.parse_args(argv)
    if args.quick:
        args.jobs = min(args.jobs, 12)

    design = make_design(args.design, args.scale)
    blob = pickle.dumps(design, protocol=pickle.HIGHEST_PROTOCOL)
    t0 = time.perf_counter()
    shared = shm.publish_design(design)
    publish_seconds = time.perf_counter() - t0
    handle_dict = shared.handle.to_dict()
    handle_bytes = len(pickle.dumps(handle_dict, protocol=pickle.HIGHEST_PROTOCOL))
    print(f"{args.design} scale {args.scale:g}: {design.num_cells} cells, "
          f"pickle {len(blob)} B vs handle {handle_bytes} B "
          f"(publish {publish_seconds * 1e3:.1f} ms)")

    results = {}
    try:
        shard = ProcessShard(0)
        try:
            shard.warm()
            # One warmup job per mode: fork/attach costs land here, not
            # in the measured stream.
            shard.execute(shm_job, {"design_blob": blob}, key="warm-pickle")
            shard.execute(shm_job, {"_shm": handle_dict}, key="warm-shm")
            for mode in ("pickle", "shm"):
                request = (
                    {"design_blob": blob} if mode == "pickle"
                    else {"_shm": handle_dict}
                )
                results[mode] = run_mode(shard, [dict(request) for _ in range(args.jobs)])
                r = results[mode]
                print(f"  {mode:6s}: {r['wall_seconds']:.3f}s wall, "
                      f"{r['jobs_per_sec']:.1f} jobs/s, "
                      f"p50 {r['p50_seconds'] * 1e3:.2f} ms, "
                      f"p99 {r['p99_seconds'] * 1e3:.2f} ms")
        finally:
            shard.close()
    finally:
        shared.release()

    latency_speedup = results["pickle"]["p50_seconds"] / results["shm"]["p50_seconds"]
    throughput_speedup = (
        results["shm"]["jobs_per_sec"] / results["pickle"]["jobs_per_sec"]
    )
    print(f"shared memory vs pickling: {latency_speedup:.2f}x p50 latency, "
          f"{throughput_speedup:.2f}x jobs/sec")

    report = {
        "bench": "shm",
        "design": args.design,
        "scale": args.scale,
        "jobs": args.jobs,
        "quick": args.quick,
        "design_cells": design.num_cells,
        "blob_bytes": len(blob),
        "handle_bytes": handle_bytes,
        "publish_seconds": round(publish_seconds, 5),
        "pickle_jobs_per_sec": round(results["pickle"]["jobs_per_sec"], 2),
        "shm_jobs_per_sec": round(results["shm"]["jobs_per_sec"], 2),
        "pickle_p50_seconds": round(results["pickle"]["p50_seconds"], 5),
        "shm_p50_seconds": round(results["shm"]["p50_seconds"], 5),
        "pickle_p99_seconds": round(results["pickle"]["p99_seconds"], 5),
        "shm_p99_seconds": round(results["shm"]["p99_seconds"], 5),
        "shm_latency_speedup": round(latency_speedup, 2),
        "shm_speedup": round(throughput_speedup, 2),
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
