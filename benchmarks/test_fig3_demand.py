"""E6 — Figure 3: congestion estimation demand maps.

Figure 3 illustrates (a) horizontal and (b) vertical probabilistic
demand of a multi-pin net, and (c) the detour-imitating expansion of
congested I-shaped segments.  This bench reconstructs the scenario: a
multi-pin net on a small Gcell grid, rendered before and after expansion.
"""


from repro.core import ExpansionParams, accumulate_demand, build_topologies, expand_demand
from repro.evalkit import ascii_heatmap, side_by_side
from repro.netlist import DesignBuilder, Rect, Technology
from repro.router import build_grid

from conftest import save_artifact


def _figure_design():
    """A 5-pin net shaped like the paper's Fig. 3 example."""
    tech = Technology()
    b = DesignBuilder("fig3", tech, Rect(0, 0, 160, 160))
    pins = [(24, 72), (136, 72), (88, 24), (88, 136), (40, 120)]
    cells = [
        b.add_cell(f"c{i}", 2, tech.row_height, x=x, y=y)
        for i, (x, y) in enumerate(pins)
    ]
    net = b.add_net("n")
    for c in cells:
        b.add_pin(c, net)
    return b.build()


def test_fig3_demand_and_expansion(benchmark, out_dir):
    design = _figure_design()
    grid = build_grid(design)
    # Tighten capacity so the I-segments count as congested (Fig. 3c).
    grid.cap_h[:, :] = 0.6
    grid.cap_v[:, :] = 0.6

    def build():
        topologies = build_topologies(design, grid)
        return accumulate_demand(design, grid, topologies, pin_penalty=0.0)

    demand = benchmark.pedantic(build, rounds=1, iterations=1)
    before_h = demand.dmd_h.copy()
    before_v = demand.dmd_v.copy()
    expand_demand(grid, demand, ExpansionParams(radius=2))

    text = "\n".join(
        [
            "FIGURE 3  probabilistic demand and detour-imitating expansion",
            "",
            "(a) horizontal demand         (b) vertical demand",
            side_by_side({"H": before_h, "V": before_v}, width=10),
            "",
            "(c) after expansion (H | V):",
            side_by_side({"H": demand.dmd_h, "V": demand.dmd_v}, width=10),
        ]
    )
    print()
    print(text)
    save_artifact(out_dir, "fig3_demand.txt", text)

    # Redistribution never removes directional demand; Steiner detours of
    # perpendicular segments may add some (Fig. 3c's detour paths).
    assert demand.dmd_h.sum() >= before_h.sum() - 1e-9
    assert demand.dmd_v.sum() >= before_v.sum() - 1e-9
    occupied_before = (before_h > 0).sum()
    occupied_after = (demand.dmd_h > 0).sum()
    assert occupied_after >= occupied_before
    assert len(demand.i_segments) >= 2
