"""Compare fresh benchmark reports against the committed baselines.

Reads each ``BENCH_*.json`` produced by the scripts in this directory
(``benchmarks/out/``) and compares it with the matching baseline under
``benchmarks/baselines/``:

* every ``*_seconds`` metric must satisfy
  ``fresh <= baseline * (1 + budget) + 0.05`` (the absolute floor keeps
  sub-100ms timings from tripping on scheduler noise),
* every ``*_speedup`` metric must satisfy
  ``fresh >= baseline / (1 + budget)``,
* the kernel report must additionally clear the absolute tentpole
  floors: ``demand_speedup >= 3`` and ``density_speedup >= 3``, and the
  shared-memory report ``shm_latency_speedup >= 2`` — these are
  enforced even without a baseline, since they are ratios of the same
  workload on the same machine.

Comparisons against a baseline only run when the two reports describe
the same workload (the config keys match); a ``--quick`` CI run checked
against a full-size baseline skips the wall-clock comparison but still
enforces the absolute speedup floors.  A missing baseline is a skip
(first run on a new benchmark); a missing fresh report for an existing
baseline is a failure (the benchmark silently stopped running).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py [--budget 0.25]
        [--only BENCH_kernels.json BENCH_shm.json]
"""

from __future__ import annotations

import argparse
import json
import os

HERE = os.path.dirname(__file__)

#: report file -> keys that must match for baseline comparison to apply.
CONFIG_KEYS = {
    "BENCH_runtime.json": ("scale", "designs", "jobs"),
    "BENCH_obs.json": ("design", "scale", "repeats"),
    "BENCH_kernels.json": ("quick", "config"),
    "BENCH_eco.json": ("design", "scale", "seed", "edits", "quick"),
    "BENCH_serve.json": ("jobs", "hogs", "quick"),
    "BENCH_shm.json": ("design", "scale", "jobs", "quick"),
    "BENCH_slots.json": ("netlist", "seed", "quick", "sa_iters"),
    "BENCH_explore.json": ("quick", "budget", "shards", "eval_ms", "seed"),
}

#: absolute speedup floors (report file -> {metric: floor}), checked on
#: the fresh report regardless of baseline availability.
FLOORS = {
    "BENCH_kernels.json": {"demand_speedup": 3.0, "density_speedup": 3.0},
    # The issue's acceptance bar: a single-cell resize through the ECO
    # session must beat a cold place+route rerun by >= 10x.
    "BENCH_eco.json": {"resize_speedup": 10.0},
    # The serving-tier acceptance bar: two process shards must at least
    # double thread-mode jobs/sec on the hog-mix workload (timeouts
    # that kill the worker reclaim the core; thread mode cannot).
    "BENCH_serve.json": {"shard_speedup": 2.0},
    # Zero-copy acceptance bar: handing shard workers a shared-memory
    # handle must at least halve the p50 submit-to-result latency vs
    # shipping the pickled design in every request.
    "BENCH_shm.json": {"shm_latency_speedup": 2.0},
    # Fixed-slot acceptance bar: the greedy + SA pipeline must beat a
    # random slot assignment by >= 1.5x HPWL.  This is a deterministic
    # quality ratio (fixed seeds), not a timing, so it holds on any
    # machine; the measured value is ~2.4x full / ~2.1x quick.
    "BENCH_slots.json": {"sa_hpwl_speedup": 1.5},
    # Distributed-exploration acceptance bar: wave-submitting TPE
    # batches across the service shards must at least double the serial
    # trials/sec.  Per-trial latency is a fixed synthetic sleep, so the
    # ratio is machine-independent up to service overhead.
    "BENCH_explore.json": {"explore_speedup": 2.0},
}

SECONDS_GRACE = 0.05


def _load(path):
    with open(path) as f:
        return json.load(f)


def check_report(name, fresh, baseline, budget):
    """Yield ``(ok, message)`` tuples for one benchmark report."""
    for metric, floor in FLOORS.get(name, {}).items():
        value = fresh.get(metric)
        if value is None:
            yield False, f"{metric}: missing from fresh report"
        elif value < floor:
            yield False, f"{metric}: {value} below the required {floor}x floor"
        else:
            yield True, f"{metric}: {value} >= {floor}x floor"

    if baseline is None:
        yield True, "no committed baseline; wall-clock comparison skipped"
        return
    mismatched = [
        key for key in CONFIG_KEYS.get(name, ())
        if fresh.get(key) != baseline.get(key)
    ]
    if mismatched:
        yield True, (
            "config differs from baseline "
            f"({', '.join(mismatched)}); wall-clock comparison skipped"
        )
        return

    for metric in sorted(baseline):
        base = baseline[metric]
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue
        value = fresh.get(metric)
        if value is None:
            yield False, f"{metric}: missing from fresh report"
        elif metric.endswith("_seconds"):
            limit = base * (1.0 + budget) + SECONDS_GRACE
            ok = value <= limit
            yield ok, f"{metric}: {value}s vs baseline {base}s (limit {limit:.3f}s)"
        elif metric.endswith("_speedup"):
            limit = base / (1.0 + budget)
            ok = value >= limit
            yield ok, f"{metric}: {value}x vs baseline {base}x (floor {limit:.2f}x)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", type=float, default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    parser.add_argument("--out-dir", default=os.path.join(HERE, "out"))
    parser.add_argument("--baseline-dir", default=os.path.join(HERE, "baselines"))
    parser.add_argument(
        "--only", nargs="+", metavar="BENCH_x.json",
        help="gate only these reports (the always-on CI perf lane "
             "regenerates a subset; default: every known report)",
    )
    args = parser.parse_args(argv)

    names = sorted(CONFIG_KEYS)
    if args.only:
        unknown = [n for n in args.only if n not in CONFIG_KEYS]
        if unknown:
            print(f"error: unknown report(s): {', '.join(unknown)}")
            return 2
        names = sorted(args.only)

    failures = 0
    for name in names:
        fresh_path = os.path.join(args.out_dir, name)
        base_path = os.path.join(args.baseline_dir, name)
        has_baseline = os.path.exists(base_path)
        if not os.path.exists(fresh_path):
            if has_baseline:
                failures += 1
                print(f"FAIL {name}: baseline exists but no fresh report was produced")
            else:
                print(f"skip {name}: no fresh report and no baseline")
            continue
        fresh = _load(fresh_path)
        baseline = _load(base_path) if has_baseline else None
        print(name)
        for ok, message in check_report(name, fresh, baseline, args.budget):
            print(f"  {'ok  ' if ok else 'FAIL'} {message}")
            failures += 0 if ok else 1

    if failures:
        print(f"{failures} regression check(s) failed")
        return 1
    print("all regression checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
