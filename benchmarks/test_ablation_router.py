"""A6 — ablation of the evaluation router's negotiation machinery.

The evaluator must be a credible Innovus-GR substitute: this ablation
measures what each stage buys on a congested design — pattern routing
only, plus Z patterns, plus history-based rip-up and maze rerouting.
"""

from repro.benchgen import make_design
from repro.legalizer import legalize_abacus
from repro.placer import GlobalPlacer, PlacementParams
from repro.router import GlobalRouter, RouterParams

from conftest import save_artifact

VARIANTS = [
    ("patterns (L only)", RouterParams(rrr_rounds=0, use_z_patterns=False)),
    ("patterns + Z", RouterParams(rrr_rounds=0, use_z_patterns=True)),
    ("+ 2 RRR rounds", RouterParams(rrr_rounds=2)),
    ("+ 4 RRR rounds", RouterParams(rrr_rounds=4)),
]


def test_ablation_router_stages(benchmark, scale, out_dir):
    design = make_design("MEDIA_SUBSYS", scale)
    GlobalPlacer(design, PlacementParams(max_iters=900)).run()
    legalize_abacus(design)

    def run_all():
        return {
            label: GlobalRouter(design, params).run()
            for label, params in VARIANTS
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "ABLATION A6  router negotiation stages (MEDIA_SUBSYS)",
        f"{'variant':<20}{'HOF(%)':>9}{'VOF(%)':>9}{'WL':>12}{'vias':>8}{'RT(s)':>7}",
    ]
    for label, report in reports.items():
        lines.append(
            f"{label:<20}{report.hof:>9.3f}{report.vof:>9.3f}"
            f"{report.wirelength:>12.4g}{report.via_count:>8d}"
            f"{report.runtime:>7.1f}"
        )
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "ablation_router.txt", text)

    # More negotiation never increases overflow.
    plain = reports["patterns (L only)"].total_overflow
    rrr4 = reports["+ 4 RRR rounds"].total_overflow
    assert rrr4 <= plain + 1e-9
