"""A2 — ablation: padding recycling, utilization control, and padding
inheritance (the consistency argument of Sec. III-B3/III-D).

Variants:

* ``full``       — PUFFER as published.
* ``no recycle`` — recycling disabled (``zeta`` huge makes the recycle
  rate negligible; history padding is never withdrawn).
* ``no schedule``— utilization control flat at ``pu_high`` from round 1
  (no ramp; the over-padding-early failure mode the paper guards
  against).
* ``no inherit`` — padding dropped at legalization (``theta = 0``), the
  RePlAce-style inconsistency.
"""

from repro.benchgen import make_design
from repro.core import PufferPlacer, StrategyParams
from repro.placer import PlacementParams
from repro.router import GlobalRouter

from conftest import save_artifact

BASE = StrategyParams()
VARIANTS = [
    ("full", BASE),
    ("no recycle", BASE.replaced(zeta=1e9)),
    ("no schedule", BASE.replaced(pu_low=BASE.pu_high)),
    ("no inherit", BASE.replaced(theta=0.0)),
]


def test_ablation_recycling_and_control(benchmark, scale, out_dir):
    placement = PlacementParams(max_iters=900)

    def run_all():
        results = {}
        for variant, strategy in VARIANTS:
            design = make_design("MEDIA_SUBSYS", scale)
            run = PufferPlacer(design, strategy=strategy, placement=placement).run()
            results[variant] = (GlobalRouter(design).run(), run)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "ABLATION A2  recycling / utilization control / inheritance",
        f"{'variant':<14}{'HOF(%)':>9}{'VOF(%)':>9}{'HPWL':>12}{'pad area':>10}",
    ]
    for variant, (report, run) in results.items():
        lines.append(
            f"{variant:<14}{report.hof:>9.3f}{report.vof:>9.3f}"
            f"{run.hpwl:>12.4g}{run.total_padding_area:>10.1f}"
        )
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "ablation_recycling.txt", text)

    full_report, full_run = results["full"]
    no_inherit_report, _ = results["no inherit"]
    # Dropping the padding at legalization must not *improve* congestion:
    # consistency is the paper's headline claim.
    assert full_report.total_overflow <= no_inherit_report.total_overflow + 1.0
    assert full_run.total_padding_area > 0
