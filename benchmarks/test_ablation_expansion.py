"""A3 — ablation: detour-imitating demand expansion on/off.

With the expansion disabled the congestion estimate concentrates demand
into the clustered stripes, which both misestimates the eventual routing
and mistargets the padding.  This bench compares (a) estimation accuracy
against the router and (b) end-to-end PUFFER quality, with and without
the expansion.
"""

import numpy as np

from repro.benchgen import make_design
from repro.core import CongestionEstimator, EstimatorParams, PufferPlacer, rudy_maps
from repro.placer import GlobalPlacer, PlacementParams
from repro.router import GlobalRouter

from conftest import save_artifact


def _estimation_correlations(design) -> dict:
    """Correlation of three estimators against the router's demand."""
    report = GlobalRouter(design).run()
    real = (report.demand.dmd_h + report.demand.dmd_v).ravel()
    out = {}
    for label, expand in (("no expansion", False), ("with expansion", True)):
        estimator = CongestionEstimator(design, EstimatorParams(expand=expand))
        cmap, _, _ = estimator.estimate()
        est = (cmap.dmd_h + cmap.dmd_v).ravel()
        out[label] = float(np.corrcoef(est, real)[0, 1])
    rudy_h, rudy_v, _ = rudy_maps(design)
    out["RUDY [2]"] = float(np.corrcoef((rudy_h + rudy_v).ravel(), real)[0, 1])
    return out


def test_ablation_expansion(benchmark, scale, out_dir):
    placement = PlacementParams(max_iters=900)

    def run_all():
        # (a) estimation accuracy at a mid-placement snapshot, including
        # the classic RUDY estimator as the prior-work baseline.
        probe = make_design("MEDIA_SUBSYS", scale)
        GlobalPlacer(probe, PlacementParams(max_iters=250)).run()
        correlations = _estimation_correlations(probe)

        # (b) end-to-end quality.
        reports = {}
        for expand in (False, True):
            design = make_design("MEDIA_SUBSYS", scale)
            PufferPlacer(
                design,
                placement=placement,
                estimator_params=EstimatorParams(expand=expand),
            ).run()
            reports[expand] = GlobalRouter(design).run()
        return correlations, reports

    correlations, reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    corr_off = correlations["no expansion"]
    corr_on = correlations["with expansion"]

    lines = ["ABLATION A3  detour-imitating demand expansion",
             "estimator-vs-router demand correlation:"]
    for label, corr in correlations.items():
        lines.append(f"  {label:<16}{corr:.4f}")
    lines += [
        f"{'variant':<16}{'HOF(%)':>9}{'VOF(%)':>9}{'total':>9}",
        f"{'no expansion':<16}{reports[False].hof:>9.3f}{reports[False].vof:>9.3f}"
        f"{reports[False].total_overflow:>9.3f}",
        f"{'with expansion':<16}{reports[True].hof:>9.3f}{reports[True].vof:>9.3f}"
        f"{reports[True].total_overflow:>9.3f}",
    ]
    text = "\n".join(lines)
    print()
    print(text)
    save_artifact(out_dir, "ablation_expansion.txt", text)

    assert corr_on > 0.5 and corr_off > 0.5
    # The topology-based estimator must beat the bbox-only RUDY.
    assert corr_on > correlations["RUDY [2]"]
    # The expansion must not make the end result clearly worse.
    assert reports[True].total_overflow <= reports[False].total_overflow * 1.5 + 0.5
