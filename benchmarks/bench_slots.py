"""Benchmark the fixed-slot placement pipeline on the committed example.

Ingests the Yosys example netlist (``examples/mos6502_mapped.json``),
builds the slot grid, and compares three assignments of the same design:

* ``random`` — uniform assignment over fitting free slots, no
  refinement (the quality baseline a structured-ASIC flow must beat);
* ``greedy`` — the I/O-driven seed-and-grow initial assignment;
* ``greedy + SA`` — the full :func:`repro.slots.place_slots` pipeline
  with simulated-annealing refinement over incremental HPWL deltas.

Headline metric: ``sa_hpwl_speedup`` — random-assignment HPWL over the
refined pipeline's HPWL.  It is a deterministic quality ratio (fixed
seeds, same machine-independent arithmetic), floored at >= 1.5x by
``check_regression.py``; the stage wall-clock timings ride along for
the ``*_seconds`` budget comparison.

Writes ``benchmarks/out/BENCH_slots.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_slots.py [--netlist PATH]
        [--seed N] [--sa-iters N] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.netlist import load_yosys
from repro.slots import (
    SlotParams,
    apply_assignment,
    generate_slots,
    greedy_assignment,
    random_assignment,
    sa_refine,
)

HERE = os.path.dirname(__file__)
OUT_DIR = os.path.join(HERE, "out")
DEFAULT_NETLIST = os.path.join(HERE, "..", "examples", "mos6502_mapped.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--netlist", default=DEFAULT_NETLIST,
                        help="Yosys write_json netlist to place")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sa-iters", type=int, default=None,
                        help="SA iterations (default scales with the design)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: capped SA iterations")
    parser.add_argument("--out", default=os.path.join(OUT_DIR, "BENCH_slots.json"))
    args = parser.parse_args(argv)
    sa_iters = args.sa_iters
    if args.quick and sa_iters is None:
        sa_iters = 6000

    t0 = time.perf_counter()
    design = load_yosys(args.netlist)
    ingest_seconds = time.perf_counter() - t0
    name = os.path.basename(args.netlist)
    print(f"{design.name}: {design.num_cells} cells, {design.num_nets} nets "
          f"(ingest {ingest_seconds * 1e3:.1f} ms)")

    t0 = time.perf_counter()
    grid = generate_slots(design, seed=args.seed)
    grid_seconds = time.perf_counter() - t0

    # Random baseline: same grid, no refinement.
    baseline = random_assignment(design, grid, seed=args.seed)
    apply_assignment(design, grid, baseline)
    hpwl_random = design.hpwl()
    print(f"  random          : HPWL {hpwl_random:10.1f}")

    t0 = time.perf_counter()
    assignment = greedy_assignment(design, grid, seed=args.seed)
    apply_assignment(design, grid, assignment)
    greedy_seconds = time.perf_counter() - t0
    hpwl_greedy = design.hpwl()
    print(f"  greedy          : HPWL {hpwl_greedy:10.1f} "
          f"({greedy_seconds:.3f}s)")

    params = SlotParams(sa_iters=sa_iters)
    t0 = time.perf_counter()
    stats = sa_refine(design, grid, assignment, params, seed=args.seed)
    sa_seconds = time.perf_counter() - t0
    hpwl_final = design.hpwl()
    print(f"  greedy + SA     : HPWL {hpwl_final:10.1f} "
          f"({sa_seconds:.3f}s, {stats.accepted}/{stats.iterations} accepted)")

    greedy_speedup = hpwl_random / hpwl_greedy
    sa_speedup = hpwl_random / hpwl_final
    print(f"HPWL vs random baseline: greedy {greedy_speedup:.2f}x, "
          f"greedy+SA {sa_speedup:.2f}x")

    report = {
        "bench": "slots",
        "netlist": name,
        "seed": args.seed,
        "quick": args.quick,
        "sa_iters": stats.iterations,
        "cells": design.num_cells,
        "slots": grid.num_slots,
        "ingest_seconds": round(ingest_seconds, 5),
        "grid_seconds": round(grid_seconds, 5),
        "greedy_seconds": round(greedy_seconds, 5),
        "sa_seconds": round(sa_seconds, 5),
        "sa_accepted": stats.accepted,
        "hpwl_random": round(hpwl_random, 2),
        "hpwl_greedy": round(hpwl_greedy, 2),
        "hpwl_final": round(hpwl_final, 2),
        "greedy_hpwl_speedup": round(greedy_speedup, 3),
        "sa_hpwl_speedup": round(sa_speedup, 3),
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
