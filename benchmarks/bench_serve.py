"""Benchmark the serving tier: process shards vs single-process threads.

Drives hundreds of concurrent submits through an in-process
:class:`repro.serve.PlacementService` twice — once in the PR-5
single-process thread mode, once on two process shards — with the same
hog-mix workload: many short CPU-bound jobs plus a few multi-second
"hog" jobs submitted under a short per-job timeout.

The headline metric is ``shard_speedup`` (shard-mode jobs/sec over
thread-mode jobs/sec).  It measures an honest capability difference,
not scheduling luck: in thread mode a timed-out hog is only *marked*
failed — its thread keeps burning the GIL/CPU until the hog finishes,
throttling every short job behind it.  A process shard enforces the
timeout by killing the worker, so the core actually comes back.  The
acceptance floor (>= 2x, ``check_regression.py``) is enforced
regardless of baseline availability; committed baselines additionally
gate the short-job p50/p99 latency and jobs/sec.

Writes ``benchmarks/out/BENCH_serve.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--jobs N] [--hogs N]
        [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import threading
import time

from repro.serve import PlacementService, ServiceConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Seeds at or above this mark a hog job (the runner spins longer).
HOG_SEED_BASE = 1_000_000

SHORT_SPIN_SECONDS = 0.02
HOG_SPIN_SECONDS = 12.0
HOG_TIMEOUT_SECONDS = 0.15

#: Ends abandoned thread-mode hog spins once a mode's measurement is
#: done (a shard-mode hog never sees it — its process is killed, which
#: is the point).  Without this the bench would idle out the leftover
#: spins between modes.
_STOP_SPINNING = threading.Event()


def _spin(seconds: float) -> None:
    """Busy-spin (CPU-bound, holds the GIL) for ``seconds``."""
    end = time.perf_counter() + seconds
    while time.perf_counter() < end and not _STOP_SPINNING.is_set():
        pass


def bench_runner(request):
    """Picklable fake placement: short spin, or a hog spin for hog seeds."""
    seed = request["config"]["seed"]
    hog = seed >= HOG_SEED_BASE
    _spin(HOG_SPIN_SECONDS if hog else SHORT_SPIN_SECONDS)
    return {"seed": seed, "hog": hog}


def build_requests(jobs: int, hogs: int) -> list:
    """The submission mix: hogs spread evenly through the short jobs."""
    requests = [
        {"design": "OR1200", "config": {"seed": seed}}
        for seed in range(1, jobs + 1)
    ]
    stride = max(1, jobs // max(hogs, 1))
    for i in range(hogs):
        requests.insert(
            i * (stride + 1),
            {
                "design": "OR1200",
                "config": {"seed": HOG_SEED_BASE + i},
                "timeout": HOG_TIMEOUT_SECONDS,
            },
        )
    return requests


async def run_mode(mode: str, requests: list) -> dict:
    if mode == "shards":
        config = ServiceConfig(shards=2, capacity=len(requests) + 4)
    else:
        config = ServiceConfig(workers=2, capacity=len(requests) + 4)
    service = PlacementService(config, runner=bench_runner)
    _STOP_SPINNING.clear()  # before start(): shard workers fork a copy
    await service.start()
    start = time.perf_counter()
    jobs = [service.submit(request) for request in requests]
    await asyncio.gather(*(service.wait(job.id) for job in jobs))
    wall = time.perf_counter() - start
    _STOP_SPINNING.set()  # release abandoned thread-mode hog spins
    await service.stop()

    shorts = [job for job in jobs if job.request["config"]["seed"] < HOG_SEED_BASE]
    hogs = [job for job in jobs if job not in shorts]
    latencies = sorted(job.finished_at - job.submitted_at for job in shorts)
    done = sum(job.state == "done" for job in shorts)
    return {
        "wall_seconds": wall,
        "jobs_per_sec": done / wall,
        "done": done,
        "hogs_timed_out": sum(job.state == "failed" for job in hogs),
        "p50_seconds": latencies[len(latencies) // 2],
        "p99_seconds": latencies[min(len(latencies) - 1,
                                     int(len(latencies) * 0.99))],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=200,
                        help="short jobs per mode")
    parser.add_argument("--hogs", type=int, default=6,
                        help="hog jobs per mode (spin long, short timeout)")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer short jobs",
    )
    parser.add_argument("--out", default=os.path.join(OUT_DIR, "BENCH_serve.json"))
    args = parser.parse_args(argv)
    if args.quick:
        args.jobs = min(args.jobs, 60)

    requests = build_requests(args.jobs, args.hogs)
    print(f"{args.jobs} short jobs + {args.hogs} hogs "
          f"({HOG_SPIN_SECONDS:g}s spin, {HOG_TIMEOUT_SECONDS:g}s timeout) "
          f"per mode")

    results = {}
    for mode in ("threads", "shards"):
        results[mode] = asyncio.run(run_mode(mode, requests))
        r = results[mode]
        print(
            f"  {mode:8s}: {r['wall_seconds']:.2f}s wall, "
            f"{r['jobs_per_sec']:.1f} jobs/s, "
            f"p50 {r['p50_seconds']:.3f}s, p99 {r['p99_seconds']:.3f}s, "
            f"{r['hogs_timed_out']}/{args.hogs} hogs timed out"
        )

    speedup = results["shards"]["jobs_per_sec"] / results["threads"]["jobs_per_sec"]
    print(f"process shards vs threads: {speedup:.2f}x jobs/sec")

    report = {
        "bench": "serve",
        "jobs": args.jobs,
        "hogs": args.hogs,
        "quick": args.quick,
        "thread_wall_seconds": round(results["threads"]["wall_seconds"], 3),
        "shard_wall_seconds": round(results["shards"]["wall_seconds"], 3),
        "thread_jobs_per_sec": round(results["threads"]["jobs_per_sec"], 2),
        "shard_jobs_per_sec": round(results["shards"]["jobs_per_sec"], 2),
        "shard_p50_seconds": round(results["shards"]["p50_seconds"], 4),
        "shard_p99_seconds": round(results["shards"]["p99_seconds"], 4),
        "shard_speedup": round(speedup, 2),
        "hogs_timed_out": results["shards"]["hogs_timed_out"],
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
