"""Inspect PUFFER's padding process on one design, round by round.

Runs the full flow, then uses the analysis utilities to show where the
padding went (summary + histogram), how each round contributed, and
renders the final placement with a congestion overlay as an SVG file.

Run:
    python examples/padding_deep_dive.py [design] [scale] [out.svg]
"""

import sys

from repro.benchgen import make_design, suite_names
from repro.core import (
    PufferPlacer,
    padding_histogram,
    round_trajectory,
    summarize_padding,
)
from repro.evalkit import save_placement_svg, utilization_maps
from repro.placer import PlacementParams
from repro.router import GlobalRouter


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "MEDIA_SUBSYS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.003
    svg_path = sys.argv[3] if len(sys.argv) > 3 else "padding_deep_dive.svg"
    if design_name not in suite_names():
        raise SystemExit(f"unknown design {design_name!r}")

    design = make_design(design_name, scale)
    placer = PufferPlacer(design, placement=PlacementParams(max_iters=900))
    result = placer.run()
    print(f"placed {design} in {result.runtime:.1f}s, "
          f"{result.padding_rounds} padding rounds\n")

    print("== round trajectory (Algorithm 1 bookkeeping) ==")
    print(f"{'round':>5}{'added':>10}{'total':>10}{'util':>8}{'padded':>8}{'recycled':>9}{'scaled':>8}")
    for row in round_trajectory(placer.optimizer.padding):
        print(
            f"{row['round']:>5}{row['added_area']:>10.1f}{row['total_area']:>10.1f}"
            f"{row['utilization']:>8.3f}{row['num_padded']:>8}{row['num_recycled']:>9}"
            f"{str(row['scaled']):>8}"
        )

    print("\n== final padding summary ==")
    summary = summarize_padding(placer.optimizer.padding, placer.optimizer.last_map)
    print(f"padded cells           : {summary.num_padded}")
    print(f"total padded area      : {summary.total_area:.1f}")
    print(f"white-space utilization: {summary.utilization:.3f}")
    print(f"mean / max pad width   : {summary.mean_pad:.2f} / {summary.max_pad:.2f}")
    print(f"padding-vs-congestion r: {summary.congestion_correlation:.3f}")

    print("\n== padding width histogram ==")
    for lo, hi, count in padding_histogram(placer.optimizer.padding, bins=8):
        bar = "#" * max(count * 40 // max(summary.num_padded, 1), 1)
        print(f"  [{lo:6.2f}, {hi:6.2f})  {count:5d}  {bar}")

    report = GlobalRouter(design).run()
    print(f"\nrouted: {report.summary()}")
    _, util_v = utilization_maps(report)
    save_placement_svg(design, svg_path, congestion=util_v, congestion_vmax=1.3)
    print(f"wrote placement + V-congestion overlay to {svg_path}")


if __name__ == "__main__":
    main()
