"""Quickstart: place a design with PUFFER and evaluate its routability.

Generates a small congested design, runs the full PUFFER flow (global
placement with multi-feature cell padding, then white-space-assisted
legalization), routes the result with the evaluation global router, and
prints the key metrics alongside a wirelength-driven baseline.

Run:
    python examples/quickstart.py [scale]
"""

import sys

from repro.baselines import place_wirelength_driven
from repro.benchgen import make_design
from repro.core import PufferPlacer
from repro.evalkit import convergence_chart
from repro.netlist import check_legal
from repro.placer import PlacementParams
from repro.router import GlobalRouter


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.004
    placement = PlacementParams(max_iters=900)

    print(f"== generating OR1200 at scale {scale:g} ==")
    baseline_design = make_design("OR1200", scale)
    print(baseline_design)

    print("\n== wirelength-driven baseline ==")
    baseline = place_wirelength_driven(baseline_design, placement)
    baseline_route = GlobalRouter(baseline_design).run()
    print(f"HPWL {baseline.hpwl:.4g}   {baseline_route.summary()}")

    print("\n== PUFFER ==")
    design = make_design("OR1200", scale)
    result = PufferPlacer(design, placement=placement).run()
    for event in result.events:
        print(f"  [{event.time:5.1f}s] {event.stage}: {event.detail}")
    report = GlobalRouter(design).run()
    legality = check_legal(design)
    print(f"legal: {legality.ok}")
    print(f"HPWL {result.hpwl:.4g}   {report.summary()}")
    print("\nengine convergence:")
    print(convergence_chart(result.global_place.history))

    print("\n== comparison ==")
    print(
        f"overflow (H+V): baseline {baseline_route.total_overflow:.3f}% "
        f"-> PUFFER {report.total_overflow:.3f}%"
    )
    print(
        f"wirelength cost: {100 * (result.hpwl / baseline.hpwl - 1):+.1f}% HPWL "
        f"for the routability gain"
    )


if __name__ == "__main__":
    main()
