"""Compare the three Table-II flows on one congested design.

Runs the commercial substitute, the RePlAce-like flow, and PUFFER on the
same benchmark (fresh copies each), routes every result, and prints a
one-design slice of Table II plus side-by-side congestion heatmaps — a
miniature of the paper's Fig. 5 workflow.

Run:
    python examples/compare_placers.py [design] [scale]
"""

import sys

from repro.baselines import place_commercial_like, place_replace_like
from repro.benchgen import make_design, suite_names
from repro.evalkit import place_puffer, side_by_side, utilization_maps
from repro.placer import PlacementParams
from repro.router import GlobalRouter


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "MEDIA_SUBSYS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.004
    if design_name not in suite_names():
        raise SystemExit(f"unknown design {design_name!r}; pick from {suite_names()}")
    placement = PlacementParams(max_iters=900)

    flows = [
        ("Commercial_Inn*", place_commercial_like),
        ("RePlAce-like", place_replace_like),
        ("PUFFER", place_puffer),
    ]
    print(f"{'placer':<18}{'HOF(%)':>8}{'VOF(%)':>8}{'WL':>12}{'RT(s)':>8}")
    v_maps = {}
    for name, flow in flows:
        design = make_design(design_name, scale)
        result = flow(design, placement)
        report = GlobalRouter(design).run()
        print(
            f"{name:<18}{report.hof:>8.2f}{report.vof:>8.2f}"
            f"{report.wirelength:>12.4g}{result.runtime:>8.1f}"
        )
        _, util_v = utilization_maps(report)
        v_maps[name] = util_v

    print(f"\nvertical routing utilization ({design_name}):")
    print(side_by_side(v_maps, vmax=1.5, width=26))


if __name__ == "__main__":
    main()
