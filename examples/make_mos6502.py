#!/usr/bin/env python3
"""Regenerate ``examples/mos6502_mapped.json`` deterministically.

The file is a synthetic 6502-class CPU netlist in Yosys ``write_json``
format: the real register/bus/ALU skeleton of a MOS 6502 (A/X/Y/SP/
PC/IR/P registers, an 8-bit ripple ALU, PC increment, address and data
output registers) with seeded-random combinational clouds standing in
for the decode ROM and control PLA, mapped onto sky130-style cell
names.  It is *not* a synthesized 6502 — it is a structurally honest
stand-in with the right port list, register set, and netlist shape for
exercising the Yosys frontend and the fixed-slot placement mode.

Run from the repository root:

    python examples/make_mos6502.py

The output is bit-identical across runs (seeded RNG, ordered dicts).
"""

from __future__ import annotations

import json
import os
import random

SEED = 6502
OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "mos6502_mapped.json")

# (type, input port names); output port is always the last single bit.
GATES = [
    ("sky130_fd_sc_hd__inv_1", ("A",), "Y", 4),
    ("sky130_fd_sc_hd__buf_1", ("A",), "X", 2),
    ("sky130_fd_sc_hd__nand2_1", ("A", "B"), "Y", 6),
    ("sky130_fd_sc_hd__nor2_1", ("A", "B"), "Y", 4),
    ("sky130_fd_sc_hd__and2_1", ("A", "B"), "X", 2),
    ("sky130_fd_sc_hd__or2_1", ("A", "B"), "X", 2),
    ("sky130_fd_sc_hd__nand3_1", ("A", "B", "C"), "Y", 2),
    ("sky130_fd_sc_hd__xor2_1", ("A", "B"), "X", 2),
    ("sky130_fd_sc_hd__xnor2_1", ("A", "B"), "Y", 1),
    ("sky130_fd_sc_hd__a21oi_1", ("A1", "A2", "B1"), "Y", 2),
    ("sky130_fd_sc_hd__o21ai_1", ("A1", "A2", "B1"), "Y", 2),
]


class Netlist:
    def __init__(self) -> None:
        self.rng = random.Random(SEED)
        self.next_bit = 2  # Yosys reserves low ids for constants
        self.ports = {}
        self.cells = {}
        self.netnames = {}
        self.cell_count = 0

    def bits(self, n: int) -> list:
        out = list(range(self.next_bit, self.next_bit + n))
        self.next_bit += n
        return out

    def input(self, name: str, width: int = 1) -> list:
        b = self.bits(width)
        self.ports[name] = {"direction": "input", "bits": b}
        self.netnames[name] = {"hide_name": 0, "bits": b, "attributes": {}}
        return b

    def output(self, name: str, bits: list) -> None:
        self.ports[name] = {"direction": "output", "bits": bits}
        self.netnames[name] = {"hide_name": 0, "bits": bits, "attributes": {}}

    def cell(self, ctype: str, conns: dict, dirs: dict) -> None:
        name = f"_{self.cell_count:05d}_"
        self.cell_count += 1
        self.cells[name] = {
            "hide_name": 1,
            "type": ctype,
            "parameters": {},
            "attributes": {},
            "port_directions": dirs,
            "connections": conns,
        }

    def gate(self, pool: list) -> int:
        ctype, ins, out_port, weight = self.rng.choices(
            GATES, weights=[g[3] for g in GATES]
        )[0]
        picks = [self.rng.choice(pool) for _ in ins]
        out = self.bits(1)[0]
        conns = {p: [b] for p, b in zip(ins, picks)}
        conns[out_port] = [out]
        dirs = {p: "input" for p in ins}
        dirs[out_port] = "output"
        self.cell(ctype, conns, dirs)
        return out

    def cloud(self, sources: list, n_gates: int, locality: int = 12) -> list:
        """Random logic cloud; returns its output bits (newest last)."""
        pool = list(sources)
        outs = []
        for _ in range(n_gates):
            window = pool[-max(locality, len(sources)) :]
            out = self.gate(window)
            pool.append(out)
            outs.append(out)
        return outs

    def dff(self, d: int, clk: int) -> int:
        q = self.bits(1)[0]
        self.cell(
            "sky130_fd_sc_hd__dfxtp_1",
            {"CLK": [clk], "D": [d], "Q": [q]},
            {"CLK": "input", "D": "input", "Q": "output"},
        )
        return q

    def register(self, name: str, d_bits: list, clk: int) -> list:
        q = [self.dff(d, clk) for d in d_bits]
        self.netnames[name] = {"hide_name": 0, "bits": q, "attributes": {}}
        return q

    def mux(self, a: int, b: int, s: int) -> int:
        out = self.bits(1)[0]
        self.cell(
            "sky130_fd_sc_hd__mux2_1",
            {"A0": [a], "A1": [b], "S": [s], "X": [out]},
            {"A0": "input", "A1": "input", "S": "input", "X": "output"},
        )
        return out

    def buf(self, a: int, drive: int = 2) -> int:
        out = self.bits(1)[0]
        self.cell(
            f"sky130_fd_sc_hd__buf_{drive}",
            {"A": [a], "X": [out]},
            {"A": "input", "X": "output"},
        )
        return out

    def full_adder(self, a: int, b: int, cin: int) -> tuple:
        s, cout = self.bits(2)
        self.cell(
            "sky130_fd_sc_hd__fa_1",
            {"A": [a], "B": [b], "CIN": [cin], "SUM": [s], "COUT": [cout]},
            {
                "A": "input",
                "B": "input",
                "CIN": "input",
                "SUM": "output",
                "COUT": "output",
            },
        )
        return s, cout


def build() -> dict:
    n = Netlist()
    clk = n.input("clk")[0]
    rst_n = n.input("rst_n")[0]
    rdy = n.input("rdy")[0]
    irq_n = n.input("irq_n")[0]
    nmi_n = n.input("nmi_n")[0]
    so_n = n.input("so_n")[0]
    data_in = n.input("data_in", 8)

    ctrl_in = [rst_n, rdy, irq_n, nmi_n, so_n]

    # Instruction register: data bus through a small input cloud.
    ir_d = n.cloud(data_in + [rdy], 16)[-8:]
    ir = n.register("IR", ir_d, clk)

    # Timing state (T0..T6 one-hot-ish: 3 encoded bits + decode).
    t_d = n.cloud(ir + ctrl_in, 10)[-3:]
    t = n.register("T", t_d, clk)

    # Decode / control PLA stand-in: the big cloud.
    control = n.cloud(ir + t + ctrl_in, 170, locality=16)

    # Processor status register P (7 architectural flags).
    p_d = n.cloud(control[-24:] + [so_n], 14)[-7:]
    p = n.register("P", p_d, clk)

    # ALU input muxes: operand A from registers, operand B from data bus.
    def bus(name: str, sources: list, selects: list) -> list:
        out = []
        for i in range(8):
            picked = sources[0][i]
            for src, sel in zip(sources[1:], selects):
                picked = n.mux(picked, src[i], sel)
            out.append(picked)
        n.netnames[name] = {"hide_name": 0, "bits": out, "attributes": {}}
        return out

    # Architectural registers (fed back through the ALU result bus below;
    # seed their D inputs with placeholder clouds first, then rewire via
    # muxes — structurally we just wire D from the result bus).
    a_reg = n.register("A", n.cloud(data_in + control[:8], 8)[-8:], clk)
    x_reg = n.register("X", n.cloud(data_in + control[8:16], 8)[-8:], clk)
    y_reg = n.register("Y", n.cloud(data_in + control[16:24], 8)[-8:], clk)
    sp_reg = n.register("SP", n.cloud(data_in + control[24:32], 8)[-8:], clk)

    sb_bus = bus("SB", [a_reg, x_reg, y_reg, sp_reg], control[32:35])
    db_bus = bus("DB", [data_in, a_reg], control[35:36])

    # 8-bit ripple-carry ALU.
    carry = p[0]
    alu = []
    for i in range(8):
        s, carry = n.full_adder(sb_bus[i], db_bus[i], carry)
        alu.append(s)
    n.netnames["ALU"] = {"hide_name": 0, "bits": alu, "attributes": {}}
    logic = [
        n.gate([sb_bus[i], db_bus[i], control[36 + i % 4]]) for i in range(8)
    ]
    alu_out = [n.mux(alu[i], logic[i], control[40]) for i in range(8)]

    return _finish(n, clk, control, alu_out, data_in, a_reg, p)


def _finish(n, clk, control, alu_out, data_in, a_reg, p):
    # Program counter: PCL/PCH with a half-adder increment chain.
    def half_adder(a: int, b: int) -> tuple:
        s, c = n.bits(2)
        n.cell(
            "sky130_fd_sc_hd__ha_1",
            {"A": [a], "B": [b], "SUM": [s], "COUT": [c]},
            {"A": "input", "B": "input", "SUM": "output", "COUT": "output"},
        )
        return s, c

    pcl_d = [n.mux(alu_out[i], data_in[i], control[44]) for i in range(8)]
    pcl = n.register("PCL", pcl_d, clk)
    carry = control[45]
    pcl_inc = []
    for i in range(8):
        s, carry = half_adder(pcl[i], carry)
        pcl_inc.append(s)
    pch_d = [n.mux(pcl_inc[i], data_in[i], control[46]) for i in range(8)]
    pch = n.register("PCH", pch_d, clk)

    # Address output registers ADL/ADH with source muxes.
    adl_d = [n.mux(pcl[i], alu_out[i], control[47]) for i in range(8)]
    adh_d = [n.mux(pch[i], data_in[i], control[48]) for i in range(8)]
    adl = n.register("ADL", adl_d, clk)
    adh = n.register("ADH", adh_d, clk)

    # Data output register.
    dor_d = [n.mux(a_reg[i], alu_out[i], control[49]) for i in range(8)]
    dor = n.register("DOR", dor_d, clk)

    # Output pads: buffered.
    n.output("addr", [n.buf(b, 4) for b in adl] + [n.buf(b, 4) for b in adh])
    n.output("data_out", [n.buf(b, 2) for b in dor])
    n.output("rw", [n.buf(n.gate(control[50:54]), 2)])
    n.output("sync", [n.buf(n.gate(control[54:58]), 2)])
    n.output("flags_dbg", [n.buf(b, 1) for b in p[:4]])

    module = {
        "attributes": {"top": 1, "src": "examples/make_mos6502.py"},
        "ports": n.ports,
        "cells": n.cells,
        "netnames": n.netnames,
    }
    return {
        "creator": "examples/make_mos6502.py (synthetic 6502-class netlist)",
        "modules": {"mos6502": module},
    }


def main() -> None:
    data = build()
    with open(OUT, "w") as f:
        json.dump(data, f, indent=1, sort_keys=False)
        f.write("\n")
    ncells = len(data["modules"]["mos6502"]["cells"])
    print(f"wrote {OUT}: {ncells} cells")


if __name__ == "__main__":
    main()
