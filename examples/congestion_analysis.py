"""Congestion-estimation deep dive on one design.

Shows the estimator's internals: the blockage-aware capacity map, the
probabilistic demand before and after detour-imitating expansion, the
per-cell padding features, and how well the estimate tracks the actual
global router — the accuracy argument of paper Sec. III-A.

Run:
    python examples/congestion_analysis.py [design] [scale]
"""

import sys

import numpy as np

from repro.benchgen import make_design, suite_names
from repro.core import (
    FEATURE_NAMES,
    CongestionEstimator,
    EstimatorParams,
    FeatureExtractor,
)
from repro.evalkit import ascii_heatmap, side_by_side
from repro.placer import GlobalPlacer, PlacementParams
from repro.router import GlobalRouter


def main() -> None:
    design_name = sys.argv[1] if len(sys.argv) > 1 else "MEDIA_SUBSYS"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.003
    if design_name not in suite_names():
        raise SystemExit(f"unknown design {design_name!r}")

    design = make_design(design_name, scale)
    print(f"placing {design} ...")
    GlobalPlacer(design, PlacementParams(max_iters=600)).run()

    print("\n== capacity (V direction; dark = blocked) ==")
    estimator = CongestionEstimator(design)
    grid = estimator.grid
    print(ascii_heatmap(grid.cap_v.max() - grid.cap_v, width=48))

    print("\n== estimated vs routed congestion ==")
    cmap, topologies, _ = estimator.estimate()
    no_expand = CongestionEstimator(design, EstimatorParams(expand=False))
    cmap_raw, _, _ = no_expand.estimate()
    report = GlobalRouter(design).run()

    est = (cmap.dmd_h + cmap.dmd_v)
    raw = (cmap_raw.dmd_h + cmap_raw.dmd_v)
    real = (report.demand.dmd_h + report.demand.dmd_v)
    print(side_by_side({"raw estimate": raw, "expanded": est, "router": real}, width=26))
    corr_raw = np.corrcoef(raw.ravel(), real.ravel())[0, 1]
    corr_exp = np.corrcoef(est.ravel(), real.ravel())[0, 1]
    print(f"correlation with router demand: raw {corr_raw:.4f}, expanded {corr_exp:.4f}")
    est_hof, est_vof = cmap.overflow_ratio()
    print(f"estimated overflow: HOF {est_hof:.2f}% VOF {est_vof:.2f}%")
    print(f"routed    overflow: HOF {report.hof:.2f}% VOF {report.vof:.2f}%")

    print("\n== padding features of the ten hottest cells ==")
    features = FeatureExtractor(design).extract(cmap, topologies)
    movable = design.movable & ~design.is_macro
    order = np.argsort(np.where(movable, features["local_cg"], -np.inf))[::-1][:10]
    header = f"{'cell':<10}" + "".join(f"{n:>12}" for n in FEATURE_NAMES)
    print(header)
    for cell in order:
        row = f"{design.cell_names[cell]:<10}" + "".join(
            f"{features[name][cell]:>12.3f}" for name in FEATURE_NAMES
        )
        print(row)


if __name__ == "__main__":
    main()
