"""Bayesian strategy exploration (paper Sec. III-C) end to end.

Follows the paper's protocol: explore the strategy-parameter space with
SMBO/TPE on a *small design with the routability problem*, then apply the
resulting (midpoint-of-range) configuration to larger benchmarks and
compare against the hand-set defaults.

The evaluation objective is the total overflow ratio (HOF + VOF) of a
full PUFFER placement scored by the global router — an expensive black
box, which is exactly why the paper uses SMBO instead of grid search.

Run (takes a few minutes):
    python examples/strategy_exploration.py [budget]
"""

import sys

from repro.benchgen import EXPLORATION_DESIGN, make_design
from repro.core import PufferPlacer, StrategyParams
from repro.core.exploration import make_placement_objective, strategy_exploration
from repro.placer import PlacementParams
from repro.router import GlobalRouter


def evaluate(design_name: str, scale: float, strategy: StrategyParams) -> float:
    design = make_design(design_name, scale)
    PufferPlacer(
        design, strategy=strategy, placement=PlacementParams(max_iters=700)
    ).run()
    return GlobalRouter(design).run().total_overflow


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    explore_scale = 0.008  # small but genuinely congested (Sec. III-C)
    evaluations = {"count": 0}
    base_objective = make_placement_objective(
        lambda: make_design(EXPLORATION_DESIGN, explore_scale),
        placement=PlacementParams(max_iters=700),
    )

    def objective(params: dict) -> float:
        evaluations["count"] += 1
        loss = base_objective(params)
        strategy = StrategyParams.from_dict(params)
        print(
            f"  eval {evaluations['count']:3d}: loss {loss:7.3f}  "
            f"(mu={strategy.mu:.2f} beta={strategy.beta:.2f} "
            f"tau={strategy.tau:.2f} xi={strategy.xi})"
        )
        return loss

    print(f"== exploring on {EXPLORATION_DESIGN}@{explore_scale:g} ==")
    report = strategy_exploration(
        objective,
        global_evals=budget,
        group_evals=max(budget // 3, 3),
        patience=max(budget // 3, 3),
        max_group_rounds=1,
        rng=7,
    )
    print(f"\nexploration done: {report.evaluations} evaluations")
    print(f"best objective seen: {report.best_loss:.3f}%")
    print("final configuration (range midpoints):")
    for name in ("mu", "beta", "tau", "eta", "pu_low", "pu_high", "xi", "theta"):
        print(f"  {name:10s} = {getattr(report.params, name)}")

    print("\n== transfer to larger designs ==")
    for name in ("MEDIA_SUBSYS", "CT_SCAN"):
        default_loss = evaluate(name, 0.003, StrategyParams())
        explored_loss = evaluate(name, 0.003, report.params)
        print(
            f"{name:<16} default {default_loss:7.3f}%   "
            f"explored {explored_loss:7.3f}%"
        )


if __name__ == "__main__":
    main()
