"""Tests for the bounded A* maze router."""

import numpy as np

from repro.router import maze_route


def uniform(n=12):
    return np.ones((n, n)), np.ones((n, n))


class TestMaze:
    def test_straight_path_on_uniform_costs(self):
        ch, cv = uniform()
        route = maze_route(1, 5, 8, 5, ch, cv, margin=2)
        h, v = route
        assert len(v) == 0
        assert len(h) == 8  # cells 1..8 at gy 5

    def test_same_cell(self):
        ch, cv = uniform()
        h, v = maze_route(3, 3, 3, 3, ch, cv, margin=2)
        assert len(h) == 0 and len(v) == 0

    def test_detours_around_wall(self):
        ch, cv = uniform()
        # Build an expensive horizontal wall at gy=5 between x=3..8.
        for gx in range(3, 9):
            ch[gx, 5] = 1000.0
            cv[gx, 5] = 1000.0
        route = maze_route(1, 5, 10, 5, ch, cv, margin=4)
        h, v = route
        cost = ch.ravel()[h].sum() + cv.ravel()[v].sum() if len(h) or len(v) else 0
        assert cost < 1000.0  # never crosses the wall
        assert len(v) > 0  # had to leave the row

    def test_route_cheaper_or_equal_to_l(self):
        rng = np.random.default_rng(0)
        ch = 1.0 + 5.0 * rng.random((12, 12))
        cv = 1.0 + 5.0 * rng.random((12, 12))
        from repro.router import l_route, route_cost

        route = maze_route(1, 1, 9, 8, ch, cv, margin=2)
        maze_cost = ch.ravel()[route[0]].sum() + cv.ravel()[route[1]].sum()
        for corner_first in (True, False):
            l = l_route(1, 1, 9, 8, 12, corner_first)
            # Maze is optimal within its window, so it can't be worse
            # than either L pattern (up to turn-charge accounting).
            assert maze_cost <= route_cost(l, ch.ravel(), cv.ravel()) + 1e-6

    def test_endpoints_covered(self):
        ch, cv = uniform()
        h, v = maze_route(2, 2, 7, 9, ch, cv, margin=2)
        cells = set(h.tolist()) | set(v.tolist())
        assert (2 * 12 + 2) in cells
        assert (7 * 12 + 9) in cells

    def test_window_too_small_still_connects(self):
        ch, cv = uniform()
        route = maze_route(0, 0, 11, 11, ch, cv, margin=0)
        assert route is not None

    def test_demand_accounting_matches_run_length(self):
        ch, cv = uniform()
        h, v = maze_route(0, 0, 5, 0, ch, cv, margin=1)
        assert len(h) == 6  # 6 cells passed horizontally
