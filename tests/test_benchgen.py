"""Tests for the synthetic benchmark generator and the Table-I suite."""

import numpy as np
import pytest

from repro.benchgen import (
    SUITE,
    GeneratorSpec,
    generate_design,
    make_design,
    spec_for,
    suite_names,
)
from repro.benchgen.suite import env_scale
from repro.netlist import validate_design


class TestGenerator:
    def test_deterministic(self, small_spec):
        a = generate_design(small_spec)
        b = generate_design(small_spec)
        assert a.cell_names == b.cell_names
        assert np.array_equal(a.net_start, b.net_start)
        assert np.allclose(a.x, b.x)

    def test_seed_changes_netlist(self, small_spec):
        import dataclasses

        other = dataclasses.replace(small_spec, seed=small_spec.seed + 1)
        a = generate_design(small_spec)
        b = generate_design(other)
        assert not np.array_equal(a.net_start, b.net_start) or not np.allclose(
            a.pin_dx, b.pin_dx
        )

    def test_counts_match_spec(self, small_design, small_spec):
        movable_std = int((small_design.movable & ~small_design.is_macro).sum())
        assert movable_std == small_spec.num_cells
        assert small_design.num_nets == small_spec.num_nets
        assert small_design.num_macros <= small_spec.num_macros

    def test_mean_degree_near_target(self, small_design, small_spec):
        mean = small_design.num_pins / small_design.num_nets
        assert mean == pytest.approx(small_spec.pins_per_net, rel=0.15)

    def test_validates(self, small_design):
        assert validate_design(small_design).ok

    def test_utilization_near_target(self, small_design, small_spec):
        fixed = ~small_design.movable
        fixed_area = float(
            (small_design.w[fixed] * small_design.h[fixed]).sum()
        )
        free = small_design.die.area - fixed_area
        util = small_design.movable_area / free
        assert util == pytest.approx(small_spec.utilization, rel=0.1)

    def test_macros_do_not_overlap(self, small_design):
        macros = np.flatnonzero(small_design.is_macro)
        rects = [small_design.cell_rect(int(m)) for m in macros]
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])

    def test_pg_blockages_present(self, small_design):
        assert len(small_design.blockages) > 0

    def test_zero_pg_density(self):
        spec = GeneratorSpec(
            "no_pg", 100, 150, 3.0, num_macros=0, pg_density=0.0, seed=1
        )
        d = generate_design(spec)
        assert len(d.blockages) == 0

    def test_ios_on_boundary(self, small_design):
        ios = [
            i
            for i, name in enumerate(small_design.cell_names)
            if name.startswith("IO_")
        ]
        die = small_design.die
        for i in ios:
            r = small_design.cell_rect(i)
            on_edge = (
                r.xlo <= die.xlo + 1e-9
                or r.xhi >= die.xhi - 1e-9
                or r.ylo <= die.ylo + 1e-9
                or r.yhi >= die.yhi - 1e-9
            )
            assert on_edge


class TestSuite:
    def test_ten_designs(self):
        assert len(suite_names()) == 10
        assert suite_names()[0] == "OR1200"

    def test_spec_scaling(self):
        spec = spec_for("OR1200", scale=0.01)
        assert spec.num_cells == 1220
        assert spec.num_nets == 1930

    def test_media_pair_shares_seed(self):
        a = spec_for("MEDIA_SUBSYS")
        b = spec_for("MEDIA_PG_MODIFY")
        assert a.seed == b.seed
        assert a.pg_density > b.pg_density

    def test_congested_designs_use_reduced_stack(self):
        assert spec_for("MEDIA_SUBSYS").reduced_stack
        assert spec_for("A53_ADB_WRAP").reduced_stack
        assert not spec_for("CT_TOP").reduced_stack

    def test_make_design_small_scale(self):
        d = make_design("ASIC_ENTITY", scale=0.002)
        assert d.name == "ASIC_ENTITY"
        assert validate_design(d).ok

    def test_pins_per_net_from_table(self):
        entry = next(e for e in SUITE if e.name == "CT_TOP")
        assert entry.pins_per_net == pytest.approx(4_091_000 / 1_272_000)

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.002")
        assert env_scale() == 0.002
        monkeypatch.setenv("REPRO_SCALE", "7")
        with pytest.raises(ValueError):
            env_scale()
        monkeypatch.delenv("REPRO_SCALE")
        assert env_scale(0.004) == 0.004
