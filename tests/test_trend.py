"""Tests for the ASCII trend charts."""


from repro.evalkit import convergence_chart, sparkline
from repro.placer.engine import IterationRecord


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5, 5, 5, 5])
        assert len(line) == 4
        assert len(set(line)) == 1

    def test_monotone_series_monotone_bars(self):
        line = sparkline(list(range(8)))
        assert list(line) == sorted(line)

    def test_downsamples_to_width(self):
        line = sparkline(range(1000), width=40)
        assert len(line) == 40

    def test_extremes_map_to_extreme_bars(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[-1] == "█"


class TestConvergenceChart:
    def _history(self, n=30):
        return [
            IterationRecord(
                iteration=i,
                hpwl=1000.0 + 10 * i,
                overflow=1.0 / (i + 1),
                penalty_factor=1e-6 * (1.05**i),
                gamma=8.0,
            )
            for i in range(n)
        ]

    def test_renders_three_series(self):
        chart = convergence_chart(self._history())
        assert "hpwl" in chart
        assert "overflow" in chart
        assert "penalty" in chart

    def test_empty_history(self):
        assert "empty" in convergence_chart([])

    def test_real_engine_history(self, small_design):
        from repro.placer import GlobalPlacer, PlacementParams

        result = GlobalPlacer(
            small_design, PlacementParams(max_iters=60, min_iters=5)
        ).run()
        chart = convergence_chart(result.history)
        assert f"iterations: {len(result.history)}" in chart
