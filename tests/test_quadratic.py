"""Tests for the quadratic (CG) initial placement."""

import numpy as np
import pytest

from repro.netlist import DesignBuilder, Rect, Technology
from repro.placer import GlobalPlacer, PlacementParams, initial_place_quadratic


class TestQuadraticSeed:
    def test_two_anchor_chain_lands_between(self):
        """A movable cell tied to two fixed anchors settles between them."""
        tech = Technology()
        b = DesignBuilder("q", tech, Rect(0, 0, 100, 100))
        left = b.add_cell("L", 1, 1, x=10, y=50, movable=False)
        right = b.add_cell("R", 1, 1, x=90, y=50, movable=False)
        mid = b.add_cell("m", 2, 8)
        n1 = b.add_net("n1")
        b.add_pin(left, n1)
        b.add_pin(mid, n1)
        n2 = b.add_net("n2")
        b.add_pin(mid, n2)
        b.add_pin(right, n2)
        d = b.build()
        initial_place_quadratic(d, PlacementParams(initial_noise=0.0))
        assert d.x[mid] == pytest.approx(50.0, abs=1.0)
        assert d.y[mid] == pytest.approx(50.0, abs=1.0)

    def test_reduces_hpwl_vs_random(self, small_design, rng):
        die = small_design.die
        mov = small_design.movable
        small_design.x[mov] = rng.uniform(die.xlo, die.xhi, int(mov.sum()))
        small_design.y[mov] = rng.uniform(die.ylo, die.yhi, int(mov.sum()))
        random_hpwl = small_design.hpwl()
        initial_place_quadratic(small_design)
        assert small_design.hpwl() < random_hpwl

    def test_positions_inside_die(self, small_design):
        initial_place_quadratic(small_design)
        die = small_design.die
        mov = small_design.movable
        assert (small_design.x[mov] - small_design.w[mov] / 2 >= die.xlo - 1e-9).all()
        assert (small_design.y[mov] + small_design.h[mov] / 2 <= die.yhi + 1e-9).all()

    def test_fixed_cells_untouched(self, small_design):
        fixed = ~small_design.movable
        snapshot = small_design.x[fixed].copy()
        initial_place_quadratic(small_design)
        assert np.array_equal(small_design.x[fixed], snapshot)

    def test_deterministic(self, small_design):
        initial_place_quadratic(small_design, PlacementParams(seed=5))
        x1 = small_design.x.copy()
        initial_place_quadratic(small_design, PlacementParams(seed=5))
        assert np.allclose(small_design.x, x1)

    def test_engine_accepts_quadratic_seed(self, small_design):
        params = PlacementParams(max_iters=150, initial_placer="quadratic")
        result = GlobalPlacer(small_design, params).run()
        assert result.hpwl > 0

    def test_unknown_initial_placer_rejected(self, small_design):
        with pytest.raises(ValueError):
            GlobalPlacer(small_design, PlacementParams(initial_placer="magic"))

    def test_design_with_no_movables(self):
        tech = Technology()
        b = DesignBuilder("f", tech, Rect(0, 0, 50, 50))
        b.add_cell("x", 2, 8, x=25, y=25, movable=False)
        d = b.build()
        initial_place_quadratic(d)  # must not raise
