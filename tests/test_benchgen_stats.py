"""Tests for the netlist-statistics module."""

import numpy as np
import pytest

from repro.benchgen import (
    NetlistStats,
    rent_exponent,
    wirelength_distribution,
)


class TestNetlistStats:
    def test_counts_match_design(self, small_design):
        stats = NetlistStats.of(small_design)
        assert stats.num_cells == small_design.num_cells
        assert stats.num_nets == small_design.num_nets
        assert stats.num_pins == small_design.num_pins

    def test_histogram_sums_to_net_count(self, small_design):
        stats = NetlistStats.of(small_design)
        assert sum(stats.degree_histogram.values()) == stats.num_nets

    def test_mean_degree_consistent(self, small_design):
        stats = NetlistStats.of(small_design)
        assert stats.mean_degree == pytest.approx(
            stats.num_pins / stats.num_nets
        )


class TestWirelengthDistribution:
    def test_percentiles_ordered(self, placed_small_design):
        dist = wirelength_distribution(placed_small_design)
        assert dist["p50"] <= dist["p90"] <= dist["p99"] <= dist["max"]
        assert dist["mean"] > 0


class TestRentExponent:
    def test_placed_design_in_industrial_range(self, placed_small_design):
        p = rent_exponent(placed_small_design)
        assert 0.3 < p < 0.9

    def test_random_placement_scores_higher(self, placed_small_design, rng):
        p_placed = rent_exponent(placed_small_design)
        x0, y0 = placed_small_design.snapshot_positions()
        mov = placed_small_design.movable
        die = placed_small_design.die
        placed_small_design.x[mov] = rng.uniform(die.xlo, die.xhi, int(mov.sum()))
        placed_small_design.y[mov] = rng.uniform(die.ylo, die.yhi, int(mov.sum()))
        p_random = rent_exponent(placed_small_design)
        placed_small_design.restore_positions(x0, y0)
        assert p_random > p_placed

    def test_tiny_design_returns_nan(self, tiny_design):
        assert np.isnan(rent_exponent(tiny_design))
