"""Tests for detailed placement: incremental HPWL, moves, legality."""

import numpy as np
import pytest

from repro.dplace import (
    DetailedPlacer,
    IncrementalHpwl,
    RowLayout,
    optimal_position,
)
from repro.legalizer import legalize_abacus
from repro.netlist import check_legal
from repro.placer import GlobalPlacer, PlacementParams


@pytest.fixture
def legal_design(small_design):
    GlobalPlacer(small_design, PlacementParams(max_iters=300)).run()
    legalize_abacus(small_design)
    return small_design


class TestIncrementalHpwl:
    def test_total_matches_design(self, legal_design):
        evaluator = IncrementalHpwl(legal_design)
        assert evaluator.total == pytest.approx(legal_design.hpwl(), rel=1e-9)

    def test_delta_matches_recompute(self, legal_design):
        evaluator = IncrementalHpwl(legal_design)
        cell = int(np.flatnonzero(legal_design.movable)[0])
        moves = {cell: (legal_design.x[cell] + 5.0, legal_design.y[cell])}
        delta = evaluator.delta(moves)
        x0, y0 = legal_design.snapshot_positions()
        legal_design.x[cell] += 5.0
        expected = legal_design.hpwl() - evaluator.total
        legal_design.restore_positions(x0, y0)
        assert delta == pytest.approx(expected, abs=1e-6)

    def test_commit_keeps_cache_consistent(self, legal_design):
        evaluator = IncrementalHpwl(legal_design)
        cells = np.flatnonzero(legal_design.movable)[:5]
        for cell in cells:
            cell = int(cell)
            evaluator.commit({cell: (legal_design.x[cell] + 1.0, legal_design.y[cell])})
        assert evaluator.verify()

    def test_two_cell_move_delta(self, legal_design):
        evaluator = IncrementalHpwl(legal_design)
        a, b = (int(c) for c in np.flatnonzero(legal_design.movable)[:2])
        moves = {
            a: (float(legal_design.x[b]), float(legal_design.y[b])),
            b: (float(legal_design.x[a]), float(legal_design.y[a])),
        }
        delta = evaluator.delta(moves)
        evaluator.commit(moves)
        assert evaluator.verify()
        assert evaluator.total == pytest.approx(legal_design.hpwl(), rel=1e-9)
        assert delta == pytest.approx(
            evaluator.total - (evaluator.total - delta), abs=1e-6
        )


class TestRowLayout:
    def test_invariants_on_legal_placement(self, legal_design):
        layout = RowLayout(legal_design)
        assert layout.check()

    def test_footprint_at_least_cell_width(self, legal_design):
        layout = RowLayout(legal_design)
        for cells in layout.rows():
            for cell in cells:
                assert layout.footprint(cell) >= legal_design.w[cell] - 1e-9

    def test_rows_sorted_by_x(self, legal_design):
        layout = RowLayout(legal_design)
        for cells in layout.rows():
            xs = [legal_design.x[c] for c in cells]
            assert xs == sorted(xs)

    def test_padded_footprints(self, legal_design):
        widths = legal_design.w.copy()
        movable = legal_design.movable & ~legal_design.is_macro
        widths[movable] += 1.0
        # Re-legalize with the padded widths, then build the layout.
        legalize_abacus(legal_design, widths=widths)
        layout = RowLayout(legal_design, widths)
        assert layout.check()

    def test_row_of_tracks_swaps(self, legal_design):
        layout = RowLayout(legal_design)
        rows = layout.rows()
        two_rows = [r for r in rows if len(r) >= 1]
        a = two_rows[0][0]
        b = two_rows[-1][-1]
        if a != b:
            row_a, row_b = layout.row_of(a), layout.row_of(b)
            layout.swap(a, b)
            assert layout.row_of(a) == row_b
            assert layout.row_of(b) == row_a


class TestOptimalPosition:
    def test_isolated_cell_stays(self, legal_design):
        # A cell with no pins has no pull.
        no_pin_cells = [
            c
            for c in np.flatnonzero(legal_design.movable)
            if len(legal_design.pins_of_cell(int(c))) == 0
        ]
        if no_pin_cells:
            cell = int(no_pin_cells[0])
            ox, oy = optimal_position(legal_design, cell)
            assert ox == legal_design.x[cell]
            assert oy == legal_design.y[cell]

    def test_two_pin_net_pulls_toward_neighbor(self, tiny_design):
        # In the chain, cell c0's optimal x is near its two neighbors.
        from repro.legalizer import legalize_tetris

        legalize_tetris(tiny_design)
        cell = 1  # "c0"
        ox, oy = optimal_position(tiny_design, cell)
        assert tiny_design.die.xlo <= ox <= tiny_design.die.xhi


class TestDetailedPlacer:
    def test_improves_or_preserves_hpwl(self, legal_design):
        before = legal_design.hpwl()
        result = DetailedPlacer(legal_design).run(passes=2)
        assert result.hpwl_after <= before + 1e-6
        assert result.hpwl_before == pytest.approx(before, rel=1e-9)

    def test_preserves_legality(self, legal_design):
        DetailedPlacer(legal_design).run(passes=2)
        assert check_legal(legal_design).ok

    def test_result_consistent_with_design(self, legal_design):
        result = DetailedPlacer(legal_design).run(passes=1)
        assert result.hpwl_after == pytest.approx(legal_design.hpwl(), rel=1e-9)

    def test_rejects_illegal_input(self, small_design):
        # Overlapping (unlegalized) placement must be rejected.
        GlobalPlacer(small_design, PlacementParams(max_iters=50)).run()
        with pytest.raises(ValueError):
            DetailedPlacer(small_design)

    def test_respects_padded_widths(self, legal_design):
        widths = legal_design.w.copy()
        movable = legal_design.movable & ~legal_design.is_macro
        widths[np.flatnonzero(movable)[::4]] += 2.0
        legalize_abacus(legal_design, widths=widths)
        DetailedPlacer(legal_design, widths=widths).run(passes=1)
        assert check_legal(legal_design).ok


class TestNetBoxVectorization:
    """The vectorized gather in ``_net_box`` must match the reference
    per-pin loop on randomized overrides (issue satellite)."""

    @staticmethod
    def reference_net_box(design, net, overrides):
        xs, ys = [], []
        for p in design.pins_of_net(net):
            cell = int(design.pin_cell[p])
            cx, cy = overrides.get(cell, (design.x[cell], design.y[cell]))
            xs.append(float(cx) + float(design.pin_dx[p]))
            ys.append(float(cy) + float(design.pin_dy[p]))
        return (min(xs), max(xs), min(ys), max(ys))

    def test_randomized_equivalence_with_loop(self, legal_design, rng):
        evaluator = IncrementalHpwl(legal_design)
        movable = np.flatnonzero(legal_design.movable)
        for _ in range(50):
            net = int(rng.integers(legal_design.num_nets))
            if len(legal_design.pins_of_net(net)) == 0:
                continue
            chosen = rng.choice(movable, size=int(rng.integers(0, 4)),
                                replace=False)
            overrides = {
                int(c): (
                    float(rng.uniform(0, legal_design.die.xhi)),
                    float(rng.uniform(0, legal_design.die.yhi)),
                )
                for c in chosen
            }
            expected = self.reference_net_box(legal_design, net, overrides)
            assert evaluator._net_box(net, overrides) == pytest.approx(
                expected, abs=1e-9
            )

    def test_override_of_foreign_cell_is_inert(self, legal_design):
        evaluator = IncrementalHpwl(legal_design)
        net = next(n for n in range(legal_design.num_nets)
                   if len(legal_design.pins_of_net(net := n)) > 0)
        on_net = {int(c) for c in legal_design.pin_cell[
            legal_design.pins_of_net(net)]}
        foreign = next(c for c in range(legal_design.num_cells)
                       if c not in on_net)
        clean = evaluator._net_box(net, {})
        assert evaluator._net_box(net, {foreign: (0.0, 0.0)}) == clean
