"""Integration tests for the global router."""

import pytest

from repro.placer import GlobalPlacer, PlacementParams
from repro.router import GlobalRouter, RouterParams


@pytest.fixture(scope="module")
def routed(placed_small_design):
    report = GlobalRouter(placed_small_design).run()
    return placed_small_design, report


class TestGlobalRouter:
    def test_report_fields(self, routed):
        _, report = routed
        assert report.hof >= 0 and report.vof >= 0
        assert report.wirelength > 0
        assert report.num_segments > 0
        assert report.runtime > 0

    def test_demand_positive_where_pins(self, routed):
        design, report = routed
        assert report.demand.dmd_h.sum() > 0
        assert report.demand.dmd_v.sum() > 0

    def test_wirelength_lower_bound(self, routed):
        """Routed WL can't be below HPWL divided by a topology factor."""
        design, report = routed
        assert report.wirelength > 0.3 * design.hpwl()

    def test_overflow_history_recorded(self, routed):
        _, report = routed
        assert len(report.overflow_history) >= 1

    def test_rrr_does_not_increase_overflow_much(self, routed):
        _, report = routed
        first = sum(report.overflow_history[0])
        last = sum(report.overflow_history[-1])
        assert last <= first + 1.0

    def test_deterministic(self, placed_small_design):
        a = GlobalRouter(placed_small_design).run()
        b = GlobalRouter(placed_small_design).run()
        assert a.hof == b.hof
        assert a.vof == b.vof
        assert a.wirelength == b.wirelength

    def test_pin_demand_disabled(self, placed_small_design):
        with_pins = GlobalRouter(
            placed_small_design, RouterParams(pin_demand=0.2, rrr_rounds=0)
        ).run()
        without = GlobalRouter(
            placed_small_design, RouterParams(pin_demand=0.0, rrr_rounds=0)
        ).run()
        assert with_pins.demand.dmd_h.sum() > without.demand.dmd_h.sum()

    def test_clustered_worse_than_spread(self, small_design):
        """A placement collapsed to the center must route worse."""
        GlobalPlacer(small_design, PlacementParams(max_iters=300)).run()
        spread = GlobalRouter(small_design).run()
        mov = small_design.movable
        small_design.x[mov] = small_design.die.center.x
        small_design.y[mov] = small_design.die.center.y
        clustered = GlobalRouter(small_design).run()
        assert (
            clustered.hof + clustered.vof
            > spread.hof + spread.vof
        )

    def test_via_count_positive(self, routed):
        _, report = routed
        # Any nontrivial design routes some L shapes, hence vias.
        assert report.via_count > 0
        assert report.via_count <= report.num_segments * 40

    def test_total_overflow_property(self, routed):
        _, report = routed
        assert report.total_overflow == pytest.approx(report.hof + report.vof)

    def test_summary_string(self, routed):
        _, report = routed
        text = report.summary()
        assert "HOF" in text and "VOF" in text and "WL" in text
