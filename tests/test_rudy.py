"""Tests for the RUDY congestion estimator."""

import numpy as np
import pytest

from repro.core import rudy_maps, rudy_overflow
from repro.netlist import DesignBuilder, Rect, Technology
from repro.router import GlobalRouter, build_grid


def two_pin(ax, ay, bx, by, die=160.0):
    tech = Technology()
    b = DesignBuilder("r", tech, Rect(0, 0, die, die))
    c0 = b.add_cell("a", 2, tech.row_height, x=ax, y=ay)
    c1 = b.add_cell("b", 2, tech.row_height, x=bx, y=by)
    n = b.add_net("n")
    b.add_pin(c0, n)
    b.add_pin(c1, n)
    return b.build()


class TestRudy:
    def test_horizontal_net_spreads_h_demand(self):
        d = two_pin(24, 72, 88, 72)
        dmd_h, dmd_v, grid = rudy_maps(d, pin_penalty=0.0)
        # One-row bbox: full unit H demand in every covered Gcell.
        assert dmd_h[1:6, 4].sum() == pytest.approx(5.0)
        # RUDY's bbox model still assigns a vertical share (1/nx each).
        assert dmd_v[1:6, 4].sum() == pytest.approx(1.0)

    def test_square_bbox_shares(self):
        d = two_pin(24, 24, 88, 88)
        dmd_h, dmd_v, _ = rudy_maps(d, pin_penalty=0.0)
        assert dmd_h[1:6, 1:6].max() == pytest.approx(1.0 / 5.0)
        assert dmd_h.sum() == pytest.approx(5.0)
        assert dmd_v.sum() == pytest.approx(5.0)

    def test_pin_penalty_added(self):
        d = two_pin(24, 24, 88, 88)
        base_h, _, _ = rudy_maps(d, pin_penalty=0.0)
        with_pins_h, _, _ = rudy_maps(d, pin_penalty=0.1)
        assert with_pins_h.sum() == pytest.approx(base_h.sum() + 0.2)

    def test_overflow_ratio_nonnegative(self, placed_small_design):
        hof, vof = rudy_overflow(placed_small_design)
        assert hof >= 0 and vof >= 0

    def test_reuses_provided_grid(self, placed_small_design):
        grid = build_grid(placed_small_design)
        dmd_h, _, returned = rudy_maps(placed_small_design, grid=grid)
        assert returned is grid
        assert dmd_h.shape == (grid.nx, grid.ny)

    def test_correlates_with_router(self, placed_small_design):
        dmd_h, dmd_v, _ = rudy_maps(placed_small_design)
        report = GlobalRouter(placed_small_design).run()
        est = (dmd_h + dmd_v).ravel()
        real = (report.demand.dmd_h + report.demand.dmd_v).ravel()
        assert np.corrcoef(est, real)[0, 1] > 0.6
