"""Public-API surface checks: exports exist and are importable."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.api",
    "repro.obs",
    "repro.netlist",
    "repro.benchgen",
    "repro.placer",
    "repro.rsmt",
    "repro.router",
    "repro.legalizer",
    "repro.tpe",
    "repro.core",
    "repro.baselines",
    "repro.dplace",
    "repro.runtime",
    "repro.evalkit",
    "repro.verify",
]


class TestPublicApi:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), name
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol}"

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_is_sorted(self, name):
        module = importlib.import_module(name)
        exported = list(module.__all__)
        assert exported == sorted(exported), name

    def test_every_submodule_importable(self):
        failures = []
        for m in pkgutil.walk_packages(repro.__path__, "repro."):
            if m.name.endswith("__main__"):
                continue
            try:
                importlib.import_module(m.name)
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append((m.name, repr(error)))
        assert not failures

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", PACKAGES)
    def test_public_callables_have_docstrings(self, name):
        module = importlib.import_module(name)
        missing = [
            symbol
            for symbol in module.__all__
            if callable(getattr(module, symbol))
            and not (getattr(module, symbol).__doc__ or "").strip()
        ]
        assert not missing, f"{name}: undocumented {missing}"
