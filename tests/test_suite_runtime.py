"""Determinism, caching, and resume tests for the runtime-backed suite."""

import pytest

from repro.baselines import place_replace_like, place_wirelength_driven
from repro.benchgen import make_design
from repro.evalkit import SuiteRunConfig, run_suite
from repro.evalkit.runner import default_flows, suite_cell_key
from repro.router import GlobalRouter
from repro.runtime import Journal, Telemetry

SCALE = 0.0015
BENCHMARKS = ["OR1200"]


def deterministic_fields(row):
    """Everything about a row except wall-clock runtime."""
    return (row.benchmark, row.placer, row.hof, row.vof, row.wirelength, row.hpwl)


@pytest.fixture(scope="module")
def config():
    return SuiteRunConfig(scale=SCALE, benchmarks=BENCHMARKS)


@pytest.fixture(scope="module")
def serial_rows(config):
    return run_suite(config)


class TestSerialDeterminism:
    def test_jobs1_matches_pre_subsystem_serial_loop(self, config, serial_rows):
        """run_suite(jobs=1) must equal the historical serial loop:
        benchmark-major iteration, fresh design per cell, route, score."""
        legacy = []
        for name in config.benchmarks:
            for flow_name, flow in default_flows().items():
                design = make_design(name, config.scale, seed=config.seed)
                flow(design, config.placement)
                report = GlobalRouter(design, config.router).run()
                legacy.append(
                    (name, flow_name, report.hof, report.vof,
                     report.wirelength, design.hpwl())
                )
        assert [deterministic_fields(r) for r in serial_rows] == legacy

    def test_explicit_seed_changes_design(self, config):
        base = make_design("OR1200", SCALE, seed=0)
        offset = make_design("OR1200", SCALE, seed=1)
        assert base.hpwl() != offset.hpwl()
        # And the cache key tracks the seed.
        seeded = SuiteRunConfig(scale=SCALE, benchmarks=BENCHMARKS, seed=1)
        assert suite_cell_key("OR1200", "PUFFER", config) != suite_cell_key(
            "OR1200", "PUFFER", seeded
        )


class TestParallelDeterminism:
    def test_jobs2_equals_jobs1(self, config, serial_rows):
        parallel = run_suite(config, jobs=2)
        assert [deterministic_fields(r) for r in parallel] == [
            deterministic_fields(r) for r in serial_rows
        ]

    def test_custom_picklable_flows_parallelize(self, config):
        flows = {"WL": place_wirelength_driven, "RePlAce": place_replace_like}
        serial = run_suite(config, flows=flows)
        parallel = run_suite(config, flows=flows, jobs=2)
        assert [deterministic_fields(r) for r in parallel] == [
            deterministic_fields(r) for r in serial
        ]

    def test_lambda_flows_degrade_inline(self, config):
        telemetry = Telemetry()
        flows = {"WL": lambda d, p: place_wirelength_driven(d, p)}
        rows = run_suite(config, flows=flows, jobs=2, telemetry=telemetry)
        assert len(rows) == 1
        assert telemetry.count("task_inline") == 1


class TestCacheAndResume:
    def test_cache_rerun_skips_work(self, config, serial_rows, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = Telemetry()
        first = run_suite(config, cache=cache_dir, telemetry=cold)
        assert cold.finished == len(first)
        warm = Telemetry()
        second = run_suite(config, cache=cache_dir, telemetry=warm)
        assert warm.finished == 0
        assert warm.cache_hits == len(first)
        assert [deterministic_fields(r) for r in second] == [
            deterministic_fields(r) for r in first
        ]

    def test_cache_invalidated_by_param_change(self, config, tmp_path):
        cache_dir = str(tmp_path / "cache")
        flows = {"WL": place_wirelength_driven}
        run_suite(config, flows=flows, cache=cache_dir)
        other = SuiteRunConfig(scale=SCALE, benchmarks=BENCHMARKS, seed=5)
        telemetry = Telemetry()
        run_suite(other, flows=flows, cache=cache_dir, telemetry=telemetry)
        assert telemetry.cache_hits == 0
        assert telemetry.finished == 1

    def test_resume_after_kill(self, config, serial_rows, tmp_path):
        """Simulate a mid-matrix kill by truncating the journal, then
        resume: the final table must match the uninterrupted run and
        only the missing cells may execute."""
        journal_path = str(tmp_path / "suite.journal")
        full = run_suite(config, journal=journal_path)
        journal = Journal(journal_path)
        records = journal.records()
        assert len(records) == len(full)
        # Keep only the first record, as if the run died after one cell.
        journal.clear()
        journal.append(records[0])
        telemetry = Telemetry()
        resumed = run_suite(
            config, journal=journal_path, resume=True, telemetry=telemetry
        )
        assert telemetry.count("journal_replayed") == 1
        assert telemetry.finished == len(full) - 1
        assert [deterministic_fields(r) for r in resumed] == [
            deterministic_fields(r) for r in full
        ]
        # The journal is complete again afterwards.
        assert len(Journal(journal_path).records()) == len(full)

    def test_fresh_run_clears_stale_journal(self, config, tmp_path):
        journal_path = str(tmp_path / "suite.journal")
        journal = Journal(journal_path)
        journal.append({"key": "stale", "row": {}})
        flows = {"WL": place_wirelength_driven}
        telemetry = Telemetry()
        run_suite(config, flows=flows, journal=journal_path, telemetry=telemetry)
        assert telemetry.count("journal_replayed") == 0
        keys = [r["key"] for r in Journal(journal_path).records()]
        assert "stale" not in keys
