"""Tests for the strategy exploration (Algorithms 2 and 3)."""


from repro.core import StrategyParams, default_space
from repro.core.exploration import (
    ExplorationReport,
    parameter_exploration,
    strategy_exploration,
)
from repro.tpe import Space, Uniform


def bowl_objective(params: dict) -> float:
    """Quadratic bowl over two strategy dimensions, rest ignored."""
    return (params.get("mu", 0) - 2.0) ** 2 + (params.get("tau", 0) - 0.3) ** 2


class TestParameterExploration:
    def test_shrinks_ranges(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0), Uniform("tau", 0.0, 1.0)])
        new_space, early, result = parameter_exploration(
            bowl_objective, space, ["mu", "tau"], {}, max_evals=30, patience=30, rng=rng
        )
        mu = new_space.dim("mu")
        assert mu.hi - mu.lo < 8.0
        assert mu.lo <= 2.0 + 2.0 and mu.hi >= 2.0 - 2.0

    def test_fixed_params_passed_through(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0), Uniform("tau", 0.0, 1.0)])
        seen = []

        def objective(params):
            seen.append(params)
            return bowl_objective(params)

        parameter_exploration(
            objective, space, ["mu"], {"tau": 0.5}, max_evals=5, patience=5, rng=rng
        )
        assert all(p["tau"] == 0.5 for p in seen)
        assert all("mu" in p for p in seen)

    def test_early_stop_flag(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0)])
        _, early, result = parameter_exploration(
            lambda p: 1.0, space, ["mu"], {}, max_evals=50, patience=4, rng=rng
        )
        assert early
        assert len(result.trials) <= 10


class TestStrategyExploration:
    def test_full_protocol_on_cheap_objective(self):
        report = strategy_exploration(
            bowl_objective,
            global_evals=12,
            group_evals=6,
            patience=4,
            max_group_rounds=2,
            rng=0,
        )
        assert isinstance(report, ExplorationReport)
        assert isinstance(report.params, StrategyParams)
        assert report.evaluations > 12
        # Best-seen loss must be a meaningful optimum of the bowl.
        assert report.best_loss < 1.0
        assert report.group_rounds >= 1
        # And the final midpoint configuration must be near the optimum
        # along the explored dimensions (ranges shrank around it).
        final = bowl_objective(
            {"mu": report.params.mu, "tau": report.params.tau}
        )
        assert final < bowl_objective(default_space().midpoint()) + 1.0

    def test_final_params_valid(self):
        report = strategy_exploration(
            bowl_objective, global_evals=8, group_evals=4, patience=3, rng=1
        )
        params = report.params
        assert params.pu_low <= params.pu_high + 1e-9
        assert 1 <= params.xi <= 10
        assert params.legalizer in ("abacus", "tetris")

    def test_history_covers_groups(self):
        report = strategy_exploration(
            bowl_objective, global_evals=8, group_evals=4, patience=3, rng=2
        )
        stages = [h[0] for h in report.history]
        assert stages[0] == "global"
        assert "formula" in stages
        assert "schedule" in stages
