"""Tests for the strategy exploration (Algorithms 2 and 3)."""


from repro.core import StrategyParams, default_space
from repro.core.exploration import (
    FAILED_TRIAL_LOSS,
    ExplorationReport,
    make_batch_evaluator,
    parameter_exploration,
    strategy_exploration,
)
from repro.runtime import Journal
from repro.tpe import Space, Uniform


def bowl_objective(params: dict) -> float:
    """Quadratic bowl over two strategy dimensions, rest ignored."""
    return (params.get("mu", 0) - 2.0) ** 2 + (params.get("tau", 0) - 0.3) ** 2


class TestParameterExploration:
    def test_shrinks_ranges(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0), Uniform("tau", 0.0, 1.0)])
        new_space, early, result = parameter_exploration(
            bowl_objective, space, ["mu", "tau"], {}, max_evals=30, patience=30, rng=rng
        )
        mu = new_space.dim("mu")
        assert mu.hi - mu.lo < 8.0
        assert mu.lo <= 2.0 + 2.0 and mu.hi >= 2.0 - 2.0

    def test_fixed_params_passed_through(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0), Uniform("tau", 0.0, 1.0)])
        seen = []

        def objective(params):
            seen.append(params)
            return bowl_objective(params)

        parameter_exploration(
            objective, space, ["mu"], {"tau": 0.5}, max_evals=5, patience=5, rng=rng
        )
        assert all(p["tau"] == 0.5 for p in seen)
        assert all("mu" in p for p in seen)

    def test_early_stop_flag(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0)])
        _, early, result = parameter_exploration(
            lambda p: 1.0, space, ["mu"], {}, max_evals=50, patience=4, rng=rng
        )
        assert early
        assert len(result.trials) <= 10


class TestStrategyExploration:
    def test_full_protocol_on_cheap_objective(self):
        report = strategy_exploration(
            bowl_objective,
            global_evals=12,
            group_evals=6,
            patience=4,
            max_group_rounds=2,
            rng=0,
        )
        assert isinstance(report, ExplorationReport)
        assert isinstance(report.params, StrategyParams)
        assert report.evaluations > 12
        # Best-seen loss must be a meaningful optimum of the bowl.
        assert report.best_loss < 1.0
        assert report.group_rounds >= 1
        # And the final midpoint configuration must be near the optimum
        # along the explored dimensions (ranges shrank around it).
        final = bowl_objective(
            {"mu": report.params.mu, "tau": report.params.tau}
        )
        assert final < bowl_objective(default_space().midpoint()) + 1.0

    def test_final_params_valid(self):
        report = strategy_exploration(
            bowl_objective, global_evals=8, group_evals=4, patience=3, rng=1
        )
        params = report.params
        assert params.pu_low <= params.pu_high + 1e-9
        assert 1 <= params.xi <= 10
        assert params.legalizer in ("abacus", "tetris")

    def test_history_covers_groups(self):
        report = strategy_exploration(
            bowl_objective, global_evals=8, group_evals=4, patience=3, rng=2
        )
        stages = [h[0] for h in report.history]
        assert stages[0] == "global"
        assert "formula" in stages
        assert "schedule" in stages


class _StructuredObjective:
    """Minimal PlacementObjective stand-in with a poisonable raw eval."""

    def __init__(self, poison=()):
        self.poison = set(poison)
        self.raw_calls = []

    def evaluate_raw(self, params):
        self.raw_calls.append(dict(params))
        if params["mu"] in self.poison:
            raise RuntimeError("solver exploded")
        return (params["mu"] * 0.1, 100.0 + params["mu"])

    def loss_from_raw(self, raw):
        return raw[0]

    def cache_key(self, params):
        return f"mu={params['mu']}"


class TestBatchEvaluator:
    def test_failed_trial_scores_penalty_not_abort(self):
        objective = _StructuredObjective(poison={3.0})
        evaluate = make_batch_evaluator(objective)
        losses = evaluate([{"mu": 1.0}, {"mu": 3.0}, {"mu": 2.0}])
        assert losses[0] == objective.loss_from_raw((0.1, 101.0))
        assert losses[1] == FAILED_TRIAL_LOSS
        assert losses[2] == objective.loss_from_raw((0.2, 102.0))
        details = evaluate.last_details
        assert details[0]["overflow"] == 0.1 and not details[0]["cached"]
        assert details[1]["failed"] and "solver exploded" in details[1]["error"]
        assert "failed" not in details[2]

    def test_failed_trial_journaled(self, tmp_path):
        """The bugfix: a raising trial leaves a durable ``failed`` record."""
        journal = Journal(tmp_path / "explore.jsonl")
        objective = _StructuredObjective(poison={3.0})
        evaluate = make_batch_evaluator(objective, journal=journal)
        evaluate([{"mu": 3.0}, {"mu": 1.0}])
        records = {r["key"]: r for r in journal.records()}
        assert records["mu=3.0"]["failed"].startswith("RuntimeError")
        assert records["mu=1.0"]["overflow"] == 0.1
        assert "wirelength" in records["mu=1.0"]

    def test_resume_replays_failure_without_rerunning(self, tmp_path):
        """--resume must not re-run poisoned params on every restart."""
        journal = Journal(tmp_path / "explore.jsonl")
        first = _StructuredObjective(poison={3.0})
        make_batch_evaluator(first, journal=journal)([{"mu": 3.0}, {"mu": 1.0}])

        fresh = _StructuredObjective(poison={3.0})
        evaluate = make_batch_evaluator(fresh, journal=Journal(journal.path))
        losses = evaluate([{"mu": 3.0}, {"mu": 1.0}, {"mu": 2.0}])
        assert losses[0] == FAILED_TRIAL_LOSS
        assert losses[1] == fresh.loss_from_raw((0.1, 101.0))
        # Only the genuinely new params hit the objective.
        assert [p["mu"] for p in fresh.raw_calls] == [2.0]
        details = evaluate.last_details
        assert details[0]["cached"] and details[0]["failed"]
        assert details[1]["cached"]

    def test_failure_memoized_within_run(self):
        objective = _StructuredObjective(poison={3.0})
        evaluate = make_batch_evaluator(objective)
        evaluate([{"mu": 3.0}])
        evaluate([{"mu": 3.0}])
        # No journal: in-run memoization does not apply, both evaluate.
        assert len(objective.raw_calls) == 2

    def test_unstructured_objective_maps_directly(self):
        evaluate = make_batch_evaluator(lambda p: p["mu"] ** 2)
        assert evaluate([{"mu": 2.0}, {"mu": 3.0}]) == [4.0, 9.0]
        assert evaluate.last_details == [None, None]


class TestWarmStart:
    def test_priors_seed_sampler_without_spending_evaluations(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0), Uniform("tau", 0.0, 1.0)])
        priors = [({"mu": 2.0, "tau": 0.3}, 0.0), ({"mu": 7.5, "tau": 0.9}, 50.0)]
        _, _, result = parameter_exploration(
            bowl_objective, space, ["mu", "tau"], {}, max_evals=10,
            patience=10, rng=rng, warm_start=priors,
        )
        # Budget counts only this run's own evaluations.
        assert len(result.trials) <= 10

    def test_out_of_range_priors_clipped(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0)])
        seen = []

        def objective(params):
            seen.append(params)
            return bowl_objective(params)

        parameter_exploration(
            objective, space, ["mu"], {}, max_evals=8, patience=8,
            rng=rng, warm_start=[({"mu": 500.0}, 1.0), ({"mu": -3.0}, 2.0)],
        )
        # Clipped priors must not drag suggestions outside the space.
        assert all(0.0 <= p["mu"] <= 8.0 for p in seen)

    def test_priors_missing_a_dimension_are_skipped(self, rng):
        space = Space([Uniform("mu", 0.0, 8.0), Uniform("tau", 0.0, 1.0)])
        _, _, result = parameter_exploration(
            bowl_objective, space, ["mu", "tau"], {}, max_evals=6,
            patience=6, rng=rng, warm_start=[({"mu": 2.0}, 0.0)] * 40,
        )
        # A flood of partial priors neither crashes nor eats the budget.
        assert len(result.trials) >= 1
