"""Tests for the RSMT engine: exactness, bounds, and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rsmt import Topology, build_rsmt, manhattan_matrix, rmst_edges, tree_length

coords = st.floats(0, 1000, allow_nan=False, allow_infinity=False)


def point_sets(min_size=2, max_size=12):
    return st.lists(
        st.tuples(coords, coords), min_size=min_size, max_size=max_size
    )


class TestRMST:
    def test_two_points(self):
        edges = rmst_edges(np.array([0.0, 3.0]), np.array([0.0, 4.0]))
        assert len(edges) == 1
        assert tree_length(np.array([0.0, 3.0]), np.array([0.0, 4.0]), edges) == 7.0

    def test_spanning(self, rng):
        n = 15
        x = rng.uniform(0, 100, n)
        y = rng.uniform(0, 100, n)
        edges = rmst_edges(x, y)
        assert len(edges) == n - 1
        # Union-find connectivity check.
        parent = list(range(n))

        def find(a):
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for a, b in edges:
            parent[find(int(a))] = find(int(b))
        assert len({find(i) for i in range(n)}) == 1

    def test_duplicate_points_ok(self):
        x = np.array([1.0, 1.0, 5.0])
        y = np.array([2.0, 2.0, 2.0])
        edges = rmst_edges(x, y)
        assert len(edges) == 2
        assert tree_length(x, y, edges) == pytest.approx(4.0)

    def test_manhattan_matrix_symmetric(self, rng):
        x = rng.uniform(0, 10, 6)
        y = rng.uniform(0, 10, 6)
        d = manhattan_matrix(x, y)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0)

    @given(point_sets(min_size=3, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_mst_minimality_vs_random_tree(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        edges = rmst_edges(x, y)
        mst_len = tree_length(x, y, edges)
        # A star from vertex 0 is a spanning tree; MST must not exceed it.
        star_len = sum(abs(x[0] - x[i]) + abs(y[0] - y[i]) for i in range(1, len(x)))
        assert mst_len <= star_len + 1e-9


class TestRSMT:
    def test_single_point(self):
        t = build_rsmt(np.array([5.0]), np.array([5.0]))
        assert t.num_points == 1
        assert t.num_segments == 0

    def test_two_pins(self):
        t = build_rsmt(np.array([0.0, 10.0]), np.array([0.0, 5.0]))
        assert t.wirelength() == pytest.approx(15.0)

    def test_three_pin_median_exact(self):
        # RSMT of 3 pins = distances to the median point.
        x = np.array([0.0, 10.0, 5.0])
        y = np.array([0.0, 0.0, 8.0])
        t = build_rsmt(x, y)
        assert t.wirelength() == pytest.approx(18.0)

    def test_four_corners(self):
        # Unit-square corners scaled: RSMT = 3 * side.
        s = 10.0
        x = np.array([0.0, s, 0.0, s])
        y = np.array([0.0, 0.0, s, s])
        t = build_rsmt(x, y)
        assert t.wirelength() == pytest.approx(3 * s)

    def test_collinear_points(self):
        x = np.array([0.0, 5.0, 10.0, 2.0])
        y = np.zeros(4)
        t = build_rsmt(x, y)
        assert t.wirelength() == pytest.approx(10.0)

    @given(point_sets(min_size=2, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_validity(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        t = build_rsmt(x, y)
        t.validate()
        rmst_len = tree_length(x, y, rmst_edges(x, y))
        lower = (x.max() - x.min()) + (y.max() - y.min())
        assert t.wirelength() <= rmst_len + 1e-6
        assert t.wirelength() >= lower - 1e-6

    @given(point_sets(min_size=3, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_pins_preserved(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        t = build_rsmt(x, y)
        # Every input pin must appear among the pin-kind points.
        pin_pts = {(t.x[i], t.y[i]) for i in range(t.num_points) if t.is_pin[i]}
        for px, py in zip(x, y):
            assert (px, py) in pin_pts

    @given(point_sets(min_size=4, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_steiner_points_have_degree_3plus(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        t = build_rsmt(x, y)
        for i in range(t.num_points):
            if not t.is_pin[i]:
                assert t.degree_of(i) >= 3

    def test_large_net_uses_plain_rmst(self, rng):
        n = 80
        x = rng.uniform(0, 100, n)
        y = rng.uniform(0, 100, n)
        t = build_rsmt(x, y, steinerize_max_degree=50)
        assert t.num_points == n  # no Steiner points added
        assert t.num_segments == n - 1


class TestTopology:
    def test_segment_kinds(self):
        t = Topology(
            x=np.array([0.0, 5.0, 5.0]),
            y=np.array([0.0, 0.0, 7.0]),
            is_pin=np.array([True, True, True]),
            edges=np.array([[0, 1], [1, 2], [0, 2]]),
        )
        kinds = t.segment_kinds()
        assert list(kinds) == [0, 0, 1]  # I, I, L

    def test_validate_rejects_self_loop(self):
        t = Topology(
            x=np.array([0.0, 1.0]),
            y=np.array([0.0, 1.0]),
            is_pin=np.array([True, True]),
            edges=np.array([[0, 0]]),
        )
        with pytest.raises(ValueError):
            t.validate()

    def test_validate_rejects_bad_index(self):
        t = Topology(
            x=np.array([0.0, 1.0]),
            y=np.array([0.0, 1.0]),
            is_pin=np.array([True, True]),
            edges=np.array([[0, 5]]),
        )
        with pytest.raises(ValueError):
            t.validate()
