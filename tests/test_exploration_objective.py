"""Tests for the packaged exploration objective."""

import pytest

from repro.benchgen import make_design
from repro.core import StrategyParams, default_space
from repro.core.exploration import make_placement_objective
from repro.placer import PlacementParams


@pytest.fixture(scope="module")
def objective():
    return make_placement_objective(
        lambda: make_design("OR1200", 0.002),
        placement=PlacementParams(max_iters=250),
    )


class TestPlacementObjective:
    def test_returns_finite_loss(self, objective):
        params = default_space().midpoint()
        loss = objective(params)
        assert loss == loss  # not NaN
        assert loss < 1e6

    def test_wirelength_tiebreak_orders_overpadding(self):
        """When overflow is zero everywhere, an over-padding config must
        score worse than a lean one via the wirelength term."""
        objective = make_placement_objective(
            lambda: make_design("ASIC_ENTITY", 0.002),
            placement=PlacementParams(max_iters=250),
            wl_weight=0.05,
        )
        lean = {
            f: getattr(StrategyParams(), f)
            for f in ("mu", "beta", "pu_low", "pu_high")
        }
        fat = dict(lean)
        fat.update(beta=1.0, mu=4.0, pu_low=0.3, pu_high=0.6)
        loss_lean = objective(lean)
        loss_fat = objective(fat)
        assert loss_fat > loss_lean

    def test_deterministic_given_params(self, objective):
        params = default_space().midpoint()
        assert objective(params) == objective(params)

    def test_choice_midpoint_override(self):
        """Exploration must carry the best-observed categorical value
        into the final configuration, not the arbitrary 'midpoint'."""
        from repro.core.exploration import strategy_exploration

        def loss(params):
            # abacus is strictly better in this synthetic objective.
            return (0.0 if params["legalizer"] == "abacus" else 5.0) + (
                params["mu"] - 2.0
            ) ** 2

        report = strategy_exploration(
            loss, global_evals=15, group_evals=5, patience=5,
            max_group_rounds=1, rng=3,
        )
        assert report.params.legalizer == "abacus"
