"""Tests for the unified run facade (repro.api)."""

import pickle

import pytest

from repro import api, obs
from repro.core import PufferResult, StrategyParams
from repro.evalkit import default_flows, place_puffer, run_benchmark
from repro.evalkit.runner import SuiteRunConfig, _default_flow_cell


class TestFlowRegistry:
    def test_canonical_names(self):
        assert api.FLOWS == ("commercial", "puffer", "replace", "wirelength")

    def test_aliases_resolve_to_canonical(self):
        for alias, canonical in api.FLOW_ALIASES.items():
            name, fn = api.resolve_flow(alias)
            assert name == canonical
            assert callable(fn)

    def test_unknown_flow_raises_typed_error(self):
        with pytest.raises(api.UnknownFlowError) as info:
            api.resolve_flow("typo")
        assert info.value.flow == "typo"
        assert info.value.available == api.FLOWS
        assert "typo" in str(info.value)
        assert "puffer" in str(info.value)

    def test_unknown_flow_is_a_value_error(self):
        with pytest.raises(ValueError):
            api.resolve_flow("typo")

    def test_callable_passes_through(self):
        def my_flow(design, placement):
            return None

        name, fn = api.resolve_flow(my_flow)
        assert name == "my_flow"
        assert fn is my_flow

    def test_strategy_binds_into_puffer_flow(self):
        strategy = StrategyParams(mu=2.5)
        _, fn = api.resolve_flow("puffer", strategy=strategy)
        assert fn.keywords["strategy"] is strategy

    def test_resolved_flows_are_picklable(self):
        for alias in api.TABLE2_COLUMNS:
            _, fn = api.resolve_flow(alias, strategy=StrategyParams())
            pickle.loads(pickle.dumps(fn))

    def test_table2_flows_in_paper_order(self):
        flows = api.table2_flows()
        assert tuple(flows) == api.TABLE2_COLUMNS


class TestRun:
    def test_run_by_name_places_and_reports(self):
        result = api.run("OR1200", config=api.RunConfig(scale=0.002))
        assert result.flow == "puffer"
        assert isinstance(result.flow_result, PufferResult)
        assert result.hpwl > 0
        assert result.place_seconds > 0
        assert result.route_report is None
        assert result.legality is None

    def test_run_with_route_and_legality(self):
        result = api.run(
            "OR1200",
            config=api.RunConfig(scale=0.002),
            route=True,
            verify_legal=True,
        )
        assert result.route_report.wirelength > 0
        assert result.legality.ok

    def test_run_accepts_design_instance(self):
        from repro.benchgen import make_design

        design = make_design("OR1200", scale=0.002)
        result = api.run(design, flow="wirelength")
        assert result.design is design
        assert result.flow == "wirelength"

    def test_run_writes_trace(self, tmp_path):
        path = tmp_path / "run.jsonl"
        api.run("OR1200", config=api.RunConfig(scale=0.002), trace=path)
        names = {r["name"] for r in obs.read_trace(path) if r["type"] == "span"}
        assert "api/run" in names
        assert "gp/iteration" in names
        assert not obs.is_enabled()


class TestLegacyWrappersDelegate:
    def test_place_puffer_still_works(self):
        from repro.benchgen import make_design

        design = make_design("OR1200", scale=0.002)
        result = place_puffer(design)
        assert isinstance(result, PufferResult)

    def test_default_flows_are_table2_columns(self):
        assert tuple(default_flows()) == api.TABLE2_COLUMNS

    def test_run_benchmark_returns_metrics_row(self):
        config = SuiteRunConfig(scale=0.002)
        flow = default_flows()["PUFFER"]
        row = run_benchmark("OR1200", flow, config, "PUFFER")
        assert row.benchmark == "OR1200"
        assert row.placer == "PUFFER"
        assert row.hpwl > 0
        assert row.runtime > 0

    def test_default_flow_cell_unknown_name(self):
        with pytest.raises(api.UnknownFlowError, match="Bogus"):
            _default_flow_cell("OR1200", "Bogus", SuiteRunConfig(scale=0.002), None)


class TestRouteResult:
    @pytest.fixture(scope="class")
    def routed(self):
        from repro.benchgen import make_design

        design = make_design("OR1200", scale=0.002)
        api.run(design, flow="wirelength")
        return api.route(design)

    def test_route_returns_typed_result(self, routed):
        assert isinstance(routed, api.RouteResult)
        assert routed.route_seconds > 0
        assert routed.route_report.wirelength > 0

    def test_route_summary_is_json_safe(self, routed):
        import json

        summary = routed.to_summary()
        json.dumps(summary)
        assert summary["design"] == "OR1200"
        assert summary["route"]["wirelength"] == pytest.approx(
            routed.route_report.wirelength
        )
        assert summary["route"]["total_overflow"] == pytest.approx(
            routed.route_report.total_overflow
        )

    def test_old_return_shape_shims_with_deprecation(self, routed):
        with pytest.warns(DeprecationWarning, match="route_report"):
            assert routed.hof == routed.route_report.hof
        with pytest.warns(DeprecationWarning):
            assert "HOF" in routed.summary()

    def test_missing_attribute_still_raises(self, routed):
        with pytest.raises(AttributeError):
            routed.not_a_metric


class TestRunSummary:
    def test_run_summary_is_json_safe(self):
        import json

        result = api.run(
            "OR1200", config=api.RunConfig(scale=0.002), verify_legal=True
        )
        summary = result.to_summary()
        json.dumps(summary)
        assert summary["design"] == "OR1200"
        assert summary["flow"] == "puffer"
        assert summary["hpwl"] == pytest.approx(result.hpwl)
        assert summary["legal"] is True
        assert summary["route"] is None
        assert summary["verify"] is None


class TestExploreSeedNaming:
    @pytest.fixture()
    def capture_exploration(self, monkeypatch):
        from repro.core import exploration

        calls = {}

        def fake_exploration(objective, **kwargs):
            calls.update(kwargs)
            return "report"

        monkeypatch.setattr(exploration, "strategy_exploration", fake_exploration)
        return calls

    def test_seed_keyword_threads_through(self, capture_exploration):
        assert api.explore("OR1200", seed=11) == "report"
        assert capture_exploration["rng"] == 11

    def test_rng_keyword_deprecated_but_works(self, capture_exploration):
        with pytest.warns(DeprecationWarning, match="seed="):
            api.explore("OR1200", rng=13)
        assert capture_exploration["rng"] == 13

    def test_default_seed_matches_old_rng_default(self, capture_exploration):
        api.explore("OR1200")
        assert capture_exploration["rng"] == 7


class TestSuiteAndExplore:
    def test_suite_facade_matches_runner(self, tmp_path):
        rows = api.suite(
            api.RunConfig(scale=0.002),
            benchmarks=["OR1200"],
            trace=tmp_path / "suite.jsonl",
        )
        assert [r.placer for r in rows] == list(api.TABLE2_COLUMNS)
        records = obs.read_trace(tmp_path / "suite.jsonl")
        assert sum(1 for r in records if r["name"] == "api/run") == 3

    def test_explore_traces_tpe_trials(self, tmp_path):
        path = tmp_path / "explore.jsonl"
        report = api.explore("OR1200", scale=0.0015, budget=3, trace=path)
        assert report.evaluations > 0
        records = obs.read_trace(path)
        trial_spans = [
            r for r in records if r["type"] == "span" and r["name"] == "tpe/trial"
        ]
        assert trial_spans
        stages = {
            r["attrs"]["stage"]
            for r in records
            if r["type"] == "span" and r["name"] == "explore/stage"
        }
        assert "global" in stages
