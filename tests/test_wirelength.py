"""Tests for the WA wirelength model: accuracy and gradient correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placer import WirelengthModel, gamma_schedule


class TestHPWL:
    def test_matches_design_hpwl(self, small_design):
        model = WirelengthModel(small_design)
        assert model.hpwl(small_design.x, small_design.y) == pytest.approx(
            small_design.hpwl()
        )


class TestWAModel:
    def test_wa_upper_bounds_hpwl(self, small_design):
        """WA is a smooth underestimate of HPWL that tightens as gamma -> 0."""
        model = WirelengthModel(small_design)
        hpwl = model.hpwl(small_design.x, small_design.y)
        wa_loose, _, _ = model.wa_and_grad(small_design.x, small_design.y, gamma=10.0)
        wa_tight, _, _ = model.wa_and_grad(small_design.x, small_design.y, gamma=0.1)
        assert wa_loose <= hpwl + 1e-6
        assert abs(wa_tight - hpwl) < abs(wa_loose - hpwl) + 1e-9

    def test_wa_converges_to_hpwl(self, tiny_design):
        model = WirelengthModel(tiny_design)
        hpwl = model.hpwl(tiny_design.x, tiny_design.y)
        wa, _, _ = model.wa_and_grad(tiny_design.x, tiny_design.y, gamma=0.01)
        assert wa == pytest.approx(hpwl, rel=1e-3, abs=1e-3)

    def test_gradient_matches_finite_differences(self, tiny_design):
        model = WirelengthModel(tiny_design)
        x = tiny_design.x.copy()
        y = tiny_design.y.copy()
        gamma = 2.0
        _, gx, gy = model.wa_and_grad(x, y, gamma)
        eps = 1e-5
        for cell in range(tiny_design.num_cells):
            xp = x.copy()
            xp[cell] += eps
            wp, _, _ = model.wa_and_grad(xp, y, gamma)
            xm = x.copy()
            xm[cell] -= eps
            wm, _, _ = model.wa_and_grad(xm, y, gamma)
            assert gx[cell] == pytest.approx((wp - wm) / (2 * eps), abs=1e-4)

    def test_gradient_matches_fd_generated(self, small_design, rng):
        model = WirelengthModel(small_design)
        x, y = small_design.x.copy(), small_design.y.copy()
        gamma = 3.0
        _, gx, gy = model.wa_and_grad(x, y, gamma)
        eps = 1e-5
        for cell in rng.choice(small_design.num_cells, 10, replace=False):
            yp = y.copy()
            yp[cell] += eps
            wp, _, _ = model.wa_and_grad(x, yp, gamma)
            ym = y.copy()
            ym[cell] -= eps
            wm, _, _ = model.wa_and_grad(x, ym, gamma)
            assert gy[cell] == pytest.approx((wp - wm) / (2 * eps), abs=1e-3)

    def test_translation_invariant_gradient(self, small_design):
        model = WirelengthModel(small_design)
        gamma = 2.0
        w1, gx1, _ = model.wa_and_grad(small_design.x, small_design.y, gamma)
        w2, gx2, _ = model.wa_and_grad(small_design.x + 100.0, small_design.y, gamma)
        assert w1 == pytest.approx(w2, rel=1e-9, abs=1e-6)
        assert np.allclose(gx1, gx2, atol=1e-9)

    def test_numerical_stability_extreme_coordinates(self, tiny_design):
        model = WirelengthModel(tiny_design)
        x = tiny_design.x * 1e5
        wa, gx, gy = model.wa_and_grad(x, tiny_design.y, gamma=0.5)
        assert np.isfinite(wa)
        assert np.isfinite(gx).all()
        assert np.isfinite(gy).all()


class TestGammaSchedule:
    def test_monotone_in_overflow(self):
        values = [gamma_schedule(8.0, o) for o in (0.1, 0.3, 0.5, 0.9)]
        assert values == sorted(values)

    def test_endpoints(self):
        assert gamma_schedule(8.0, 1.0) == pytest.approx(80.0)
        assert gamma_schedule(8.0, 0.1) == pytest.approx(0.8)

    @given(st.floats(-1, 2, allow_nan=False))
    @settings(max_examples=30)
    def test_always_positive(self, overflow):
        assert gamma_schedule(8.0, overflow) > 0
