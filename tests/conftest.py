"""Shared fixtures: small hand-built and generated designs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchgen import GeneratorSpec, generate_design
from repro.netlist import DesignBuilder, Rect, Technology


def pytest_collection_modifyitems(items):
    """Everything under ``tests/`` is the tier-1 gate (see ROADMAP.md)."""
    for item in items:
        item.add_marker(pytest.mark.tier1)


def build_tiny_design(name: str = "tiny", num_cells: int = 8, die: float = 64.0):
    """A deterministic hand-built design: a chain of cells plus one IO."""
    tech = Technology()
    builder = DesignBuilder(name, tech, Rect(0, 0, die, die))
    io = builder.add_cell("io", 1, 1, x=0.5, y=die / 2, movable=False)
    cells = [
        builder.add_cell(f"c{i}", 2 + (i % 3), tech.row_height)
        for i in range(num_cells)
    ]
    previous = io
    for i, cell in enumerate(cells):
        net = builder.add_net(f"n{i}")
        builder.add_pin(previous, net)
        builder.add_pin(cell, net, dx=0.5)
        previous = cell
    return builder.build()


@pytest.fixture
def tiny_design():
    return build_tiny_design()


@pytest.fixture(scope="session")
def small_spec():
    return GeneratorSpec(
        name="small",
        num_cells=300,
        num_nets=450,
        pins_per_net=3.4,
        num_macros=3,
        num_io=8,
        utilization=0.7,
        seed=42,
    )


@pytest.fixture(scope="session")
def small_design_template(small_spec):
    """Session-cached generated design; use ``small_design`` for a copy."""
    return generate_design(small_spec)


@pytest.fixture
def small_design(small_spec):
    """A fresh generated design (positions safe to mutate)."""
    return generate_design(small_spec)


@pytest.fixture(scope="session")
def placed_small_design(small_spec):
    """A session-cached globally-placed copy (read-only for tests)."""
    from repro.placer import GlobalPlacer, PlacementParams

    design = generate_design(small_spec)
    GlobalPlacer(design, PlacementParams(max_iters=300)).run()
    return design


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(123)
