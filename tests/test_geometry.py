"""Unit and property tests for geometry primitives."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlist import Point, Rect, bounding_box, clamp

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def rects():
    return st.tuples(coords, coords, coords, coords).map(
        lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
    )


class TestPoint:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_euclidean(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    @given(coords, coords)
    def test_distance_to_self_is_zero(self, x, y):
        p = Point(x, y)
        assert p.manhattan(p) == 0
        assert p.euclidean(p) == 0

    @given(coords, coords, coords, coords)
    def test_euclidean_le_manhattan(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.euclidean(b) <= a.manhattan(b) + 1e-6


class TestRect:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_basic_properties(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == Point(2.5, 5.0)

    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(0, 0)
        assert r.contains_point(2, 2)
        assert not r.contains_point(2.001, 1)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 9))

    def test_intersection_disjoint(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_overlapping(self):
        r = Rect(0, 0, 4, 4).intersection(Rect(2, 1, 6, 3))
        assert r == Rect(2, 1, 4, 3)

    def test_touching_edges_do_not_intersect(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert Rect(0, 0, 1, 1).overlap_area(Rect(1, 0, 2, 1)) == 0.0

    def test_expanded(self):
        r = Rect(2, 2, 4, 4).expanded(1, 2)
        assert r == Rect(1, 0, 5, 6)

    def test_clipped_to_raises_when_disjoint(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).clipped_to(Rect(5, 5, 6, 6))

    @given(rects(), rects())
    def test_overlap_area_symmetric(self, a, b):
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @given(rects(), rects())
    def test_overlap_area_bounded(self, a, b):
        overlap = a.overlap_area(b)
        assert 0.0 <= overlap <= min(a.area, b.area) + 1e-6

    @given(rects())
    def test_intersection_with_self(self, r):
        if r.area > 0:
            assert r.intersection(r) == r


class TestHelpers:
    def test_bounding_box(self):
        box = bounding_box([Point(0, 5), Point(3, 1), Point(-2, 2)])
        assert box == Rect(-2, 1, 3, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_clamp(self):
        assert clamp(5, 0, 3) == 3
        assert clamp(-1, 0, 3) == 0
        assert clamp(2, 0, 3) == 2

    def test_clamp_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(1, 3, 0)
