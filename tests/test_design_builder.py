"""Tests for the design database and builder."""

import numpy as np
import pytest

from repro.netlist import DesignBuilder, Rect, Technology


@pytest.fixture
def builder():
    return DesignBuilder("t", Technology(), Rect(0, 0, 100, 100))


class TestBuilder:
    def test_duplicate_cell_name_raises(self, builder):
        builder.add_cell("a", 2, 8)
        with pytest.raises(ValueError):
            builder.add_cell("a", 2, 8)

    def test_duplicate_net_name_raises(self, builder):
        builder.add_net("n")
        with pytest.raises(ValueError):
            builder.add_net("n")

    def test_non_positive_size_raises(self, builder):
        with pytest.raises(ValueError):
            builder.add_cell("a", 0, 8)

    def test_pin_outside_cell_raises(self, builder):
        c = builder.add_cell("a", 2, 8)
        n = builder.add_net("n")
        with pytest.raises(ValueError):
            builder.add_pin(c, n, dx=5.0)

    def test_pin_bad_indices_raise(self, builder):
        c = builder.add_cell("a", 2, 8)
        n = builder.add_net("n")
        with pytest.raises(IndexError):
            builder.add_pin(c + 1, n)
        with pytest.raises(IndexError):
            builder.add_pin(c, n + 1)

    def test_default_position_is_die_center(self, builder):
        c = builder.add_cell("a", 2, 8)
        design = builder.build()
        assert design.x[c] == 50.0
        assert design.y[c] == 50.0

    def test_lookup_by_name(self, builder):
        c = builder.add_cell("a", 2, 8)
        n = builder.add_net("n")
        assert builder.cell_id("a") == c
        assert builder.net_id("n") == n

    def test_blockage_layer_bounds(self, builder):
        with pytest.raises(IndexError):
            builder.add_blockage(Rect(0, 0, 1, 1), 99)


class TestDesign:
    def test_csr_groups_pins_by_net(self, tiny_design):
        d = tiny_design
        for net in range(d.num_nets):
            pins = d.pins_of_net(net)
            assert all(d.pin_net[p] == net for p in pins)

    def test_pins_of_cell_inverse(self, tiny_design):
        d = tiny_design
        for cell in range(d.num_cells):
            for p in d.pins_of_cell(cell):
                assert d.pin_cell[p] == cell

    def test_hpwl_matches_manual(self):
        b = DesignBuilder("t", Technology(), Rect(0, 0, 100, 100))
        a = b.add_cell("a", 2, 8, x=10, y=10)
        c = b.add_cell("c", 2, 8, x=30, y=50)
        n = b.add_net("n")
        b.add_pin(a, n)
        b.add_pin(c, n)
        d = b.build()
        assert d.hpwl() == pytest.approx(20 + 40)

    def test_hpwl_with_pin_offsets(self):
        b = DesignBuilder("t", Technology(), Rect(0, 0, 100, 100))
        a = b.add_cell("a", 4, 8, x=10, y=10)
        c = b.add_cell("c", 4, 8, x=30, y=10)
        n = b.add_net("n")
        b.add_pin(a, n, dx=2.0)
        b.add_pin(c, n, dx=-2.0)
        d = b.build()
        assert d.hpwl() == pytest.approx(16.0)

    def test_net_bboxes_match_hpwl(self, small_design):
        xlo, ylo, xhi, yhi = small_design.net_bboxes()
        total = float(((xhi - xlo) + (yhi - ylo)).sum())
        assert total == pytest.approx(small_design.hpwl(), rel=1e-9)

    def test_snapshot_restore(self, small_design):
        x, y = small_design.snapshot_positions()
        small_design.x += 1.0
        small_design.restore_positions(x, y)
        assert np.array_equal(small_design.x, x)

    def test_restore_size_mismatch_raises(self, small_design):
        with pytest.raises(ValueError):
            small_design.restore_positions(np.zeros(3), np.zeros(3))

    def test_cell_rect(self, tiny_design):
        r = tiny_design.cell_rect(1)
        c = 1
        assert r.width == tiny_design.w[c]
        assert r.height == tiny_design.h[c]
        assert r.center.x == pytest.approx(tiny_design.x[c])

    def test_net_degrees(self, tiny_design):
        assert (tiny_design.net_degrees() == 2).all()

    def test_movable_area_excludes_fixed(self, tiny_design):
        total = float((tiny_design.w * tiny_design.h).sum())
        fixed = float(
            (tiny_design.w[~tiny_design.movable] * tiny_design.h[~tiny_design.movable]).sum()
        )
        assert tiny_design.movable_area == pytest.approx(total - fixed)

    def test_row_ys_inside_die(self, small_design):
        ys = small_design.row_ys()
        assert (ys >= small_design.die.ylo).all()
        assert (ys + small_design.technology.row_height <= small_design.die.yhi + 1e-9).all()
