"""Failure-injection tests for serialization and loading."""


import pytest

from repro.netlist import load_design, save_design


@pytest.fixture
def saved(tiny_design, tmp_path):
    save_design(tiny_design, str(tmp_path))
    return tiny_design, tmp_path


class TestLoadFailures:
    def test_missing_design_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_design(str(tmp_path), "nothing")

    def test_truncated_tech_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.tech"
        path.write_text("NumLayers : 0\n")
        with pytest.raises(ValueError):
            load_design(str(tmp_path), design.name)

    def test_pin_before_netdegree_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text("NumNets : 1\nNumPins : 1\n  c0 0 0\n")
        with pytest.raises(ValueError):
            load_design(str(tmp_path), design.name)

    def test_unknown_cell_in_nets_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text(
            "NumNets : 1\nNumPins : 1\nNetDegree : 1 n0\n  GHOST 0 0\n"
        )
        with pytest.raises(ValueError, match=r"\.nets:4: unknown cell 'GHOST'"):
            load_design(str(tmp_path), design.name)

    def test_unknown_cell_in_pl_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.pl"
        original = path.read_text()
        path.write_text(original + "GHOST 1 1\n")
        with pytest.raises(ValueError, match=r"\.pl:\d+: unknown cell 'GHOST'"):
            load_design(str(tmp_path), design.name)

    def test_truncated_net_pins_raises(self, saved, tmp_path):
        # A net declaring 3 pins but carrying only 2 must not load.
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text(
            "NumNets : 1\nNumPins : 3\nNetDegree : 3 n0\n  c0 0 0\n  c1 0 0\n"
        )
        with pytest.raises(ValueError, match=r"NetDegree declares 3 pins but 2"):
            load_design(str(tmp_path), design.name)

    def test_truncated_mid_file_net_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text(
            "NumNets : 2\nNumPins : 4\n"
            "NetDegree : 2 n0\n  c0 0 0\n"
            "NetDegree : 2 n1\n  c0 0 0\n  c1 0 0\n"
        )
        with pytest.raises(ValueError, match=r"\.nets:3: NetDegree declares 2"):
            load_design(str(tmp_path), design.name)

    def test_num_nets_mismatch_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text("NumNets : 2\nNumPins : 2\nNetDegree : 2 n0\n  c0 0 0\n  c1 0 0\n")
        with pytest.raises(ValueError, match=r"NumNets declares 2 nets but 1"):
            load_design(str(tmp_path), design.name)

    def test_num_pins_mismatch_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text("NumNets : 1\nNumPins : 5\nNetDegree : 2 n0\n  c0 0 0\n  c1 0 0\n")
        with pytest.raises(ValueError, match=r"NumPins declares 5 pins but 2"):
            load_design(str(tmp_path), design.name)

    def test_truncated_nodes_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nodes"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last cell
        with pytest.raises(ValueError, match=r"NumNodes declares \d+ cells"):
            load_design(str(tmp_path), design.name)

    def test_truncated_pl_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.pl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match=r"NumNodes declares \d+ placements"):
            load_design(str(tmp_path), design.name)

    def test_malformed_header_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text("NumNets : banana\n")
        with pytest.raises(ValueError, match=r"\.nets:1: malformed header"):
            load_design(str(tmp_path), design.name)

    def test_comments_and_blank_lines_ignored(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.pl"
        original = path.read_text()
        path.write_text("# comment line\n\n" + original)
        loaded = load_design(str(tmp_path), design.name)
        assert loaded.num_cells == design.num_cells


class TestSaveBehaviour:
    def test_save_creates_directory(self, tiny_design, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_design(tiny_design, str(target))
        assert (target / f"{tiny_design.name}.nodes").exists()

    def test_overwrite_is_clean(self, saved, tmp_path):
        design, _ = saved
        design.x[design.movable] += 1.0
        save_design(design, str(tmp_path))
        loaded = load_design(str(tmp_path), design.name)
        assert loaded.hpwl() == pytest.approx(design.hpwl(), rel=1e-9)
