"""Failure-injection tests for serialization and loading."""


import pytest

from repro.netlist import load_design, save_design


@pytest.fixture
def saved(tiny_design, tmp_path):
    save_design(tiny_design, str(tmp_path))
    return tiny_design, tmp_path


class TestLoadFailures:
    def test_missing_design_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_design(str(tmp_path), "nothing")

    def test_truncated_tech_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.tech"
        path.write_text("NumLayers : 0\n")
        with pytest.raises(ValueError):
            load_design(str(tmp_path), design.name)

    def test_pin_before_netdegree_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text("NumNets : 1\nNumPins : 1\n  c0 0 0\n")
        with pytest.raises(ValueError):
            load_design(str(tmp_path), design.name)

    def test_unknown_cell_in_nets_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.nets"
        path.write_text(
            "NumNets : 1\nNumPins : 1\nNetDegree : 1 n0\n  GHOST 0 0\n"
        )
        with pytest.raises(KeyError):
            load_design(str(tmp_path), design.name)

    def test_unknown_cell_in_pl_raises(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.pl"
        original = path.read_text()
        path.write_text(original + "GHOST 1 1\n")
        with pytest.raises(KeyError):
            load_design(str(tmp_path), design.name)

    def test_comments_and_blank_lines_ignored(self, saved, tmp_path):
        design, _ = saved
        path = tmp_path / f"{design.name}.pl"
        original = path.read_text()
        path.write_text("# comment line\n\n" + original)
        loaded = load_design(str(tmp_path), design.name)
        assert loaded.num_cells == design.num_cells


class TestSaveBehaviour:
    def test_save_creates_directory(self, tiny_design, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_design(tiny_design, str(target))
        assert (target / f"{tiny_design.name}.nodes").exists()

    def test_overwrite_is_clean(self, saved, tmp_path):
        design, _ = saved
        design.x[design.movable] += 1.0
        save_design(design, str(tmp_path))
        loaded = load_design(str(tmp_path), design.name)
        assert loaded.hpwl() == pytest.approx(design.hpwl(), rel=1e-9)
