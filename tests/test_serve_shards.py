"""Process-shard execution in the placement service (repro.serve).

The issue scenarios: a worker process killed mid-placement fails only
its job (the shard recycles, the service keeps serving), per-job
timeouts and cancellation actually terminate the worker process, and a
real placement streams gp-iteration progress events over HTTP while it
runs.

Runner fakes live at module level so the fork start method can carry
them into the shard workers.
"""

import asyncio
import os
import signal
import threading
import time

import pytest

from repro import api
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    HttpServer,
    HttpServiceClient,
    PlacementService,
    ServiceClient,
    ServiceConfig,
)


def run_async(coro):
    return asyncio.run(coro)


def _seed(request) -> int:
    return request["config"]["seed"]


def quick_runner(request):
    return {"design": request["design"], "pid": os.getpid(), "hpwl": 42.0}


def crashy_runner(request):
    """Seed 9 dies like a segfault; anything else answers normally."""
    if _seed(request) == 9:
        os.kill(os.getpid(), signal.SIGKILL)
    return quick_runner(request)


def sleepy_runner(request):
    """Sleeps seed/10 seconds — per-job control over run time."""
    time.sleep(_seed(request) / 10.0)
    return quick_runner(request)


class TestShardExecution:
    def test_jobs_run_out_of_process(self):
        async def main():
            service = PlacementService(
                ServiceConfig(shards=1, capacity=4), runner=quick_runner
            )
            await service.start()
            client = ServiceClient(service)
            result = await client.run("OR1200", wait_timeout=30)
            assert result["pid"] != os.getpid()
            job = service.jobs()[0]
            assert job.shard == 0
            assert service.healthz()["shards"][0]["jobs_run"] >= 1
            await service.stop()

        run_async(main())

    def test_two_shards_use_distinct_workers(self):
        release = threading.Event()

        async def main():
            service = PlacementService(
                ServiceConfig(shards=2, capacity=4), runner=sleepy_runner
            )
            await service.start()
            client = ServiceClient(service)
            # Both jobs sleep briefly so they overlap across the shards.
            a = await client.submit("OR1200", config=api.RunConfig(seed=3))
            b = await client.submit("OR1200",
                                    config=api.RunConfig(seed=3, scale=0.005))
            a = await service.wait(a.id, timeout=30)
            b = await service.wait(b.id, timeout=30)
            assert a.state == DONE and b.state == DONE
            assert {a.shard, b.shard} == {0, 1}
            assert a.result["pid"] != b.result["pid"]
            await service.stop()

        run_async(main())

    def test_worker_killed_mid_placement_fails_only_its_job(self):
        async def main():
            service = PlacementService(
                ServiceConfig(shards=1, capacity=4), runner=crashy_runner
            )
            await service.start()
            client = ServiceClient(service)
            doomed = await client.submit("OR1200", config=api.RunConfig(seed=9))
            doomed = await service.wait(doomed.id, timeout=30)
            assert doomed.state == FAILED
            assert "worker died" in doomed.error
            # The service never went down and the shard recycled: the
            # next submission runs in a fresh worker process.
            assert service.healthz()["ok"]
            result = await client.run(
                "OR1200", config=api.RunConfig(seed=1), wait_timeout=30
            )
            assert result["hpwl"] == 42.0
            await service.stop()

        run_async(main())

    def test_timeout_kills_the_worker_process(self):
        async def main():
            service = PlacementService(
                ServiceConfig(shards=1, capacity=4), runner=sleepy_runner
            )
            await service.start()
            client = ServiceClient(service)
            # Sleeps 5s against a 0.3s budget.
            hog = await client.submit(
                "OR1200", config=api.RunConfig(seed=50), timeout=0.3
            )
            start = time.monotonic()
            hog = await service.wait(hog.id, timeout=30)
            elapsed = time.monotonic() - start
            assert hog.state == FAILED
            assert "timeout after 0.3s" in hog.error
            assert "worker killed" in hog.error
            # The kill reclaimed the core: nowhere near the 5s sleep.
            assert elapsed < 4.0
            # The shard recycled for the next job.
            result = await client.run(
                "OR1200", config=api.RunConfig(seed=1), wait_timeout=30
            )
            assert result["hpwl"] == 42.0
            await service.stop()

        run_async(main())

    def test_cancel_running_job_terminates_the_worker(self):
        async def main():
            service = PlacementService(
                ServiceConfig(shards=1, capacity=4), runner=sleepy_runner
            )
            await service.start()
            client = ServiceClient(service)
            job = await client.submit("OR1200", config=api.RunConfig(seed=50))
            while service.status(job.id).state != RUNNING:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.1)  # let the worker start sleeping
            start = time.monotonic()
            service.cancel(job.id)
            job = await service.wait(job.id, timeout=30)
            assert job.state == CANCELLED
            # Cancellation killed the process instead of waiting out the
            # 5s sleep (thread mode can only discard the result).
            assert time.monotonic() - start < 4.0
            result = await client.run(
                "OR1200", config=api.RunConfig(seed=1), wait_timeout=30
            )
            assert result["hpwl"] == 42.0
            await service.stop()

        run_async(main())


class TestShardProgressOverHttp:
    """A real placement on process shards streams progress over HTTP."""

    @pytest.fixture(scope="class")
    def server(self):
        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    ServiceConfig(shards=2, capacity=4)
                )
                await service.start()
                http_server = HttpServer(service, port=0)
                box["addr"] = await http_server.start()
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await http_server.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(30)
        yield HttpServiceClient(*box["addr"])
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(30)

    def test_follow_streams_gp_iterations_for_a_real_placement(self, server):
        from repro.placer import PlacementParams

        config = api.RunConfig(
            scale=0.0015, placement=PlacementParams(max_iters=40)
        )
        job = server.submit("OR1200", config=config)
        events = list(server.follow(job["id"], timeout=300))
        assert events[-1].state == "done"

        progress = [e.progress for e in events if e.kind == "progress"]
        stages = {p.stage for p in progress}
        assert "gp" in stages  # gp-iteration spans crossed the process
        gp = [p for p in progress if p.stage == "gp"]
        assert len(gp) > 1
        assert [p.step for p in gp] == sorted(p.step for p in gp)
        assert all("hpwl" in p.metrics for p in gp)

        job = server.status(job["id"])
        assert job["state"] == "done"
        assert job["shard"] in (0, 1)
        assert job["result"]["hpwl"] > 0

    def test_run_with_progress_callback_sees_live_events(self, server):
        from repro.placer import PlacementParams

        config = api.RunConfig(
            scale=0.0015, seed=3, placement=PlacementParams(max_iters=30)
        )
        seen = []
        result = server.run("OR1200", config=config, wait_timeout=300,
                            progress=seen.append)
        assert result["hpwl"] > 0
        assert any(e.kind == "progress" for e in seen)
        assert seen[-1].state == "done"
