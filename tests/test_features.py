"""Tests for multi-feature extraction (local / CNN / GNN features)."""

import numpy as np
import pytest

from repro.core import (
    FEATURE_NAMES,
    CongestionEstimator,
    FeatureExtractor,
    FeatureParams,
)


@pytest.fixture(scope="module")
def extraction(placed_small_design):
    est = CongestionEstimator(placed_small_design)
    cmap, topologies, _ = est.estimate()
    extractor = FeatureExtractor(placed_small_design, FeatureParams(kernel_size=3))
    return placed_small_design, cmap, topologies, extractor.extract(cmap, topologies)


class TestFeatureSet:
    def test_all_features_present(self, extraction):
        design, _, _, features = extraction
        for name in FEATURE_NAMES:
            assert len(features[name]) == design.num_cells

    def test_matrix_shape(self, extraction):
        design, _, _, features = extraction
        m = features.matrix()
        assert m.shape == (design.num_cells, len(FEATURE_NAMES))

    def test_fixed_cells_zero(self, extraction):
        design, _, _, features = extraction
        fixed = ~design.movable | design.is_macro
        for name in FEATURE_NAMES:
            assert np.allclose(features[name][fixed], 0.0)

    def test_local_cg_matches_map(self, extraction):
        design, cmap, _, features = extraction
        grid = cmap.grid
        movable = np.flatnonzero(design.movable & ~design.is_macro)
        probe = movable[:20]
        gx, gy = grid.gcell_of(design.x[probe], design.y[probe])
        # Cells smaller than a Gcell: local congestion >= the value at
        # the center Gcell (it's a max over overlapped Gcells).
        assert (features["local_cg"][probe] >= cmap.cg[gx, gy] - 1e-9).all()

    def test_pin_density_nonnegative(self, extraction):
        _, _, _, features = extraction
        assert (features["local_pin"] >= 0).all()
        assert (features["around_pin"] >= 0).all()

    def test_surrounding_smoother_than_local(self, extraction):
        design, _, _, features = extraction
        movable = design.movable & ~design.is_macro
        assert (
            features["around_cg"][movable].std()
            <= features["local_cg"][movable].std() + 1e-9
        )


class TestFeatureSwitches:
    def test_cnn_disabled(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        cmap, topologies, _ = est.estimate()
        extractor = FeatureExtractor(
            placed_small_design, FeatureParams(use_cnn=False)
        )
        features = extractor.extract(cmap, topologies)
        assert np.allclose(features["around_cg"], 0.0)
        assert not np.allclose(features["local_cg"], 0.0)

    def test_gnn_disabled(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        cmap, topologies, _ = est.estimate()
        extractor = FeatureExtractor(
            placed_small_design, FeatureParams(use_gnn=False)
        )
        features = extractor.extract(cmap, topologies)
        assert np.allclose(features["pin_cg"], 0.0)

    def test_kernel_size_changes_surrounding(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        cmap, topologies, _ = est.estimate()
        small = FeatureExtractor(
            placed_small_design, FeatureParams(kernel_size=1)
        ).extract(cmap, topologies)
        large = FeatureExtractor(
            placed_small_design, FeatureParams(kernel_size=7)
        ).extract(cmap, topologies)
        assert not np.allclose(small["around_cg"], large["around_cg"])


class TestPinCongestion:
    def test_path_congestion_straight(self, placed_small_design):
        extractor = FeatureExtractor(placed_small_design)
        cg = np.zeros((10, 10))
        cg[3, 5] = 2.0
        # Straight path through the hot cell must see it.
        value = extractor._segment_path_congestion(cg, 1, 5, 6, 5)
        assert value == pytest.approx(2.0)

    def test_path_congestion_picks_min_candidate(self, placed_small_design):
        extractor = FeatureExtractor(placed_small_design)
        cg = np.zeros((10, 10))
        # Make the corner (bx, ay) L expensive.
        cg[6, 1] = 5.0
        value = extractor._segment_path_congestion(cg, 1, 1, 6, 6)
        assert value < 5.0  # the other L or a Z avoids the hot corner

    def test_pin_cg_aggregates_over_cell_pins(self, extraction):
        design, _, _, features = extraction
        movable = design.movable & ~design.is_macro
        # Cells with more pins tend to have larger |pin_cg|; at minimum
        # the feature must be finite everywhere.
        assert np.isfinite(features["pin_cg"]).all()
