"""Tests for the router's negotiation cost model."""

import numpy as np
import pytest

from repro.netlist import DesignBuilder, Rect, Technology
from repro.router import CostModel, CostParams, DemandMaps, build_grid


@pytest.fixture
def grid_and_model():
    tech = Technology()
    b = DesignBuilder("c", tech, Rect(0, 0, 64, 64))
    b.add_cell("x", 2, tech.row_height, x=32, y=32)
    grid = build_grid(b.build())
    demand = DemandMaps.zeros(grid)
    model = CostModel(grid, demand, CostParams())
    return grid, demand, model


class TestCostModel:
    def test_base_cost_is_one_when_idle(self, grid_and_model):
        _, _, model = grid_and_model
        cost_h, cost_v = model.cost_maps()
        assert np.allclose(cost_h, 1.0)
        assert np.allclose(cost_v, 1.0)

    def test_cost_grows_with_demand(self, grid_and_model):
        grid, demand, model = grid_and_model
        demand.dmd_h[1, 1] = grid.cap_h[1, 1]  # at capacity
        cost_h, _ = model.cost_maps()
        assert cost_h[1, 1] > 1.0
        assert cost_h[0, 0] == pytest.approx(1.0)

    def test_slack_delays_penalty(self, grid_and_model):
        grid, demand, model = grid_and_model
        # Below slack * capacity the penalty is zero.
        demand.dmd_h[2, 2] = 0.5 * grid.cap_h[2, 2]
        cost_h, _ = model.cost_maps()
        assert cost_h[2, 2] == pytest.approx(1.0)

    def test_history_accumulates_only_on_overflow(self, grid_and_model):
        grid, demand, model = grid_and_model
        demand.dmd_v[3, 3] = grid.cap_v[3, 3] + 5.0
        model.bump_history()
        model.bump_history()
        assert model.hist_v[3, 3] == pytest.approx(2.0)
        assert model.hist_v[0, 0] == 0.0
        assert model.hist_h[3, 3] == 0.0

    def test_history_enters_cost(self, grid_and_model):
        grid, demand, model = grid_and_model
        demand.dmd_v[3, 3] = grid.cap_v[3, 3] + 5.0
        model.bump_history()
        demand.dmd_v[3, 3] = 0.0  # congestion resolved, history remains
        _, cost_v = model.cost_maps()
        assert cost_v[3, 3] == pytest.approx(2.0)

    def test_congestion_weight_scales_penalty(self, grid_and_model):
        grid, demand, _ = grid_and_model
        demand.dmd_h[1, 1] = grid.cap_h[1, 1] + 3.0
        weak = CostModel(grid, demand, CostParams(congestion_weight=1.0))
        strong = CostModel(grid, demand, CostParams(congestion_weight=50.0))
        assert strong.cost_maps()[0][1, 1] > weak.cost_maps()[0][1, 1]
