"""Lifecycle and equivalence tests for :mod:`repro.runtime.shm`.

The contract under test: a published design attaches bit-identically
(in-process and across a worker-process boundary), handles stay tiny
and picklable, and — the part that actually bites in production — no
``/dev/shm`` segment outlives its owner, whether the owner exits
normally, the consumer worker is SIGKILLed mid-attach, or the executor
is torn down. Publish/attach failures degrade to the pickling path
instead of failing jobs.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.runtime import shm

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="POSIX shared memory unavailable"
)

SHM_DIR = "/dev/shm"


def _segment_exists(segment: str) -> bool:
    if not os.path.isdir(SHM_DIR):  # non-Linux: fall back to attach probe
        try:
            shm._open_untracked(segment).close()
            return True
        except (OSError, ValueError):
            return False
    return os.path.exists(os.path.join(SHM_DIR, segment))


def _leaked_segments() -> list:
    if not os.path.isdir(SHM_DIR):
        return []
    return [name for name in os.listdir(SHM_DIR) if name.startswith("repro_")]


def _attach_job(request):
    """Picklable worker body: attach the handle, score the design."""
    design = shm.attach_design(shm.SharedDesignHandle.from_dict(request["_shm"]))
    assert not design.net_pins.flags.writeable  # zero-copy topology view
    design.x += 1.0  # positions are private copies: mutation must work
    design.x -= 1.0
    return {"hpwl": design.hpwl(), "pid": os.getpid()}


class TestPublishAttach:
    def test_round_trip_is_bit_identical(self, tiny_design):
        with shm.publish_design(tiny_design) as shared:
            attached = shm.attach_design(shared.handle)
            assert attached.name == tiny_design.name
            assert attached.cell_names == tiny_design.cell_names
            for field in ("x", "y", "w", "h", "net_start", "net_pins",
                          "pin_cell", "pin_net", "pin_dx", "pin_dy"):
                np.testing.assert_array_equal(
                    getattr(attached, field), getattr(tiny_design, field)
                )
            assert attached.hpwl() == tiny_design.hpwl()
            shm.detach_all()

    def test_topology_views_are_read_only_positions_private(self, tiny_design):
        with shm.publish_design(tiny_design) as shared:
            attached = shm.attach_design(shared.handle)
            with pytest.raises(ValueError):
                attached.net_pins[0] = 0
            attached.x[0] += 5.0  # must not write through to the segment
            again = shm.attach_design(shared.handle)
            assert again.x[0] == tiny_design.x[0]
            shm.detach_all()

    def test_handle_is_tiny_and_picklable(self, tiny_design):
        with shm.publish_design(tiny_design) as shared:
            wire = pickle.dumps(shared.handle.to_dict())
            assert len(wire) < 2048
            restored = shm.SharedDesignHandle.from_dict(pickle.loads(wire))
            assert restored == shared.handle
            shm.detach_all()

    def test_attach_memo_reuses_mapping(self, tiny_design):
        with shm.publish_design(tiny_design) as shared:
            first = shm.attach_design(shared.handle)
            second = shm.attach_design(shared.handle)
            # Same underlying buffer (memoized mapping), distinct copies
            # of the mutable position arrays.
            assert np.shares_memory(first.net_pins, second.net_pins)
            assert not np.shares_memory(first.x, second.x)
            shm.detach_all()


class TestLifecycle:
    def test_release_unlinks_segment(self, tiny_design):
        shared = shm.publish_design(tiny_design)
        segment = shared.handle.segment
        assert _segment_exists(segment)
        shared.release()
        assert not _segment_exists(segment)

    def test_refcount_unlinks_on_last_release(self, tiny_design):
        shared = shm.publish_design(tiny_design)
        segment = shared.handle.segment
        shared.acquire()
        shared.release()
        assert _segment_exists(segment)  # one reference still held
        shared.release()
        assert not _segment_exists(segment)
        with pytest.raises(shm.SharedMemoryError):
            shared.acquire()

    def test_close_forces_unlink_and_release_is_safe_after(self, tiny_design):
        shared = shm.publish_design(tiny_design)
        shared.acquire()
        shared.close()
        assert not _segment_exists(shared.handle.segment)
        shared.release()  # double teardown must be a no-op

    def test_normal_interpreter_exit_sweeps_owned_segments(self, tmp_path):
        """A process that publishes and exits without releasing must
        leave no segment behind (the atexit sweep)."""
        marker = tmp_path / "segment_name"
        code = (
            "from repro.benchgen import make_design\n"
            "from repro.runtime import shm\n"
            "shared = shm.publish_design(make_design('OR1200', 0.001))\n"
            f"open({str(marker)!r}, 'w').write(shared.handle.segment)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        subprocess.run([sys.executable, "-c", code], check=True, env=env,
                       cwd=os.path.dirname(os.path.dirname(__file__)))
        segment = marker.read_text().strip()
        assert segment
        assert not _segment_exists(segment)

    def test_worker_sigkill_leaves_no_segment(self, tiny_design):
        """SIGKILL the attached worker process: the owner's unlink must
        still win — no orphaned /dev/shm entry, no tracker interference."""
        from repro.serve.shards import ProcessShard

        before = set(_leaked_segments())
        shared = shm.publish_design(tiny_design)
        segment = shared.handle.segment
        shard = ProcessShard(0)
        try:
            shard.warm()
            request = {"_shm": shared.handle.to_dict()}
            result = shard.execute(_attach_job, request, key="attach")
            assert result.ok, result.error
            assert result.value["hpwl"] == tiny_design.hpwl()
            worker_pid = result.value["pid"]
            assert worker_pid != os.getpid()
            os.kill(worker_pid, signal.SIGKILL)
            deadline = time.time() + 10.0
            while time.time() < deadline:
                try:
                    os.kill(worker_pid, 0)
                    time.sleep(0.05)
                except ProcessLookupError:
                    break
        finally:
            shard.close()
            shared.release()
        assert not _segment_exists(segment)
        assert set(_leaked_segments()) <= before

    def test_executor_shutdown_leaves_no_segment(self, tiny_design):
        """Normal executor teardown with a still-attached worker."""
        from repro.serve.shards import ProcessShard

        before = set(_leaked_segments())
        shared = shm.publish_design(tiny_design)
        segment = shared.handle.segment
        shard = ProcessShard(0)
        try:
            shard.warm()
            request = {"_shm": shared.handle.to_dict()}
            for key in ("first", "second"):  # second hits the attach memo
                result = shard.execute(_attach_job, request, key=key)
                assert result.ok, result.error
                assert result.value["hpwl"] == tiny_design.hpwl()
        finally:
            shard.close()
            shared.release()
        assert not _segment_exists(segment)
        assert set(_leaked_segments()) <= before


class TestFallback:
    def test_attach_after_unlink_raises(self, tiny_design):
        shared = shm.publish_design(tiny_design)
        handle = shared.handle
        shared.release()
        shm.detach_all()
        with pytest.raises(shm.SharedMemoryError):
            shm.attach_design(handle)

    def test_cache_returns_none_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(shm, "_shared_memory", None)
        cache = shm.SharedDesignCache()
        assert cache.handle_for("OR1200", 0.001, 0) is None

    def test_cache_swallows_publish_failure(self):
        def boom(name, scale, seed):
            raise RuntimeError("generator exploded")

        cache = shm.SharedDesignCache(provider=boom)
        assert cache.handle_for("OR1200", 0.001, 0) is None
        assert cache.stats()["publishes"] == 0

    def test_request_without_design_name_is_skipped(self):
        cache = shm.SharedDesignCache()
        assert cache.handle_for_request({}) is None
        assert cache.handle_for_request({"design": 42}) is None


class TestSharedDesignCache:
    def test_publish_once_then_hits(self, tiny_design):
        calls = []

        def provider(name, scale, seed):
            calls.append((name, scale, seed))
            return tiny_design

        cache = shm.SharedDesignCache(provider=provider)
        try:
            first = cache.handle_for("tiny", 0.004, 0)
            second = cache.handle_for("tiny", 0.004, 0)
            assert first is not None and second is first
            assert calls == [("tiny", 0.004, 0)]
            stats = cache.stats()
            assert stats["publishes"] == 1
            assert stats["hits"] == 1
            assert stats["bytes"] > 0
        finally:
            cache.close()
        assert not _segment_exists(first.segment)

    def test_request_resolves_config_defaults(self, tiny_design):
        """Identity comes from RunConfig: an empty config and the
        explicit defaults are the same cache entry."""
        from repro import api

        cache = shm.SharedDesignCache(provider=lambda *a: tiny_design)
        try:
            defaults = api.RunConfig()
            a = cache.handle_for_request({"design": "tiny", "config": {}})
            b = cache.handle_for_request({
                "design": "tiny",
                "config": {"scale": defaults.scale, "seed": defaults.seed},
            })
            assert a is not None and b is a
            assert cache.stats()["publishes"] == 1
        finally:
            cache.close()

    def test_capacity_eviction_releases_segment(self, tiny_design):
        cache = shm.SharedDesignCache(provider=lambda *a: tiny_design,
                                      capacity=1)
        try:
            first = cache.handle_for("a", 0.004, 0)
            second = cache.handle_for("b", 0.004, 0)
            assert not _segment_exists(first.segment)  # evicted -> unlinked
            assert _segment_exists(second.segment)
        finally:
            cache.close()
        assert not _segment_exists(second.segment)
