"""Round-trip tests for the Bookshelf-flavoured serialization."""

import numpy as np
import pytest

from repro.netlist import load_design, save_design


def assert_designs_equal(a, b):
    assert a.name == b.name
    assert a.cell_names == b.cell_names
    assert a.net_names == b.net_names
    assert np.allclose(a.w, b.w)
    assert np.allclose(a.h, b.h)
    assert np.allclose(a.x, b.x)
    assert np.allclose(a.y, b.y)
    assert np.array_equal(a.movable, b.movable)
    assert np.array_equal(a.is_macro, b.is_macro)
    assert np.array_equal(a.net_start, b.net_start)
    assert np.array_equal(a.pin_cell[a.net_pins], b.pin_cell[b.net_pins])
    assert np.allclose(a.pin_dx[a.net_pins], b.pin_dx[b.net_pins])
    assert len(a.blockages) == len(b.blockages)


class TestRoundTrip:
    def test_tiny_round_trip(self, tiny_design, tmp_path):
        save_design(tiny_design, str(tmp_path))
        loaded = load_design(str(tmp_path), tiny_design.name)
        assert_designs_equal(tiny_design, loaded)

    def test_generated_round_trip(self, small_design, tmp_path):
        save_design(small_design, str(tmp_path))
        loaded = load_design(str(tmp_path), small_design.name)
        assert_designs_equal(small_design, loaded)

    def test_hpwl_preserved(self, small_design, tmp_path):
        save_design(small_design, str(tmp_path))
        loaded = load_design(str(tmp_path), small_design.name)
        assert loaded.hpwl() == pytest.approx(small_design.hpwl(), rel=1e-6)

    def test_technology_preserved(self, small_design, tmp_path):
        save_design(small_design, str(tmp_path))
        loaded = load_design(str(tmp_path), small_design.name)
        a, b = small_design.technology, loaded.technology
        assert a.site_width == b.site_width
        assert a.row_height == b.row_height
        assert a.gcell_size == b.gcell_size
        assert len(a.layers) == len(b.layers)
        for la, lb in zip(a.layers, b.layers):
            assert la.name == lb.name
            assert la.direction == lb.direction
            assert la.pitch == pytest.approx(lb.pitch)

    def test_positions_preserved_after_move(self, tiny_design, tmp_path):
        tiny_design.x[tiny_design.movable] += 7.25
        save_design(tiny_design, str(tmp_path))
        loaded = load_design(str(tmp_path), tiny_design.name)
        assert np.allclose(loaded.x, tiny_design.x)

    def test_files_created(self, tiny_design, tmp_path):
        save_design(tiny_design, str(tmp_path))
        for ext in (".aux", ".nodes", ".nets", ".pl", ".tech"):
            assert (tmp_path / f"{tiny_design.name}{ext}").exists()
