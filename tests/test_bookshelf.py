"""Round-trip tests for the Bookshelf-flavoured serialization."""

import numpy as np
import pytest

from repro.netlist import (
    DesignBuilder,
    Rect,
    Technology,
    load_design,
    save_design,
)


def assert_designs_equal(a, b):
    assert a.name == b.name
    assert a.cell_names == b.cell_names
    assert a.net_names == b.net_names
    assert np.allclose(a.w, b.w)
    assert np.allclose(a.h, b.h)
    assert np.allclose(a.x, b.x)
    assert np.allclose(a.y, b.y)
    assert np.array_equal(a.movable, b.movable)
    assert np.array_equal(a.is_macro, b.is_macro)
    assert np.array_equal(a.net_start, b.net_start)
    assert np.array_equal(a.pin_cell[a.net_pins], b.pin_cell[b.net_pins])
    assert np.allclose(a.pin_dx[a.net_pins], b.pin_dx[b.net_pins])
    assert len(a.blockages) == len(b.blockages)


class TestRoundTrip:
    def test_tiny_round_trip(self, tiny_design, tmp_path):
        save_design(tiny_design, str(tmp_path))
        loaded = load_design(str(tmp_path), tiny_design.name)
        assert_designs_equal(tiny_design, loaded)

    def test_generated_round_trip(self, small_design, tmp_path):
        save_design(small_design, str(tmp_path))
        loaded = load_design(str(tmp_path), small_design.name)
        assert_designs_equal(small_design, loaded)

    def test_hpwl_preserved(self, small_design, tmp_path):
        save_design(small_design, str(tmp_path))
        loaded = load_design(str(tmp_path), small_design.name)
        assert loaded.hpwl() == pytest.approx(small_design.hpwl(), rel=1e-6)

    def test_technology_preserved(self, small_design, tmp_path):
        save_design(small_design, str(tmp_path))
        loaded = load_design(str(tmp_path), small_design.name)
        a, b = small_design.technology, loaded.technology
        assert a.site_width == b.site_width
        assert a.row_height == b.row_height
        assert a.gcell_size == b.gcell_size
        assert len(a.layers) == len(b.layers)
        for la, lb in zip(a.layers, b.layers):
            assert la.name == lb.name
            assert la.direction == lb.direction
            assert la.pitch == pytest.approx(lb.pitch)

    def test_positions_preserved_after_move(self, tiny_design, tmp_path):
        tiny_design.x[tiny_design.movable] += 7.25
        save_design(tiny_design, str(tmp_path))
        loaded = load_design(str(tmp_path), tiny_design.name)
        assert np.allclose(loaded.x, tiny_design.x)

    def test_files_created(self, tiny_design, tmp_path):
        save_design(tiny_design, str(tmp_path))
        for ext in (".aux", ".nodes", ".nets", ".pl", ".tech"):
            assert (tmp_path / f"{tiny_design.name}{ext}").exists()


class TestDegenerateRoundTrip:
    """Round-trips on designs at the edges of the format."""

    def test_zero_net_design(self, tmp_path):
        b = DesignBuilder("nonets", Technology(), Rect(0, 0, 32, 32))
        b.add_cell("c0", 2, 8, x=4, y=4)
        b.add_cell("c1", 2, 8, x=8, y=4)
        design = b.build()
        save_design(design, str(tmp_path))
        loaded = load_design(str(tmp_path), "nonets")
        assert_designs_equal(design, loaded)
        assert loaded.num_nets == 0
        assert loaded.num_pins == 0

    def test_macro_only_design(self, tmp_path):
        b = DesignBuilder("macros", Technology(), Rect(0, 0, 64, 64))
        a = b.add_cell("m0", 16, 16, x=16, y=16, movable=False, macro=True)
        c = b.add_cell("m1", 16, 16, x=48, y=48, movable=False, macro=True)
        n = b.add_net("n0")
        b.add_pin(a, n)
        b.add_pin(c, n)
        design = b.build()
        save_design(design, str(tmp_path))
        loaded = load_design(str(tmp_path), "macros")
        assert_designs_equal(design, loaded)
        assert not loaded.movable.any()
        assert loaded.is_macro.all()

    def test_comment_and_blank_interleaved_files(self, tiny_design, tmp_path):
        save_design(tiny_design, str(tmp_path))
        for ext in (".nodes", ".nets", ".pl", ".tech"):
            path = tmp_path / f"{tiny_design.name}{ext}"
            lines = path.read_text().splitlines()
            noisy = ["# leading comment", ""]
            for line in lines:
                noisy += [line, "  # inline-ish comment", ""]
            path.write_text("\n".join(noisy) + "\n")
        loaded = load_design(str(tmp_path), tiny_design.name)
        assert_designs_equal(tiny_design, loaded)

    def test_save_load_save_bit_identity(self, small_design, tmp_path):
        # Hypothesis-style fixpoint: serializing the loaded design must
        # reproduce the first serialization byte-for-byte.
        first = tmp_path / "first"
        second = tmp_path / "second"
        save_design(small_design, str(first))
        loaded = load_design(str(first), small_design.name)
        save_design(loaded, str(second))
        for ext in (".aux", ".nodes", ".nets", ".pl", ".tech"):
            a = (first / f"{small_design.name}{ext}").read_bytes()
            b = (second / f"{small_design.name}{ext}").read_bytes()
            assert a == b, f"{ext} not bit-identical after save->load->save"
