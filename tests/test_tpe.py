"""Tests for the parameter space, TPE sampler, and SMBO loop."""

import numpy as np
import pytest

from repro.tpe import (
    Choice,
    LogUniform,
    QUniform,
    Space,
    TPESampler,
    Uniform,
    minimize,
)


class TestSpace:
    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError):
            Space([Uniform("a", 0, 1), Uniform("a", 0, 2)])

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            Uniform("a", 2, 1)

    def test_sample_in_range(self, rng):
        space = Space([Uniform("a", -1, 1), QUniform("q", 0, 10, q=2), Choice("c", (1, 2))])
        for _ in range(50):
            s = space.sample(rng)
            assert -1 <= s["a"] <= 1
            assert s["q"] % 2 == 0
            assert s["c"] in (1, 2)

    def test_quniform_clip_snaps(self):
        dim = QUniform("q", 0, 10, q=2)
        assert dim.clip(3.1) == 4.0
        assert dim.clip(99) == 10.0

    def test_loguniform_positive(self, rng):
        dim = LogUniform("l", 0.01, 100.0)
        values = [dim.sample(rng) for _ in range(100)]
        assert all(0.01 <= v <= 100 for v in values)
        # Should cover multiple decades.
        assert min(values) < 1.0 < max(values)

    def test_loguniform_needs_positive_lo(self):
        with pytest.raises(ValueError):
            LogUniform("l", 0.0, 1.0)

    def test_midpoint(self):
        space = Space([Uniform("a", 0, 4), Choice("c", ("x", "y", "z"))])
        mid = space.midpoint()
        assert mid["a"] == 2.0
        assert mid["c"] == "y"

    def test_subspace_and_replaced(self):
        space = Space([Uniform("a", 0, 4), Uniform("b", 0, 1)])
        sub = space.subspace(["b"])
        assert sub.names() == ["b"]
        replaced = space.replaced(Uniform("a", 1, 2))
        assert replaced.dim("a").lo == 1

    def test_shrunk_within_original(self):
        dim = Uniform("a", 0, 10)
        shrunk = dim.shrunk(np.array([4.0, 5.0, 6.0]))
        assert shrunk.lo >= 0 and shrunk.hi <= 10
        assert shrunk.lo <= 4.0 and shrunk.hi >= 6.0

    def test_choice_shrunk_is_identity(self):
        dim = Choice("c", (1, 2, 3))
        assert dim.shrunk([1, 1]) is dim


class TestTPESampler:
    def test_startup_is_random(self, rng):
        space = Space([Uniform("a", 0, 1)])
        sampler = TPESampler(n_startup=5)
        s = sampler.suggest(space, [], rng)
        assert 0 <= s["a"] <= 1

    def test_suggestions_concentrate_near_good_region(self, rng):
        space = Space([Uniform("a", 0, 10)])
        sampler = TPESampler(n_startup=0, n_candidates=32)
        observations = [({"a": float(v)}, abs(v - 7.0)) for v in np.linspace(0, 10, 30)]
        suggestions = [
            sampler.suggest(space, observations, rng)["a"] for _ in range(20)
        ]
        assert abs(np.median(suggestions) - 7.0) < 2.0

    def test_categorical_prefers_good_option(self, rng):
        space = Space([Choice("c", ("good", "bad"))])
        sampler = TPESampler(n_startup=0, n_candidates=16)
        observations = [({"c": "good"}, 0.0)] * 10 + [({"c": "bad"}, 1.0)] * 10
        picks = [sampler.suggest(space, observations, rng)["c"] for _ in range(20)]
        assert picks.count("good") > picks.count("bad")

    def test_gamma_bounds(self):
        with pytest.raises(ValueError):
            TPESampler(gamma=0.0)


class TestMinimize:
    def test_beats_random_on_quadratic(self, rng):
        space = Space([Uniform("x", -5, 5), Uniform("y", -5, 5)])

        def f(p):
            return (p["x"] - 1.0) ** 2 + (p["y"] + 2.0) ** 2

        result = minimize(f, space, max_evals=50, patience=50, rng=1)
        random_best = min(f(space.sample(rng)) for _ in range(50))
        assert result.best.loss <= random_best

    def test_early_stop_fires(self):
        space = Space([Uniform("x", 0, 1)])
        result = minimize(lambda p: 1.0, space, max_evals=100, patience=5, rng=0)
        assert result.stopped_early
        assert len(result.trials) <= 7

    def test_empty_budget_raises(self):
        space = Space([Uniform("x", 0, 1)])
        with pytest.raises(ValueError):
            minimize(lambda p: 0.0, space, max_evals=0)

    def test_warm_start_used(self):
        space = Space([Uniform("x", 0, 10)])
        warm = [({"x": float(v)}, abs(v - 3.0)) for v in np.linspace(0, 10, 20)]
        result = minimize(
            lambda p: abs(p["x"] - 3.0),
            space,
            max_evals=10,
            patience=10,
            warm_start=warm,
            rng=2,
        )
        assert result.best.loss < 1.5

    def test_observations_roundtrip(self):
        space = Space([Uniform("x", 0, 1)])
        result = minimize(lambda p: p["x"], space, max_evals=5, patience=5, rng=0)
        obs = result.observations()
        assert len(obs) == len(result.trials)
        assert all(isinstance(o, tuple) and len(o) == 2 for o in obs)
