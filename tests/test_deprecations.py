"""The PR-5 deprecation shims: warn exactly once per use, still delegate.

Two shims are under contract here:

* ``api.explore(rng=...)`` — the pre-rename seed keyword;
* bare report attribute access on :class:`api.RouteResult`
  (``result.hof`` instead of ``result.route_report.hof``).
"""

import warnings
from types import SimpleNamespace

import pytest

from repro import api


def deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestExploreRngShim:
    @pytest.fixture
    def capture_exploration(self, monkeypatch):
        """Stub the actual exploration loop; record the seed it was
        handed so the test proves delegation without a real run."""
        calls = {}

        def fake_exploration(objective, **kwargs):
            calls.update(kwargs)
            return SimpleNamespace(best=None)

        import repro.core.exploration as exploration

        monkeypatch.setattr(exploration, "strategy_exploration",
                            fake_exploration)
        return calls

    def test_rng_warns_exactly_once_and_delegates(self, capture_exploration):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.explore("OR1200", scale=0.002, budget=3, rng=99)
        emitted = deprecations(caught)
        assert len(emitted) == 1
        assert "rng" in str(emitted[0].message)
        assert "seed" in str(emitted[0].message)
        assert capture_exploration["rng"] == 99  # rng= still wins

    def test_seed_keyword_is_silent(self, capture_exploration):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.explore("OR1200", scale=0.002, budget=3, seed=5)
        assert deprecations(caught) == []
        assert capture_exploration["rng"] == 5


class TestRouteResultShim:
    @pytest.fixture
    def result(self, tiny_design):
        report = SimpleNamespace(hof=1.25, vof=0.5,
                                 summary=lambda: {"hof": 1.25})
        return api.RouteResult(design=tiny_design, route_report=report,
                               route_seconds=0.1)

    def test_bare_access_warns_exactly_once_and_delegates(self, result):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = result.hof
        emitted = deprecations(caught)
        assert len(emitted) == 1
        assert "route_report" in str(emitted[0].message)
        assert value == 1.25

    def test_each_access_is_one_warning(self, result):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert result.hof == 1.25
            assert result.summary() == {"hof": 1.25}
        assert len(deprecations(caught)) == 2

    def test_new_spelling_is_silent(self, result):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert result.route_report.hof == 1.25
            assert result.route_seconds == 0.1
            assert result.design.num_cells > 0
        assert deprecations(caught) == []

    def test_missing_attribute_still_raises(self, result):
        with pytest.raises(AttributeError):
            result.not_a_metric
