"""Deprecation shims: warn (or mark) per use, still delegate.

Three shims are under contract here:

* ``api.explore(rng=...)`` — the pre-rename seed keyword;
* bare report attribute access on :class:`api.RouteResult`
  (``result.hof`` instead of ``result.route_report.hof``);
* the pre-``/v1`` unversioned HTTP routes of the job server, which
  answer identically to their ``/v1`` successors but stamp a
  ``Deprecation: true`` header plus a ``Link: ...successor-version``
  pointer at the replacement path.
"""

import asyncio
import http.client
import json
import threading
import warnings
from types import SimpleNamespace

import pytest

from repro import api


def deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestExploreRngShim:
    @pytest.fixture
    def capture_exploration(self, monkeypatch):
        """Stub the actual exploration loop; record the seed it was
        handed so the test proves delegation without a real run."""
        calls = {}

        def fake_exploration(objective, **kwargs):
            calls.update(kwargs)
            return SimpleNamespace(best=None)

        import repro.core.exploration as exploration

        monkeypatch.setattr(exploration, "strategy_exploration",
                            fake_exploration)
        return calls

    def test_rng_warns_exactly_once_and_delegates(self, capture_exploration):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.explore("OR1200", scale=0.002, budget=3, rng=99)
        emitted = deprecations(caught)
        assert len(emitted) == 1
        assert "rng" in str(emitted[0].message)
        assert "seed" in str(emitted[0].message)
        assert capture_exploration["rng"] == 99  # rng= still wins

    def test_seed_keyword_is_silent(self, capture_exploration):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.explore("OR1200", scale=0.002, budget=3, seed=5)
        assert deprecations(caught) == []
        assert capture_exploration["rng"] == 5


class TestRouteResultShim:
    @pytest.fixture
    def result(self, tiny_design):
        report = SimpleNamespace(hof=1.25, vof=0.5,
                                 summary=lambda: {"hof": 1.25})
        return api.RouteResult(design=tiny_design, route_report=report,
                               route_seconds=0.1)

    def test_bare_access_warns_exactly_once_and_delegates(self, result):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = result.hof
        emitted = deprecations(caught)
        assert len(emitted) == 1
        assert "route_report" in str(emitted[0].message)
        assert value == 1.25

    def test_each_access_is_one_warning(self, result):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert result.hof == 1.25
            assert result.summary() == {"hof": 1.25}
        assert len(deprecations(caught)) == 2

    def test_new_spelling_is_silent(self, result):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert result.route_report.hof == 1.25
            assert result.route_seconds == 0.1
            assert result.design.num_cells > 0
        assert deprecations(caught) == []

    def test_missing_attribute_still_raises(self, result):
        with pytest.raises(AttributeError):
            result.not_a_metric


def _fake_placement(request):
    return {"design": request["design"], "hpwl": 7.0}


class TestHttpV1Shims:
    """The unversioned HTTP routes answer through the /v1 shims."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.serve import HttpServer, PlacementService, ServiceConfig

        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    ServiceConfig(workers=1, capacity=4), runner=_fake_placement
                )
                await service.start()
                http_server = HttpServer(service, port=0)
                box["addr"] = await http_server.start()
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await http_server.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(10)
        yield box["addr"]
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(10)

    @staticmethod
    def request(addr, method, path, payload=None):
        conn = http.client.HTTPConnection(*addr, timeout=10)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return (
                response.status,
                dict(response.getheaders()),
                json.loads(response.read().decode("utf-8")),
            )
        finally:
            conn.close()

    def test_unversioned_get_marks_deprecation_and_successor(self, server):
        status, headers, payload = self.request(server, "GET", "/healthz")
        assert status == 200 and payload["ok"]
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == '</v1/healthz>; rel="successor-version"'

    def test_v1_route_carries_no_deprecation_header(self, server):
        status, headers, payload = self.request(server, "GET", "/v1/healthz")
        assert status == 200 and payload["ok"]
        assert "Deprecation" not in headers
        assert "Link" not in headers

    def test_shim_payload_matches_v1(self, server):
        _, _, old = self.request(server, "GET", "/metrics")
        _, _, new = self.request(server, "GET", "/v1/metrics")
        assert old.keys() == new.keys()
        assert old["capacity"] == new["capacity"]

    def test_old_submit_and_poll_still_work_end_to_end(self, server):
        status, headers, job = self.request(
            server, "POST", "/jobs", {"design": "OR1200"}
        )
        assert status == 202
        assert headers.get("Deprecation") == "true"
        for _ in range(200):
            status, _, job = self.request(server, "GET", f"/jobs/{job['id']}")
            if job["state"] == "done":
                break
        assert job["state"] == "done"
        assert job["result"]["hpwl"] == 7.0

    def test_shimmed_errors_keep_their_status_codes(self, server):
        status, headers, payload = self.request(server, "GET", "/jobs/job-404")
        assert status == 404
        assert "error" in payload
        assert headers.get("Deprecation") == "true"

    def test_unknown_path_is_a_plain_404_without_shim(self, server):
        status, headers, _ = self.request(server, "GET", "/v2/jobs")
        assert status == 404
        assert "Deprecation" not in headers

    def test_new_exploration_routes_shim_like_every_other_route(self, server):
        """Resources added after the /v1 cut (PR 10's explorations)
        inherit the same unversioned shim — no special-casing."""
        status, headers, payload = self.request(server, "GET", "/explorations")
        assert status == 200 and payload["explorations"] == []
        assert headers.get("Deprecation") == "true"
        assert headers.get("Link") == (
            '</v1/explorations>; rel="successor-version"'
        )
        status, headers, _ = self.request(server, "GET", "/v1/explorations")
        assert status == 200
        assert "Deprecation" not in headers
