"""Tests for design transformations (clone / mirror / window)."""

import numpy as np
import pytest

from repro.netlist import (
    Rect,
    clone_design,
    extract_window,
    mirror_horizontal,
    validate_design,
)


class TestClone:
    def test_independent_positions(self, small_design):
        copy = clone_design(small_design)
        copy.x[copy.movable] += 5.0
        assert not np.allclose(copy.x, small_design.x)

    def test_same_hpwl(self, small_design):
        copy = clone_design(small_design)
        assert copy.hpwl() == pytest.approx(small_design.hpwl())

    def test_topology_preserved(self, small_design):
        copy = clone_design(small_design)
        assert np.array_equal(copy.net_start, small_design.net_start)
        assert copy.cell_names == small_design.cell_names
        assert len(copy.blockages) == len(small_design.blockages)


class TestMirror:
    def test_hpwl_invariant(self, placed_small_design):
        copy = clone_design(placed_small_design)
        mirror_horizontal(copy)
        assert copy.hpwl() == pytest.approx(placed_small_design.hpwl(), rel=1e-9)

    def test_double_mirror_is_identity(self, placed_small_design):
        copy = clone_design(placed_small_design)
        mirror_horizontal(copy)
        mirror_horizontal(copy)
        assert np.allclose(copy.x, placed_small_design.x)
        assert np.allclose(copy.pin_dx, placed_small_design.pin_dx)

    def test_positions_stay_inside_die(self, placed_small_design):
        copy = clone_design(placed_small_design)
        mirror_horizontal(copy)
        die = copy.die
        assert (copy.x >= die.xlo - 1e-9).all()
        assert (copy.x <= die.xhi + 1e-9).all()


class TestExtractWindow:
    def test_basic_extraction(self, placed_small_design):
        die = placed_small_design.die
        window = Rect(die.xlo, die.ylo, die.center.x, die.center.y)
        sub = extract_window(placed_small_design, window)
        assert 0 < sub.num_cells < placed_small_design.num_cells
        assert sub.die == window
        assert validate_design(sub).ok

    def test_positions_preserved(self, placed_small_design):
        die = placed_small_design.die
        window = Rect(die.xlo, die.ylo, die.center.x, die.center.y)
        sub = extract_window(placed_small_design, window)
        for i, name in enumerate(sub.cell_names[:10]):
            j = placed_small_design.cell_names.index(name)
            assert sub.x[i] == pytest.approx(placed_small_design.x[j])

    def test_nets_only_keep_inside_pins(self, placed_small_design):
        die = placed_small_design.die
        window = Rect(die.xlo, die.ylo, die.center.x, die.center.y)
        sub = extract_window(placed_small_design, window)
        assert sub.num_pins <= placed_small_design.num_pins
        assert sub.num_nets <= placed_small_design.num_nets

    def test_disjoint_window_raises(self, placed_small_design):
        with pytest.raises(ValueError):
            extract_window(placed_small_design, Rect(-100, -100, -50, -50))

    def test_empty_window_raises(self, placed_small_design):
        die = placed_small_design.die
        # A sliver along the die edge holds no cell centers (IO pads are
        # at exactly the boundary but their centers are half a site in).
        window = Rect(die.xlo, die.ylo, die.xlo + 1e-6, die.ylo + 1e-6)
        with pytest.raises(ValueError):
            extract_window(placed_small_design, window)

    def test_blockages_clipped(self, placed_small_design):
        die = placed_small_design.die
        window = Rect(die.xlo, die.ylo, die.xhi, die.center.y)
        sub = extract_window(placed_small_design, window)
        for blk in sub.blockages:
            assert window.contains_rect(blk.rect)
