"""Behavioural tests of the engine's internal schedules."""

import numpy as np
import pytest

from repro.placer import GlobalPlacer, PlacementParams


@pytest.fixture(scope="module")
def history(small_spec):
    from repro.benchgen import generate_design

    design = generate_design(small_spec)
    result = GlobalPlacer(design, PlacementParams(max_iters=500)).run()
    assert result.converged
    return result.history


class TestSchedules:
    def test_overflow_trends_down(self, history):
        first = np.mean([h.overflow for h in history[:10]])
        last = np.mean([h.overflow for h in history[-10:]])
        assert last < first

    def test_gamma_tracks_overflow(self, history):
        # log10(gamma) is affine in overflow by the schedule definition.
        overflow = np.array([h.overflow for h in history])
        log_gamma = np.log10([h.gamma for h in history])
        corr = np.corrcoef(overflow, log_gamma)[0, 1]
        assert corr > 0.999

    def test_penalty_factor_grows_overall(self, history):
        assert history[-1].penalty_factor > history[0].penalty_factor

    def test_iterations_indexed_sequentially(self, history):
        assert [h.iteration for h in history] == list(range(len(history)))

    def test_hpwl_grows_from_collapsed_seed(self, history):
        # The seed collapses cells; spreading must raise HPWL overall.
        assert history[-1].hpwl > history[0].hpwl * 0.8


class TestRouterNegotiation:
    def test_rrr_reduces_overflow_under_pressure(self, small_design):
        """With capacity artificially halved, rip-up and reroute must
        recover some of the overflow of the initial pattern pass."""
        from repro.legalizer import legalize_abacus
        from repro.placer import GlobalPlacer
        from repro.router import GlobalRouter, RouterParams

        GlobalPlacer(small_design, PlacementParams(max_iters=300)).run()
        legalize_abacus(small_design)

        no_rrr = GlobalRouter(small_design, RouterParams(rrr_rounds=0)).run()
        with_rrr = GlobalRouter(small_design, RouterParams(rrr_rounds=4)).run()
        assert with_rrr.total_overflow <= no_rrr.total_overflow + 1e-9

    def test_z_patterns_never_worse(self, placed_small_design):
        from repro.router import GlobalRouter, RouterParams

        plain = GlobalRouter(
            placed_small_design, RouterParams(rrr_rounds=0, use_z_patterns=False)
        ).run()
        with_z = GlobalRouter(
            placed_small_design, RouterParams(rrr_rounds=0, use_z_patterns=True)
        ).run()
        assert with_z.total_overflow <= plain.total_overflow + 0.5
