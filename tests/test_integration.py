"""Cross-module integration tests: full flows, determinism, persistence."""

import numpy as np
import pytest

from repro.benchgen import generate_design, make_design
from repro.core import PufferPlacer, StrategyParams
from repro.legalizer import legalize_abacus
from repro.netlist import check_legal, load_design, save_design
from repro.placer import GlobalPlacer, PlacementParams
from repro.router import GlobalRouter


class TestFullPipeline:
    def test_generate_place_legalize_route(self, small_spec):
        design = generate_design(small_spec)
        gp = GlobalPlacer(design, PlacementParams(max_iters=400)).run()
        assert gp.converged
        legalize_abacus(design)
        assert check_legal(design).ok
        report = GlobalRouter(design).run()
        assert report.wirelength > 0

    def test_puffer_deterministic(self, small_spec):
        results = []
        for _ in range(2):
            design = generate_design(small_spec)
            result = PufferPlacer(
                design, placement=PlacementParams(max_iters=300)
            ).run()
            report = GlobalRouter(design).run()
            results.append((result.hpwl, report.hof, report.vof, design.x.copy()))
        assert results[0][0] == pytest.approx(results[1][0], rel=1e-12)
        assert results[0][1] == results[1][1]
        assert np.allclose(results[0][3], results[1][3])

    def test_save_place_load_route_consistent(self, small_spec, tmp_path):
        design = generate_design(small_spec)
        PufferPlacer(design, placement=PlacementParams(max_iters=300)).run()
        report_before = GlobalRouter(design).run()
        save_design(design, str(tmp_path))
        loaded = load_design(str(tmp_path), design.name)
        report_after = GlobalRouter(loaded).run()
        assert report_after.hof == pytest.approx(report_before.hof, abs=1e-9)
        assert report_after.wirelength == pytest.approx(
            report_before.wirelength, rel=1e-9
        )

    def test_padding_improves_congested_design(self):
        """On a congested benchmark, PUFFER must beat the WL-driven flow."""
        name, scale = "MEDIA_SUBSYS", 0.003
        baseline = make_design(name, scale)
        GlobalPlacer(baseline, PlacementParams(max_iters=700)).run()
        legalize_abacus(baseline)
        base_report = GlobalRouter(baseline).run()

        design = make_design(name, scale)
        PufferPlacer(design, placement=PlacementParams(max_iters=700)).run()
        puffer_report = GlobalRouter(design).run()
        assert puffer_report.total_overflow < base_report.total_overflow

    def test_strategy_affects_outcome(self, small_spec):
        a = generate_design(small_spec)
        b = generate_design(small_spec)
        PufferPlacer(
            a, strategy=StrategyParams(mu=0.5), placement=PlacementParams(max_iters=300)
        ).run()
        PufferPlacer(
            b, strategy=StrategyParams(mu=3.0), placement=PlacementParams(max_iters=300)
        ).run()
        assert not np.allclose(a.x, b.x)


class TestRunnerIntegration:
    def test_run_benchmark_row(self):
        from repro.evalkit import SuiteRunConfig, run_benchmark
        from repro.evalkit.runner import place_puffer

        config = SuiteRunConfig(
            scale=0.002, placement=PlacementParams(max_iters=300)
        )
        row = run_benchmark("OR1200", lambda d, p: place_puffer(d, p), config, "PUFFER")
        assert row.benchmark == "OR1200"
        assert row.placer == "PUFFER"
        assert row.runtime > 0
        assert row.hpwl > 0

    def test_run_suite_subset_table(self):
        from repro.evalkit import SuiteRunConfig, format_table2, run_suite

        config = SuiteRunConfig(
            scale=0.002,
            placement=PlacementParams(max_iters=300),
            benchmarks=["ASIC_ENTITY"],
        )
        rows = run_suite(config)
        assert len(rows) == 3
        table = format_table2(rows)
        assert "ASIC_ENTITY" in table
