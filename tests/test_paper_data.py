"""Tests for the embedded paper data and shape checks."""

import pytest

from repro.benchgen import suite_names
from repro.evalkit import (
    PAPER_AVERAGES,
    PAPER_PASS_COUNTS,
    PAPER_TABLE2,
    PlacerMetrics,
    aggregate,
    shape_checks,
)


class TestPaperTable2:
    def test_covers_all_benchmarks(self):
        assert set(PAPER_TABLE2) == set(suite_names())

    def test_three_placers_per_benchmark(self):
        for rows in PAPER_TABLE2.values():
            assert set(rows) == {"Commercial_Inn", "RePlAce", "PUFFER"}

    def test_average_row_consistent_with_rows(self):
        # HOF/VOF averages in the paper are plain means of the columns.
        for placer, (hof_mean, vof_mean, _, _) in PAPER_AVERAGES.items():
            hofs = [PAPER_TABLE2[b][placer][0] for b in PAPER_TABLE2]
            vofs = [PAPER_TABLE2[b][placer][1] for b in PAPER_TABLE2]
            assert sum(hofs) / len(hofs) == pytest.approx(hof_mean, abs=0.005)
            assert sum(vofs) / len(vofs) == pytest.approx(vof_mean, abs=0.005)

    def test_pass_counts_consistent_with_rows(self):
        for placer, (pass_h, pass_v) in PAPER_PASS_COUNTS.items():
            hofs = [PAPER_TABLE2[b][placer][0] for b in PAPER_TABLE2]
            vofs = [PAPER_TABLE2[b][placer][1] for b in PAPER_TABLE2]
            assert sum(h <= 1.0 for h in hofs) == pass_h
            assert sum(v <= 1.0 for v in vofs) == pass_v

    def test_rt_ratios_consistent(self):
        for placer, (_, _, _, rt_ratio) in PAPER_AVERAGES.items():
            ratios = [
                PAPER_TABLE2[b][placer][3] / PAPER_TABLE2[b]["PUFFER"][3]
                for b in PAPER_TABLE2
            ]
            assert sum(ratios) / len(ratios) == pytest.approx(rt_ratio, abs=0.01)


class TestShapeChecks:
    def _rows_from_paper(self):
        name_map = {
            "Commercial_Inn": "Commercial_Inn*",
            "RePlAce": "RePlAce-like",
            "PUFFER": "PUFFER",
        }
        rows = []
        for bench, placers in PAPER_TABLE2.items():
            for placer, (hof, vof, wl, rt) in placers.items():
                rows.append(
                    PlacerMetrics(bench, name_map[placer], hof, vof, wl, rt)
                )
        return rows

    def test_paper_data_passes_its_own_shape_checks(self):
        averages = aggregate(self._rows_from_paper(), "PUFFER")
        checks = shape_checks(averages)
        assert all(c.agrees for c in checks), [c.name for c in checks if not c.agrees]

    def test_shape_checks_detect_disagreement(self):
        rows = self._rows_from_paper()
        # Sabotage: make PUFFER terrible everywhere.
        for r in rows:
            if r.placer == "PUFFER":
                r.hof = 50.0
                r.vof = 50.0
        averages = aggregate(rows, "PUFFER")
        checks = shape_checks(averages)
        assert not all(c.agrees for c in checks)
