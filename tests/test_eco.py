"""Tests for incremental placement sessions (repro.eco).

Covers the delta wire schema, dirty-set computation, the
:class:`EcoSession` engine (including the "metric-close to a cold
rerun" gate from the issue), and the sessions API on the job server.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro import api
from repro.benchgen import make_design
from repro.eco import (
    DELTA_KINDS,
    AddCell,
    ChangeStrategy,
    EcoParams,
    EcoSession,
    MoveMacro,
    RemoveCell,
    ResizeCell,
    compute_dirty,
    delta_from_dict,
    nets_of_cells,
)
from repro.runtime import ArtifactCache
from repro.schema import SCHEMA_VERSION, SchemaError
from repro.serve import (
    HttpServer,
    PlacementService,
    QueueFullError,
    ServiceClosedError,
    ServiceConfig,
    SessionManager,
    SessionStateError,
    UnknownDeltaError,
    UnknownSessionError,
)

SCALE = 0.002
CONFIG = api.RunConfig(scale=SCALE, seed=0)


def run_async(coro):
    return asyncio.run(coro)


def movable_std(design):
    return np.flatnonzero(design.movable & ~design.is_macro)


# ----------------------------------------------------------------------
# Delta wire schema
# ----------------------------------------------------------------------


class TestDeltaWire:
    EXAMPLES = [
        ResizeCell(cell=7, width=12.0),
        ResizeCell(cell=7, width=12.0, height=16.0),
        MoveMacro(macro=2, x=40.0, y=80.0),
        AddCell(name="buf1", width=4.0, height=8.0, x=10.0, y=10.0,
                nets=["n1", "n2"]),
        RemoveCell(cell=3),
        ChangeStrategy(param="theta", value=0.6),
    ]

    @pytest.mark.parametrize("delta", EXAMPLES, ids=lambda d: d.KIND)
    def test_roundtrip_is_lossless(self, delta):
        wire = delta.to_dict()
        json.dumps(wire)  # JSON-safe
        assert wire["kind"] == delta.KIND
        assert wire["schema_version"] == SCHEMA_VERSION
        assert delta_from_dict(wire) == delta

    def test_all_kinds_registered(self):
        assert set(DELTA_KINDS) == {d.KIND for d in self.EXAMPLES}

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            delta_from_dict({"kind": "teleport_cell", "cell": 1})

    def test_unknown_key_rejected(self):
        wire = ResizeCell(cell=1, width=2.0).to_dict()
        wire["widht"] = 3.0
        with pytest.raises(SchemaError, match="widht"):
            delta_from_dict(wire)

    def test_version_mismatch_rejected(self):
        wire = RemoveCell(cell=1).to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            delta_from_dict(wire)

    def test_non_dict_rejected(self):
        with pytest.raises(SchemaError):
            delta_from_dict(["resize_cell"])


# ----------------------------------------------------------------------
# Dirty-set computation
# ----------------------------------------------------------------------


class TestDirtySet:
    def test_seeds_margins_and_window(self, small_design):
        from repro.router import build_grid

        grid = build_grid(small_design)
        seed = int(movable_std(small_design)[0])
        d = small_design
        box = (float(d.x[seed]), float(d.y[seed]),
               float(d.x[seed] + d.w[seed]), float(d.y[seed] + d.h[seed]))
        dirty = compute_dirty(
            d, grid, [seed], [box],
            margin_sites=8, margin_rows=1, route_margin_gcells=2,
        )
        assert seed in set(dirty.cells)
        assert 0.0 < dirty.fraction <= 1.0
        assert set(dirty.nets) >= set(nets_of_cells(d, [seed]))
        gx_lo, gy_lo, gx_hi, gy_hi = dirty.window
        assert 0 <= gx_lo <= gx_hi < grid.nx
        assert 0 <= gy_lo <= gy_hi < grid.ny
        # Macros and fixed cells are never swept in by the margins.
        swept = set(dirty.cells) - {seed}
        assert all(d.movable[c] and not d.is_macro[c] for c in swept)

    def test_nets_of_cells_matches_pin_scan(self, small_design):
        d = small_design
        cells = movable_std(d)[:3]
        expected = sorted(
            {int(d.pin_net[p]) for p in range(d.num_pins)
             if d.pin_cell[p] in set(int(c) for c in cells)}
        )
        assert sorted(int(n) for n in nets_of_cells(d, cells)) == expected


# ----------------------------------------------------------------------
# The session engine
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def started_session():
    """One converged session shared by the engine tests (read via fresh
    deltas; each test leaves the design legal and routed)."""
    session = EcoSession("OR1200", config=CONFIG)
    baseline = session.start()
    return session, baseline


class TestEcoSession:
    def test_start_baseline(self, started_session):
        session, baseline = started_session
        assert session.version == 0
        assert baseline.kind == "start"
        assert baseline.hpwl > 0
        assert session.route_report.state is not None
        json.dumps(baseline.to_summary())

    def test_resize_is_incremental_and_clean(self, started_session):
        session, _ = started_session
        cell = int(movable_std(session.design)[0])
        before = session.version
        step = session.apply(
            ResizeCell(cell=cell, width=float(session.design.w[cell]) + 3.0),
            verify="full",
        )
        assert session.version == before + 1
        assert step.dirty_cells > 0 and step.dirty_nets > 0
        assert "place" not in step.full_fallbacks
        assert step.verify_ok and step.verify_errors == 0

    def test_add_then_remove_cell(self, started_session):
        session, _ = started_session
        n0 = session.design.num_cells
        nets = [session.design.net_names[1], session.design.net_names[2]]
        step = session.apply(
            {"kind": "add_cell", "name": "eco_test_buf", "width": 4.0,
             "height": 8.0, "x": 30.0, "y": 30.0, "nets": nets},
            verify="full",
        )
        assert session.design.num_cells == n0 + 1
        assert step.verify_ok
        new_cell = session.design.cell_names.index("eco_test_buf")
        step = session.apply(RemoveCell(cell=new_cell), verify="cheap")
        assert session.design.num_cells == n0
        assert step.verify_ok

    def test_move_macro(self, started_session):
        session, _ = started_session
        d = session.design
        fixed = np.flatnonzero(d.is_macro | ~d.movable)
        macro = int(fixed[0])
        step = session.apply(
            MoveMacro(macro=macro, x=float(d.x[macro]) + 2.0,
                      y=float(d.y[macro])),
            verify="full",
        )
        assert step.verify_ok and step.verify_errors == 0

    def test_change_strategy_warm_replaces(self, started_session):
        session, _ = started_session
        step = session.apply(
            ChangeStrategy(param="tau", value=2.0), verify="cheap"
        )
        assert "place" in step.full_fallbacks
        assert session.strategy.tau == 2.0
        assert step.verify_ok

    def test_bad_deltas_rejected(self, started_session):
        session, _ = started_session
        d = session.design
        fixed = int(np.flatnonzero(d.is_macro | ~d.movable)[0])
        with pytest.raises(ValueError, match="movable"):
            session.apply(ResizeCell(cell=fixed, width=4.0))
        with pytest.raises(ValueError, match="out of range"):
            session.apply(ResizeCell(cell=d.num_cells + 5, width=4.0))
        with pytest.raises(ValueError, match="strategy parameter"):
            session.apply(ChangeStrategy(param="nope", value=1.0))
        with pytest.raises(SchemaError):
            session.apply({"kind": "resize_cell", "cell": 0, "w": 1.0})

    def test_lifecycle_errors(self):
        session = EcoSession("OR1200", config=CONFIG)
        with pytest.raises(RuntimeError, match="not started"):
            session.apply(RemoveCell(cell=0))
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.start()


class TestColdStartCache:
    def test_restart_restores_from_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "eco-cache")
        first = EcoSession("OR1200", config=CONFIG, cache=cache)
        first.start()
        second = EcoSession("OR1200", config=CONFIG, cache=cache)
        restored = second.start()
        # The cached start skips the placement stage entirely ...
        assert "place" not in restored.seconds
        # ... and lands on bit-identical converged positions.
        np.testing.assert_array_equal(first.design.x, second.design.x)
        np.testing.assert_array_equal(first.design.y, second.design.y)
        np.testing.assert_allclose(first.pad, second.pad)


class TestIncrementalMatchesColdRerun:
    """The issue's closeness gate: after an edit, the incremental result
    must be invariant-clean and metric-close to a from-scratch rerun on
    the edited netlist."""

    def test_resize_close_to_cold(self):
        session = EcoSession("OR1200", config=CONFIG)
        session.start()
        cell = int(movable_std(session.design)[0])
        new_width = float(session.design.w[cell]) + 4.0
        step = session.apply(
            ResizeCell(cell=cell, width=new_width), verify="full"
        )
        assert step.verify_ok and step.verify_errors == 0

        # Cold rerun: regenerate the benchmark, apply the same edit to
        # the netlist, and run the full flow + router from scratch.
        cold_design = make_design("OR1200", SCALE, seed=0)
        cold_design.w[cell] = new_width
        cold = EcoSession(cold_design, config=CONFIG)
        cold_base = cold.start()

        assert step.hpwl == pytest.approx(cold_base.hpwl, rel=0.15)
        assert abs(step.hof - cold_base.hof) < 3.0
        assert abs(step.vof - cold_base.vof) < 3.0


# ----------------------------------------------------------------------
# Sessions on the service (fast fake engine)
# ----------------------------------------------------------------------


class FakeStep:
    def __init__(self, summary):
        self._summary = summary

    def to_summary(self):
        return dict(self._summary)


class FakeEngine:
    """Engine double obeying the SessionManager contract."""

    def __init__(self, request, gate=None, fail_on=None):
        self.request = request
        self.gate = gate
        self.fail_on = fail_on or {}
        self.version = -1
        self.closed = False

    def start(self):
        if self.gate is not None:
            self.gate.wait(10)
        if "start" in self.fail_on:
            raise self.fail_on["start"]
        self.version = 0
        return FakeStep({"version": 0, "kind": "start", "hpwl": 100.0})

    def apply(self, payload, verify="cheap"):
        if self.gate is not None:
            self.gate.wait(10)
        kind = payload["kind"]
        if kind in self.fail_on:
            raise self.fail_on[kind]
        self.version += 1
        return FakeStep({"version": self.version, "kind": kind,
                         "verify": verify})

    def close(self):
        self.closed = True


def make_manager(**engine_kwargs):
    engines = []

    def factory(request):
        engine = FakeEngine(request, **engine_kwargs)
        engines.append(engine)
        return engine

    return SessionManager(engine_factory=factory, max_pending=2), engines


RESIZE = {"kind": "resize_cell", "cell": 1, "width": 4.0}


class TestSessionManager:
    def test_create_apply_close(self):
        async def main():
            manager, engines = make_manager()
            session = manager.create({"design": "OR1200", "verify": "full"})
            session = await manager.wait_ready(session.id, timeout=10)
            assert session.state == "ready"
            assert session.baseline["kind"] == "start"

            delta = manager.submit_delta(session.id, RESIZE)
            delta = await manager.wait_delta(session.id, delta.id, timeout=10)
            assert delta.state == "done"
            assert delta.result["version"] == 1
            assert delta.result["verify"] == "full"  # session-level knob
            json.dumps(session.to_wire())

            manager.close(session.id)
            assert session.state == "closed"
            assert engines[0].closed
            manager.close(session.id)  # idempotent
            with pytest.raises(SessionStateError):
                manager.submit_delta(session.id, RESIZE)

        run_async(main())

    def test_unknown_ids(self):
        async def main():
            manager, _ = make_manager()
            with pytest.raises(UnknownSessionError):
                manager.get("sess-404")
            session = manager.create({"design": "OR1200"})
            await manager.wait_ready(session.id, timeout=10)
            with pytest.raises(UnknownDeltaError):
                manager.delta(session.id, "sess-1-d404")

        run_async(main())

    def test_request_validation(self):
        async def main():
            manager, _ = make_manager()
            with pytest.raises(ValueError, match="design"):
                manager.create({})
            with pytest.raises(ValueError, match="unknown session request"):
                manager.create({"design": "OR1200", "verbose": True})
            with pytest.raises(ValueError, match="verify"):
                manager.create({"design": "OR1200", "verify": "paranoid"})
            session = manager.create({"design": "OR1200"})
            await manager.wait_ready(session.id, timeout=10)
            with pytest.raises(SchemaError):
                manager.submit_delta(session.id, {"kind": "warp_core"})

        run_async(main())

    def test_bad_delta_fails_delta_not_session(self):
        async def main():
            manager, _ = make_manager(
                fail_on={"remove_cell": ValueError("cell 9 out of range")}
            )
            session = manager.create({"design": "OR1200"})
            await manager.wait_ready(session.id, timeout=10)
            bad = manager.submit_delta(
                session.id, {"kind": "remove_cell", "cell": 9}
            )
            bad = await manager.wait_delta(session.id, bad.id, timeout=10)
            assert bad.state == "failed" and "out of range" in bad.error
            assert session.state == "ready"  # session survives
            good = manager.submit_delta(session.id, RESIZE)
            good = await manager.wait_delta(session.id, good.id, timeout=10)
            assert good.state == "done"

        run_async(main())

    def test_unexpected_error_fails_session(self):
        async def main():
            manager, _ = make_manager(fail_on={"start": OSError("disk gone")})
            session = manager.create({"design": "OR1200"})
            session = await manager.wait_ready(session.id, timeout=10)
            assert session.state == "failed"
            assert "disk gone" in session.error
            with pytest.raises(SessionStateError):
                manager.submit_delta(session.id, RESIZE)

        run_async(main())

    def test_backpressure_on_pending_deltas(self):
        gate = threading.Event()

        async def main():
            manager, _ = make_manager(gate=gate)
            session = manager.create({"design": "OR1200"})
            gate.set()
            await manager.wait_ready(session.id, timeout=10)
            gate.clear()
            accepted = []
            with pytest.raises(QueueFullError) as info:
                for _ in range(manager.max_pending + 2):
                    accepted.append(manager.submit_delta(session.id, RESIZE))
            assert info.value.retry_after > 0
            gate.set()
            for delta in accepted:
                delta = await manager.wait_delta(session.id, delta.id,
                                                 timeout=10)
                assert delta.state == "done"

        run_async(main())

    def test_drain_closes_sessions_and_refuses_new(self):
        async def main():
            manager, engines = make_manager()
            session = manager.create({"design": "OR1200"})
            await manager.wait_ready(session.id, timeout=10)
            manager.close_all()
            assert session.state == "closed"
            assert engines[0].closed
            assert manager.counts()["closed"] == 1
            with pytest.raises(ServiceClosedError):
                manager.create({"design": "OR1200"})
            with pytest.raises(ServiceClosedError):
                manager.submit_delta(session.id, RESIZE)

        run_async(main())


class TestServiceIntegration:
    def test_drain_gc_and_healthz_counts(self):
        async def main():
            service = PlacementService(
                ServiceConfig(workers=1, capacity=2),
                runner=lambda request: {},
                session_engine_factory=lambda request: FakeEngine(request),
            )
            await service.start()
            session = service.sessions.create({"design": "OR1200"})
            await service.sessions.wait_ready(session.id, timeout=10)
            assert service.healthz()["sessions"]["ready"] == 1
            await service.drain()
            assert session.state == "closed"
            assert service.healthz()["sessions"]["closed"] == 1
            with pytest.raises(ServiceClosedError):
                service.sessions.create({"design": "OR1200"})
            await service.stop()

        run_async(main())


class TestHttpSessions:
    @staticmethod
    def serve_in_thread(**engine_kwargs):
        from repro.serve import HttpServiceClient

        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    ServiceConfig(workers=1, capacity=2),
                    runner=lambda request: {},
                    session_engine_factory=lambda request: FakeEngine(
                        request, **engine_kwargs
                    ),
                )
                await service.start()
                server = HttpServer(service, port=0)
                box["addr"] = await server.start()
                box["service"] = service
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await server.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(10)

        def shutdown():
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)

        return HttpServiceClient(*box["addr"]), box, shutdown

    def test_full_session_roundtrip_over_http(self):
        from repro.serve import JobStateError, UnknownJobError

        client, box, shutdown = self.serve_in_thread()
        try:
            session = client.create_session(
                "OR1200", config=api.RunConfig(scale=SCALE), verify="cheap"
            )
            assert session["state"] in ("initializing", "ready")
            session = client.wait_session(session["id"], timeout=10, poll=0.02)
            assert session["state"] == "ready"
            assert session["baseline"]["hpwl"] == 100.0
            assert session["version"] == 0

            result = client.apply_delta(session["id"], RESIZE,
                                        wait_timeout=10, poll=0.02)
            assert result["version"] == 1
            result = client.apply_delta(
                session["id"], ResizeCell(cell=2, width=5.0),
                wait_timeout=10, poll=0.02,
            )
            assert result["version"] == 2

            listing = client.sessions()
            assert [s["id"] for s in listing] == [session["id"]]
            assert len(client.session(session["id"])["deltas"]) == 2

            with pytest.raises(ValueError, match="kind"):
                client.submit_delta(session["id"], {"kind": "warp_core"})
            with pytest.raises(UnknownJobError):
                client.session("sess-404")

            closed = client.close_session(session["id"])
            assert closed["state"] == "closed"
            with pytest.raises(JobStateError):
                client.submit_delta(session["id"], RESIZE)
        finally:
            shutdown()

    def test_drain_returns_503_for_sessions(self):
        client, box, shutdown = self.serve_in_thread()
        try:
            session = client.create_session("OR1200")
            client.wait_session(session["id"], timeout=10, poll=0.02)
            future = asyncio.run_coroutine_threadsafe(
                box["service"].drain(), box["loop"]
            )
            future.result(timeout=10)
            with pytest.raises(ServiceClosedError):
                client.create_session("OR1200")
            with pytest.raises(ServiceClosedError):
                client.submit_delta(session["id"], RESIZE)
            assert client.session(session["id"])["state"] == "closed"
        finally:
            shutdown()
