"""Tests for design validation and legality checking."""


from repro.netlist import (
    DesignBuilder,
    Rect,
    Technology,
    check_legal,
    validate_design,
)


def build(cells, die=64.0, fixed=None):
    """cells: list of (x, y, w) placements; fixed: same for fixed cells."""
    tech = Technology()
    b = DesignBuilder("v", tech, Rect(0, 0, die, die))
    for i, (x, y, w) in enumerate(cells):
        b.add_cell(f"c{i}", w, tech.row_height, x=x, y=y)
    for i, (x, y, w, h) in enumerate(fixed or []):
        b.add_cell(f"f{i}", w, h, x=x, y=y, movable=False)
    return b.build()


class TestValidateDesign:
    def test_valid_design_ok(self, small_design):
        assert validate_design(small_design).ok

    def test_fixed_outside_die_is_error(self):
        d = build([(10, 12, 2)], fixed=[(63.5, 10, 4, 8)])
        report = validate_design(d)
        assert not report.ok
        assert any("outside" in e for e in report.errors)

    def test_singleton_nets_warn(self):
        tech = Technology()
        b = DesignBuilder("v", tech, Rect(0, 0, 64, 64))
        c = b.add_cell("c0", 2, 8)
        n = b.add_net("n0")
        b.add_pin(c, n)
        report = validate_design(b.build())
        assert report.ok
        assert any("fewer than two pins" in w for w in report.warnings)

    def test_over_utilization_is_error(self):
        cells = [(8 * i + 4, 4, 8) for i in range(70)]
        d = build(cells, die=16.0)
        report = validate_design(d)
        assert not report.ok

    def test_report_str(self, small_design):
        text = str(validate_design(small_design))
        assert "errors:" in text


class TestCheckLegal:
    def test_legal_row_placement_passes(self):
        # Two cells abutting in row 0 (bottoms at y=0, centers at 4).
        d = build([(1, 4, 2), (3, 4, 2)])
        assert check_legal(d).ok

    def test_overlap_detected(self):
        d = build([(1.0, 4, 2), (2.0, 4, 2)])
        report = check_legal(d)
        assert any("overlap" in e for e in report.errors)

    def test_row_misalignment_detected(self):
        d = build([(1, 5.5, 2)])
        report = check_legal(d)
        assert any("row-aligned" in e for e in report.errors)

    def test_site_misalignment_detected(self):
        d = build([(1.3, 4, 2)])
        report = check_legal(d)
        assert any("site-aligned" in e for e in report.errors)

    def test_outside_die_detected(self):
        d = build([(63.5, 4, 2)])
        report = check_legal(d)
        assert any("outside" in e for e in report.errors)

    def test_macro_overlap_detected(self):
        d = build([(10, 12, 2)], fixed=[(10, 12, 8, 8)])
        report = check_legal(d)
        assert any("fixed" in e for e in report.errors)

    def test_same_x_different_rows_ok(self):
        d = build([(1, 4, 2), (1, 12, 2)])
        assert check_legal(d).ok
