"""Tests for design validation and legality checking."""


from repro.netlist import (
    DesignBuilder,
    Rect,
    Technology,
    check_legal,
    validate_design,
)


def build(cells, die=64.0, fixed=None):
    """cells: list of (x, y, w) placements; fixed: same for fixed cells."""
    tech = Technology()
    b = DesignBuilder("v", tech, Rect(0, 0, die, die))
    for i, (x, y, w) in enumerate(cells):
        b.add_cell(f"c{i}", w, tech.row_height, x=x, y=y)
    for i, (x, y, w, h) in enumerate(fixed or []):
        b.add_cell(f"f{i}", w, h, x=x, y=y, movable=False)
    return b.build()


class TestValidateDesign:
    def test_valid_design_ok(self, small_design):
        assert validate_design(small_design).ok

    def test_fixed_outside_die_is_error(self):
        d = build([(10, 12, 2)], fixed=[(63.5, 10, 4, 8)])
        report = validate_design(d)
        assert not report.ok
        assert any("outside" in e for e in report.errors)

    def test_singleton_nets_warn(self):
        tech = Technology()
        b = DesignBuilder("v", tech, Rect(0, 0, 64, 64))
        c = b.add_cell("c0", 2, 8)
        n = b.add_net("n0")
        b.add_pin(c, n)
        report = validate_design(b.build())
        assert report.ok
        assert any("fewer than two pins" in w for w in report.warnings)

    def test_over_utilization_is_error(self):
        cells = [(8 * i + 4, 4, 8) for i in range(70)]
        d = build(cells, die=16.0)
        report = validate_design(d)
        assert not report.ok

    def test_report_str(self, small_design):
        text = str(validate_design(small_design))
        assert "errors:" in text


class TestCheckLegal:
    def test_legal_row_placement_passes(self):
        # Two cells abutting in row 0 (bottoms at y=0, centers at 4).
        d = build([(1, 4, 2), (3, 4, 2)])
        assert check_legal(d).ok

    def test_overlap_detected(self):
        d = build([(1.0, 4, 2), (2.0, 4, 2)])
        report = check_legal(d)
        assert any("overlap" in e for e in report.errors)

    def test_row_misalignment_detected(self):
        d = build([(1, 5.5, 2)])
        report = check_legal(d)
        assert any("row-aligned" in e for e in report.errors)

    def test_site_misalignment_detected(self):
        d = build([(1.3, 4, 2)])
        report = check_legal(d)
        assert any("site-aligned" in e for e in report.errors)

    def test_outside_die_detected(self):
        d = build([(63.5, 4, 2)])
        report = check_legal(d)
        assert any("outside" in e for e in report.errors)

    def test_macro_overlap_detected(self):
        d = build([(10, 12, 2)], fixed=[(10, 12, 8, 8)])
        report = check_legal(d)
        assert any("fixed" in e for e in report.errors)

    def test_same_x_different_rows_ok(self):
        d = build([(1, 4, 2), (1, 12, 2)])
        assert check_legal(d).ok

    def test_overlap_with_sub_tolerance_y_jitter_detected(self):
        # Two overlapping cells whose bottoms differ by 1e-9: exact-float
        # ylo grouping used to split them into separate "rows" and miss
        # the overlap entirely.
        d = build([(1.0, 4, 2), (2.0, 4 + 1e-9, 2)])
        report = check_legal(d)
        assert any("overlap" in e for e in report.errors)


class TestFreeArea:
    def test_placement_blockage_counts_against_free_area(self):
        # Movable area (192) fits the bare die (256) but not the half
        # left free by a layer-0 (below routing_layers_start) blockage.
        tech = Technology()
        b = DesignBuilder("v", tech, Rect(0, 0, 16, 16))
        for i in range(3):
            b.add_cell(f"c{i}", 8, tech.row_height)
        b.add_blockage(Rect(0, 8, 16, 16), layer=0)
        report = validate_design(b.build())
        assert any("exceeds free die area" in e for e in report.errors)

    def test_routing_blockage_does_not_reduce_free_area(self):
        tech = Technology()
        b = DesignBuilder("v", tech, Rect(0, 0, 16, 16))
        for i in range(3):
            b.add_cell(f"c{i}", 8, tech.row_height)
        b.add_blockage(Rect(0, 8, 16, 16), layer=tech.routing_layers_start)
        assert validate_design(b.build()).ok

    def test_blockage_area_clipped_to_die(self):
        # A placement blockage hanging past the die edge only counts its
        # in-die part (128 of 768); movable area 96 still fits the rest.
        tech = Technology()
        b = DesignBuilder("v", tech, Rect(0, 0, 16, 16))
        for i in range(3):
            b.add_cell(f"c{i}", 4, tech.row_height)
        b.add_blockage(Rect(-16, 8, 32, 24), layer=0)
        assert validate_design(b.build()).ok
