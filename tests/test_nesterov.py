"""Tests for the Nesterov optimizer on analytic objectives."""

import numpy as np

from repro.placer import NesterovOptimizer


def quadratic_problem(dim=10, seed=0):
    rng = np.random.default_rng(seed)
    scales = rng.uniform(0.5, 4.0, dim)
    target = rng.uniform(-2, 2, dim)

    def grad(z):
        return 2 * scales * (z - target)

    return grad, target, rng.uniform(-5, 5, dim)


class TestNesterov:
    def test_converges_on_quadratic(self):
        grad, target, z0 = quadratic_problem()
        opt = NesterovOptimizer(grad, lambda z: z, z0, initial_step=0.05)
        z = z0
        for _ in range(200):
            z = opt.step()
        assert np.allclose(z, target, atol=1e-4)

    def test_faster_than_plain_gradient_descent(self):
        grad, target, z0 = quadratic_problem(dim=30, seed=3)
        opt = NesterovOptimizer(grad, lambda z: z, z0, initial_step=0.02)
        z_nag = z0
        for _ in range(60):
            z_nag = opt.step()
        z_gd = z0.copy()
        for _ in range(60):
            z_gd = z_gd - 0.02 * grad(z_gd)
        assert np.linalg.norm(z_nag - target) < np.linalg.norm(z_gd - target)

    def test_projection_respected(self):
        grad, target, z0 = quadratic_problem(seed=5)
        lo, hi = -0.5, 0.5

        def project(z):
            return np.clip(z, lo, hi)

        opt = NesterovOptimizer(grad, project, z0, initial_step=0.05)
        for _ in range(100):
            z = opt.step()
        assert (z >= lo - 1e-12).all()
        assert (z <= hi + 1e-12).all()
        assert np.allclose(z, np.clip(target, lo, hi), atol=1e-3)

    def test_reset_momentum_allows_objective_change(self):
        grad1, target1, z0 = quadratic_problem(seed=1)
        state = {"grad": grad1}
        opt = NesterovOptimizer(
            lambda z: state["grad"](z), lambda z: z, z0, initial_step=0.05
        )
        for _ in range(50):
            opt.step()
        grad2, target2, _ = quadratic_problem(seed=2)
        state["grad"] = grad2
        opt.reset_momentum()
        for _ in range(200):
            z = opt.step()
        assert np.allclose(z, target2, atol=1e-3)

    def test_grad_eval_count_bounded(self):
        grad, _, z0 = quadratic_problem()
        opt = NesterovOptimizer(grad, lambda z: z, z0, initial_step=0.05, backtracks=2)
        for _ in range(20):
            opt.step()
        # At most 1 (initial) + iterations * (backtracks + 1).
        assert opt.grad_evals <= 1 + 20 * 3

    def test_zero_gradient_is_stationary(self):
        opt = NesterovOptimizer(
            lambda z: np.zeros_like(z), lambda z: z, np.ones(4), initial_step=0.1
        )
        z = opt.step()
        assert np.allclose(z, np.ones(4))
