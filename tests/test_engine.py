"""Integration tests for the global placement engine."""

import numpy as np
import pytest

from repro.placer import GlobalPlacer, PlacementParams, initial_place
from repro.placer.initial import clamp_to_die


class TestInitialPlace:
    def test_positions_inside_die(self, small_design):
        initial_place(small_design, PlacementParams())
        die = small_design.die
        mov = small_design.movable
        assert (small_design.x[mov] - small_design.w[mov] / 2 >= die.xlo - 1e-9).all()
        assert (small_design.x[mov] + small_design.w[mov] / 2 <= die.xhi + 1e-9).all()

    def test_fixed_cells_untouched(self, small_design):
        fixed = ~small_design.movable
        x0 = small_design.x[fixed].copy()
        initial_place(small_design, PlacementParams())
        assert np.array_equal(small_design.x[fixed], x0)

    def test_reduces_hpwl_vs_random(self, small_design, rng):
        die = small_design.die
        mov = small_design.movable
        small_design.x[mov] = rng.uniform(die.xlo, die.xhi, int(mov.sum()))
        small_design.y[mov] = rng.uniform(die.ylo, die.yhi, int(mov.sum()))
        random_hpwl = small_design.hpwl()
        initial_place(small_design, PlacementParams())
        assert small_design.hpwl() < random_hpwl

    def test_deterministic_given_seed(self, small_design):
        initial_place(small_design, PlacementParams(seed=9))
        x1 = small_design.x.copy()
        initial_place(small_design, PlacementParams(seed=9))
        assert np.array_equal(small_design.x, x1)

    def test_clamp_to_die(self, small_design):
        mov = small_design.movable
        small_design.x[mov] = small_design.die.xhi + 100
        clamp_to_die(small_design)
        assert (
            small_design.x[mov] + small_design.w[mov] / 2
            <= small_design.die.xhi + 1e-9
        ).all()


class TestGlobalPlacer:
    def test_converges_on_small_design(self, small_design):
        result = GlobalPlacer(small_design, PlacementParams(max_iters=600)).run()
        assert result.converged
        assert result.overflow < PlacementParams().target_overflow

    def test_beats_random_placement_hpwl(self, small_design, rng):
        result = GlobalPlacer(small_design, PlacementParams(max_iters=600)).run()
        die = small_design.die
        n = small_design.num_cells
        x_rand = rng.uniform(die.xlo, die.xhi, n)
        y_rand = rng.uniform(die.ylo, die.yhi, n)
        x0, y0 = small_design.snapshot_positions()
        small_design.x[small_design.movable] = x_rand[small_design.movable]
        small_design.y[small_design.movable] = y_rand[small_design.movable]
        random_hpwl = small_design.hpwl()
        small_design.restore_positions(x0, y0)
        assert result.hpwl < 0.6 * random_hpwl

    def test_history_recorded(self, small_design):
        result = GlobalPlacer(small_design, PlacementParams(max_iters=100)).run()
        assert len(result.history) == result.iterations
        assert result.history[0].iteration == 0

    def test_params_validation(self, small_design):
        with pytest.raises(ValueError):
            GlobalPlacer(small_design, PlacementParams(target_density=5.0))

    def test_positions_stay_inside_die(self, small_design):
        GlobalPlacer(small_design, PlacementParams(max_iters=150)).run()
        die = small_design.die
        mov = small_design.movable
        assert (small_design.x[mov] - small_design.w[mov] / 2 >= die.xlo - 1e-6).all()
        assert (small_design.y[mov] + small_design.h[mov] / 2 <= die.yhi + 1e-6).all()

    def test_hook_called_and_momentum_reset(self, small_design):
        calls = []

        def hook(state):
            calls.append(state.iteration)
            if len(calls) == 5:
                # Apply a size change once.
                state.set_density_sizes(
                    small_design.w * 1.2, small_design.h.copy()
                )
                return True
            return False

        result = GlobalPlacer(
            small_design, PlacementParams(max_iters=50), hooks=[hook]
        ).run()
        assert len(calls) == result.iterations

    def test_seed_positions_false_uses_current(self, small_design):
        initial_place(small_design, PlacementParams())
        small_design.x[small_design.movable] += 0.123
        x_before = small_design.x.copy()
        placer = GlobalPlacer(
            small_design,
            PlacementParams(max_iters=1, min_iters=1),
            seed_positions=False,
        )
        placer.run()
        # One iteration moves cells, but it must have started from our
        # positions, not re-seeded: displacement should be small.
        moved = np.abs(small_design.x - x_before).max()
        assert moved < small_design.die.width * 0.2
