"""Golden-equivalence suite for :mod:`repro.kernels`.

Every kernel is checked vectorized-vs-reference on randomized inputs —
property-style: many seeded draws covering varying net degrees, designs
with macros/blockages, empty and single-pin nets, cells clamped at the
die boundary, and adversarial cost maps for the maze.  Tolerances: map
kernels agree to ``allclose(rtol=1e-9, atol=1e-9)`` (the backends sum
the same terms in different orders); the maze agrees on path *cost* to
``1e-6`` relative (ties may break to a different equal-cost path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.benchgen import GeneratorSpec, generate_design
from repro.core.congestion import CongestionEstimator
from repro.core.demand import accumulate_demand, build_topologies
from repro.core.rudy import rudy_maps
from repro.netlist import DesignBuilder, Rect, Technology
from repro.placer.density import ElectrostaticDensity
from repro.placer.params import PlacementParams
from repro.router.grid import build_grid
from repro.router.maze import maze_route

MAPS_TOL = dict(rtol=1e-9, atol=1e-9)


def both_backends(fn):
    """Evaluate ``fn()`` under each backend; returns (reference, vectorized)."""
    with kernels.using("reference"):
        ref = fn()
    with kernels.using("vectorized"):
        vec = fn()
    return ref, vec


# ----------------------------------------------------------------------
# Dispatch layer
# ----------------------------------------------------------------------


class TestDispatch:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        assert kernels._from_env() == "vectorized"

    def test_use_returns_previous_and_switches(self):
        ambient = kernels.current()
        previous = kernels.use("reference")
        try:
            assert previous == ambient
            assert kernels.current() == "reference"
        finally:
            kernels.use(previous)

    def test_using_restores_on_exit_and_error(self):
        ambient = kernels.current()
        other = "reference" if ambient == "vectorized" else "vectorized"
        with kernels.using(other):
            assert kernels.current() == other
        assert kernels.current() == ambient
        with pytest.raises(RuntimeError):
            with kernels.using(other):
                raise RuntimeError("boom")
        assert kernels.current() == ambient

    def test_unknown_backend_rejected(self):
        ambient = kernels.current()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.use("numba")
        assert kernels.current() == ambient

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "reference")
        assert kernels._from_env() == "reference"
        monkeypatch.setenv(kernels.ENV_VAR, "bogus")
        with pytest.warns(UserWarning, match="REPRO_KERNELS"):
            assert kernels._from_env() == "vectorized"


# ----------------------------------------------------------------------
# rect_add
# ----------------------------------------------------------------------


class TestRectAdd:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_rects(self, seed):
        rng = np.random.default_rng(seed)
        nx, ny = rng.integers(2, 60, 2)
        n = int(rng.integers(0, 400))
        x0 = rng.integers(0, nx, n)
        x1 = np.minimum(x0 + rng.integers(0, nx, n), nx - 1)
        y0 = rng.integers(0, ny, n)
        y1 = np.minimum(y0 + rng.integers(0, ny, n), ny - 1)
        w = rng.random(n) * 3.0
        ref, vec = both_backends(
            lambda: kernels.rect_add(nx, ny, x0, x1, y0, y1, w)
        )
        np.testing.assert_allclose(vec, ref, **MAPS_TOL)
        # Total mass is exactly the weighted covered area.
        area = (x1 - x0 + 1.0) * (y1 - y0 + 1.0)
        assert vec.sum() == pytest.approx((w * area).sum(), rel=1e-9)

    def test_scalar_weight_and_out_accumulation(self):
        x0 = np.array([0, 2])
        x1 = np.array([4, 2])
        y0 = np.array([1, 0])
        y1 = np.array([1, 4])
        start = np.full((5, 5), 7.0)
        ref, vec = both_backends(
            lambda: kernels.rect_add(5, 5, x0, x1, y0, y1, 0.5, out=start.copy())
        )
        np.testing.assert_allclose(vec, ref, **MAPS_TOL)
        assert vec[0, 0] == 7.0
        assert vec[0, 1] == 7.5
        assert vec[2, 1] == 8.0  # both rectangles overlap here

    def test_empty_batch(self):
        empty = np.zeros(0, dtype=np.int64)
        ref, vec = both_backends(
            lambda: kernels.rect_add(4, 3, empty, empty, empty, empty, 1.0)
        )
        assert ref.shape == vec.shape == (4, 3)
        assert not vec.any() and not ref.any()

    def test_single_cell_and_full_grid_rects(self):
        x0 = np.array([3, 0])
        x1 = np.array([3, 7])
        y0 = np.array([2, 0])
        y1 = np.array([2, 7])
        ref, vec = both_backends(
            lambda: kernels.rect_add(8, 8, x0, x1, y0, y1, np.array([2.0, 1.0]))
        )
        np.testing.assert_allclose(vec, ref, **MAPS_TOL)
        assert vec[3, 2] == 3.0
        assert vec[0, 0] == 1.0


# ----------------------------------------------------------------------
# Demand / RUDY rasterization on whole designs
# ----------------------------------------------------------------------


def _random_design(seed: int):
    rng = np.random.default_rng(seed)
    spec = GeneratorSpec(
        name=f"prop{seed}",
        num_cells=int(rng.integers(60, 220)),
        num_nets=int(rng.integers(90, 320)),
        pins_per_net=float(rng.uniform(2.2, 4.5)),  # varies net degrees
        num_macros=int(rng.integers(0, 4)),  # macros = routing blockages
        num_io=int(rng.integers(0, 10)),
        utilization=float(rng.uniform(0.5, 0.85)),
        seed=seed,
    )
    return generate_design(spec)


def _degenerate_design():
    """Single-pin nets, empty nets, and an all-pins-one-Gcell local net."""
    tech = Technology()
    builder = DesignBuilder("degen", tech, Rect(0, 0, 64, 64))
    cells = [builder.add_cell(f"c{i}", 2, tech.row_height) for i in range(6)]
    empty = builder.add_net("empty")  # no pins at all
    single = builder.add_net("single")  # one pin: skipped by the estimator
    builder.add_pin(cells[0], single)
    local = builder.add_net("local")  # all pins in one Gcell
    for cell in cells[:3]:
        builder.add_pin(cell, local)
    spread = builder.add_net("spread")
    for cell in cells:
        builder.add_pin(cell, spread, dx=0.5)
    design = builder.build()
    # Cluster the local net's cells; spread the rest to distinct Gcells.
    design.x[:] = [4.0, 4.5, 5.0, 20.0, 40.0, 60.0]
    design.y[:] = [4.0, 4.2, 4.4, 30.0, 10.0, 50.0]
    assert empty != single
    return design


class TestDemandEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_designs(self, seed):
        design = _random_design(seed)
        grid = build_grid(design)
        topologies = build_topologies(design, grid)
        ref, vec = both_backends(
            lambda: accumulate_demand(design, grid, topologies)
        )
        np.testing.assert_allclose(vec.dmd_h, ref.dmd_h, **MAPS_TOL)
        np.testing.assert_allclose(vec.dmd_v, ref.dmd_v, **MAPS_TOL)
        np.testing.assert_array_equal(vec.pin_count, ref.pin_count)
        # The I-segment inventory feeds the (order-sensitive) detour
        # expansion: it must match exactly, in order.
        assert vec.i_segments == ref.i_segments

    def test_degenerate_nets(self):
        design = _degenerate_design()
        grid = build_grid(design)
        topologies = build_topologies(design, grid)
        ref, vec = both_backends(
            lambda: accumulate_demand(design, grid, topologies)
        )
        np.testing.assert_allclose(vec.dmd_h, ref.dmd_h, **MAPS_TOL)
        np.testing.assert_allclose(vec.dmd_v, ref.dmd_v, **MAPS_TOL)
        assert vec.i_segments == ref.i_segments

    def test_no_topologies(self, tiny_design):
        grid = build_grid(tiny_design)
        ref, vec = both_backends(
            lambda: accumulate_demand(tiny_design, grid, [])
        )
        np.testing.assert_allclose(vec.dmd_h, ref.dmd_h, **MAPS_TOL)
        assert vec.i_segments == [] and ref.i_segments == []

    def test_estimator_end_to_end(self, small_design):
        def estimate():
            cmap, _, _ = CongestionEstimator(small_design).estimate()
            return cmap

        ref, vec = both_backends(estimate)
        np.testing.assert_allclose(vec.dmd_h, ref.dmd_h, **MAPS_TOL)
        np.testing.assert_allclose(vec.dmd_v, ref.dmd_v, **MAPS_TOL)


class TestRudyEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_designs(self, seed):
        design = _random_design(seed)
        ref, vec = both_backends(lambda: rudy_maps(design)[:2])
        np.testing.assert_allclose(vec[0], ref[0], **MAPS_TOL)
        np.testing.assert_allclose(vec[1], ref[1], **MAPS_TOL)

    def test_degenerate_nets(self):
        design = _degenerate_design()
        ref, vec = both_backends(lambda: rudy_maps(design)[:2])
        np.testing.assert_allclose(vec[0], ref[0], **MAPS_TOL)
        np.testing.assert_allclose(vec[1], ref[1], **MAPS_TOL)


# ----------------------------------------------------------------------
# Density maps
# ----------------------------------------------------------------------


class TestDensityEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_movable_and_fixed_maps(self, seed):
        design = _random_design(seed)

        def build():
            system = ElectrostaticDensity(design, PlacementParams())
            return system.fixed_map, system.movable_density(design.x, design.y)

        (ref_fixed, ref_mov), (vec_fixed, vec_mov) = both_backends(build)
        np.testing.assert_allclose(vec_fixed, ref_fixed, **MAPS_TOL)
        np.testing.assert_allclose(vec_mov, ref_mov, **MAPS_TOL)

    def test_boundary_clamped_cells(self, small_design):
        """Cells pushed onto the die edges hit the reference's
        boundary-bin re-accumulation; the vectorized backend must
        reproduce it."""
        design = small_design
        system = ElectrostaticDensity(design, PlacementParams())
        mov = system.movable_indices
        x = design.x.copy()
        y = design.y.copy()
        die = design.die
        x[mov[: len(mov) // 2]] = die.xhi
        y[mov[len(mov) // 3 :]] = die.yhi
        x[mov[-3:]] = die.xlo
        y[mov[-3:]] = die.ylo
        ref, vec = both_backends(lambda: system.movable_density(x, y))
        np.testing.assert_allclose(vec, ref, **MAPS_TOL)

    def test_padded_sizes(self, small_design):
        """set_sizes (PUFFER padding) changes the bin span; both
        backends must track it."""
        design = small_design
        system = ElectrostaticDensity(design, PlacementParams())
        rng = np.random.default_rng(7)
        system.set_sizes(
            design.w * (1.0 + rng.random(design.num_cells)),
            design.h.copy(),
        )
        ref, vec = both_backends(
            lambda: system.movable_density(design.x, design.y)
        )
        np.testing.assert_allclose(vec, ref, **MAPS_TOL)

    def test_area_preserved(self, small_design):
        system = ElectrostaticDensity(small_design, PlacementParams())
        rho = system.movable_density(small_design.x, small_design.y)
        assert rho.sum() == pytest.approx(system.charge.sum(), rel=1e-6)

    @pytest.mark.parametrize("seed", range(3))
    def test_rect_area_random(self, seed):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(4, 32))
        bin_w, bin_h = rng.uniform(0.5, 3.0, 2)
        n = int(rng.integers(0, 50))
        x0 = rng.uniform(0, dim * bin_w * 0.9, n)
        x1 = x0 + rng.uniform(0.01, dim * bin_w * 0.5, n)
        x1 = np.minimum(x1, dim * bin_w)
        y0 = rng.uniform(0, dim * bin_h * 0.9, n)
        y1 = np.minimum(y0 + rng.uniform(0.01, dim * bin_h * 0.5, n), dim * bin_h)
        ref, vec = both_backends(
            lambda: kernels.rect_area(x0, x1, y0, y1, dim, bin_w, bin_h)
        )
        np.testing.assert_allclose(vec, ref, rtol=1e-9, atol=1e-12)
        assert vec.sum() == pytest.approx(((x1 - x0) * (y1 - y0)).sum(), rel=1e-9)


# ----------------------------------------------------------------------
# Maze search
# ----------------------------------------------------------------------


def _route_cost(route, cost_h, cost_v):
    h_cells, v_cells = route
    return cost_h.ravel()[h_cells].sum() + cost_v.ravel()[v_cells].sum()


class TestMazeEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_costs_equal_path_cost(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(12):
            nx, ny = rng.integers(3, 28, 2)
            cost_h = 1.0 + 9.0 * rng.random((nx, ny))
            cost_v = 1.0 + 9.0 * rng.random((nx, ny))
            if rng.random() < 0.4:  # congestion walls
                cost_h[int(rng.integers(0, nx)), :] += 500.0
                cost_v[:, int(rng.integers(0, ny))] += 500.0
            gx0, gy0 = int(rng.integers(0, nx)), int(rng.integers(0, ny))
            gx1, gy1 = int(rng.integers(0, nx)), int(rng.integers(0, ny))
            if (gx0, gy0) == (gx1, gy1):
                continue
            margin = int(rng.integers(0, 5))
            ref, vec = both_backends(
                lambda: maze_route(gx0, gy0, gx1, gy1, cost_h, cost_v, margin)
            )
            assert (ref is None) == (vec is None)
            if ref is None:
                continue
            ref_cost = _route_cost(ref, cost_h, cost_v)
            vec_cost = _route_cost(vec, cost_h, cost_v)
            assert vec_cost == pytest.approx(ref_cost, rel=1e-6)
            # Both endpoints are charged by any valid route.
            for route in (ref, vec):
                cells = np.concatenate(route)
                assert gx0 * ny + gy0 in cells
                assert gx1 * ny + gy1 in cells

    def test_straight_paths_identical(self):
        cost = np.ones((10, 10))
        for backend in kernels.BACKENDS:
            with kernels.using(backend):
                h, v = maze_route(1, 5, 8, 5, cost, cost, 2)
                assert len(v) == 0
                np.testing.assert_array_equal(
                    h, np.arange(1, 9) * 10 + 5
                )
                h, v = maze_route(3, 2, 3, 7, cost, cost, 2)
                assert len(h) == 0
                np.testing.assert_array_equal(
                    v, 3 * 10 + np.arange(2, 8)
                )

    def test_same_cell_route_is_empty(self):
        cost = np.ones((6, 6))
        for backend in kernels.BACKENDS:
            with kernels.using(backend):
                h, v = maze_route(2, 2, 2, 2, cost, cost, 3)
                assert len(h) == 0 and len(v) == 0

    def test_detour_around_wall(self):
        cost_h = np.ones((9, 9))
        cost_v = np.ones((9, 9))
        cost_h[4, :] = 1000.0  # entering column 4 horizontally is painful
        cost_v[4, :] = 1000.0
        cost_h[4, 8] = 1.0  # except at the top
        cost_v[4, 8] = 1.0
        ref, vec = both_backends(
            lambda: maze_route(0, 0, 8, 0, cost_h, cost_v, 8)
        )
        ref_cost = _route_cost(ref, cost_h, cost_v)
        vec_cost = _route_cost(vec, cost_h, cost_v)
        assert vec_cost == pytest.approx(ref_cost, rel=1e-9)
        assert ref_cost < 100.0  # both detoured over the top


# ----------------------------------------------------------------------
# Abacus trial insertion (legalizer round-2 kernel)
# ----------------------------------------------------------------------


def _random_abacus_state(rng, n):
    """A legal row-segment cluster state: packed left-to-right with
    random gaps inside a segment that sometimes barely fits."""
    w = rng.uniform(0.5, 4.0, n)
    total = w.sum()
    slack = float(rng.uniform(0.0, total * 0.5 + 1.0))
    gaps = rng.uniform(0.0, 1.0, n)
    gaps *= slack * rng.random() / max(gaps.sum(), 1e-12)
    x = np.cumsum(gaps) + np.cumsum(w) - w
    xlo = 0.0
    seg_width = total + slack
    e = rng.uniform(0.1, 5.0, n)
    q = e * (x + rng.uniform(-3.0, 3.0, n))
    return e, q, w, x, xlo, xlo + seg_width, seg_width


class TestAbacusEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_rows(self, seed):
        """Exact (x_left, merges) agreement on random legal states, both
        above and below the vectorized backend's scalar-fallback size."""
        rng = np.random.default_rng(seed)
        checked_none = checked_some = 0
        for _ in range(60):
            n = int(rng.integers(1, 40))
            e, q, w, x, xlo, xhi, seg_width = _random_abacus_state(rng, n)
            width = float(rng.uniform(0.5, 6.0))
            weight = float(rng.uniform(0.1, 4.0))
            target = float(rng.uniform(xlo - 5.0, xhi + 5.0))
            ref, vec = both_backends(
                lambda: kernels.abacus_trial(
                    e, q, w, x, n, xlo, xhi, seg_width, width, weight, target
                )
            )
            assert (ref is None) == (vec is None)
            if ref is None:
                checked_none += 1
                continue
            checked_some += 1
            assert vec[0] == pytest.approx(ref[0], abs=1e-9)
            assert vec[1] == ref[1]
        # The draw must exercise both outcomes or it proves nothing.
        assert checked_none > 0 and checked_some > 0

    def test_deep_merge_chain(self):
        """A fully packed row collapses the whole chain; the suffix-scan
        backend must stop at the same merge count."""
        rng = np.random.default_rng(99)
        n = 50
        w = rng.uniform(1.0, 3.0, n)
        x = np.cumsum(w) - w
        e = rng.uniform(0.5, 2.0, n)
        q = e * x
        xhi = float(x[-1] + w[-1] + 100.0)
        ref, vec = both_backends(
            lambda: kernels.abacus_trial(
                e, q, w, x, n, 0.0, xhi, xhi, 2.0, 1.0, 0.0
            )
        )
        assert ref is not None and vec is not None
        assert vec[1] == ref[1] == n
        assert vec[0] == pytest.approx(ref[0], abs=1e-9)

    def test_overflowing_cell_rejected(self):
        e = np.array([1.0])
        q = np.array([2.0])
        w = np.array([4.0])
        x = np.array([2.0])
        ref, vec = both_backends(
            lambda: kernels.abacus_trial(
                e, q, w, x, 1, 0.0, 8.0, 8.0, 10.0, 1.0, 0.0
            )
        )
        assert ref is None and vec is None

    def test_empty_segment(self):
        z = np.zeros(0)
        ref, vec = both_backends(
            lambda: kernels.abacus_trial(z, z, z, z, 0, 0.0, 10.0, 10.0, 2.0, 1.0, 3.5)
        )
        assert ref == vec == (3.5, 0)


# ----------------------------------------------------------------------
# Batched Steiner construction (RSMT round-2 kernel)
# ----------------------------------------------------------------------


def _random_net_batch(rng, max_deg=14, grid=12):
    batch = int(rng.integers(1, 20))
    degrees = rng.integers(1, max_deg, batch)
    start = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(degrees, out=start[1:])
    x = rng.integers(0, grid, start[-1]).astype(np.float64)
    y = rng.integers(0, grid, start[-1]).astype(np.float64)
    return x, y, start


class TestSteinerEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_nets(self, seed):
        """Bit-exact topology agreement (points, pin flags, edge lists)
        across the degree mix, duplicate pin Gcells included."""
        rng = np.random.default_rng(seed)
        for _ in range(40):
            x, y, start = _random_net_batch(rng)
            ref, vec = both_backends(
                lambda: kernels.steiner_batch(x, y, start, 64)
            )
            assert len(ref) == len(vec) == len(start) - 1
            for r, v in zip(ref, vec):
                for a, b in zip(r, v):
                    np.testing.assert_array_equal(b, a)

    @pytest.mark.parametrize("seed", range(3))
    def test_degree_cap_skips_steinerization(self, seed):
        """Nets above max_degree take the plain-MST path in both
        backends and still agree exactly."""
        rng = np.random.default_rng(seed)
        for _ in range(20):
            x, y, start = _random_net_batch(rng)
            ref, vec = both_backends(
                lambda: kernels.steiner_batch(x, y, start, 4)
            )
            for r, v in zip(ref, vec):
                for a, b in zip(r, v):
                    np.testing.assert_array_equal(b, a)

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_matches_single_net_builder(self, seed):
        """build_rsmt_batch is a drop-in for per-net build_rsmt under
        either backend."""
        from repro.rsmt import build_rsmt_batch
        from repro.rsmt.steiner import build_rsmt

        rng = np.random.default_rng(seed)
        degrees = rng.integers(2, 10, 12)
        start = np.zeros(13, dtype=np.int64)
        np.cumsum(degrees, out=start[1:])
        x = rng.integers(0, 30, start[-1]).astype(np.float64)
        y = rng.integers(0, 30, start[-1]).astype(np.float64)
        for backend in kernels.BACKENDS:
            with kernels.using(backend):
                topologies = build_rsmt_batch(x, y, start)
                for i, topo in enumerate(topologies):
                    single = build_rsmt(
                        x[start[i] : start[i + 1]], y[start[i] : start[i + 1]]
                    )
                    np.testing.assert_array_equal(topo.x, single.x)
                    np.testing.assert_array_equal(topo.y, single.y)
                    np.testing.assert_array_equal(topo.is_pin, single.is_pin)
                    np.testing.assert_array_equal(topo.edges, single.edges)

    def test_trivial_degrees(self):
        """Degree-0/1/2 nets: no tree, no tree, one edge."""
        x = np.array([3.0, 5.0, 9.0])
        y = np.array([2.0, 7.0, 7.0])
        start = np.array([0, 0, 1, 3], dtype=np.int64)
        ref, vec = both_backends(lambda: kernels.steiner_batch(x, y, start, 64))
        for out in (ref, vec):
            assert len(out[0][3]) == 0  # empty net: no edges
            assert len(out[1][3]) == 0  # single pin: no edges
            np.testing.assert_array_equal(out[2][3], [[0, 1]])
        for r, v in zip(ref, vec):
            for a, b in zip(r, v):
                np.testing.assert_array_equal(b, a)
