"""Tests for the technology model (metal stack, tracks, Gcells)."""

import pytest

from repro.netlist import (
    HORIZONTAL,
    VERTICAL,
    MetalLayer,
    Technology,
    default_metal_stack,
    reduced_metal_stack,
)


class TestMetalLayer:
    def test_pitch(self):
        layer = MetalLayer("M2", HORIZONTAL, 0.9, 1.1)
        assert layer.pitch == pytest.approx(2.0)

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            MetalLayer("M2", "D", 1.0, 1.0)

    def test_non_positive_width_raises(self):
        with pytest.raises(ValueError):
            MetalLayer("M2", HORIZONTAL, 0.0, 1.0)


class TestStacks:
    def test_default_stack_alternates(self):
        stack = default_metal_stack()
        for i, layer in enumerate(stack):
            expected = HORIZONTAL if i % 2 == 1 else VERTICAL
            assert layer.direction == expected

    def test_default_stack_balanced_capacity(self):
        tech = Technology()
        h = tech.tracks_per_gcell(HORIZONTAL)
        v = tech.tracks_per_gcell(VERTICAL)
        assert h == pytest.approx(v, rel=0.05)

    def test_reduced_stack_stays_balanced(self):
        # V-starvation of congested designs comes from the power grid,
        # not the stack itself; the reduced stack stays H/V balanced.
        tech = Technology(layers=reduced_metal_stack())
        assert tech.tracks_per_gcell(VERTICAL) == pytest.approx(
            tech.tracks_per_gcell(HORIZONTAL), rel=0.05
        )

    def test_reduced_stack_has_less_capacity(self):
        full = Technology()
        reduced = Technology(layers=reduced_metal_stack())
        for d in (HORIZONTAL, VERTICAL):
            assert reduced.tracks_per_gcell(d) < full.tracks_per_gcell(d)

    def test_too_few_layers_raises(self):
        with pytest.raises(ValueError):
            default_metal_stack(num_layers=1)


class TestTechnology:
    def test_m1_excluded_from_routing(self):
        tech = Technology()
        names = [l.name for l in tech.routing_layers]
        assert "M1" not in names
        assert "M2" in names

    def test_layers_in_direction_subset_of_routing(self):
        tech = Technology()
        routing = set(tech.routing_layers)
        for d in (HORIZONTAL, VERTICAL):
            assert set(tech.layers_in_direction(d)) <= routing

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Technology(site_width=0.0)
        with pytest.raises(ValueError):
            Technology(row_height=-1.0)

    def test_routing_layers_start_bounds(self):
        with pytest.raises(ValueError):
            Technology(routing_layers_start=99)

    def test_tracks_scale_with_gcell(self):
        small = Technology(gcell_size=16.0)
        large = Technology(gcell_size=32.0)
        assert large.tracks_per_gcell(HORIZONTAL) == pytest.approx(
            2 * small.tracks_per_gcell(HORIZONTAL)
        )
