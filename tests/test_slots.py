"""Tests for the fixed-slot placement subsystem (:mod:`repro.slots`)."""

import numpy as np
import pytest

from repro.netlist import DesignBuilder, Rect, Technology, check_legal
from repro.slots import (
    SlotParams,
    apply_assignment,
    generate_slots,
    greedy_assignment,
    movable_std_cells,
    place_slots,
    random_assignment,
    sa_refine,
)
from repro.verify import VerifyContext
from repro.verify.checkers import check_slot_assignment


def _make_design(num_cells=14, seed=3, die_w=48.0, rows=4, macro=False):
    """A small netlist: boundary terminals, mixed-width cells, chain nets."""
    rng = np.random.default_rng(seed)
    tech = Technology()
    rh = tech.row_height
    die = Rect(0.0, 0.0, die_w, rows * rh)
    b = DesignBuilder("slotty", tech, die)
    left = b.add_cell("t_left", 1, 1, x=die.xlo + 0.5, y=die.height / 2,
                      movable=False)
    right = b.add_cell("t_right", 1, 1, x=die.xhi - 0.5, y=die.height / 2,
                       movable=False)
    if macro:
        b.add_cell("block", 8.0, 2 * rh, x=die_w / 2, y=rh, movable=False,
                   macro=True)
    cells = [
        b.add_cell(f"c{i}", float(rng.choice([2, 3, 6])), rh)
        for i in range(num_cells)
    ]
    chain = [left] + cells + [right]
    for i in range(len(chain) - 1):
        net = b.add_net(f"n{i}")
        b.add_pin(chain[i], net)
        b.add_pin(chain[i + 1], net)
    for j in range(num_cells):
        net = b.add_net(f"r{j}")
        b.add_pin(cells[int(rng.integers(num_cells))], net)
        b.add_pin(cells[int(rng.integers(num_cells))], net)
    return b.build()


class TestSlotGrid:
    def test_slots_inside_die_and_site_aligned(self):
        design = _make_design()
        grid = generate_slots(design)
        tech = design.technology
        die = design.die
        assert grid.num_slots > 0
        assert np.all(grid.x >= die.xlo - 1e-9)
        assert np.all(grid.x + grid.w <= die.xhi + 1e-9)
        assert np.all(grid.y >= die.ylo - 1e-9)
        assert np.all(grid.y + grid.row_height <= die.yhi + 1e-9)
        # Site / row alignment comes for free from the packing.
        assert np.allclose((grid.x - die.xlo) % tech.site_width, 0.0)
        assert np.allclose((grid.y - die.ylo) % tech.row_height, 0.0)

    def test_no_overlaps_within_rows(self):
        design = _make_design()
        grid = generate_slots(design)
        for r in np.unique(grid.row):
            mask = grid.row == r
            order = np.argsort(grid.x[mask])
            xs = grid.x[mask][order]
            ws = grid.w[mask][order]
            assert np.all(xs[1:] >= xs[:-1] + ws[:-1] - 1e-9)

    def test_capacity_per_width_class(self):
        design = _make_design()
        grid = generate_slots(design)
        cells = movable_std_cells(design)
        for width in np.unique(design.w[cells]):
            need = int((design.w[cells] >= width).sum())
            have = int((grid.w >= width - 1e-9).sum())
            assert have >= need

    def test_deterministic(self):
        design = _make_design()
        g1 = generate_slots(design, seed=5)
        g2 = generate_slots(design, seed=5)
        np.testing.assert_array_equal(g1.x, g2.x)
        np.testing.assert_array_equal(g1.w, g2.w)

    def test_avoids_macros(self):
        design = _make_design(macro=True)
        grid = generate_slots(design)
        block = design.cell_rect(int(design.cell_names.index("block")))
        for i in range(grid.num_slots):
            rect = grid.rect(i)
            assert rect.overlap_area(block) == pytest.approx(0.0)

    def test_too_small_die_raises(self):
        design = _make_design(num_cells=30, die_w=16.0, rows=1)
        with pytest.raises(ValueError, match="slot grid too small"):
            generate_slots(design)

    def test_multi_row_cell_rejected(self):
        tech = Technology()
        b = DesignBuilder("tall", tech, Rect(0, 0, 32, 4 * tech.row_height))
        b.add_cell("t", 1, 1, x=0.5, y=0.5, movable=False)
        b.add_cell("big", 4, 2 * tech.row_height)
        design = b.build()
        with pytest.raises(ValueError, match="one row tall"):
            generate_slots(design)


def _assert_injective_total(design, grid, assignment):
    cells = movable_std_cells(design)
    slots = assignment[cells]
    assert np.all(slots >= 0)
    assert np.all(slots < grid.num_slots)
    assert len(np.unique(slots)) == len(slots)
    assert np.all(design.w[cells] <= grid.w[slots] + 1e-9)


class TestAssignment:
    def test_greedy_injective_and_fitting(self):
        design = _make_design()
        grid = generate_slots(design)
        assignment = greedy_assignment(design, grid)
        _assert_injective_total(design, grid, assignment)

    def test_greedy_deterministic(self):
        design = _make_design()
        grid = generate_slots(design)
        a1 = greedy_assignment(design, grid)
        a2 = greedy_assignment(design, grid)
        np.testing.assert_array_equal(a1, a2)

    def test_random_injective_and_fitting(self):
        design = _make_design()
        grid = generate_slots(design)
        assignment = random_assignment(design, grid, seed=1)
        _assert_injective_total(design, grid, assignment)

    def test_applied_assignment_is_legal(self):
        design = _make_design()
        grid = generate_slots(design)
        assignment = greedy_assignment(design, grid)
        apply_assignment(design, grid, assignment)
        assert check_legal(design).ok

    def test_sa_never_worse_than_start(self):
        design = _make_design(num_cells=20, die_w=64.0)
        grid = generate_slots(design)
        assignment = greedy_assignment(design, grid)
        apply_assignment(design, grid, assignment)
        start = design.hpwl()
        sa_refine(design, grid, assignment, SlotParams(sa_iters=3000), seed=2)
        assert design.hpwl() <= start + 1e-9
        _assert_injective_total(design, grid, assignment)
        assert check_legal(design).ok


class TestPlaceSlots:
    def test_end_to_end(self):
        design = _make_design()
        result = place_slots(design, seed=0)
        assert result.hpwl_final <= result.hpwl_initial + 1e-9
        assert result.hpwl_final == pytest.approx(design.hpwl())
        _assert_injective_total(design, result.slot_grid, result.slot_assignment)
        assert check_legal(design).ok

    def test_deterministic(self):
        d1, d2 = _make_design(), _make_design()
        r1 = place_slots(d1, seed=4)
        r2 = place_slots(d2, seed=4)
        np.testing.assert_array_equal(r1.slot_assignment, r2.slot_assignment)
        assert r1.hpwl_final == r2.hpwl_final

    def test_zero_sa_iters_keeps_initial(self):
        design = _make_design()
        result = place_slots(design, SlotParams(sa_iters=0))
        assert result.hpwl_final == result.hpwl_initial
        assert result.sa.accepted == 0

    def test_random_initial_strategy(self):
        design = _make_design()
        result = place_slots(design, SlotParams(initial="random", sa_iters=500))
        _assert_injective_total(design, result.slot_grid, result.slot_assignment)


class TestSlotParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"margin": 0.5},
            {"initial": "psychic"},
            {"sa_iters": -1},
            {"sa_swap_prob": 1.5},
            {"sa_temp": 0.0},
            {"sa_cooling": 0.0},
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            SlotParams(**kwargs).validate()

    def test_round_trip(self):
        params = SlotParams(margin=1.3, sa_iters=77)
        assert SlotParams.from_dict(params.to_dict()) == params


class TestChecker:
    def _context(self):
        design = _make_design()
        result = place_slots(design, SlotParams(sa_iters=200))
        ctx = VerifyContext(
            design=design,
            slot_grid=result.slot_grid,
            slot_assignment=result.slot_assignment,
        )
        return design, result, ctx

    def test_clean_run_passes(self):
        _design, _result, ctx = self._context()
        assert check_slot_assignment(ctx) == []

    def test_skipped_without_inputs(self):
        design = _make_design()
        assert check_slot_assignment(VerifyContext(design=design)) == []

    def test_duplicate_slot_detected(self):
        design, result, ctx = self._context()
        cells = movable_std_cells(design)
        result.slot_assignment[cells[1]] = result.slot_assignment[cells[0]]
        messages = [v.message for v in check_slot_assignment(ctx)]
        assert any("more than one cell" in m for m in messages)

    def test_unassigned_cell_detected(self):
        design, result, ctx = self._context()
        cells = movable_std_cells(design)
        result.slot_assignment[cells[0]] = -1
        messages = [v.message for v in check_slot_assignment(ctx)]
        assert any("without a slot" in m for m in messages)

    def test_drifted_position_detected(self):
        design, result, ctx = self._context()
        cells = movable_std_cells(design)
        design.x[cells[0]] += 3.0
        messages = [v.message for v in check_slot_assignment(ctx)]
        assert any("not at their slot position" in m for m in messages)

    def test_out_of_range_slot_detected(self):
        design, result, ctx = self._context()
        cells = movable_std_cells(design)
        result.slot_assignment[cells[0]] = result.slot_grid.num_slots + 7
        messages = [v.message for v in check_slot_assignment(ctx)]
        assert any("outside the grid" in m for m in messages)
