"""Tests for the parallel job-execution runtime (repro.runtime)."""

import os
import time

import pytest

from repro.runtime import (
    MISSING,
    ArtifactCache,
    CheckpointError,
    Journal,
    Task,
    TaskExecutionError,
    TaskExecutor,
    TaskTimeoutError,
    Telemetry,
    WorkerCrashError,
    stable_hash,
)


# Task bodies must live at module top level to cross process boundaries.
def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"boom {x}")


def _crash(x):
    os._exit(13)


def _sleep_forever(x):
    time.sleep(60)


def _flaky_via_file(path, fail_times):
    """Fails the first ``fail_times`` calls, counting across processes."""
    count = 0
    if os.path.exists(path):
        with open(path) as f:
            count = int(f.read() or 0)
    with open(path, "w") as f:
        f.write(str(count + 1))
    if count < fail_times:
        raise RuntimeError(f"flaky attempt {count}")
    return "recovered"


class TestStableHash:
    def test_insensitive_to_dict_order(self):
        assert stable_hash({"a": 1, "b": 2.5}) == stable_hash({"b": 2.5, "a": 1})

    def test_sensitive_to_values_and_types(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
        assert stable_hash({"a": 1}) != stable_hash({"a": 1.0})

    def test_dataclasses_hash_by_fields(self):
        from repro.placer import PlacementParams

        assert stable_hash(PlacementParams()) == stable_hash(PlacementParams())
        assert stable_hash(PlacementParams()) != stable_hash(
            PlacementParams(max_iters=123)
        )

    def test_numpy_scalars_canonicalize(self):
        import numpy as np

        assert stable_hash({"x": np.int64(3)}) == stable_hash({"x": 3})
        assert stable_hash({"x": np.float64(0.25)}) == stable_hash({"x": 0.25})

    def test_int_and_str_dict_keys_collide(self):
        # Documented behavior: dict keys canonicalize through str() so
        # keys survive a JSON round-trip; {1: v} and {"1": v} are the
        # same payload.  Values keep their types ({"a": 1} != {"a": "1"}).
        assert stable_hash({1: "v"}) == stable_hash({"1": "v"})
        assert stable_hash({"a": 1}) != stable_hash({"a": "1"})

    def test_unhashable_payload_raises(self):
        with pytest.raises(TypeError):
            stable_hash({"fn": lambda: None})


class TestExecutorInline:
    def test_runs_in_order(self):
        executor = TaskExecutor(jobs=1)
        results = executor.run([Task(f"t{i}", _double, (i,)) for i in range(4)])
        assert [r.value for r in results] == [0, 2, 4, 6]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_retry_then_succeed(self, tmp_path):
        counter = str(tmp_path / "count")
        executor = TaskExecutor(jobs=1, retries=3, backoff=0.0)
        results = executor.run([Task("f", _flaky_via_file, (counter, 2))])
        assert results[0].ok
        assert results[0].value == "recovered"
        assert results[0].attempts == 3

    def test_exhausted_retries_fail(self):
        telemetry = Telemetry()
        executor = TaskExecutor(jobs=1, retries=1, backoff=0.0, telemetry=telemetry)
        results = executor.run([Task("b", _boom, (1,))])
        assert not results[0].ok
        assert isinstance(results[0].error, TaskExecutionError)
        assert results[0].attempts == 2
        assert telemetry.retried == 1
        assert telemetry.failed == 1

    def test_duplicate_keys_rejected(self):
        executor = TaskExecutor(jobs=1)
        with pytest.raises(ValueError):
            executor.run([Task("k", _double, (1,)), Task("k", _double, (2,))])

    def test_on_result_sees_completion(self):
        seen = []
        TaskExecutor(jobs=1).run(
            [Task("a", _double, (1,))], on_result=lambda r: seen.append(r.key)
        )
        assert seen == ["a"]


class TestExecutorPool:
    def test_parallel_results_in_task_order(self):
        executor = TaskExecutor(jobs=2)
        results = executor.run([Task(f"t{i}", _double, (i,)) for i in range(5)])
        assert [r.value for r in results] == [0, 2, 4, 6, 8]

    def test_retry_across_processes(self, tmp_path):
        counter = str(tmp_path / "count")
        executor = TaskExecutor(jobs=2, retries=2, backoff=0.01)
        results = executor.run([Task("f", _flaky_via_file, (counter, 1))])
        assert results[0].ok
        assert results[0].attempts == 2

    def test_worker_crash_recovery(self):
        telemetry = Telemetry()
        executor = TaskExecutor(jobs=2, retries=1, backoff=0.01, telemetry=telemetry)
        results = executor.run(
            [Task("crash", _crash, (1,)), Task("ok", _double, (4,))]
        )
        by_key = {r.key: r for r in results}
        assert by_key["ok"].ok
        assert by_key["ok"].value == 8
        # Innocents are never charged for someone else's crash.
        assert by_key["ok"].attempts == 1
        assert not by_key["crash"].ok
        assert isinstance(by_key["crash"].error, WorkerCrashError)
        assert by_key["crash"].attempts == 2
        assert telemetry.count("pool_restarted") >= 1

    def test_timeout_kills_hung_worker(self):
        executor = TaskExecutor(jobs=2, retries=0)
        start = time.perf_counter()
        results = executor.run(
            [
                Task("hung", _sleep_forever, (1,), timeout=0.5),
                Task("ok", _double, (3,)),
            ]
        )
        elapsed = time.perf_counter() - start
        by_key = {r.key: r for r in results}
        assert isinstance(by_key["hung"].error, TaskTimeoutError)
        assert by_key["ok"].ok
        assert elapsed < 30  # nowhere near the 60s sleep

    def test_unpicklable_degrades_inline(self):
        telemetry = Telemetry()
        executor = TaskExecutor(jobs=2, telemetry=telemetry)
        results = executor.run([Task("l", lambda: 99)])
        assert results[0].ok
        assert results[0].value == 99
        assert telemetry.count("task_inline") == 1

    def test_map_returns_values_and_raises_on_failure(self):
        executor = TaskExecutor(jobs=2)
        assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        with pytest.raises(TaskExecutionError):
            executor.map(_boom, [1])


def _pid(x=None):
    return os.getpid()


class TestExecutorShard:
    """persistent=True + force_pool=True: the serving-shard configuration."""

    def _shard(self, **kw):
        kw.setdefault("jobs", 1)
        kw.setdefault("retries", 0)
        return TaskExecutor(persistent=True, force_pool=True, **kw)

    def test_force_pool_runs_out_of_process(self):
        executor = self._shard()
        try:
            result = executor.run_one(Task("p", _pid))
            assert result.ok
            assert result.value != os.getpid()
        finally:
            executor.close()

    def test_persistent_pool_reuses_worker_across_runs(self):
        executor = self._shard()
        try:
            executor.warm()
            first = executor.run_one(Task("a", _pid))
            second = executor.run_one(Task("b", _pid))
            assert first.ok and second.ok
            assert first.value == second.value
        finally:
            executor.close()

    def test_non_persistent_pool_forks_fresh_workers(self):
        executor = TaskExecutor(jobs=1, retries=0, force_pool=True)
        first = executor.run_one(Task("a", _pid))
        second = executor.run_one(Task("b", _pid))
        assert first.ok and second.ok
        assert first.value != second.value

    def test_abort_fails_in_flight_task_and_shard_recovers(self):
        import threading

        executor = self._shard()
        try:
            executor.warm()
            box = {}

            def run():
                box["r"] = executor.run_one(Task("hung", _sleep_forever, (1,)))

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.3)
            executor.abort()
            thread.join(timeout=15)
            assert not thread.is_alive()
            assert not box["r"].ok
            assert isinstance(box["r"].error, WorkerCrashError)
            # The shard recycles: the next submit runs in a fresh worker.
            after = executor.run_one(Task("next", _pid))
            assert after.ok
        finally:
            executor.close()

    def test_timeout_recycles_persistent_shard(self):
        executor = self._shard()
        try:
            hung = executor.run_one(Task("hung", _sleep_forever, (1,), timeout=0.3))
            assert isinstance(hung.error, TaskTimeoutError)
            after = executor.run_one(Task("next", _double, (21,)))
            assert after.ok
            assert after.value == 42
        finally:
            executor.close()

    def test_abort_and_close_are_idempotent(self):
        executor = self._shard()
        executor.abort()  # nothing in flight, nothing retained
        executor.warm()
        executor.close()
        executor.close()
        executor.abort()

    def test_warm_is_noop_without_persistence(self):
        executor = TaskExecutor(jobs=1)
        executor.warm()
        assert executor._pool is None


class TestArtifactCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = stable_hash({"a": 1})
        assert cache.get(key) is MISSING
        cache.put(key, {"rows": [1, 2]})
        assert cache.get(key) == {"rows": [1, 2]}
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_param_change_changes_key(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put(stable_hash({"scale": 0.004}), "result-a")
        assert cache.get(stable_hash({"scale": 0.002})) is MISSING

    def test_invalidate(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = stable_hash({"a": 1})
        cache.put(key, 42)
        cache.invalidate(key)
        assert cache.get(key) is MISSING

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = stable_hash({"a": 1})
        cache.put(key, 42)
        path = cache._path(key)
        with open(path, "wb") as f:
            f.write(b"\x80garbage")
        assert cache.get(key) is MISSING
        assert not os.path.exists(path)

    def test_clear(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        for i in range(3):
            cache.put(stable_hash({"i": i}), i)
        cache.clear()
        assert cache.get(stable_hash({"i": 0})) is MISSING

    def test_none_is_a_legitimate_value(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = stable_hash({"a": 1})
        cache.put(key, None)
        assert cache.get(key) is None

    def test_put_cleans_tmp_file_when_replace_fails(self, tmp_path, monkeypatch):
        from repro.runtime import cache as cache_mod

        cache = ArtifactCache(str(tmp_path))
        key = stable_hash({"a": 1})

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(cache_mod.os, "replace", failing_replace)
        with pytest.raises(OSError):
            cache.put(key, 42)
        monkeypatch.undo()
        leftovers = [
            name
            for _dir, _sub, files in os.walk(str(tmp_path))
            for name in files
        ]
        assert leftovers == []
        assert cache.get(key) is MISSING

    def test_clear_keeps_counters(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        key = stable_hash({"a": 1})
        cache.put(key, 42)
        assert cache.get(key) == 42
        cache.clear()
        # clear() drops entries, not the handle's hit/miss history.
        assert cache.stats() == {"hits": 1, "misses": 0}
        assert cache.get(key) is MISSING
        assert cache.stats() == {"hits": 1, "misses": 1}


class TestJournal:
    def test_append_and_records(self, tmp_path):
        journal = Journal(str(tmp_path / "j.journal"))
        journal.append({"key": "a", "v": 1})
        journal.append({"key": "b", "v": 2})
        assert [r["key"] for r in journal.records()] == ["a", "b"]
        assert journal.completed()["b"]["v"] == 2

    def test_remainder_preserves_order(self, tmp_path):
        journal = Journal(str(tmp_path / "j.journal"))
        journal.append({"key": "b"})
        assert journal.remainder(["a", "b", "c"]) == ["a", "c"]

    def test_missing_key_rejected(self, tmp_path):
        journal = Journal(str(tmp_path / "j.journal"))
        with pytest.raises(CheckpointError):
            journal.append({"v": 1})

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(str(path))
        journal.append({"key": "a"})
        journal.append({"key": "b"})
        # Simulate a kill mid-append: truncate inside the final record.
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        assert [r["key"] for r in journal.records()] == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        path.write_text('not json\n{"key": "a"}\n')
        with pytest.raises(CheckpointError):
            Journal(str(path)).records()

    def test_clear(self, tmp_path):
        journal = Journal(str(tmp_path / "j.journal"))
        journal.append({"key": "a"})
        journal.clear()
        assert journal.records() == []


class TestTelemetry:
    def test_counters_and_summary(self):
        from repro.runtime import CACHE_HIT, TASK_FINISHED, RunEvent

        telemetry = Telemetry()
        telemetry.emit(RunEvent(kind=TASK_FINISHED, key="a", wall_time=1.5))
        telemetry.emit(RunEvent(kind=CACHE_HIT, key="b"))
        assert telemetry.finished == 1
        assert telemetry.cache_hits == 1
        assert telemetry.task_seconds == 1.5
        assert "1 done" in telemetry.summary()
        snap = telemetry.snapshot()
        assert snap["counters"][TASK_FINISHED] == 1

    def test_console_sink_filters(self, capsys):
        import io

        from repro.runtime import TASK_FINISHED, TASK_STARTED, RunEvent, console_sink

        buf = io.StringIO()
        sink = console_sink(stream=buf)
        sink(RunEvent(kind=TASK_STARTED, key="a"))
        sink(RunEvent(kind=TASK_FINISHED, key="a", wall_time=0.5))
        out = buf.getvalue()
        assert "task_started" not in out
        assert "task_finished" in out


class TestBatchedMinimize:
    def test_batch_one_is_bit_identical(self):
        import numpy as np

        from repro.tpe import Space, Uniform, minimize

        def objective(params):
            return (params["x"] - 0.3) ** 2

        space = Space([Uniform("x", 0.0, 1.0)])
        a = minimize(objective, space, max_evals=20, patience=50, rng=3)
        b = minimize(objective, space, max_evals=20, patience=50, rng=3, batch_size=1)
        c = minimize(
            objective, space, max_evals=20, patience=50, rng=3, batch_size=1,
            evaluator=lambda batch: [objective(p) for p in batch],
        )
        assert [t.params for t in a.trials] == [t.params for t in b.trials]
        assert [t.loss for t in a.trials] == [t.loss for t in c.trials]

    def test_batched_respects_budget_and_patience(self):
        from repro.tpe import Space, Uniform, minimize

        space = Space([Uniform("x", 0.0, 1.0)])
        result = minimize(
            lambda p: 1.0, space, max_evals=10, patience=3, batch_size=4, rng=0
        )
        assert result.stopped_early
        assert len(result.trials) <= 8  # stops within the batch that fired

    def test_mismatched_evaluator_rejected(self):
        from repro.tpe import Space, Uniform, minimize

        space = Space([Uniform("x", 0.0, 1.0)])
        with pytest.raises(ValueError):
            minimize(
                lambda p: 0.0, space, max_evals=4, batch_size=2, rng=0,
                evaluator=lambda batch: [0.0],
            )
