"""Wire-format tests: versioned, lossless config round-trips (repro.schema)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.core import StrategyParams
from repro.placer import PlacementParams
from repro.router import RouterParams
from repro.router.cost import CostParams
from repro.runtime import stable_hash
from repro.schema import (
    SCHEMA_VERSION,
    ExplorationReport,
    JobEvent,
    JobProgress,
    SchemaError,
    Trial,
)
from repro.verify import LEVELS

fast_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)

placement_params = st.builds(
    PlacementParams,
    target_density=st.floats(0.1, 1.0),
    grid_dim=st.one_of(st.none(), st.integers(8, 256)),
    target_overflow=st.floats(0.01, 0.5),
    max_iters=st.integers(30, 2000),
    min_iters=st.integers(1, 30),
    gamma_scale=positive,
    initial_noise=st.floats(0.0, 2.0),
    initial_placer=st.sampled_from(["star", "quadratic"]),
    seed=st.integers(0, 2**31),
    verbose=st.booleans(),
)

router_params = st.builds(
    RouterParams,
    rrr_rounds=st.integers(0, 8),
    cost=st.builds(
        CostParams,
        congestion_weight=positive,
        history_increment=st.floats(0.0, 10.0),
        slack=st.floats(0.1, 1.0),
    ),
    maze_margin=st.integers(0, 20),
    pin_demand=st.floats(0.0, 1.0),
    use_z_patterns=st.booleans(),
)

strategy_params = st.builds(
    StrategyParams,
    alpha_local_cg=finite,
    beta=finite,
    mu=positive,
    xi=st.integers(0, 10),
    kernel_size=st.integers(1, 9),
    legal_area_cap=st.floats(0.0, 0.5),
    legalizer=st.sampled_from(["abacus", "tetris"]),
)

run_configs = st.builds(
    api.RunConfig,
    scale=positive,
    seed=st.integers(0, 2**31),
    placement=placement_params,
    router=router_params,
    strategy=st.one_of(st.none(), strategy_params),
    verify=st.sampled_from(LEVELS),
)


class TestRandomizedRoundTrips:
    @given(config=run_configs)
    @fast_settings
    def test_runconfig_round_trips_bit_identically(self, config):
        assert api.RunConfig.from_dict(config.to_dict()) == config

    @given(config=run_configs)
    @fast_settings
    def test_runconfig_survives_json(self, config):
        wire = json.loads(json.dumps(config.to_dict()))
        assert api.RunConfig.from_dict(wire) == config

    @given(config=run_configs)
    @fast_settings
    def test_cache_key_reproducible_across_serialization(self, config):
        """The memo key of a config equals the key of its round-trip."""
        wire = json.loads(json.dumps(config.to_dict()))
        rebuilt = api.RunConfig.from_dict(wire)
        assert stable_hash(config.to_dict()) == stable_hash(rebuilt.to_dict())

    @given(params=placement_params)
    @fast_settings
    def test_placement_params_round_trip(self, params):
        assert PlacementParams.from_dict(params.to_dict()) == params

    @given(params=router_params)
    @fast_settings
    def test_router_params_round_trip_with_nested_cost(self, params):
        rebuilt = RouterParams.from_dict(json.loads(json.dumps(params.to_dict())))
        assert rebuilt == params
        assert isinstance(rebuilt.cost, CostParams)

    @given(params=strategy_params)
    @fast_settings
    def test_strategy_params_round_trip(self, params):
        assert StrategyParams.from_dict(params.to_dict()) == params


metric_values = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.integers(-(2**31), 2**31),
    st.booleans(),
)

job_progress = st.builds(
    JobProgress,
    stage=st.sampled_from(["gp", "padding", "route"]),
    step=st.integers(0, 10_000),
    metrics=st.dictionaries(
        st.sampled_from(["hpwl", "overflow", "round", "gp_iteration"]),
        metric_values,
        max_size=4,
    ),
)

job_events = st.one_of(
    st.builds(
        JobEvent,
        seq=st.integers(0, 2**31),
        kind=st.just("state"),
        job_id=st.uuids().map(str),
        ts=st.floats(0, 2e9, allow_nan=False),
        state=st.sampled_from(["queued", "running", "done", "failed", "cancelled"]),
        progress=st.none(),
    ),
    st.builds(
        JobEvent,
        seq=st.integers(0, 2**31),
        kind=st.just("progress"),
        job_id=st.uuids().map(str),
        ts=st.floats(0, 2e9, allow_nan=False),
        state=st.none(),
        progress=job_progress,
    ),
)


class TestJobEventRoundTrips:
    @given(event=job_events)
    @fast_settings
    def test_event_round_trips_bit_identically(self, event):
        assert JobEvent.from_dict(event.to_dict()) == event

    @given(event=job_events)
    @fast_settings
    def test_event_survives_json(self, event):
        wire = json.loads(json.dumps(event.to_dict()))
        rebuilt = JobEvent.from_dict(wire)
        assert rebuilt == event
        if event.kind == "progress":
            assert isinstance(rebuilt.progress, JobProgress)

    @given(progress=job_progress)
    @fast_settings
    def test_progress_round_trips(self, progress):
        assert JobProgress.from_dict(progress.to_dict()) == progress

    def test_event_version_stamped_and_nested(self):
        event = JobEvent(
            seq=0, kind="progress", job_id="j", ts=1.0,
            progress=JobProgress(stage="gp", step=3, metrics={"hpwl": 5.0}),
        )
        wire = event.to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION
        assert wire["progress"]["schema_version"] == SCHEMA_VERSION

    def test_unknown_event_key_rejected(self):
        wire = JobEvent(seq=0, kind="state", job_id="j", ts=0.0, state="done").to_dict()
        wire["sequence"] = 1
        with pytest.raises(SchemaError, match="sequence"):
            JobEvent.from_dict(wire)

    def test_bad_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            JobEvent(seq=0, kind="telemetry", job_id="j", ts=0.0)

    def test_state_event_requires_state(self):
        with pytest.raises(SchemaError, match="state"):
            JobEvent(seq=0, kind="state", job_id="j", ts=0.0)

    def test_progress_event_requires_payload(self):
        with pytest.raises(SchemaError, match="progress"):
            JobEvent(seq=1, kind="progress", job_id="j", ts=0.0)

    def test_bad_stage_and_step_rejected(self):
        with pytest.raises(SchemaError, match="stage"):
            JobProgress(stage="detailed", step=0)
        with pytest.raises(SchemaError, match="step"):
            JobProgress(stage="gp", step=-1)

    def test_unsupported_event_version_rejected(self):
        wire = JobEvent(seq=0, kind="state", job_id="j", ts=0.0, state="done").to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            JobEvent.from_dict(wire)


space_values = st.one_of(
    finite,
    st.integers(-(2**31), 2**31),
    st.text(max_size=8),
)

param_dicts = st.dictionaries(
    st.sampled_from(["alpha_local_cg", "beta", "mu", "xi", "legalizer"]),
    space_values,
    max_size=4,
)

explore_configs = st.builds(
    api.ExploreConfig,
    design=st.sampled_from(["OR1200", "CT_SCAN", "ASIC_ENTITY"]),
    scale=positive,
    budget=st.integers(1, 64),
    group_evals=st.one_of(st.none(), st.integers(1, 32)),
    patience=st.one_of(st.none(), st.integers(1, 32)),
    max_group_rounds=st.integers(1, 4),
    seed=st.integers(0, 2**31),
    batch_size=st.integers(1, 16),
    wl_weight=st.floats(0.0, 1.0),
    priors=st.sampled_from(api.PRIOR_MODES),
    prior_limit=st.integers(0, 256),
)

wire_trials = st.builds(
    Trial,
    index=st.integers(0, 2**31),
    stage=st.sampled_from(["global", "formula", "schedule", "smoothing"]),
    params=param_dicts,
    loss=finite,
    overflow=st.one_of(st.none(), finite),
    wirelength=st.one_of(st.none(), finite),
    cached=st.booleans(),
)

exploration_reports = st.builds(
    ExplorationReport,
    design=st.sampled_from(["OR1200", "DES_PERF"]),
    params=param_dicts,
    best_loss=finite,
    best_params=param_dicts,
    evaluations=st.integers(0, 10**6),
    group_rounds=st.integers(0, 16),
    history=st.lists(
        st.tuples(
            st.sampled_from(["global", "formula", "schedule"]), finite
        ).map(list),
        max_size=6,
    ),
    trials=st.lists(wire_trials, max_size=3),
)

trial_events = st.builds(
    JobEvent,
    seq=st.integers(0, 2**31),
    kind=st.just("trial"),
    job_id=st.uuids().map(str),
    ts=st.floats(0, 2e9, allow_nan=False),
    state=st.none(),
    progress=st.none(),
    trial=wire_trials,
)


class TestExplorationWireRoundTrips:
    """PR-10 wire types: ExploreConfig, Trial, ExplorationReport."""

    @given(config=explore_configs)
    @fast_settings
    def test_explore_config_round_trips_bit_identically(self, config):
        assert api.ExploreConfig.from_dict(config.to_dict()) == config

    @given(config=explore_configs)
    @fast_settings
    def test_explore_config_survives_json(self, config):
        wire = json.loads(json.dumps(config.to_dict()))
        assert api.ExploreConfig.from_dict(wire) == config

    @given(config=explore_configs)
    @fast_settings
    def test_explore_config_stable_hash_reproducible(self, config):
        """The transfer-prior / memo key survives serialization."""
        wire = json.loads(json.dumps(config.to_dict()))
        rebuilt = api.ExploreConfig.from_dict(wire)
        assert stable_hash(config.to_dict()) == stable_hash(rebuilt.to_dict())

    @given(trial=wire_trials)
    @fast_settings
    def test_trial_round_trips_bit_identically(self, trial):
        assert Trial.from_dict(json.loads(json.dumps(trial.to_dict()))) == trial

    @given(report=exploration_reports)
    @fast_settings
    def test_report_round_trips_with_nested_trials(self, report):
        rebuilt = ExplorationReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert rebuilt == report
        assert all(isinstance(t, Trial) for t in rebuilt.trials)

    @given(event=trial_events)
    @fast_settings
    def test_trial_event_round_trips(self, event):
        rebuilt = JobEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event
        assert isinstance(rebuilt.trial, Trial)

    def test_explore_config_version_stamped(self):
        wire = api.ExploreConfig().to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION

    def test_explore_config_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="budgett"):
            api.ExploreConfig.from_dict({"budgett": 12})

    def test_explore_config_unsupported_version_rejected(self):
        wire = api.ExploreConfig().to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            api.ExploreConfig.from_dict(wire)

    def test_explore_config_semantic_validation_at_boundary(self):
        with pytest.raises(ValueError, match="budget"):
            api.ExploreConfig.from_dict({"budget": 0})
        with pytest.raises(ValueError, match="priors"):
            api.ExploreConfig.from_dict({"priors": "always"})
        with pytest.raises(ValueError, match="batch_size"):
            api.ExploreConfig(batch_size=0)

    def test_trial_unknown_key_rejected(self):
        wire = Trial(index=0, stage="global", params={}, loss=1.0).to_dict()
        wire["cost"] = 2.0
        with pytest.raises(SchemaError, match="cost"):
            Trial.from_dict(wire)

    def test_trial_validation(self):
        with pytest.raises(SchemaError, match="index"):
            Trial(index=-1, stage="global", params={}, loss=0.0)
        with pytest.raises(SchemaError, match="stage"):
            Trial(index=0, stage="", params={}, loss=0.0)
        with pytest.raises(SchemaError, match="params"):
            Trial(index=0, stage="global", params=[], loss=0.0)
        with pytest.raises(SchemaError, match="loss"):
            Trial(index=0, stage="global", params={}, loss="cheap")

    def test_report_unknown_key_rejected(self):
        wire = ExplorationReport(
            design="OR1200", params={}, best_loss=0.0, best_params={},
            evaluations=1, group_rounds=1,
        ).to_dict()
        wire["best"] = 0.0
        with pytest.raises(SchemaError, match="best"):
            ExplorationReport.from_dict(wire)

    def test_report_unsupported_version_rejected(self):
        wire = ExplorationReport(
            design="OR1200", params={}, best_loss=0.0, best_params={},
            evaluations=1, group_rounds=1,
        ).to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            ExplorationReport.from_dict(wire)

    def test_report_history_normalized_to_lists(self):
        """Tuple history entries compare bit-identical after JSON."""
        report = ExplorationReport(
            design="OR1200", params={}, best_loss=0.5, best_params={"mu": 2.0},
            evaluations=3, group_rounds=1, history=[("global", 0.5)],
        )
        assert report.history == [["global", 0.5]]
        assert ExplorationReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        ) == report

    def test_trial_event_requires_payload(self):
        with pytest.raises(SchemaError, match="trial"):
            JobEvent(seq=0, kind="trial", job_id="explore-1", ts=0.0)


class TestBoundaryValidation:
    def test_schema_version_stamped_everywhere(self):
        wire = api.RunConfig().to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION
        assert wire["placement"]["schema_version"] == SCHEMA_VERSION
        assert wire["router"]["schema_version"] == SCHEMA_VERSION
        assert wire["router"]["cost"]["schema_version"] == SCHEMA_VERSION

    def test_unsupported_version_rejected(self):
        wire = api.RunConfig().to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            api.RunConfig.from_dict(wire)

    def test_nested_version_rejected(self):
        wire = api.RunConfig().to_dict()
        wire["placement"]["schema_version"] = 99
        with pytest.raises(SchemaError, match="PlacementParams"):
            api.RunConfig.from_dict(wire)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SchemaError, match="sale"):
            api.RunConfig.from_dict({"sale": 0.004})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(SchemaError, match="max_itters"):
            api.RunConfig.from_dict({"placement": {"max_itters": 100}})

    def test_bad_verify_level_raises_at_construction(self):
        with pytest.raises(ValueError, match="verify level"):
            api.RunConfig(verify="paranoid")
        with pytest.raises(ValueError, match="verify level"):
            api.RunConfig.from_dict({"verify": "paranoid"})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SchemaError, match="dict"):
            api.RunConfig.from_dict([1, 2, 3])

    def test_missing_keys_keep_defaults(self):
        config = api.RunConfig.from_dict({"scale": 0.002})
        assert config.scale == 0.002
        assert config.seed == api.RunConfig().seed
        assert config.placement == PlacementParams()

    def test_strategy_none_round_trips(self):
        config = api.RunConfig()
        assert config.to_dict()["strategy"] is None
        assert api.RunConfig.from_dict(config.to_dict()).strategy is None

    def test_strategy_exploration_dicts_still_accepted(self):
        """The pre-wire exploration call style keeps working."""
        params = StrategyParams.from_dict({"xi": 4.6, "kernel_size": 5.2})
        assert params.xi == 5 and params.kernel_size == 5
        with pytest.raises(KeyError):
            StrategyParams.from_dict({"not_a_knob": 1.0})

    def test_suite_level_config_fails_early_not_late(self):
        """api.suite() can no longer thread an invalid verify level in."""
        with pytest.raises(ValueError, match="verify level"):
            api.suite(api.RunConfig(verify="sometimes"))
