"""Wire-format tests: versioned, lossless config round-trips (repro.schema)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.core import StrategyParams
from repro.placer import PlacementParams
from repro.router import RouterParams
from repro.router.cost import CostParams
from repro.runtime import stable_hash
from repro.schema import SCHEMA_VERSION, SchemaError
from repro.verify import LEVELS

fast_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)

placement_params = st.builds(
    PlacementParams,
    target_density=st.floats(0.1, 1.0),
    grid_dim=st.one_of(st.none(), st.integers(8, 256)),
    target_overflow=st.floats(0.01, 0.5),
    max_iters=st.integers(30, 2000),
    min_iters=st.integers(1, 30),
    gamma_scale=positive,
    initial_noise=st.floats(0.0, 2.0),
    initial_placer=st.sampled_from(["star", "quadratic"]),
    seed=st.integers(0, 2**31),
    verbose=st.booleans(),
)

router_params = st.builds(
    RouterParams,
    rrr_rounds=st.integers(0, 8),
    cost=st.builds(
        CostParams,
        congestion_weight=positive,
        history_increment=st.floats(0.0, 10.0),
        slack=st.floats(0.1, 1.0),
    ),
    maze_margin=st.integers(0, 20),
    pin_demand=st.floats(0.0, 1.0),
    use_z_patterns=st.booleans(),
)

strategy_params = st.builds(
    StrategyParams,
    alpha_local_cg=finite,
    beta=finite,
    mu=positive,
    xi=st.integers(0, 10),
    kernel_size=st.integers(1, 9),
    legal_area_cap=st.floats(0.0, 0.5),
    legalizer=st.sampled_from(["abacus", "tetris"]),
)

run_configs = st.builds(
    api.RunConfig,
    scale=positive,
    seed=st.integers(0, 2**31),
    placement=placement_params,
    router=router_params,
    strategy=st.one_of(st.none(), strategy_params),
    verify=st.sampled_from(LEVELS),
)


class TestRandomizedRoundTrips:
    @given(config=run_configs)
    @fast_settings
    def test_runconfig_round_trips_bit_identically(self, config):
        assert api.RunConfig.from_dict(config.to_dict()) == config

    @given(config=run_configs)
    @fast_settings
    def test_runconfig_survives_json(self, config):
        wire = json.loads(json.dumps(config.to_dict()))
        assert api.RunConfig.from_dict(wire) == config

    @given(config=run_configs)
    @fast_settings
    def test_cache_key_reproducible_across_serialization(self, config):
        """The memo key of a config equals the key of its round-trip."""
        wire = json.loads(json.dumps(config.to_dict()))
        rebuilt = api.RunConfig.from_dict(wire)
        assert stable_hash(config.to_dict()) == stable_hash(rebuilt.to_dict())

    @given(params=placement_params)
    @fast_settings
    def test_placement_params_round_trip(self, params):
        assert PlacementParams.from_dict(params.to_dict()) == params

    @given(params=router_params)
    @fast_settings
    def test_router_params_round_trip_with_nested_cost(self, params):
        rebuilt = RouterParams.from_dict(json.loads(json.dumps(params.to_dict())))
        assert rebuilt == params
        assert isinstance(rebuilt.cost, CostParams)

    @given(params=strategy_params)
    @fast_settings
    def test_strategy_params_round_trip(self, params):
        assert StrategyParams.from_dict(params.to_dict()) == params


class TestBoundaryValidation:
    def test_schema_version_stamped_everywhere(self):
        wire = api.RunConfig().to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION
        assert wire["placement"]["schema_version"] == SCHEMA_VERSION
        assert wire["router"]["schema_version"] == SCHEMA_VERSION
        assert wire["router"]["cost"]["schema_version"] == SCHEMA_VERSION

    def test_unsupported_version_rejected(self):
        wire = api.RunConfig().to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            api.RunConfig.from_dict(wire)

    def test_nested_version_rejected(self):
        wire = api.RunConfig().to_dict()
        wire["placement"]["schema_version"] = 99
        with pytest.raises(SchemaError, match="PlacementParams"):
            api.RunConfig.from_dict(wire)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SchemaError, match="sale"):
            api.RunConfig.from_dict({"sale": 0.004})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(SchemaError, match="max_itters"):
            api.RunConfig.from_dict({"placement": {"max_itters": 100}})

    def test_bad_verify_level_raises_at_construction(self):
        with pytest.raises(ValueError, match="verify level"):
            api.RunConfig(verify="paranoid")
        with pytest.raises(ValueError, match="verify level"):
            api.RunConfig.from_dict({"verify": "paranoid"})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SchemaError, match="dict"):
            api.RunConfig.from_dict([1, 2, 3])

    def test_missing_keys_keep_defaults(self):
        config = api.RunConfig.from_dict({"scale": 0.002})
        assert config.scale == 0.002
        assert config.seed == api.RunConfig().seed
        assert config.placement == PlacementParams()

    def test_strategy_none_round_trips(self):
        config = api.RunConfig()
        assert config.to_dict()["strategy"] is None
        assert api.RunConfig.from_dict(config.to_dict()).strategy is None

    def test_strategy_exploration_dicts_still_accepted(self):
        """The pre-wire exploration call style keeps working."""
        params = StrategyParams.from_dict({"xi": 4.6, "kernel_size": 5.2})
        assert params.xi == 5 and params.kernel_size == 5
        with pytest.raises(KeyError):
            StrategyParams.from_dict({"not_a_knob": 1.0})

    def test_suite_level_config_fails_early_not_late(self):
        """api.suite() can no longer thread an invalid verify level in."""
        with pytest.raises(ValueError, match="verify level"):
            api.suite(api.RunConfig(verify="sometimes"))
