"""Distributed strategy exploration through the placement service.

Covers the three layers of :mod:`repro.serve.exploration`: the
:class:`DistributedEvaluator` batch contract (including journal resume
and failure quarantine), the :class:`ExplorationManager` lifecycle
behind ``/v1/explorations`` (in-process and over HTTP), and the
acceptance-criteria bit-identity of distributed-vs-serial exploration
at ``batch_size=1``.  Placements are faked with a deterministic runner
so every test is a function of the strategy parameters alone.
"""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro import api
from repro.core import exploration as core_exploration
from repro.core.strategy import StrategyParams, default_space
from repro.runtime import ArtifactCache, Journal
from repro.serve import (
    DistributedEvaluator,
    ExplorationCancelledError,
    ExplorationStateError,
    LocalServiceHost,
    ServiceConfig,
    UnknownExplorationError,
)
from repro.tpe import Space, TransferPriors, Uniform, design_features


def _fake_raw(params):
    """Deterministic stand-in for the placement+routing evaluation."""
    alpha = float(params.get("alpha_local_cg", 1.0))
    beta = float(params.get("beta", 1.0))
    mu = float(params.get("mu", 1.0))
    return (
        (alpha - 1.1) ** 2 + 0.3 * (beta - 0.9) ** 2 + 0.01 * (mu - 2.0) ** 2,
        1000.0 + 10.0 * alpha + mu,
    )


def _strategy_of(request):
    strategy = (request.get("config") or {}).get("strategy") or {}
    return StrategyParams.from_dict(strategy).to_dict()


def _explore_runner(request):
    """Service-side twin of :func:`_fake_raw` (module-level: picklable)."""
    params = _strategy_of(request)
    overflow, wirelength = _fake_raw(params)
    return {
        "design": request["design"], "flow": "puffer", "hpwl": 1.0,
        "place_seconds": 0.0,
        "route": {
            "hof": 0.0, "vof": 0.0, "total_overflow": overflow,
            "wirelength": wirelength, "runtime": 0.0, "rounds": 1,
            "num_segments": 1, "via_count": 1,
        },
        "legal": True, "verify": None,
    }


def _poisoned_runner(request):
    """Fails the job whenever the candidate carries the poison marker."""
    params = _strategy_of(request)
    if params["mu"] == 77.0:
        raise RuntimeError("router diverged")
    return _explore_runner(request)


def _slow_runner(request):
    time.sleep(0.2)
    return _explore_runner(request)


def _on_loop(host, fn, *args, **kwargs):
    """Run a manager/client call on the hosted service loop."""

    async def call():
        result = fn(*args, **kwargs)
        if asyncio.iscoroutine(result):
            result = await result
        return result

    return asyncio.run_coroutine_threadsafe(call(), host.loop).result(60)


class TestDistributedEvaluator:
    def test_batch_contract_matches_local_evaluator(self):
        config = api.ExploreConfig(budget=4, priors="off")
        batch = [{"mu": 2.0}, {"mu": 3.0, "beta": 0.5}]
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_explore_runner
        ) as host:
            evaluator = host.evaluator(config)
            losses = evaluator(batch)
        assert evaluator.jobs_submitted == 2
        assert len(losses) == len(evaluator.last_details) == 2
        details = evaluator.last_details
        for detail in details:
            assert not detail["cached"]
            assert detail["overflow"] >= 0.0 and detail["wirelength"] > 0.0
        # Loss shaping is parent-side: first trial sets the wirelength
        # reference, exactly like the serial objective.
        raw0 = _fake_raw(StrategyParams.from_dict(batch[0]).to_dict())
        assert losses[0] == pytest.approx(raw0[0])

    def test_failed_job_scores_penalty_and_journals(self, tmp_path):
        config = api.ExploreConfig(budget=4, priors="off")
        journal = Journal(tmp_path / "explore.jsonl")
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_poisoned_runner
        ) as host:
            evaluator = host.evaluator(config, journal=journal)
            losses = evaluator([{"mu": 77.0}, {"mu": 2.0}])
        assert losses[0] == core_exploration.FAILED_TRIAL_LOSS
        assert losses[1] < 1e6
        assert evaluator.last_details[0]["failed"]
        assert "router diverged" in evaluator.last_details[0]["error"]
        kinds = {
            ("failed" in record): record for record in journal.records()
        }
        assert True in kinds and False in kinds  # one failure, one success

    def test_journal_resume_skips_completed_and_failed_trials(self, tmp_path):
        config = api.ExploreConfig(budget=4, priors="off")
        journal = Journal(tmp_path / "explore.jsonl")
        batch = [{"mu": 77.0}, {"mu": 2.0}]
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_poisoned_runner
        ) as host:
            first = host.evaluator(config, journal=journal)
            first_losses = first(batch)
            # A fresh evaluator over the same journal replays both
            # outcomes without submitting a single job.
            second = host.evaluator(config, journal=Journal(journal.path))
            second_losses = second(batch)
        assert second.jobs_submitted == 0
        assert second_losses == first_losses
        assert all(d["cached"] for d in second.last_details)
        assert second.last_details[0]["failed"]

    def test_cancel_raises_before_any_submit(self):
        evaluator = DistributedEvaluator(None, api.ExploreConfig())
        evaluator.cancel()
        assert evaluator.cancelled
        with pytest.raises(ExplorationCancelledError):
            evaluator([{"mu": 2.0}])

    def test_full_exploration_through_the_service(self):
        config = api.ExploreConfig(budget=6, batch_size=2, priors="off")
        with LocalServiceHost(
            ServiceConfig(workers=2), runner=_explore_runner
        ) as host:
            outcome = api.run_exploration(config, evaluator=host.evaluator(config))
        assert outcome.wire.evaluations >= config.budget
        assert outcome.wire.best_loss < 5.0
        assert len(outcome.trials) == outcome.wire.evaluations


class TestSerialDistributedBitIdentity:
    def test_batch_size_one_is_bit_identical(self, monkeypatch):
        """Acceptance criterion: the distributed evaluator is pure
        transport — at ``batch_size=1`` every wire field matches the
        serial run exactly."""
        monkeypatch.setattr(
            core_exploration.PlacementObjective, "evaluate_raw",
            lambda self, params: _fake_raw(params),
        )
        config = api.ExploreConfig(budget=6, batch_size=1, priors="off")
        serial = api.run_exploration(config)
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_explore_runner
        ) as host:
            distributed = api.run_exploration(
                config, evaluator=host.evaluator(config)
            )
        assert serial.wire.best_loss == distributed.wire.best_loss
        assert serial.wire.best_params == distributed.wire.best_params
        assert serial.wire.evaluations == distributed.wire.evaluations
        assert serial.wire.history == distributed.wire.history
        assert serial.wire.params == distributed.wire.params
        assert [t.loss for t in serial.trials] == [
            t.loss for t in distributed.trials
        ]
        assert [t.params for t in serial.trials] == [
            t.params for t in distributed.trials
        ]


class TestExplorationManager:
    def test_lifecycle_events_and_report(self):
        config = api.ExploreConfig(budget=4, batch_size=2, priors="off")
        with LocalServiceHost(
            ServiceConfig(workers=2), runner=_explore_runner
        ) as host:
            exploration = _on_loop(host, host.client.create_exploration, config)
            assert exploration.state == "running"
            final = _on_loop(
                host, host.client.wait_exploration, exploration.id, timeout=60
            )
            events = _on_loop(
                host, host.client.exploration_events, exploration.id
            )
            report = _on_loop(
                host, host.client.exploration_report, exploration.id
            )
            listed = _on_loop(host, host.client.explorations)
            counts = host.service.healthz()["explorations"]
        assert final.state == "done"
        trial_events = [e for e in events if e.kind == "trial"]
        assert len(trial_events) == final.trials == report["evaluations"]
        assert trial_events[0].trial.stage == "global"
        assert [e.state for e in events if e.kind == "state"] == [
            "running", "done",
        ]
        assert report["best_loss"] == final.to_wire()["best_loss"]
        assert [e.id for e in listed] == [exploration.id]
        assert counts["done"] == 1 and counts["running"] == 0

    def test_unknown_and_premature_report(self):
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_explore_runner
        ) as host:
            with pytest.raises(UnknownExplorationError):
                _on_loop(host, host.client.exploration, "explore-404")
            config = api.ExploreConfig(budget=2, priors="off")
            exploration = _on_loop(host, host.client.create_exploration, config)
            _on_loop(host, host.client.wait_exploration, exploration.id,
                     timeout=60)

    def test_cancel_is_cooperative(self):
        config = api.ExploreConfig(budget=40, priors="off")
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_slow_runner
        ) as host:
            exploration = _on_loop(host, host.client.create_exploration, config)
            _on_loop(host, host.client.cancel_exploration, exploration.id)
            final = _on_loop(
                host, host.client.wait_exploration, exploration.id, timeout=60
            )
            assert final.state == "cancelled"
            # A report never exists for a cancelled exploration, and a
            # second cancel is an explicit state error.
            with pytest.raises(ExplorationStateError):
                _on_loop(host, host.client.exploration_report, exploration.id)
            with pytest.raises(ExplorationStateError):
                _on_loop(host, host.client.cancel_exploration, exploration.id)

    def test_create_validates_request(self):
        with LocalServiceHost(
            ServiceConfig(workers=1), runner=_explore_runner
        ) as host:
            manager = host.service.explorations
            with pytest.raises(ValueError, match="unknown request keys"):
                _on_loop(host, manager.create, {"bogus": 1})
            from repro.schema import SchemaError

            with pytest.raises(SchemaError, match="budgett"):
                _on_loop(host, manager.create, {"config": {"budgett": 3}})
            with pytest.raises(ValueError, match="priority"):
                _on_loop(host, manager.create, {"priority": "high"})


class TestExplorationHttp:
    """The ``/v1/explorations`` resource end to end over HTTP."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.serve import HttpServer, PlacementService

        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    ServiceConfig(workers=2, capacity=8),
                    runner=_explore_runner,
                )
                await service.start()
                http_server = HttpServer(service, port=0)
                box["addr"] = await http_server.start()
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await http_server.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(10)
        yield box["addr"]
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(10)

    @staticmethod
    def request(addr, method, path, payload=None):
        conn = http.client.HTTPConnection(*addr, timeout=30)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return (
                response.status,
                dict(response.getheaders()),
                json.loads(response.read().decode("utf-8")),
            )
        finally:
            conn.close()

    def _await_done(self, server, exploration_id, deadline=60.0):
        limit = time.monotonic() + deadline
        while time.monotonic() < limit:
            status, _, payload = self.request(
                server, "GET", f"/v1/explorations/{exploration_id}"
            )
            assert status == 200
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload
            time.sleep(0.05)
        raise AssertionError("exploration did not finish in time")

    def test_create_stream_and_report(self, server):
        config = api.ExploreConfig(budget=3, batch_size=2, priors="off")
        status, _, created = self.request(
            server, "POST", "/v1/explorations", {"config": config.to_dict()}
        )
        assert status == 202
        assert created["state"] == "running" and created["id"]
        final = self._await_done(server, created["id"])
        assert final["state"] == "done"
        assert final["best_loss"] is not None

        status, _, stream = self.request(
            server, "GET",
            f"/v1/explorations/{created['id']}/events?after=-1",
        )
        assert status == 200 and stream["stream_done"]
        kinds = [event["kind"] for event in stream["events"]]
        assert kinds[0] == "state" and "trial" in kinds
        assert stream["next_after"] == stream["events"][-1]["seq"]

        status, _, report = self.request(
            server, "GET", f"/v1/explorations/{created['id']}/report"
        )
        assert status == 200
        assert report["best_loss"] == final["best_loss"]
        assert report["evaluations"] == final["evaluations"]
        assert len(report["trials"]) == report["evaluations"]

        status, _, listing = self.request(server, "GET", "/v1/explorations")
        assert status == 200
        assert created["id"] in [e["id"] for e in listing["explorations"]]
        status, _, filtered = self.request(
            server, "GET", "/v1/explorations?state=done"
        )
        assert created["id"] in [e["id"] for e in filtered["explorations"]]

    def test_error_statuses(self, server):
        status, _, payload = self.request(
            server, "GET", "/v1/explorations/explore-404"
        )
        assert status == 404 and "error" in payload

        status, _, payload = self.request(
            server, "POST", "/v1/explorations",
            {"config": {"budget": 0}},
        )
        assert status == 400

        status, _, payload = self.request(
            server, "POST", "/v1/explorations", {"config": {"budgett": 2}}
        )
        assert status == 400

        # A finished exploration rejects cancellation with 409.
        config = api.ExploreConfig(budget=2, priors="off")
        _, _, created = self.request(
            server, "POST", "/v1/explorations", {"config": config.to_dict()}
        )
        self._await_done(server, created["id"])
        status, _, payload = self.request(
            server, "DELETE", f"/v1/explorations/{created['id']}"
        )
        assert status == 409 and "error" in payload


class TestTransferPriors:
    def test_save_load_round_trip_and_bucketing(self, tmp_path):
        priors = TransferPriors(ArtifactCache(tmp_path))
        space = default_space()
        features = {"cells_log2": 5, "nets_log2": 6, "utilization": 0.4}
        priors.save(
            space, features,
            [({"mu": 2.0}, 0.1),
             ({"mu": 3.0}, core_exploration.FAILED_TRIAL_LOSS)],
        )
        loaded = priors.load(space, features)
        assert loaded == [({"mu": 2.0}, 0.1)]  # penalty losses dropped
        # A near-miss design class still benefits (fallback buckets).
        other = dict(features, cells_log2=9)
        assert priors.load(space, other) == [({"mu": 2.0}, 0.1)]
        # An incompatible space never replays foreign observations.
        assert priors.load(Space([Uniform("mu", 0.0, 1.0)]), features) == []

    def test_run_exploration_persists_and_reloads_priors(
        self, tmp_path, monkeypatch, tiny_design
    ):
        monkeypatch.setattr(
            core_exploration.PlacementObjective, "evaluate_raw",
            lambda self, params: _fake_raw(params),
        )
        monkeypatch.setattr(api, "resolve_design", lambda *a, **k: tiny_design)
        priors = TransferPriors(ArtifactCache(tmp_path))
        config = api.ExploreConfig(budget=4, priors="auto")
        first = api.run_exploration(config, priors=priors)
        stored = priors.load(
            default_space(), design_features(tiny_design), limit=128
        )
        assert 0 < len(stored) <= first.wire.evaluations
        # The second exploration warm-starts and accumulates more.
        api.run_exploration(config, priors=priors)
        grown = priors.load(
            default_space(), design_features(tiny_design), limit=1024
        )
        assert len(grown) >= len(stored)

    def test_priors_off_never_touches_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            core_exploration.PlacementObjective, "evaluate_raw",
            lambda self, params: _fake_raw(params),
        )
        priors = TransferPriors(ArtifactCache(tmp_path))
        config = api.ExploreConfig(budget=3, priors="off")
        api.run_exploration(config, priors=priors)
        assert priors.load(default_space(), {"cells_log2": 1}) == []
