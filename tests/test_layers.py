"""Tests for post-routing layer assignment."""

import pytest

from repro.router import GlobalRouter, assign_layers, format_layer_table


@pytest.fixture(scope="module")
def usage(placed_small_design):
    report = GlobalRouter(placed_small_design).run()
    return placed_small_design, report, assign_layers(placed_small_design, report)


class TestLayerAssignment:
    def test_covers_all_routing_layers(self, usage):
        design, _, usages = usage
        expected = {l.name for l in design.technology.routing_layers}
        assert {u.name for u in usages} == expected

    def test_demand_conserved(self, usage):
        design, report, usages = usage
        grid = report.grid
        # Sum of assigned demand over H layers equals the H demand map
        # total (in track-fraction terms, weighted by layer tracks).
        total_h_tracks = sum(
            u.utilization * u.tracks * grid.num_gcells
            for u in usages
            if u.direction == "H"
        )
        assert total_h_tracks == pytest.approx(report.demand.dmd_h.sum(), rel=1e-6)

    def test_lower_layers_fill_first(self, usage):
        _, _, usages = usage
        h_layers = [u for u in usages if u.direction == "H"]
        # Bottom-up spill: mean utilization never increases upward.
        utils = [u.utilization for u in h_layers]
        assert utils == sorted(utils, reverse=True)

    def test_overflow_only_on_top_layer(self, usage):
        _, _, usages = usage
        for direction in ("H", "V"):
            layers = [u for u in usages if u.direction == direction]
            for u in layers[:-1]:
                assert u.overflow_gcells == 0

    def test_table_renders(self, usage):
        _, _, usages = usage
        text = format_layer_table(usages)
        assert "layer" in text
        assert "M2" in text
