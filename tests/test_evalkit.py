"""Tests for the evaluation harness: metrics, tables, maps, runner."""

import numpy as np
import pytest

from repro.evalkit import (
    PlacerMetrics,
    aggregate,
    ascii_heatmap,
    format_table1,
    format_table2,
    side_by_side,
    utilization_maps,
    write_pgm,
)


def rows_fixture():
    return [
        PlacerMetrics("D1", "A", hof=0.5, vof=2.0, wirelength=100.0, runtime=10.0),
        PlacerMetrics("D1", "B", hof=1.5, vof=0.5, wirelength=110.0, runtime=5.0),
        PlacerMetrics("D2", "A", hof=0.0, vof=0.0, wirelength=200.0, runtime=20.0),
        PlacerMetrics("D2", "B", hof=0.2, vof=0.1, wirelength=190.0, runtime=10.0),
    ]


class TestMetrics:
    def test_pass_criterion(self):
        row = PlacerMetrics("D", "P", hof=1.0, vof=1.01, wirelength=1, runtime=1)
        assert row.passes_h
        assert not row.passes_v

    def test_aggregate_means(self):
        averages = aggregate(rows_fixture(), reference_placer="A")
        a = next(x for x in averages if x.placer == "A")
        b = next(x for x in averages if x.placer == "B")
        assert a.hof_mean == pytest.approx(0.25)
        assert a.wl_ratio == pytest.approx(1.0)
        assert a.rt_ratio == pytest.approx(1.0)
        assert b.rt_ratio == pytest.approx((5 / 10 + 10 / 20) / 2)
        assert b.pass_h == 1
        assert a.pass_h == 2

    def test_aggregate_missing_reference_raises(self):
        with pytest.raises(ValueError):
            aggregate(rows_fixture(), reference_placer="Z")


class TestTables:
    def test_table2_contains_all_rows(self):
        text = format_table2(rows_fixture(), reference_placer="A")
        assert "D1" in text and "D2" in text
        assert "Average" in text and "Pass Count" in text

    def test_table1_renders(self):
        from repro.benchgen import make_design, suite_names

        designs = [make_design(n, scale=0.001) for n in suite_names()]
        text = format_table1(0.001, designs=designs)
        assert "OR1200" in text
        assert "OPENC910" in text
        assert "TABLE I" in text


class TestMaps:
    def test_ascii_heatmap_shape(self):
        values = np.linspace(0, 1, 64).reshape(8, 8)
        text = ascii_heatmap(values, width=8)
        lines = text.split("\n")
        assert len(lines) == 8
        assert all(len(l) == 8 for l in lines)

    def test_heatmap_hot_cells_darker(self):
        values = np.zeros((4, 4))
        values[2, 3] = 10.0
        text = ascii_heatmap(values, vmax=10.0, width=4)
        lines = text.split("\n")
        # Origin bottom-left: row index 0 of text = top (y=3).
        assert lines[0][2] == "@"
        assert lines[3][0] == " "

    def test_heatmap_downsampling(self):
        values = np.random.default_rng(0).random((128, 128))
        text = ascii_heatmap(values, width=32)
        assert len(text.split("\n")[0]) <= 64

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))

    def test_write_pgm(self, tmp_path):
        values = np.linspace(0, 2, 12).reshape(3, 4)
        path = tmp_path / "map.pgm"
        write_pgm(str(path), values)
        data = path.read_bytes()
        assert data.startswith(b"P5\n3 4\n255\n")
        assert len(data) == len(b"P5\n3 4\n255\n") + 12

    def test_side_by_side_titles(self):
        maps = {"left": np.ones((8, 8)), "right": np.zeros((8, 8))}
        text = side_by_side(maps, width=8)
        assert "left" in text.split("\n")[0]
        assert "right" in text.split("\n")[0]

    def test_utilization_maps(self, placed_small_design):
        from repro.router import GlobalRouter

        report = GlobalRouter(placed_small_design).run()
        util_h, util_v = utilization_maps(report)
        assert util_h.shape == (report.grid.nx, report.grid.ny)
        assert (util_h >= 0).all()
