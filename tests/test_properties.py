"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchgen import GeneratorSpec, generate_design
from repro.core import PaddingEngine, StrategyParams, combine_congestion
from repro.core.features import FEATURE_NAMES, FeatureSet
from repro.legalizer import discretize_padding, legalize_abacus
from repro.netlist import check_legal, validate_design
from repro.placer.wirelength import _wa_direction

slow_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestGeneratorProperties:
    @given(
        seed=st.integers(0, 10_000),
        cells=st.integers(50, 400),
        util=st.floats(0.4, 0.85),
        locality=st.floats(0.5, 1.0),
    )
    @slow_settings
    def test_any_spec_yields_valid_design(self, seed, cells, util, locality):
        spec = GeneratorSpec(
            name="prop",
            num_cells=cells,
            num_nets=int(cells * 1.5),
            pins_per_net=3.3,
            num_macros=2,
            num_io=4,
            utilization=util,
            locality=locality,
            seed=seed,
        )
        design = generate_design(spec)
        assert validate_design(design).ok

    @given(seed=st.integers(0, 10_000))
    @slow_settings
    def test_any_generated_design_legalizes(self, seed):
        spec = GeneratorSpec(
            name="prop",
            num_cells=120,
            num_nets=180,
            pins_per_net=3.2,
            num_macros=2,
            num_io=4,
            utilization=0.7,
            seed=seed,
        )
        design = generate_design(spec)
        # Legalize straight from the (centered) initial positions.
        legalize_abacus(design)
        assert check_legal(design).ok


class TestWirelengthProperties:
    @given(
        coords=st.lists(st.floats(-100, 100), min_size=2, max_size=12),
        gamma=st.floats(0.1, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_wa_bounded_by_span(self, coords, gamma):
        p = np.asarray(coords)
        starts = np.array([0])
        repeat = np.array([len(p)])
        wa, grad = _wa_direction(p, starts, repeat, gamma)
        span = p.max() - p.min()
        assert wa <= span + 1e-6
        assert np.isfinite(grad).all()

    @given(
        coords=st.lists(st.floats(-100, 100), min_size=2, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_wa_tightens_with_gamma(self, coords):
        p = np.asarray(coords)
        starts = np.array([0])
        repeat = np.array([len(p)])
        wa_tight, _ = _wa_direction(p, starts, repeat, 0.05)
        wa_loose, _ = _wa_direction(p, starts, repeat, 10.0)
        span = p.max() - p.min()
        assert abs(wa_tight - span) <= abs(wa_loose - span) + 1e-6


class TestCongestionProperties:
    @given(
        cg_h=st.lists(st.floats(-2, 2), min_size=4, max_size=4),
        cg_v=st.lists(st.floats(-2, 2), min_size=4, max_size=4),
    )
    @settings(max_examples=100)
    def test_combine_congestion_bounds(self, cg_h, cg_v):
        h = np.asarray(cg_h).reshape(2, 2)
        v = np.asarray(cg_v).reshape(2, 2)
        combined = combine_congestion(h, v)
        # Eq. (10): result is between max(h, v) and h + v where same
        # sign, exactly max where opposite.
        for i in range(2):
            for j in range(2):
                if h[i, j] * v[i, j] < 0:
                    assert combined[i, j] == max(h[i, j], v[i, j])
                else:
                    assert combined[i, j] == pytest.approx(h[i, j] + v[i, j])


class TestPaddingProperties:
    @given(
        magnitudes=st.lists(st.floats(0, 20), min_size=5, max_size=5),
        mu=st.floats(0.2, 4.0),
        beta=st.floats(-2.0, 2.0),
    )
    @slow_settings
    def test_padding_nonnegative_and_monotone_in_mu(self, magnitudes, mu, beta):
        spec = GeneratorSpec(
            name="prop", num_cells=60, num_nets=90, pins_per_net=3.0,
            num_macros=0, num_io=4, seed=3,
        )
        design = generate_design(spec)
        values = {
            name: np.full(design.num_cells, m)
            for name, m in zip(FEATURE_NAMES, magnitudes)
        }
        features = FeatureSet(values)
        pad1 = PaddingEngine(
            design, StrategyParams(mu=mu, beta=beta)
        ).compute_padding(features)
        pad2 = PaddingEngine(
            design, StrategyParams(mu=mu * 2, beta=beta)
        ).compute_padding(features)
        assert (pad1 >= 0).all()
        assert (pad2 >= pad1 - 1e-12).all()

    @given(
        pads=st.lists(st.floats(0, 50), min_size=3, max_size=40),
        theta=st.floats(1.0, 8.0),
    )
    @settings(max_examples=80)
    def test_discretize_monotone(self, pads, theta):
        pad = np.asarray(pads)
        out = discretize_padding(pad, theta, 1.0)
        order = np.argsort(pad)
        assert (np.diff(out[order]) >= -1e-12).all()
