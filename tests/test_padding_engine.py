"""Tests for the padding engine (Eqs. 14-16, Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    FEATURE_NAMES,
    CongestionEstimator,
    FeatureExtractor,
    PaddingEngine,
    StrategyParams,
)
from repro.core.features import FeatureSet


def synthetic_features(design, hot_fraction=0.2, magnitude=3.0):
    """Features that mark the first ``hot_fraction`` of cells congested."""
    n = design.num_cells
    values = {name: np.zeros(n) for name in FEATURE_NAMES}
    hot = int(n * hot_fraction)
    values["local_cg"][:hot] = magnitude
    values["around_cg"][:hot] = magnitude
    return FeatureSet(values)


class TestEquation14:
    def test_no_padding_below_threshold(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        features = synthetic_features(small_design, hot_fraction=0.0)
        pad = engine.compute_padding(features)
        assert (pad == 0).all()

    def test_hot_cells_padded(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        features = synthetic_features(small_design, hot_fraction=0.3)
        pad = engine.compute_padding(features)
        movable = small_design.movable & ~small_design.is_macro
        hot = movable.copy()
        hot[int(small_design.num_cells * 0.3):] = False
        assert (pad[hot] > 0).all()
        cold = movable & ~hot
        assert (pad[cold] == 0).all()

    def test_mu_scales_padding(self, small_design):
        features = synthetic_features(small_design)
        a = PaddingEngine(small_design, StrategyParams(mu=1.0)).compute_padding(features)
        b = PaddingEngine(small_design, StrategyParams(mu=2.0)).compute_padding(features)
        assert np.allclose(b, 2 * a)

    def test_log_smoothing_sublinear(self, small_design):
        small = PaddingEngine(small_design, StrategyParams()).compute_padding(
            synthetic_features(small_design, magnitude=2.0)
        )
        large = PaddingEngine(small_design, StrategyParams()).compute_padding(
            synthetic_features(small_design, magnitude=20.0)
        )
        hot = small > 0
        assert (large[hot] < 10 * small[hot]).all()

    def test_fixed_cells_never_padded(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        features = synthetic_features(small_design, hot_fraction=1.0)
        pad = engine.compute_padding(features)
        assert (pad[~small_design.movable] == 0).all()


class TestEquation15Recycling:
    def test_recycle_rate_formula(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams(zeta=2.0))
        engine.round_index = 4
        engine.pad_times[:] = 1
        rate = engine.recycle_rate()
        assert rate[0] == pytest.approx((4 - 1) / (4 + 2.0))

    def test_never_padded_cells_recycle_fastest(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        engine.round_index = 5
        engine.pad_times[0] = 0
        engine.pad_times[1] = 5
        rate = engine.recycle_rate()
        assert rate[0] > rate[1]

    def test_padding_withdrawn_when_cell_cools(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        hot_then_cold = synthetic_features(small_design, hot_fraction=0.3)
        engine.run_round(hot_then_cold)
        padded_before = engine.pad.copy()
        cold = synthetic_features(small_design, hot_fraction=0.0)
        engine.run_round(cold)
        previously_padded = padded_before > 0
        assert (engine.pad[previously_padded] < padded_before[previously_padded]).all()


class TestEquation16Utilization:
    def test_schedule_interpolates(self, small_design):
        params = StrategyParams(pu_low=0.1, pu_high=0.5, xi=5)
        engine = PaddingEngine(small_design, params)
        engine.round_index = 1
        assert engine.target_utilization() == pytest.approx(0.1)
        engine.round_index = 5
        assert engine.target_utilization() == pytest.approx(0.5)
        engine.round_index = 3
        assert engine.target_utilization() == pytest.approx(0.3)

    def test_xi_one_uses_high(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams(xi=1))
        engine.round_index = 1
        assert engine.target_utilization() == StrategyParams().pu_high

    def test_budget_enforced(self, small_design):
        params = StrategyParams(pu_low=0.05, pu_high=0.1, mu=10.0)
        engine = PaddingEngine(small_design, params)
        record = engine.run_round(synthetic_features(small_design, hot_fraction=1.0, magnitude=50.0))
        assert record.scaled
        assert record.utilization <= engine.target_utilization() + 1e-9

    def test_incremental_accumulation(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams(pu_high=0.9))
        features = synthetic_features(small_design, hot_fraction=0.1, magnitude=2.0)
        r1 = engine.run_round(features)
        r2 = engine.run_round(features)
        assert r2.total_area >= r1.total_area

    def test_history_recorded(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        engine.run_round(synthetic_features(small_design))
        engine.run_round(synthetic_features(small_design))
        assert len(engine.history) == 2
        assert engine.history[0].round_index == 1

    def test_padded_sizes_only_widths_change(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        engine.run_round(synthetic_features(small_design))
        w_eff, h_eff = engine.padded_sizes()
        assert np.array_equal(h_eff, small_design.h)
        assert (w_eff >= small_design.w).all()


class TestEndToEndPadding:
    def test_real_features_produce_bounded_padding(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        cmap, topologies, _ = est.estimate()
        features = FeatureExtractor(placed_small_design).extract(cmap, topologies)
        engine = PaddingEngine(placed_small_design, StrategyParams())
        record = engine.run_round(features)
        assert record.total_area <= engine.available_area
        assert (engine.pad >= 0).all()
