"""Tests for the repro.verify invariant checkers and differential harness."""

import json

import numpy as np
import pytest

from repro import api, obs
from repro.legalizer import legalize_abacus, padded_widths
from repro.obs import Tracer
from repro.verify import (
    CHECKERS,
    VerificationError,
    VerifyContext,
    VerifyReport,
    Violation,
    check_netlist,
    check_overlaps,
    check_padding,
    check_routing,
    checkers_for,
    run_checkers,
)
from repro.verify.differential import DiffCase, DiffReport, _map_case, _metric_case


@pytest.fixture(scope="module")
def legalized(small_spec):
    """A globally-placed and legalized design (module-cached, read-only)."""
    from repro.benchgen import generate_design
    from repro.placer import GlobalPlacer, PlacementParams

    design = generate_design(small_spec)
    GlobalPlacer(design, PlacementParams(max_iters=300)).run()
    legalize_abacus(design)
    return design


@pytest.fixture
def legal_design(legalized, small_spec):
    """A fresh mutable copy of the legalized design."""
    from repro.benchgen import generate_design

    design = generate_design(small_spec)
    design.x[:] = legalized.x
    design.y[:] = legalized.y
    return design


class TestViolation:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Violation(checker="x", severity="fatal", message="boom")

    def test_to_dict_drops_empty_fields(self):
        v = Violation(checker="placement/overlap", severity="error", message="m")
        d = v.to_dict()
        assert d == {
            "checker": "placement/overlap",
            "severity": "error",
            "message": "m",
        }

    def test_to_dict_full(self):
        v = Violation(
            checker="c", severity="warning", message="m",
            cells=(1, 2), nets=(3,), measured=1.5, allowed=1.0,
        )
        d = v.to_dict()
        assert d["cells"] == [1, 2] and d["nets"] == [3]
        assert d["measured"] == 1.5 and d["allowed"] == 1.0
        assert str(v) == "[warning] c: m"


class TestVerifyReport:
    def test_ok_ignores_warnings(self):
        report = VerifyReport(
            violations=[Violation(checker="c", severity="warning", message="m")],
            checkers_run=["c"],
        )
        assert report.ok
        assert len(report.warnings) == 1 and not report.errors

    def test_errors_break_ok(self):
        report = VerifyReport(
            violations=[Violation(checker="c", severity="error", message="m")]
        )
        assert not report.ok

    def test_merge_and_counts(self):
        a = VerifyReport(
            violations=[Violation(checker="x", severity="error", message="1")],
            checkers_run=["x"],
        )
        b = VerifyReport(
            violations=[Violation(checker="x", severity="error", message="2")],
            checkers_run=["x", "y"],
        )
        a.merge(b)
        assert a.counts() == {"x": 2}
        assert a.checkers_run == ["x", "y"]

    def test_to_dict_shape(self):
        report = VerifyReport(checkers_run=["c"])
        d = report.to_dict()
        assert d["ok"] is True
        assert d["checkers_run"] == ["c"]
        assert d["num_errors"] == 0 and d["num_warnings"] == 0

    def test_verification_error_carries_context(self):
        report = VerifyReport()
        err = VerificationError("bad", report=report, rows=[1])
        assert err.report is report and err.rows == [1]


class TestLevels:
    def test_off_selects_nothing(self):
        assert checkers_for("off") == []

    def test_cheap_excludes_full_checkers(self):
        cheap = checkers_for("cheap")
        assert "placement/overlap" in cheap
        assert "netlist/integrity" not in cheap

    def test_full_is_whole_registry(self):
        assert checkers_for("full") == list(CHECKERS)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            checkers_for("paranoid")
        with pytest.raises(ValueError):
            run_checkers(VerifyContext(design=None), level="paranoid")


class TestPlacementCheckers:
    def test_legal_placement_is_clean(self, legal_design):
        report = run_checkers(VerifyContext(design=legal_design), level="cheap")
        assert report.ok and not report.violations
        # Padding skipped (no padded_widths); the rest ran.
        assert "padding/accounting" not in report.checkers_run
        assert "placement/overlap" in report.checkers_run

    def test_containment_catches_escape(self, legal_design):
        cell = int(np.flatnonzero(legal_design.movable)[0])
        legal_design.x[cell] = legal_design.die.xhi + 10
        report = run_checkers(VerifyContext(design=legal_design), level="cheap")
        assert not report.ok
        assert any(
            v.checker == "placement/containment" and cell in v.cells
            for v in report.errors
        )

    def test_row_alignment_catches_offset(self, legal_design):
        cell = int(np.flatnonzero(legal_design.movable & ~legal_design.is_macro)[0])
        legal_design.y[cell] += 0.5 * legal_design.technology.row_height
        report = run_checkers(VerifyContext(design=legal_design), level="cheap")
        assert any(v.checker == "placement/row_alignment" for v in report.errors)

    def test_site_alignment_catches_offset(self, legal_design):
        cell = int(np.flatnonzero(legal_design.movable & ~legal_design.is_macro)[0])
        legal_design.x[cell] += 0.37 * legal_design.technology.site_width
        report = run_checkers(VerifyContext(design=legal_design), level="cheap")
        assert any(v.checker == "placement/site_alignment" for v in report.errors)

    def test_overlap_catches_stacked_cells(self, legal_design):
        idx = np.flatnonzero(legal_design.movable & ~legal_design.is_macro)
        a, b = int(idx[0]), int(idx[1])
        legal_design.x[b] = legal_design.x[a]
        legal_design.y[b] = legal_design.y[a]
        found = check_overlaps(VerifyContext(design=legal_design))
        assert found and found[0].severity == "error"
        assert a in found[0].cells and b in found[0].cells

    def test_overlap_catches_movable_on_fixed(self, legal_design):
        movable = int(np.flatnonzero(legal_design.movable & ~legal_design.is_macro)[0])
        macro = int(np.flatnonzero(legal_design.is_macro)[0])
        legal_design.x[movable] = legal_design.x[macro]
        legal_design.y[movable] = legal_design.y[macro]
        found = check_overlaps(VerifyContext(design=legal_design))
        assert found and movable in found[0].cells

    def test_fixed_on_fixed_overlap_exempt(self, legal_design):
        # Generated designs place fixed power-grid cells over macro
        # outlines; fixed-on-fixed geometry is not a placement defect.
        fixed = np.flatnonzero(~legal_design.movable)
        assert len(fixed) >= 2
        a, b = int(fixed[0]), int(fixed[1])
        legal_design.x[b] = legal_design.x[a]
        legal_design.y[b] = legal_design.y[a]
        assert check_overlaps(VerifyContext(design=legal_design)) == []

    def test_overlap_reporting_is_capped(self, legal_design):
        # Stack *everything*: the checker must truncate, not explode.
        movable = np.flatnonzero(legal_design.movable & ~legal_design.is_macro)
        legal_design.x[movable] = legal_design.x[movable[0]]
        legal_design.y[movable] = legal_design.y[movable[0]]
        found = check_overlaps(VerifyContext(design=legal_design))
        assert found and "truncated" in found[0].message


class TestPaddingChecker:
    def test_skipped_without_widths(self, legal_design):
        assert check_padding(VerifyContext(design=legal_design)) == []

    def test_real_padded_widths_are_clean(self, legal_design):
        rng = np.random.default_rng(7)
        pad = np.where(
            legal_design.movable, rng.uniform(0, 2, legal_design.num_cells), 0.0
        )
        widths = padded_widths(legal_design, pad, theta=4.0)
        found = check_padding(
            VerifyContext(design=legal_design, pad=pad, padded_widths=widths)
        )
        assert found == []

    def test_non_whole_site_padding_flagged(self, legal_design):
        widths = legal_design.w.copy()
        cell = int(np.flatnonzero(legal_design.movable & ~legal_design.is_macro)[0])
        widths[cell] += 0.5 * legal_design.technology.site_width
        found = check_padding(
            VerifyContext(design=legal_design, padded_widths=widths)
        )
        assert any("whole-site" in v.message for v in found)

    def test_budget_violation_flagged(self, legal_design):
        movable = legal_design.movable & ~legal_design.is_macro
        widths = legal_design.w + np.where(movable, 8.0, 0.0)
        found = check_padding(
            VerifyContext(design=legal_design, padded_widths=widths, area_cap=0.01)
        )
        assert any("budget" in v.message for v in found)

    def test_zero_pad_must_stay_zero(self, legal_design):
        movable = legal_design.movable & ~legal_design.is_macro
        pad = np.zeros(legal_design.num_cells)
        widths = legal_design.w + np.where(movable, 1.0, 0.0)
        found = check_padding(
            VerifyContext(
                design=legal_design, pad=pad, padded_widths=widths, area_cap=1.0
            )
        )
        assert any("unpadded cells received" in v.message for v in found)

    def test_fixed_cells_must_not_pad(self, legal_design):
        widths = legal_design.w.copy()
        fixed = int(np.flatnonzero(~legal_design.movable)[0])
        widths[fixed] += 1.0
        found = check_padding(
            VerifyContext(design=legal_design, padded_widths=widths)
        )
        assert any("fixed cells" in v.message for v in found)

    def test_catches_mistranscribed_eq17(self, legal_design):
        # Acceptance: reintroducing floor(theta * (pad/mp + 1/2)) hands
        # every epsilon-padded cell floor(theta/2) sites and blows the
        # 5 % budget — the checker must catch the regression.
        movable = legal_design.movable & ~legal_design.is_macro
        rng = np.random.default_rng(3)
        pad = np.where(movable, rng.uniform(1e-6, 1e-3, legal_design.num_cells), 0.0)
        theta, site = 4.0, legal_design.technology.site_width
        buggy = np.floor(theta * (pad / pad.max() + 0.5)) * site
        widths = legal_design.w + np.where(movable, buggy, 0.0)
        found = check_padding(
            VerifyContext(design=legal_design, pad=pad, padded_widths=widths)
        )
        assert any("budget" in v.message for v in found)


class TestNetlistChecker:
    def test_generated_design_is_clean(self, small_design):
        found = check_netlist(VerifyContext(design=small_design))
        assert [v for v in found if v.severity == "error"] == []

    def test_dangling_pin_reference(self, small_design):
        small_design.pin_cell[0] = small_design.num_cells + 5
        found = check_netlist(VerifyContext(design=small_design))
        assert any("dangling" in v.message for v in found)

    def test_pin_offset_outside_cell(self, small_design):
        small_design.pin_dx[0] = small_design.w[small_design.pin_cell[0]] * 3.0
        found = check_netlist(VerifyContext(design=small_design))
        assert any("outside the cell outline" in v.message for v in found)

    def test_pin_net_csr_mismatch(self, small_design):
        # Point one pin's pin_net at a different net without touching
        # the CSR: the cross-check must notice the disagreement.
        pin = 0
        original = int(small_design.pin_net[pin])
        small_design.pin_net[pin] = (original + 1) % small_design.num_nets
        found = check_netlist(VerifyContext(design=small_design))
        assert any("disagrees with the net CSR" in v.message for v in found)


class TestRoutingChecker:
    @pytest.fixture(scope="class")
    def routed(self, legalized):
        from repro.router import GlobalRouter

        return GlobalRouter(legalized).run()

    def test_skipped_without_maps(self, legal_design):
        assert check_routing(VerifyContext(design=legal_design)) == []

    def test_real_route_is_clean(self, legalized, routed):
        found = check_routing(
            VerifyContext(
                design=legalized,
                grid=routed.grid,
                demand=routed.demand,
                route_report=routed,
            )
        )
        assert found == []

    def test_tampered_overflow_flagged(self, legalized, routed):
        import copy

        tampered = copy.copy(routed)
        tampered.hof = routed.hof + 5.0
        found = check_routing(
            VerifyContext(
                design=legalized,
                grid=routed.grid,
                demand=routed.demand,
                route_report=tampered,
            )
        )
        assert any("HOF disagrees" in v.message for v in found)


class TestObsIntegration:
    def test_spans_and_counter(self, legal_design):
        cell = int(np.flatnonzero(legal_design.movable)[0])
        legal_design.x[cell] = legal_design.die.xhi + 10
        tracer = Tracer()
        with obs.tracing(tracer):
            report = run_checkers(VerifyContext(design=legal_design), level="cheap")
        assert not report.ok
        names = {record["name"] for record in tracer.ring}
        assert "verify/placement/containment" in names
        assert tracer.counter("verify/violations").value == len(report.violations)


class TestApiWiring:
    def test_run_with_verify_full(self, small_design):
        result = api.run(
            small_design,
            flow="puffer",
            config=api.RunConfig(verify="full"),
            route=True,
        )
        report = result.verify_report
        assert report is not None and report.ok
        # Flow exposes padding and the run routed: everything ran except
        # the slot checker, which only applies to mode="slots" runs.
        assert set(report.checkers_run) == set(CHECKERS) - {"slots/assignment"}

    def test_run_verify_off_by_default(self, small_design):
        from repro.placer import PlacementParams

        result = api.run(
            small_design,
            flow="wirelength",
            config=api.RunConfig(placement=PlacementParams(max_iters=150)),
        )
        assert result.verify_report is None

    def test_run_rejects_unknown_level(self, small_design):
        with pytest.raises(ValueError):
            api.run(small_design, config=api.RunConfig(verify="paranoid"))


class TestDifferentialPieces:
    def test_map_case_agreement(self):
        a = np.ones((4, 4))
        case = _map_case("maps/x", a, a.copy())
        assert case.ok and case.measured == 0.0

    def test_map_case_shape_mismatch(self):
        case = _map_case("maps/x", np.ones((2, 2)), np.ones((3, 3)))
        assert not case.ok and case.measured == float("inf")

    def test_map_case_out_of_tolerance(self):
        a = np.ones(3)
        b = a + 1e-3
        assert not _map_case("maps/x", a, b).ok

    def test_metric_case_tolerances(self):
        assert _metric_case("m", 100.0, 104.0, rtol=0.05).ok
        assert not _metric_case("m", 100.0, 110.0, rtol=0.05).ok
        assert _metric_case("m", 1.0, 1.5, atol=1.0).ok

    def test_report_ok_requires_clean_invariants(self):
        report = DiffReport(design="d", scale=0.01, seed=0, quick=True)
        report.cases.append(DiffCase(name="c", measured=0, tolerance=1, ok=True))
        report.invariants["reference"] = {
            "num_errors": 1, "num_warnings": 0, "checkers_run": [],
        }
        assert not report.ok

    def test_report_json_round_trip(self, tmp_path):
        report = DiffReport(design="d", scale=0.01, seed=3, quick=False)
        report.cases.append(DiffCase(name="c", measured=0.0, tolerance=1.0, ok=True))
        path = tmp_path / "diff.json"
        report.to_json(str(path))
        data = json.loads(path.read_text())
        assert data["ok"] is True and data["design"] == "d"
        assert data["cases"][0]["name"] == "c"

    def test_diff_maps_on_placed_design(self, legalized):
        from repro.verify import diff_maps

        cases = diff_maps(legalized)
        assert {c.name for c in cases} == {
            "maps/demand_h", "maps/demand_v", "maps/rudy_h",
            "maps/rudy_v", "maps/density",
        }
        assert all(c.ok for c in cases)


class TestSuiteWiring:
    def test_suite_fails_loudly_on_violations(self, monkeypatch):
        from repro.evalkit import runner as runner_mod
        from repro.evalkit.metrics import PlacerMetrics

        def fake_run_benchmark(name, flow, config, flow_name):
            return PlacerMetrics(
                benchmark=name, placer=flow_name, hof=0.0, vof=0.0,
                wirelength=1.0, runtime=0.1, hpwl=1.0, violations=2,
            )

        monkeypatch.setattr(runner_mod, "run_benchmark", fake_run_benchmark)
        config = runner_mod.SuiteRunConfig(benchmarks=["OR1200"], verify="cheap")
        flows = {"PUFFER": lambda design, placement: None}
        with pytest.raises(VerificationError) as excinfo:
            runner_mod.run_suite(config, flows=flows)
        # The finished rows ride on the error instead of being discarded.
        assert excinfo.value.rows and excinfo.value.rows[0].violations == 2

    def test_verify_level_keys_cache(self):
        from repro.evalkit.runner import SuiteRunConfig, suite_cell_key

        off = suite_cell_key("OR1200", "PUFFER", SuiteRunConfig())
        cheap = suite_cell_key(
            "OR1200", "PUFFER", SuiteRunConfig(verify="cheap")
        )
        assert off != cheap
