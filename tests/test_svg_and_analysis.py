"""Tests for the SVG renderer and padding diagnostics."""

import numpy as np
import pytest

from repro.core import (
    CongestionEstimator,
    FeatureExtractor,
    PaddingEngine,
    StrategyParams,
    padding_histogram,
    round_trajectory,
    summarize_padding,
)
from repro.evalkit import placement_svg, save_placement_svg


class TestSvg:
    def test_valid_document(self, placed_small_design):
        svg = placement_svg(placed_small_design, width=400)
        assert svg.startswith("<?xml")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") > placed_small_design.num_macros

    def test_congestion_overlay_adds_red(self, placed_small_design):
        hot = np.zeros((8, 8))
        hot[4, 4] = 10.0
        svg = placement_svg(placed_small_design, congestion=hot, congestion_vmax=10.0)
        assert "#cc2222" in svg

    def test_overlay_skips_cold_cells(self, placed_small_design):
        cold = np.zeros((8, 8))
        svg = placement_svg(placed_small_design, congestion=cold)
        assert "#cc2222" not in svg

    def test_subsampling_caps_rects(self, placed_small_design):
        svg_full = placement_svg(placed_small_design)
        svg_capped = placement_svg(placed_small_design, max_cells=10)
        assert svg_capped.count("<rect") < svg_full.count("<rect")

    def test_save(self, placed_small_design, tmp_path):
        path = tmp_path / "place.svg"
        save_placement_svg(placed_small_design, str(path), width=200)
        assert path.read_text().startswith("<?xml")


class TestPaddingAnalysis:
    @pytest.fixture
    def engine_with_rounds(self, placed_small_design):
        estimator = CongestionEstimator(placed_small_design)
        cmap, topologies, _ = estimator.estimate()
        features = FeatureExtractor(placed_small_design).extract(cmap, topologies)
        engine = PaddingEngine(placed_small_design, StrategyParams())
        engine.run_round(features)
        engine.run_round(features)
        return engine, cmap

    def test_summary_fields(self, engine_with_rounds):
        engine, cmap = engine_with_rounds
        summary = summarize_padding(engine, cmap)
        assert summary.rounds == 2
        assert summary.total_area >= 0
        assert 0 <= summary.utilization <= 1
        assert summary.num_padded >= 0
        if summary.num_padded:
            assert summary.max_pad >= summary.mean_pad > 0

    def test_summary_without_map(self, engine_with_rounds):
        engine, _ = engine_with_rounds
        summary = summarize_padding(engine)
        assert np.isnan(summary.congestion_correlation) or isinstance(
            summary.congestion_correlation, float
        )

    def test_histogram_covers_all_padded(self, engine_with_rounds):
        engine, _ = engine_with_rounds
        rows = padding_histogram(engine, bins=5)
        counted = sum(count for _, _, count in rows)
        movable = engine.design.movable & ~engine.design.is_macro
        assert counted == int((engine.pad[movable] > 0).sum())

    def test_trajectory_rows(self, engine_with_rounds):
        engine, _ = engine_with_rounds
        rows = round_trajectory(engine)
        assert len(rows) == 2
        assert rows[0]["round"] == 1
        assert rows[1]["total_area"] >= 0

    def test_empty_engine(self, small_design):
        engine = PaddingEngine(small_design, StrategyParams())
        assert padding_histogram(engine) == []
        assert round_trajectory(engine) == []
        summary = summarize_padding(engine)
        assert summary.rounds == 0
        assert summary.num_padded == 0
