"""Executes the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.core.puffer
import repro.netlist.builder

MODULES = [repro.netlist.builder, repro.core.puffer]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
