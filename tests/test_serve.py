"""Tests for the placement job service (repro.serve)."""

import asyncio
import json
import threading
import time

import pytest

from repro import api, obs
from repro.runtime import stable_hash
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    HttpServer,
    HttpServiceClient,
    Job,
    JobFailedError,
    JobStateError,
    JobStore,
    PlacementService,
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    ServiceClosedError,
    UnknownJobError,
    execute_request,
    make_request,
)


def run_async(coro):
    return asyncio.run(coro)


def make_service(runner, **kwargs):
    defaults = dict(workers=1, capacity=4)
    defaults.update(kwargs)
    return PlacementService(ServiceConfig(**defaults), runner=runner)


def quick_runner(request):
    """Fast fake placement: returns a deterministic summary."""
    return {"design": request["design"], "hpwl": 42.0}


class TestJobLifecycle:
    def test_legal_path_queued_running_done(self):
        job = Job(id="job-1", request={}, key="k")
        assert job.state == QUEUED and not job.terminal
        job.transition(RUNNING)
        assert job.started_at is not None
        job.transition(DONE)
        assert job.terminal and job.finished_at is not None

    def test_cache_hit_shortcut_queued_to_done(self):
        job = Job(id="job-1", request={}, key="k")
        job.transition(DONE)
        assert job.state == DONE

    @pytest.mark.parametrize("terminal", [DONE, FAILED, CANCELLED])
    def test_terminal_states_are_final(self, terminal):
        job = Job(id="job-1", request={}, key="k")
        job.transition(RUNNING if terminal != DONE else DONE)
        if terminal != DONE:
            job.transition(terminal)
        with pytest.raises(JobStateError):
            job.transition(RUNNING)

    def test_queued_cannot_fail_directly(self):
        job = Job(id="job-1", request={}, key="k")
        with pytest.raises(JobStateError):
            job.transition(FAILED)

    def test_unknown_state_rejected(self):
        job = Job(id="job-1", request={}, key="k")
        with pytest.raises(JobStateError):
            job.transition("exploded")

    def test_store_counts_and_order(self):
        store = JobStore()
        a = store.create({"n": 1}, key="ka")
        b = store.create({"n": 2}, key="kb")
        assert [j.id for j in store.jobs()] == [a.id, b.id]
        a.transition(RUNNING)
        assert store.counts()[RUNNING] == 1
        assert store.counts()[QUEUED] == 1
        assert [j.id for j in store.jobs(state=QUEUED)] == [b.id]

    def test_store_unknown_id(self):
        with pytest.raises(UnknownJobError):
            JobStore().get("job-404")

    def test_wire_dict_is_json_safe(self):
        job = Job(id="job-1", request={"design": "OR1200"}, key="k")
        json.dumps(job.to_wire())


class TestServiceLifecycle:
    def test_submit_runs_to_done(self):
        async def main():
            service = await make_service(quick_runner).start()
            client = ServiceClient(service)
            result = await client.run("OR1200", wait_timeout=10)
            assert result == {"design": "OR1200", "hpwl": 42.0}
            job = service.jobs()[0]
            assert job.state == DONE
            assert job.started_at >= job.submitted_at
            assert job.finished_at >= job.started_at
            await service.stop()

        run_async(main())

    def test_runner_exception_marks_failed(self):
        def broken(request):
            raise RuntimeError("no routes for you")

        async def main():
            service = await make_service(broken).start()
            client = ServiceClient(service)
            with pytest.raises(JobFailedError, match="no routes"):
                await client.run("OR1200", wait_timeout=10)
            assert service.jobs()[0].state == FAILED
            await service.stop()

        run_async(main())

    def test_per_job_timeout_fails_the_job(self):
        release = threading.Event()

        def slow(request):
            release.wait(5)
            return {}

        async def main():
            service = await make_service(slow).start()
            job = service.submit(make_request("OR1200", timeout=0.1))
            job = await service.wait(job.id, timeout=10)
            assert job.state == FAILED
            assert "timeout" in job.error
            release.set()
            await service.stop()

        run_async(main())

    def test_cancel_queued_job(self):
        release = threading.Event()

        def slow(request):
            release.wait(5)
            return {}

        async def main():
            # workers=1: the second job stays queued while the first runs.
            service = await make_service(slow).start()
            first = service.submit(make_request("OR1200"))
            second = service.submit(make_request("OR1200", flow="replace"))
            await asyncio.sleep(0.05)
            cancelled = service.cancel(second.id)
            assert cancelled.state == CANCELLED
            release.set()
            first = await service.wait(first.id, timeout=10)
            assert first.state == DONE
            await service.stop()

        run_async(main())

    def test_cancel_running_job_best_effort(self):
        release = threading.Event()

        def slow(request):
            release.wait(5)
            return {}

        async def main():
            service = await make_service(slow).start()
            job = service.submit(make_request("OR1200"))
            while job.state != RUNNING:
                await asyncio.sleep(0.01)
            service.cancel(job.id)
            job = await service.wait(job.id, timeout=10)
            assert job.state == CANCELLED
            release.set()
            await service.stop()

        run_async(main())

    def test_cancel_terminal_job_conflicts(self):
        async def main():
            service = await make_service(quick_runner).start()
            job = service.submit(make_request("OR1200"))
            await service.wait(job.id, timeout=10)
            with pytest.raises(JobStateError):
                service.cancel(job.id)
            await service.stop()

        run_async(main())

    def test_drain_refuses_new_work_and_finishes_accepted(self):
        async def main():
            service = await make_service(quick_runner).start()
            job = service.submit(make_request("OR1200"))
            await service.drain()
            assert service.status(job.id).state == DONE
            with pytest.raises(ServiceClosedError):
                service.submit(make_request("OR1200"))
            assert service.healthz()["status"] == "draining"
            await service.stop()

        run_async(main())


class TestValidationBoundary:
    def test_missing_design_rejected(self):
        async def main():
            service = await make_service(quick_runner).start()
            with pytest.raises(ValueError, match="design"):
                service.submit({})
            await service.stop()

        run_async(main())

    def test_unknown_flow_rejected_at_submit(self):
        async def main():
            service = await make_service(quick_runner).start()
            with pytest.raises(api.UnknownFlowError):
                service.submit({"design": "OR1200", "flow": "bogus"})
            await service.stop()

        run_async(main())

    def test_bad_config_rejected_at_submit(self):
        async def main():
            service = await make_service(quick_runner).start()
            with pytest.raises(Exception, match="verify"):
                service.submit(
                    {"design": "OR1200", "config": {"verify": "paranoid"}}
                )
            with pytest.raises(Exception, match="unknown"):
                service.submit(
                    {"design": "OR1200", "config": {"scalee": 0.002}}
                )
            await service.stop()

        run_async(main())

    def test_unknown_request_key_rejected(self):
        async def main():
            service = await make_service(quick_runner).start()
            with pytest.raises(ValueError, match="unknown request keys"):
                service.submit({"design": "OR1200", "designn": "typo"})
            await service.stop()

        run_async(main())

    def test_memo_key_is_normal_form(self):
        """A bare request and its fully-spelled equivalent share a key."""
        async def main():
            service = await make_service(quick_runner, capacity=8).start()
            bare = service.submit({"design": "OR1200"})
            spelled = service.submit(
                {
                    "design": "OR1200",
                    "flow": "puffer",
                    "route": False,
                    "config": api.RunConfig().to_dict(),
                }
            )
            assert bare.key == spelled.key
            assert bare.key == stable_hash(bare.request)
            await service.stop()

        run_async(main())


class TestConcurrentSubmissions:
    """The issue's integration scenario: 8 jobs against a capacity-2 queue."""

    def test_backpressure_completion_cache_and_trace(self, tmp_path):
        release = threading.Event()
        calls = []

        def gated(request):
            calls.append(request["design"])
            release.wait(10)
            return {"design": request["design"], "hpwl": 1.0}

        tracer = obs.Tracer(sinks=[obs.JsonlSink(tmp_path / "serve.jsonl")])
        accepted, rejections = [], []

        async def main():
            service = PlacementService(
                ServiceConfig(workers=1, capacity=2,
                              cache_dir=str(tmp_path / "cache")),
                runner=gated,
            )
            await service.start()
            for seed in range(8):
                config = api.RunConfig(scale=0.002, seed=seed)
                try:
                    accepted.append(
                        service.submit(make_request("OR1200", config=config))
                    )
                except QueueFullError as exc:
                    rejections.append(exc)
            # Capacity 2 + one in flight: at most 3 accepted, rest rejected
            # with a retry-after hint.
            assert len(accepted) >= 1
            assert len(rejections) == 8 - len(accepted)
            assert rejections and all(r.retry_after > 0 for r in rejections)
            release.set()
            jobs = [await service.wait(job.id, timeout=30) for job in accepted]
            assert all(job.state == DONE for job in jobs)

            # Duplicate configs are served from the artifact cache without
            # touching the queue or the runner again.
            runs_before = len(calls)
            duplicate = service.submit(
                make_request("OR1200", config=api.RunConfig(scale=0.002, seed=0))
            )
            assert duplicate.state == DONE
            assert duplicate.cache_hit
            assert duplicate.key == accepted[0].key
            assert len(calls) == runs_before
            assert service.counts["cache_hits"] == 1
            assert service.metrics()["counters"]["rejected"] == len(rejections)
            await service.stop()

        with obs.tracing(tracer):
            run_async(main())
        tracer.close()

        records = obs.read_trace(tmp_path / "serve.jsonl")
        spans = {r["name"] for r in records if r["type"] == "span"}
        assert "serve/request" in spans
        assert "serve/job" in spans
        metrics = {r["name"]: r for r in records if r["type"] == "metric"}
        assert "serve/queue_depth" in metrics
        assert metrics["serve/queue_depth"]["updates"] > 0
        assert metrics["serve/rejected"]["value"] == len(rejections)
        # Every accepted job ran under a serve/job span; the cache-hit
        # duplicate never reached a worker, so it adds no span.
        job_spans = [r for r in records
                     if r["type"] == "span" and r["name"] == "serve/job"]
        assert len(job_spans) == len(accepted)


class TestEventStream:
    """Lifecycle events publish per job and stream via wait/follow."""

    def test_state_events_bracket_the_run(self):
        async def main():
            service = await make_service(quick_runner).start()
            client = ServiceClient(service)
            await client.run("OR1200", wait_timeout=10)
            job = service.jobs()[0]
            events = service.events(job.id)
            assert [e.kind for e in events] == ["state"] * 3
            assert [e.state for e in events] == [QUEUED, RUNNING, DONE]
            assert [e.seq for e in events] == [0, 1, 2]
            assert all(e.job_id == job.id for e in events)
            # `after` slices strictly past the cursor.
            assert [e.seq for e in service.events(job.id, after=1)] == [2]
            assert service.events(job.id, after=99) == []
            await service.stop()

        run_async(main())

    def test_cache_hit_skips_running(self, tmp_path):
        async def main():
            service = await make_service(
                quick_runner, cache_dir=str(tmp_path / "cache")
            ).start()
            first = service.submit(make_request("OR1200"))
            await service.wait(first.id, timeout=10)
            hit = service.submit(make_request("OR1200"))
            assert hit.cache_hit
            states = [e.state for e in service.events(hit.id)]
            assert states == [QUEUED, DONE]
            await service.stop()

        run_async(main())

    def test_events_unknown_job(self):
        async def main():
            service = await make_service(quick_runner).start()
            with pytest.raises(UnknownJobError):
                service.events("job-404")
            await service.stop()

        run_async(main())

    def test_wait_events_long_polls_until_new_events(self):
        release = threading.Event()

        def gated(request):
            release.wait(5)
            return {"hpwl": 1.0}

        async def main():
            service = await make_service(gated).start()
            job = service.submit(make_request("OR1200"))
            seen, done = await service.wait_events(job.id, after=-1, timeout=5)
            assert seen and not done
            after = seen[-1].seq
            release.set()
            collected = list(seen)
            while not done:
                fresh, done = await service.wait_events(
                    job.id, after=after, timeout=5
                )
                collected.extend(fresh)
                if fresh:
                    after = fresh[-1].seq
            assert [e.state for e in collected] == [QUEUED, RUNNING, DONE]
            await service.stop()

        run_async(main())

    def test_service_client_follow_ends_at_terminal_event(self):
        async def main():
            service = await make_service(quick_runner).start()
            client = ServiceClient(service)
            job = await client.submit("OR1200")
            events = [e async for e in client.follow(job.id, timeout=10)]
            assert events[-1].kind == "state"
            assert events[-1].state == DONE
            assert [e.state for e in events] == [QUEUED, RUNNING, DONE]
            await service.stop()

        run_async(main())

    def test_service_client_run_invokes_progress_callback(self):
        async def main():
            service = await make_service(quick_runner).start()
            client = ServiceClient(service)
            seen = []
            result = await client.run("OR1200", wait_timeout=10,
                                      progress=seen.append)
            assert result["hpwl"] == 42.0
            assert [e.state for e in seen] == [QUEUED, RUNNING, DONE]
            await service.stop()

        run_async(main())


class TestCoalescing:
    """Duplicate in-flight configs share one execution."""

    def test_duplicate_inflight_attaches_and_mirrors_result(self):
        release = threading.Event()
        calls = []

        def gated(request):
            calls.append(request["design"])
            release.wait(5)
            return {"design": request["design"], "hpwl": 1.0}

        async def main():
            service = await make_service(gated).start()
            primary = service.submit(make_request("OR1200"))
            follower = service.submit(make_request("OR1200"))
            straggler = service.submit(make_request("OR1200"))
            assert not primary.coalesced
            assert follower.coalesced and straggler.coalesced
            assert follower.key == primary.key
            # Followers consume no queue slot.
            assert service.metrics()["queue_depth"] <= 1
            assert service.counts["coalesced"] == 2
            release.set()
            jobs = [
                await service.wait(job.id, timeout=10)
                for job in (primary, follower, straggler)
            ]
            assert all(job.state == DONE for job in jobs)
            assert follower.result == primary.result
            assert len(calls) == 1  # one execution served all three
            await service.stop()

        run_async(main())

    def test_coalesced_duplicates_admitted_at_capacity(self):
        release = threading.Event()

        def gated(request):
            release.wait(5)
            return {}

        async def main():
            service = await make_service(gated, capacity=1).start()
            running = service.submit(make_request("OR1200"))
            await asyncio.sleep(0.05)  # worker picks it up, freeing the slot
            queued = service.submit(make_request("OR1200", flow="replace"))
            with pytest.raises(QueueFullError):
                service.submit(make_request("OR1200", flow="wirelength"))
            # ... but a duplicate of in-flight work still gets in.
            dup = service.submit(make_request("OR1200"))
            assert dup.coalesced
            release.set()
            for job in (running, queued, dup):
                assert (await service.wait(job.id, timeout=10)).state == DONE
            await service.stop()

        run_async(main())

    def test_failed_primary_promotes_first_follower(self):
        calls = []

        def flaky(request):
            calls.append(request["design"])
            if len(calls) == 1:
                raise RuntimeError("transient placement failure")
            return {"hpwl": 2.0}

        async def main():
            service = await make_service(flaky).start()
            primary = service.submit(make_request("OR1200"))
            follower = service.submit(make_request("OR1200"))
            done = await service.wait(follower.id, timeout=10)
            assert service.status(primary.id).state == FAILED
            # The follower reran the work instead of inheriting the failure.
            assert done.state == DONE
            assert done.result == {"hpwl": 2.0}
            assert not done.coalesced
            assert len(calls) == 2
            await service.stop()

        run_async(main())


class TestFairnessAndShedding:
    def test_round_robin_interleaves_clients(self):
        release = threading.Event()
        order = []

        def gated(request):
            order.append(request["config"]["seed"])
            release.wait(10)
            return {}

        async def main():
            service = await make_service(gated, capacity=8).start()
            blocker = service.submit(make_request("OR1200", client_id="z"))
            await asyncio.sleep(0.05)  # blocker occupies the single worker
            submitted = []
            # Client "a" floods first; "b" arrives after — round-robin
            # must still interleave them instead of draining "a" first.
            for seed in (1, 2, 3):
                submitted.append(service.submit(make_request(
                    "OR1200", config=api.RunConfig(seed=seed),
                    client_id="a")))
            for seed in (101, 102, 103):
                submitted.append(service.submit(make_request(
                    "OR1200", config=api.RunConfig(seed=seed),
                    client_id="b")))
            release.set()
            for job in [blocker, *submitted]:
                assert (await service.wait(job.id, timeout=10)).state == DONE
            dispatched = order[1:]  # drop the blocker
            clients = ["a" if seed < 100 else "b" for seed in dispatched]
            assert sorted(clients) == ["a", "a", "a", "b", "b", "b"]
            # Every adjacent pair holds one job of each client.
            for i in (0, 2, 4):
                assert set(clients[i:i + 2]) == {"a", "b"}
            await service.stop()

        run_async(main())

    def test_client_weights_skew_dispatch(self):
        release = threading.Event()
        order = []

        def gated(request):
            order.append(request["config"]["seed"])
            release.wait(10)
            return {}

        async def main():
            service = await make_service(
                gated, capacity=8, client_weights={"a": 2, "b": 1}
            ).start()
            blocker = service.submit(make_request("OR1200", client_id="z"))
            await asyncio.sleep(0.05)
            submitted = []
            for seed in (1, 2, 3, 4):
                submitted.append(service.submit(make_request(
                    "OR1200", config=api.RunConfig(seed=seed),
                    client_id="a")))
            for seed in (101, 102):
                submitted.append(service.submit(make_request(
                    "OR1200", config=api.RunConfig(seed=seed),
                    client_id="b")))
            release.set()
            for job in [blocker, *submitted]:
                assert (await service.wait(job.id, timeout=10)).state == DONE
            clients = ["a" if seed < 100 else "b" for seed in order[1:]]
            # Weight 2 lets "a" dispatch twice per cycle: among the first
            # three picks "a" appears twice, yet "b" is never starved.
            assert clients[:3].count("a") == 2
            assert "b" in clients[:3]
            await service.stop()

        run_async(main())

    def test_high_priority_submission_sheds_lowest_queued(self):
        release = threading.Event()
        order = []

        def gated(request):
            order.append(request["config"]["seed"])
            release.wait(10)
            return {}

        async def main():
            service = await make_service(gated, capacity=2).start()
            blocker = service.submit(make_request(
                "OR1200", config=api.RunConfig(seed=99)))
            await asyncio.sleep(0.05)
            low_old = service.submit(make_request(
                "OR1200", config=api.RunConfig(seed=1)))
            low_new = service.submit(make_request(
                "OR1200", config=api.RunConfig(seed=2)))
            assert service.metrics()["queue_depth"] == 2  # full

            urgent = service.submit(make_request(
                "OR1200", config=api.RunConfig(seed=7), priority=5))
            # The newest of the equal-priority queued jobs was displaced;
            # long-waiting work keeps its place.
            victim = service.status(low_new.id)
            assert victim.state == CANCELLED
            assert "load-shed" in victim.error
            assert "priority-5" in victim.error
            assert service.counts["shed"] == 1
            assert service.status(low_old.id).state == QUEUED

            release.set()
            for job in (blocker, low_old, urgent):
                assert (await service.wait(job.id, timeout=10)).state == DONE
            # Priority also orders dispatch: the urgent job ran before
            # the surviving priority-0 job.
            assert order.index(7) < order.index(1)
            await service.stop()

        run_async(main())

    def test_equal_priority_is_rejected_not_shed(self):
        release = threading.Event()

        def gated(request):
            release.wait(10)
            return {}

        async def main():
            service = await make_service(gated, capacity=1).start()
            running = service.submit(make_request("OR1200"))
            await asyncio.sleep(0.05)  # worker picks it up, freeing the slot
            queued = service.submit(make_request("OR1200", flow="replace"))
            with pytest.raises(QueueFullError):
                service.submit(make_request("OR1200", flow="wirelength"))
            assert service.counts["shed"] == 0
            assert service.counts["rejected"] == 1
            assert service.status(queued.id).state == QUEUED
            release.set()
            for job in (running, queued):
                assert (await service.wait(job.id, timeout=10)).state == DONE
            await service.stop()

        run_async(main())


class TestHttpEndpoints:
    @staticmethod
    def serve_in_thread(runner, config=None):
        """Run service + HTTP server in a background event loop.

        Returns ``(client, shutdown)``.
        """
        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    config or ServiceConfig(workers=1, capacity=4),
                    runner=runner,
                )
                await service.start()
                server = HttpServer(service, port=0)
                host, port = await server.start()
                box["addr"] = (host, port)
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await server.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(10)

        def shutdown():
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)

        return HttpServiceClient(*box["addr"]), shutdown

    def test_full_http_roundtrip(self):
        client, shutdown = self.serve_in_thread(quick_runner)
        try:
            health = client.healthz()
            assert health["ok"] and health["status"] == "serving"

            job = client.submit("OR1200", config=api.RunConfig(scale=0.002))
            assert job["state"] in ("queued", "running", "done")
            job = client.wait(job["id"], timeout=10, poll=0.02)
            assert job["state"] == "done"
            assert job["result"]["hpwl"] == 42.0

            listing = client.jobs()
            assert [j["id"] for j in listing] == [job["id"]]
            assert client.jobs(state="done")
            assert client.jobs(state="failed") == []

            metrics = client.metrics()
            assert metrics["counters"]["done"] == 1
        finally:
            shutdown()

    def test_http_error_mapping(self):
        release = threading.Event()

        def slow(request):
            release.wait(5)
            return {}

        client, shutdown = self.serve_in_thread(
            slow, ServiceConfig(workers=1, capacity=1)
        )
        try:
            with pytest.raises(UnknownJobError):
                client.status("job-404")
            with pytest.raises(ValueError, match="flow"):
                client.submit("OR1200", flow="bogus")

            first = client.submit("OR1200")
            second = client.submit("OR1200", flow="replace")
            with pytest.raises(QueueFullError) as info:
                for seed in range(3):
                    client.submit("OR1200", flow="wirelength",
                                  config=api.RunConfig(seed=seed))
            assert info.value.retry_after > 0

            cancelled = client.cancel(second["id"])
            assert cancelled["state"] == "cancelled"
            release.set()
            done = client.wait(first["id"], timeout=10, poll=0.02)
            assert done["state"] == "done"
            with pytest.raises(JobStateError):
                client.cancel(first["id"])
        finally:
            shutdown()

    def test_http_run_raises_on_failure(self):
        def broken(request):
            raise RuntimeError("kaboom")

        client, shutdown = self.serve_in_thread(broken)
        try:
            with pytest.raises(JobFailedError, match="kaboom"):
                client.run("OR1200", wait_timeout=10, poll=0.02)
        finally:
            shutdown()

    def test_http_events_and_follow(self):
        from repro.serve import JobEvent

        client, shutdown = self.serve_in_thread(quick_runner)
        try:
            job = client.submit("OR1200")
            events = list(client.follow(job["id"], timeout=10))
            assert all(isinstance(e, JobEvent) for e in events)
            assert [e.state for e in events] == ["queued", "running", "done"]
            # The non-blocking read replays the same history...
            replay = client.events(job["id"])
            assert [e.seq for e in replay] == [e.seq for e in events]
            # ...and `after` resumes past a cursor.
            assert client.events(job["id"], after=events[-1].seq) == []
            with pytest.raises(UnknownJobError):
                client.events("job-404")
        finally:
            shutdown()

    def test_http_run_with_progress_callback(self):
        client, shutdown = self.serve_in_thread(quick_runner)
        try:
            seen = []
            result = client.run("OR1200", wait_timeout=10,
                                progress=seen.append)
            assert result["hpwl"] == 42.0
            assert seen and seen[-1].state == "done"
        finally:
            shutdown()


class TestRealPlacement:
    def test_end_to_end_placement_through_the_service(self, tmp_path):
        """The real runner places a tiny design and returns a summary."""
        from repro.placer import PlacementParams

        config = api.RunConfig(
            scale=0.0015,
            placement=PlacementParams(max_iters=80),
        )

        async def main():
            service = PlacementService(
                ServiceConfig(workers=1, capacity=2,
                              cache_dir=str(tmp_path / "cache"))
            )
            await service.start()
            client = ServiceClient(service)
            result = await client.run("OR1200", config=config, wait_timeout=300)
            assert result["design"] == "OR1200"
            assert result["flow"] == "puffer"
            assert result["hpwl"] > 0
            assert result["place_seconds"] > 0
            json.dumps(result)  # wire-safe
            # Same config again: served from the cache, bit-identical.
            again = await client.submit("OR1200", config=config)
            assert again.state == DONE and again.cache_hit
            assert again.result == result
            await service.stop()

        run_async(main())

    def test_execute_request_summary_shape(self):
        summary = execute_request(
            {
                "design": "OR1200",
                "flow": "wirelength",
                "config": api.RunConfig(scale=0.0015).to_dict(),
            }
        )
        assert summary["flow"] == "wirelength"
        assert summary["route"] is None
        assert summary["verify"] is None
        json.dumps(summary)


class TestHttpDrainAndCancellation:
    """Issue scenario: graceful drain and queued-job cancellation as a
    client on the wire sees them (503s, 409s, terminal states)."""

    @staticmethod
    def serve_in_thread(runner, config=None):
        """Like TestHttpEndpoints.serve_in_thread, but also exposes the
        service and its loop so tests can drive drain() mid-flight."""
        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    config or ServiceConfig(workers=1, capacity=4),
                    runner=runner,
                )
                await service.start()
                server = HttpServer(service, port=0)
                box["addr"] = await server.start()
                box["service"] = service
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await server.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(10)

        def shutdown():
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(10)

        return HttpServiceClient(*box["addr"]), box, shutdown

    def test_drain_503_while_finishing_queued_work(self):
        release = threading.Event()

        def gated(request):
            release.wait(10)
            return {"design": request["design"], "hpwl": 1.0}

        client, box, shutdown = self.serve_in_thread(gated)
        try:
            # One running, one still queued behind the single worker.
            running = client.submit("OR1200")
            queued = client.submit("OR1200", flow="replace")

            drain = asyncio.run_coroutine_threadsafe(
                box["service"].drain(), box["loop"]
            )
            # Drain refuses new submissions immediately with a 503 ...
            with pytest.raises(ServiceClosedError):
                client.submit("OR1200", flow="wirelength")
            assert client.healthz()["status"] == "draining"
            # ... while already-accepted work is still finished.
            release.set()
            drain.result(timeout=10)
            assert client.status(running["id"])["state"] == "done"
            assert client.status(queued["id"])["state"] == "done"
            assert client.status(queued["id"])["result"]["hpwl"] == 1.0
        finally:
            release.set()
            shutdown()

    def test_cancel_queued_job_over_http(self):
        release = threading.Event()

        def gated(request):
            release.wait(10)
            return {}

        client, box, shutdown = self.serve_in_thread(
            gated, ServiceConfig(workers=1, capacity=4)
        )
        try:
            running = client.submit("OR1200")
            queued = client.submit("OR1200", flow="replace")
            assert client.status(queued["id"])["state"] == "queued"

            cancelled = client.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            # Cancelling a terminal job is a 409 conflict, not a retry.
            with pytest.raises(JobStateError):
                client.cancel(queued["id"])

            release.set()
            done = client.wait(running["id"], timeout=10, poll=0.02)
            assert done["state"] == "done"
            # The cancelled job never ran: no result, state preserved.
            assert client.status(queued["id"])["state"] == "cancelled"
            assert client.status(queued["id"])["result"] is None
            states = {j["id"]: j["state"] for j in client.jobs()}
            assert states[queued["id"]] == "cancelled"
        finally:
            release.set()
            shutdown()
