"""End-to-end tests over the committed 6502-class example netlist."""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.netlist import load_yosys
from repro.slots import SlotParams

REPO = Path(__file__).resolve().parents[1]
EXAMPLE = REPO / "examples" / "mos6502_mapped.json"
GENERATOR = REPO / "examples" / "make_mos6502.py"


def test_example_is_committed():
    assert EXAMPLE.is_file(), "examples/mos6502_mapped.json missing"


def test_generator_reproduces_committed_file():
    spec = importlib.util.spec_from_file_location("make_mos6502", GENERATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    regenerated = json.dumps(module.build(), indent=1, sort_keys=False) + "\n"
    assert regenerated == EXAMPLE.read_text()


def test_ingest_cli(capsys):
    assert main(["ingest", str(EXAMPLE)]) == 0
    out = capsys.readouterr().out
    assert "mos6502" in out
    assert "terminals" in out


def test_ingest_structure():
    design = load_yosys(str(EXAMPLE))
    assert design.name == "mos6502"
    assert int(design.movable.sum()) == 468
    assert design.num_cells - int(design.movable.sum()) == 44  # port bits
    assert design.num_nets > 400
    # Registers made it through: every DFF output bit got a net.
    assert any(name.startswith("IR") for name in design.net_names)


def test_place_slots_cli_verify_full(capsys):
    code = main(
        [
            "place",
            str(EXAMPLE),
            "--mode",
            "slots",
            "--sa-iters",
            "2000",
            "--verify",
            "full",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "slots:" in out
    assert "legal=True" in out
    assert "0 errors" in out


def test_api_slots_run_deterministic():
    config = api.RunConfig(mode="slots", slots=SlotParams(sa_iters=1000))
    r1 = api.run(str(EXAMPLE), config=config)
    r2 = api.run(str(EXAMPLE), config=config)
    np.testing.assert_array_equal(
        r1.flow_result.slot_assignment, r2.flow_result.slot_assignment
    )
    assert r1.hpwl == r2.hpwl
    assert r1.flow == "slots"
    summary = r1.to_summary()
    assert summary["slots"]["hpwl_final"] == pytest.approx(r1.hpwl)


def test_api_standard_mode_ignores_slots_flow():
    config = api.RunConfig(mode="standard")
    with pytest.raises(api.UnknownFlowError):
        api.run("OR1200", flow="slots-is-not-a-flow", config=config)
