"""Smoke tests: every example script runs end to end at a tiny scale."""

import os
import subprocess
import sys


EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "0.002")
        assert "PUFFER" in out
        assert "legal: True" in out
        assert "overflow" in out

    def test_compare_placers(self):
        out = run_example("compare_placers.py", "OR1200", "0.002")
        assert "Commercial_Inn*" in out
        assert "RePlAce-like" in out
        assert "PUFFER" in out
        assert "vertical routing utilization" in out

    def test_congestion_analysis(self):
        out = run_example("congestion_analysis.py", "OR1200", "0.002")
        assert "correlation with router demand" in out
        assert "padding features" in out

    def test_compare_placers_rejects_unknown_design(self):
        result = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES, "compare_placers.py"), "NOPE"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0

    def test_padding_deep_dive(self, tmp_path):
        svg = tmp_path / "dd.svg"
        out = run_example("padding_deep_dive.py", "OR1200", "0.002", str(svg))
        assert "round trajectory" in out
        assert "final padding summary" in out
        assert svg.exists()

    def test_strategy_exploration(self):
        out = run_example("strategy_exploration.py", "4")
        assert "exploration done" in out
        assert "transfer to larger designs" in out
