"""Tests for the comparison flows (WL-driven, RePlAce-like, commercial)."""

import numpy as np

from repro.baselines import (
    CommercialLikeParams,
    ReplaceLikeParams,
    place_commercial_like,
    place_replace_like,
    place_wirelength_driven,
)
from repro.netlist import check_legal
from repro.placer import PlacementParams
from repro.router import RouterParams

FAST = PlacementParams(max_iters=300)


class TestWirelengthDriven:
    def test_legal_result(self, small_design):
        result = place_wirelength_driven(small_design, FAST)
        assert check_legal(small_design).ok
        assert result.placer == "wirelength"
        assert result.hpwl > 0
        assert result.inflation_rounds == 0


class TestReplaceLike:
    def test_legal_result_and_inflation(self, small_design):
        result = place_replace_like(small_design, FAST)
        assert check_legal(small_design).ok
        assert result.placer == "replace_like"
        assert 0 <= result.inflation_rounds <= ReplaceLikeParams().rounds
        assert result.notes["mean_inflation"] >= 1.0

    def test_inflation_budget_respected(self, small_design):
        params = ReplaceLikeParams(area_budget=0.01, rounds=1)
        place_replace_like(small_design, FAST, params)
        # With a tiny budget the flow must still finish legally.
        assert check_legal(small_design).ok

    def test_zero_rounds_equals_wirelength_flow(self, small_spec):
        from repro.benchgen import generate_design

        a = generate_design(small_spec)
        b = generate_design(small_spec)
        place_wirelength_driven(a, FAST)
        place_replace_like(b, FAST, ReplaceLikeParams(rounds=0))
        assert np.allclose(a.x, b.x)
        assert np.allclose(a.y, b.y)


class TestCommercialLike:
    def test_legal_result(self, small_design):
        params = CommercialLikeParams(
            rounds=1, router=RouterParams(rrr_rounds=0)
        )
        result = place_commercial_like(small_design, FAST, params)
        assert check_legal(small_design).ok
        assert result.placer == "commercial_like"
        assert result.inflation_rounds >= 0

    def test_router_feedback_rounds_bounded(self, small_design):
        params = CommercialLikeParams(
            rounds=2, router=RouterParams(rrr_rounds=0)
        )
        result = place_commercial_like(small_design, FAST, params)
        assert result.inflation_rounds <= 2

    def test_slower_than_wirelength(self, small_spec):
        from repro.benchgen import generate_design

        a = generate_design(small_spec)
        b = generate_design(small_spec)
        wl = place_wirelength_driven(a, FAST)
        commercial = place_commercial_like(b, FAST)
        assert commercial.runtime > wl.runtime
