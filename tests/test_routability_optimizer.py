"""Tests for the routability optimizer hook and the PUFFER flow."""

import pytest

from repro.core import PufferPlacer, RoutabilityOptimizer, StrategyParams
from repro.netlist import check_legal
from repro.placer import PlacementParams


class FakeState:
    """Minimal PlacerState stand-in for trigger-logic tests."""

    def __init__(self, iteration, overflow):
        self.iteration = iteration
        self.overflow = overflow
        self.sizes = None

    def set_density_sizes(self, w, h):
        self.sizes = (w, h)


class TestTriggerConditions:
    def test_high_overflow_blocks(self, small_design):
        opt = RoutabilityOptimizer(small_design, StrategyParams(tau=0.25))
        assert not opt.should_fire(FakeState(100, overflow=0.5))

    def test_low_overflow_fires(self, small_design):
        opt = RoutabilityOptimizer(small_design, StrategyParams(tau=0.25))
        assert opt.should_fire(FakeState(100, overflow=0.1))

    def test_xi_caps_rounds(self, small_design):
        opt = RoutabilityOptimizer(small_design, StrategyParams(tau=0.25, xi=2))
        opt.calls = 2
        assert not opt.should_fire(FakeState(100, overflow=0.1))

    def test_min_gap_enforced(self, small_design):
        opt = RoutabilityOptimizer(small_design, StrategyParams(), min_gap=10)
        opt.last_call_iteration = 95
        assert not opt.should_fire(FakeState(100, overflow=0.1))
        assert opt.should_fire(FakeState(106, overflow=0.1))

    def test_eta_blocks_while_growing(self, small_design):
        opt = RoutabilityOptimizer(small_design, StrategyParams(eta=0.05))
        state = FakeState(100, overflow=0.1)
        assert opt(state)  # first round always allowed
        # A large added_fraction (> eta) must block the next round.
        if opt.padding.history[-1].added_fraction >= 0.05:
            assert not opt.should_fire(FakeState(200, overflow=0.1))


class TestOptimizerEffect:
    def test_fire_pads_and_installs_sizes(self, placed_small_design):
        opt = RoutabilityOptimizer(placed_small_design, StrategyParams())
        state = FakeState(50, overflow=0.1)
        fired = opt(state)
        assert fired
        assert state.sizes is not None
        w_eff, h_eff = state.sizes
        assert (w_eff >= placed_small_design.w - 1e-12).all()
        assert opt.calls == 1
        assert len(opt.events) == 1
        assert opt.last_map is not None


class TestPufferFlow:
    @pytest.fixture(scope="class")
    def result_and_design(self, small_spec):
        from repro.benchgen import generate_design

        design = generate_design(small_spec)
        placer = PufferPlacer(
            design, placement=PlacementParams(max_iters=400)
        )
        return placer.run(), design, placer

    def test_final_placement_legal(self, result_and_design):
        _, design, _ = result_and_design
        assert check_legal(design).ok

    def test_rounds_ran(self, result_and_design):
        result, _, _ = result_and_design
        assert 1 <= result.padding_rounds <= StrategyParams().xi

    def test_events_trace_flow_stages(self, result_and_design):
        result, _, _ = result_and_design
        stages = [e.stage for e in result.events]
        assert stages[0] == "global_placement"
        assert "legalization" in stages
        assert "routability_optimization" in stages

    def test_padding_carried_into_legalization(self, result_and_design):
        result, _, placer = result_and_design
        assert result.total_padding_area > 0
        assert placer.optimizer.padding.total_padding_area > 0

    def test_hpwl_positive_and_runtime_recorded(self, result_and_design):
        result, _, _ = result_and_design
        assert result.hpwl > 0
        assert result.runtime > 0

    def test_tetris_strategy_choice(self, small_design):
        strategy = StrategyParams(legalizer="tetris", xi=2)
        result = PufferPlacer(
            small_design, strategy=strategy, placement=PlacementParams(max_iters=300)
        ).run()
        assert check_legal(small_design).ok
