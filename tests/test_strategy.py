"""Tests for strategy parameters and the exploration space."""

import pytest

from repro.core import PARAM_GROUPS, StrategyParams, default_space
from repro.core.features import FEATURE_NAMES


class TestStrategyParams:
    def test_alphas_order_matches_features(self):
        params = StrategyParams()
        assert len(params.alphas()) == len(FEATURE_NAMES)

    def test_replaced(self):
        params = StrategyParams().replaced(mu=9.0)
        assert params.mu == 9.0
        assert params.tau == StrategyParams().tau

    def test_from_dict_coerces_ints(self):
        params = StrategyParams.from_dict({"xi": 4.6, "kernel_size": 5.2})
        assert params.xi == 5
        assert params.kernel_size == 5

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(KeyError):
            StrategyParams.from_dict({"bogus": 1.0})

    def test_from_dict_defaults_missing(self):
        params = StrategyParams.from_dict({"mu": 2.5})
        assert params.mu == 2.5
        assert params.zeta == StrategyParams().zeta


class TestSpaceAndGroups:
    def test_space_covers_all_group_params(self):
        space = default_space()
        names = set(space.names())
        for group, members in PARAM_GROUPS.items():
            for member in members:
                assert member in names, (group, member)

    def test_groups_are_disjoint(self):
        seen = set()
        for members in PARAM_GROUPS.values():
            for member in members:
                assert member not in seen
                seen.add(member)

    def test_midpoint_is_valid_config(self):
        params = StrategyParams.from_dict(default_space().midpoint())
        assert params.pu_low <= params.pu_high
        assert params.xi >= 1

    def test_defaults_inside_space(self):
        space = default_space()
        defaults = StrategyParams()
        for dim in space:
            value = getattr(defaults, dim.name)
            clipped = dim.clip(value)
            assert clipped == value or abs(clipped - value) < 1e-9
