"""Tests for discrete padding (Eq. 17) and the legalization area cap."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.legalizer import cap_padding_area, discretize_padding, padded_widths
from repro.obs import Tracer


class TestDiscretize:
    def test_zero_padding_stays_zero(self):
        out = discretize_padding(np.zeros(5), theta=4.0, site_width=1.0)
        assert (out == 0).all()

    def test_max_pad_gets_top_level(self):
        pad = np.array([0.0, 1.0, 2.0, 4.0])
        out = discretize_padding(pad, theta=4.0, site_width=1.0)
        # Eq. 17: DisPad(max) = floor(theta * 1 + 1/2) = theta sites.
        assert out[-1] == 4.0
        assert out[0] == 0.0

    def test_half_up_rounding(self):
        # theta * pad/mp = [0.5, 1.0, 1.5, 4.0] -> half-up = [1, 1, 2, 4].
        pad = np.array([0.5, 1.0, 1.5, 4.0])
        out = discretize_padding(pad, theta=4.0, site_width=1.0)
        assert np.array_equal(out, [1.0, 1.0, 2.0, 4.0])

    def test_small_pad_regression(self):
        # The mis-transcribed floor(theta * (pad/mp + 1/2)) hands every
        # epsilon-padded cell floor(theta/2) levels; Eq. 17 gives 0.
        pad = np.array([1e-9, 1.0])
        out = discretize_padding(pad, theta=4.0, site_width=1.0)
        assert out[0] == 0.0
        assert out[1] == 4.0

    def test_monotone_in_pad(self):
        pad = np.linspace(0, 10, 50)
        out = discretize_padding(pad, theta=5.0, site_width=1.0)
        assert (np.diff(out) >= 0).all()

    def test_site_width_scales(self):
        pad = np.array([1.0, 2.0])
        a = discretize_padding(pad, theta=4.0, site_width=1.0)
        b = discretize_padding(pad, theta=4.0, site_width=2.0)
        assert np.allclose(b, 2 * a)

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30),
        st.floats(1.0, 8.0),
    )
    @settings(max_examples=50)
    def test_output_is_whole_sites(self, pads, theta):
        out = discretize_padding(np.asarray(pads), theta=theta, site_width=1.0)
        assert np.allclose(out, np.round(out))
        assert (out >= 0).all()


class TestAreaCap:
    def test_within_budget_unchanged(self, small_design):
        movable = small_design.movable & ~small_design.is_macro
        dis = np.zeros(small_design.num_cells)
        dis[np.flatnonzero(movable)[:3]] = 1.0
        capped = cap_padding_area(small_design, dis, area_cap=0.05)
        assert np.allclose(capped, dis)

    def test_over_budget_reduced(self, small_design):
        movable = small_design.movable & ~small_design.is_macro
        dis = np.where(movable, 8.0, 0.0)
        capped = cap_padding_area(small_design, dis, area_cap=0.05)
        padded_area = float((capped[movable] * small_design.h[movable]).sum())
        budget = 0.05 * small_design.movable_area
        assert padded_area <= budget * 1.001

    def test_never_negative(self, small_design):
        movable = small_design.movable & ~small_design.is_macro
        dis = np.where(movable, 3.0, 0.0)
        capped = cap_padding_area(small_design, dis, area_cap=0.001)
        assert (capped >= 0).all()

    def test_input_not_mutated(self, small_design):
        movable = small_design.movable & ~small_design.is_macro
        dis = np.where(movable, 8.0, 0.0)
        original = dis.copy()
        cap_padding_area(small_design, dis, area_cap=0.01)
        assert np.array_equal(dis, original)

    def test_smallest_continuous_pad_relegated_first(self, small_design):
        # All cells share one discrete level; the quarter with the
        # smallest *continuous* padding must lose a site first.
        movable = small_design.movable & ~small_design.is_macro
        dis = np.where(movable, 2.0, 0.0)
        rng = np.random.default_rng(0)
        pad = np.where(movable, rng.uniform(0.1, 1.0, small_design.num_cells), 0.0)
        capped = cap_padding_area(
            small_design, dis, area_cap=0.04, pad=pad, max_rounds=1
        )
        relegated = np.flatnonzero(movable & (capped < dis))
        kept = np.flatnonzero(movable & (capped == dis))
        assert len(relegated) > 0 and len(kept) > 0
        assert pad[relegated].max() <= pad[kept].min() + 1e-12

    def test_guard_exhaustion_reported(self, small_design):
        # A one-round guard cannot reach a near-zero budget: the cap
        # must report the truncation through the obs counter + event.
        movable = small_design.movable & ~small_design.is_macro
        dis = np.where(movable, 8.0, 0.0)
        tracer = Tracer()
        with obs.tracing(tracer):
            capped = cap_padding_area(
                small_design, dis, area_cap=1e-6, max_rounds=1
            )
        budget = 1e-6 * small_design.movable_area
        assert (capped[movable] * small_design.h[movable]).sum() > budget
        assert tracer.counter("legalize/padding_cap_exhausted").value == 1

    def test_no_report_when_budget_met(self, small_design):
        movable = small_design.movable & ~small_design.is_macro
        dis = np.where(movable, 1.0, 0.0)
        tracer = Tracer()
        with obs.tracing(tracer):
            cap_padding_area(small_design, dis, area_cap=0.5)
        assert tracer.counter("legalize/padding_cap_exhausted").value == 0


class TestPaddedWidths:
    def test_fixed_cells_keep_width(self, small_design):
        pad = np.full(small_design.num_cells, 2.0)
        widths = padded_widths(small_design, pad, theta=4.0)
        fixed = ~small_design.movable
        assert np.allclose(widths[fixed], small_design.w[fixed])

    def test_widths_at_least_native(self, small_design):
        pad = np.abs(np.sin(np.arange(small_design.num_cells)))
        widths = padded_widths(small_design, pad, theta=4.0)
        assert (widths >= small_design.w - 1e-9).all()

    def test_respects_five_percent_cap(self, small_design):
        pad = np.full(small_design.num_cells, 50.0)
        widths = padded_widths(small_design, pad, theta=8.0, area_cap=0.05)
        movable = small_design.movable & ~small_design.is_macro
        extra = ((widths - small_design.w)[movable] * small_design.h[movable]).sum()
        assert extra <= 0.05 * small_design.movable_area * 1.001
