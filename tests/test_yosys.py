"""Tests for the Yosys ``write_json`` netlist frontend."""

import json

import numpy as np
import pytest

from repro.netlist import CellLibrary, load_yosys, validate_design


def _write(tmp_path, data, name="mapped.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def _tiny_module():
    """clk -> two DFFs through an inverter; one output port."""
    return {
        "attributes": {"top": 1},
        "ports": {
            "clk": {"direction": "input", "bits": [2]},
            "d": {"direction": "input", "bits": [3]},
            "q": {"direction": "output", "bits": [6]},
        },
        "cells": {
            "ff0": {
                "type": "sky130_fd_sc_hd__dfxtp_1",
                "port_directions": {"CLK": "input", "D": "input", "Q": "output"},
                "connections": {"CLK": [2], "D": [3], "Q": [4]},
            },
            "inv0": {
                "type": "sky130_fd_sc_hd__inv_1",
                "port_directions": {"A": "input", "Y": "output"},
                "connections": {"A": [4], "Y": [5]},
            },
            "ff1": {
                "type": "sky130_fd_sc_hd__dfxtp_1",
                "port_directions": {"CLK": "input", "D": "input", "Q": "output"},
                "connections": {"CLK": [2], "D": [5], "Q": [6]},
            },
        },
        "netnames": {
            "clk": {"bits": [2]},
            "d": {"bits": [3]},
            "ff0_q": {"bits": [4]},
            "inv_y": {"bits": [5]},
            "q": {"bits": [6]},
        },
    }


class TestCellLibrary:
    def test_exact_entry_wins(self):
        lib = CellLibrary(widths={"sky130_fd_sc_hd__inv_1": 9})
        assert lib.width_sites("sky130_fd_sc_hd__inv_1") == 9

    def test_inferred_widths(self):
        lib = CellLibrary()
        assert lib.width_sites("sky130_fd_sc_hd__inv_1") == 1
        # Fanin and drive strength add sites on top of the base width.
        assert lib.width_sites("sky130_fd_sc_hd__nand2_1") == 2
        assert lib.width_sites("sky130_fd_sc_hd__nand4_1") == 4
        assert lib.width_sites("sky130_fd_sc_hd__nand2_4") == 5
        assert lib.width_sites("sky130_fd_sc_hd__dfxtp_1") == 6

    def test_unknown_type_falls_back_to_default(self):
        lib = CellLibrary(default_width=7)
        assert lib.width_sites("completely_unknown!!") == 7

    def test_from_json(self, tmp_path):
        path = _write(
            tmp_path, {"default_width": 3, "widths": {"inv_1": 2}}, "lib.json"
        )
        lib = CellLibrary.from_json(path)
        assert lib.default_width == 3
        assert lib.width_sites("vendor__inv_1") == 2

    def test_from_json_rejects_unknown_keys(self, tmp_path):
        path = _write(tmp_path, {"heights": {}}, "lib.json")
        with pytest.raises(ValueError, match="unknown keys"):
            CellLibrary.from_json(path)


class TestLoadYosys:
    def test_structure(self, tmp_path):
        path = _write(tmp_path, {"modules": {"tiny": _tiny_module()}})
        design = load_yosys(path)
        assert design.name == "tiny"
        # 3 cells + 3 single-bit port terminals.
        assert design.num_cells == 6
        assert int(design.movable.sum()) == 3
        # Bits 2..6 are all used -> five nets, named from netnames.
        assert design.num_nets == 5
        assert set(design.net_names) == {"clk", "d", "ff0_q", "inv_y", "q"}
        # Terminals are fixed, on the boundary, inside the die.
        report = validate_design(design)
        assert not report.errors

    def test_cell_sizes_from_library(self, tmp_path):
        path = _write(tmp_path, {"modules": {"tiny": _tiny_module()}})
        design = load_yosys(path)
        tech = design.technology
        idx = {name: i for i, name in enumerate(design.cell_names)}
        assert design.w[idx["inv0"]] == pytest.approx(1 * tech.site_width)
        assert design.w[idx["ff0"]] == pytest.approx(6 * tech.site_width)
        assert np.all(design.h[design.movable] == pytest.approx(tech.row_height))

    def test_deterministic(self, tmp_path):
        path = _write(tmp_path, {"modules": {"tiny": _tiny_module()}})
        d1, d2 = load_yosys(path), load_yosys(path)
        assert d1.cell_names == d2.cell_names
        assert d1.net_names == d2.net_names
        np.testing.assert_array_equal(d1.x, d2.x)
        np.testing.assert_array_equal(d1.pin_net, d2.pin_net)

    def test_constant_bits_produce_no_net(self, tmp_path):
        module = _tiny_module()
        module["cells"]["tie0"] = {
            "type": "sky130_fd_sc_hd__nand2_1",
            "port_directions": {"A": "input", "B": "input", "Y": "output"},
            "connections": {"A": ["1"], "B": ["0"], "Y": [7]},
        }
        path = _write(tmp_path, {"modules": {"tiny": module}})
        design = load_yosys(path)
        assert design.num_nets == 6  # bit 7 only; "0"/"1" are ties

    def test_wide_port_terminal_per_bit(self, tmp_path):
        module = _tiny_module()
        module["ports"]["bus"] = {"direction": "output", "bits": [4, 5]}
        path = _write(tmp_path, {"modules": {"tiny": module}})
        design = load_yosys(path)
        assert "bus[0]" in design.cell_names
        assert "bus[1]" in design.cell_names

    def test_top_selection(self, tmp_path):
        wrapper = _tiny_module()
        del wrapper["attributes"]["top"]
        top = _tiny_module()
        path = _write(tmp_path, {"modules": {"wrap": wrapper, "cpu": top}})
        assert load_yosys(path).name == "cpu"  # attribute wins
        assert load_yosys(path, top="wrap").name == "wrap"  # explicit wins
        with pytest.raises(ValueError, match="no module 'nope'"):
            load_yosys(path, top="nope")

    def test_top_attribute_zero_is_not_top(self, tmp_path):
        a = _tiny_module()
        a["attributes"]["top"] = "00000000000000000000000000000000"
        b = _tiny_module()
        b["attributes"]["top"] = 1
        path = _write(tmp_path, {"modules": {"a": a, "b": b}})
        assert load_yosys(path).name == "b"

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_yosys(str(path))

    def test_not_a_netlist_raises(self, tmp_path):
        path = _write(tmp_path, {"cells": {}})
        with pytest.raises(ValueError, match="no 'modules'"):
            load_yosys(path)

    def test_cell_without_type_raises(self, tmp_path):
        module = _tiny_module()
        del module["cells"]["inv0"]["type"]
        path = _write(tmp_path, {"modules": {"tiny": module}})
        with pytest.raises(ValueError, match="'inv0' has no 'type'"):
            load_yosys(path)

    def test_bool_bit_raises(self, tmp_path):
        module = _tiny_module()
        module["cells"]["inv0"]["connections"]["A"] = [True]
        path = _write(tmp_path, {"modules": {"tiny": module}})
        with pytest.raises(ValueError, match="bad bit"):
            load_yosys(path)

    def test_bad_utilization_raises(self, tmp_path):
        path = _write(tmp_path, {"modules": {"tiny": _tiny_module()}})
        with pytest.raises(ValueError, match="utilization"):
            load_yosys(path, utilization=1.5)

    def test_duplicate_netname_bits_disambiguated(self, tmp_path):
        module = _tiny_module()
        # Two netname entries claiming the same name for different bits.
        module["netnames"] = {"n": {"bits": [4]}, "m": {"bits": [5]}}
        module["netnames"]["n2"] = {"bits": [2]}
        path = _write(tmp_path, {"modules": {"tiny": module}})
        design = load_yosys(path)
        assert len(set(design.net_names)) == design.num_nets
