"""Tests for pattern routing primitives."""

import numpy as np
import pytest

from repro.router import best_pattern_route, l_route, route_cost, straight_route, z_route
from repro.router.pattern import _midpoints

NY = 10


def unit_costs(n=10):
    return np.ones(n * n), np.ones(n * n)


class TestStraight:
    def test_horizontal(self):
        h, v = straight_route(2, 3, 5, 3, NY)
        assert len(v) == 0
        assert list(h) == [2 * NY + 3, 3 * NY + 3, 4 * NY + 3, 5 * NY + 3]

    def test_vertical(self):
        h, v = straight_route(2, 1, 2, 4, NY)
        assert len(h) == 0
        assert len(v) == 4

    def test_degenerate(self):
        # Same-Gcell endpoints consume no routing demand.
        h, v = straight_route(2, 3, 2, 3, NY)
        assert len(h) == 0
        assert len(v) == 0

    def test_non_aligned_raises(self):
        with pytest.raises(ValueError):
            straight_route(0, 0, 3, 3, NY)

    def test_direction_symmetric(self):
        a = straight_route(2, 3, 5, 3, NY)
        b = straight_route(5, 3, 2, 3, NY)
        assert np.array_equal(a[0], b[0])


class TestLRoute:
    def test_covers_both_runs(self):
        h, v = l_route(0, 0, 3, 4, NY, corner_first=True)
        assert len(h) == 4  # x 0..3 at y0
        assert len(v) == 5  # y 0..4 at x3
        assert 3 * NY + 0 in h  # corner cell in H
        assert 3 * NY + 0 in v  # corner cell in V

    def test_two_corners_differ(self):
        a = l_route(0, 0, 3, 4, NY, corner_first=True)
        b = l_route(0, 0, 3, 4, NY, corner_first=False)
        assert not np.array_equal(a[0], b[0])

    def test_total_length(self):
        h, v = l_route(1, 1, 4, 5, NY, corner_first=False)
        assert len(h) + len(v) == (4 - 1 + 1) + (5 - 1 + 1)


class TestZRoute:
    def test_z_horizontal_first(self):
        h, v = z_route(0, 0, 4, 3, NY, mid=2, horizontal_first=True)
        # H runs: 0..2 at y=0 and 2..4 at y=3; V run: x=2 from 0..3.
        assert len(h) == 3 + 3
        assert len(v) == 4

    def test_z_vertical_first(self):
        h, v = z_route(0, 0, 4, 3, NY, mid=2, horizontal_first=False)
        assert len(v) == 3 + 2
        assert len(h) == 5


class TestBestPattern:
    def test_picks_straight_when_aligned(self):
        ch, cv = unit_costs()
        h, v = best_pattern_route(1, 2, 6, 2, NY, ch, cv)
        assert len(v) == 0

    def test_avoids_congested_corner(self):
        ch, cv = unit_costs()
        # Make the corner-first L expensive: congest row y=0.
        ch = ch.copy()
        for gx in range(10):
            ch[gx * NY + 0] = 100.0
        route = best_pattern_route(0, 0, 5, 5, NY, ch, cv)
        alt = l_route(0, 0, 5, 5, NY, corner_first=False)
        assert np.array_equal(route[0], alt[0])

    def test_zero_length(self):
        ch, cv = unit_costs()
        h, v = best_pattern_route(3, 3, 3, 3, NY, ch, cv)
        assert len(h) == 0 and len(v) == 0

    def test_z_beats_l_under_congestion(self):
        ch, cv = unit_costs()
        ch = ch.copy()
        cv = cv.copy()
        # Congest both L corners' runs: columns x=0 and x=5.
        for gy in range(10):
            cv[0 * NY + gy] = 50.0
            cv[5 * NY + gy] = 50.0
        route = best_pattern_route(0, 0, 5, 5, NY, ch, cv, use_z=True)
        cost = route_cost(route, ch, cv)
        l1 = route_cost(l_route(0, 0, 5, 5, NY, True), ch, cv)
        l2 = route_cost(l_route(0, 0, 5, 5, NY, False), ch, cv)
        assert cost < min(l1, l2)


class TestMidpoints:
    def test_small_range_returns_all(self):
        assert _midpoints(0, 3) == [1, 2]

    def test_large_range_samples(self):
        mids = _midpoints(0, 100)
        assert len(mids) == 3
        assert all(0 < m < 100 for m in mids)

    def test_adjacent_returns_empty(self):
        assert _midpoints(3, 4) == []
