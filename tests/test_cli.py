"""Tests for the command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(*args):
    return main(list(args))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "OR1200", "--scale", "0.002", "--out", "/tmp/x"]
        )
        assert args.design == "OR1200"
        assert args.scale == 0.002

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "NOPE", "--out", "/tmp/x"])


class TestCommands:
    def test_generate_and_route(self, tmp_path, capsys):
        assert run_cli("generate", "OR1200", "--scale", "0.002", "--out", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert run_cli("route", str(tmp_path), "OR1200") == 0
        out = capsys.readouterr().out
        assert "HOF" in out

    def test_place_puffer_and_save(self, tmp_path, capsys):
        code = run_cli(
            "place", "OR1200", "--scale", "0.002", "--flow", "puffer",
            "--max-iters", "300", "--out", str(tmp_path), "--route",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legal=True" in out
        assert "HOF" in out

    def test_place_baseline_flow(self, capsys):
        code = run_cli(
            "place", "ASIC_ENTITY", "--scale", "0.002",
            "--flow", "wirelength", "--max-iters", "300",
        )
        assert code == 0

    def test_suite_subset(self, capsys):
        code = run_cli("suite", "--scale", "0.002", "--designs", "OR1200")
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "PUFFER" in out

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "PUFFER" in result.stdout

    def test_explore_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "params.json"
        code = run_cli(
            "explore", "--design", "OR1200", "--scale", "0.0015",
            "--budget", "3", "--out", str(out_file),
        )
        assert code == 0
        params = json.loads(out_file.read_text())
        assert "mu" in params and "legalizer" in params
