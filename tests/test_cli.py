"""Tests for the command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def run_cli(*args):
    return main(list(args))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["generate", "OR1200", "--scale", "0.002", "--out", "/tmp/x"],
            ["place", "OR1200", "--flow", "puffer", "--trace", "/tmp/t.jsonl"],
            ["route", "/tmp/dir", "OR1200", "--trace", "/tmp/t.jsonl"],
            ["explore", "--design", "OR1200", "--budget", "4", "--jobs", "2",
             "--trace", "/tmp/t.jsonl"],
            ["suite", "--scale", "0.002", "--designs", "OR1200", "--resume",
             "--trace", "/tmp/t.jsonl"],
            ["report", "/tmp/t.jsonl"],
            ["verify", "--design", "OR1200", "--quick", "--out", "/tmp/d.json"],
            ["serve", "--port", "0", "--workers", "3", "--capacity", "5",
             "--cache-dir", "/tmp/c", "--trace", "/tmp/t.jsonl"],
            ["submit", "OR1200", "--scale", "0.002", "--route", "--wait",
             "--port", "8181"],
            ["jobs", "--state", "done", "--port", "8181"],
        ],
        ids=lambda argv: argv[0],
    )
    def test_every_subcommand_round_trips(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]

    def test_trace_flag_defaults_to_none(self):
        for argv in (
            ["place", "OR1200"],
            ["route", "d", "n"],
            ["explore"],
            ["suite"],
        ):
            assert build_parser().parse_args(argv).trace is None

    def test_place_flow_choices_come_from_facade(self):
        from repro import api

        for flow in api.FLOWS:
            args = build_parser().parse_args(["place", "OR1200", "--flow", flow])
            assert args.flow == flow
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "OR1200", "--flow", "bogus"])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "OR1200", "--scale", "0.002", "--out", "/tmp/x"]
        )
        assert args.design == "OR1200"
        assert args.scale == 0.002

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "NOPE", "--out", "/tmp/x"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8180
        assert args.workers == 2
        assert args.capacity == 8
        assert args.cache_dir is None

    def test_jobs_cancel_flag(self):
        args = build_parser().parse_args(["jobs", "--cancel", "job-3"])
        assert args.cancel == "job-3"
        assert args.job is None

    def test_verify_flag_defaults_off(self):
        assert build_parser().parse_args(["place", "OR1200"]).verify == "off"
        assert build_parser().parse_args(["suite"]).verify == "off"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "OR1200", "--verify", "bogus"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["eco", "run", "OR1200", "--scale", "0.002", "--seed", "1",
             "--deltas", "/tmp/edits.json", "--verify", "full",
             "--cache-dir", "/tmp/c", "--trace", "/tmp/t.jsonl"],
            ["eco", "open", "OR1200", "--scale", "0.002", "--verify", "full",
             "--wait", "--wait-timeout", "60", "--port", "8181"],
            ["eco", "sessions", "--port", "8181"],
            ["eco", "show", "sess-1"],
            ["eco", "delta", "sess-1", "--json",
             '{"kind": "resize_cell", "cell": 7, "width": 12.0}', "--wait"],
            ["eco", "close", "sess-1"],
        ],
        ids=lambda argv: argv[1],
    )
    def test_eco_subcommands_round_trip(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == "eco"
        assert args.eco_command == argv[1]

    def test_eco_run_defaults(self):
        args = build_parser().parse_args(["eco", "run", "OR1200"])
        assert args.scale == 0.004
        assert args.seed == 0
        assert args.deltas is None
        assert args.verify == "cheap"
        assert args.cache_dir is None

    def test_eco_delta_payload_flags(self):
        args = build_parser().parse_args(
            ["eco", "delta", "sess-1", "--file", "/tmp/d.json"]
        )
        assert args.payload is None
        assert args.payload_file == "/tmp/d.json"
        assert args.wait is False

    def test_eco_rejects_bad_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eco"])  # subcommand is required
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eco", "run", "NOT_A_DESIGN"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eco", "run", "OR1200", "--verify", "bogus"])


class TestCommands:
    def test_eco_delta_requires_exactly_one_payload(self, capsys):
        assert run_cli("eco", "delta", "sess-1") == 1
        err = capsys.readouterr().err
        assert "exactly one of --json or --file" in err

        assert run_cli(
            "eco", "delta", "sess-1",
            "--json", '{"kind": "resize_cell"}', "--file", "/tmp/d.json",
        ) == 1
        err = capsys.readouterr().err
        assert "exactly one of --json or --file" in err

    def test_generate_and_route(self, tmp_path, capsys):
        assert run_cli("generate", "OR1200", "--scale", "0.002", "--out", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert run_cli("route", str(tmp_path), "OR1200") == 0
        out = capsys.readouterr().out
        assert "HOF" in out

    def test_place_puffer_and_save(self, tmp_path, capsys):
        code = run_cli(
            "place", "OR1200", "--scale", "0.002", "--flow", "puffer",
            "--max-iters", "300", "--out", str(tmp_path), "--route",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legal=True" in out
        assert "HOF" in out

    def test_place_baseline_flow(self, capsys):
        code = run_cli(
            "place", "ASIC_ENTITY", "--scale", "0.002",
            "--flow", "wirelength", "--max-iters", "300",
        )
        assert code == 0

    def test_place_with_verify(self, capsys):
        code = run_cli(
            "place", "OR1200", "--scale", "0.002", "--flow", "puffer",
            "--max-iters", "300", "--verify", "cheap",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verify[cheap]" in out
        assert "0 errors" in out

    def test_suite_subset(self, capsys):
        code = run_cli("suite", "--scale", "0.002", "--designs", "OR1200")
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "PUFFER" in out

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "PUFFER" in result.stdout

    def test_explore_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "params.json"
        code = run_cli(
            "explore", "--design", "OR1200", "--scale", "0.0015",
            "--budget", "3", "--out", str(out_file),
        )
        assert code == 0
        params = json.loads(out_file.read_text())
        assert "mu" in params and "legalizer" in params

    def test_explore_resume_is_byte_identical(self, tmp_path, capsys):
        """--resume replays the journal; the saved transfer priors of
        the first run must not perturb the resumed candidate stream."""
        first, second = tmp_path / "p1.json", tmp_path / "p2.json"
        argv = ["explore", "--design", "OR1200", "--scale", "0.0015",
                "--budget", "3", "--cache-dir", str(tmp_path / "cache")]
        assert run_cli(*argv, "--out", str(first)) == 0
        assert run_cli(*argv, "--resume", "--out", str(second)) == 0
        assert first.read_bytes() == second.read_bytes()


class TestServeCommands:
    """submit/jobs drive a live (fake-runner) server over HTTP."""

    @pytest.fixture()
    def server(self):
        import asyncio
        import threading

        from repro.serve import HttpServer, PlacementService, ServiceConfig

        def runner(request):
            return {"design": request["design"], "hpwl": 42.0}

        started = threading.Event()
        box = {}

        def thread_main():
            async def amain():
                service = PlacementService(
                    ServiceConfig(workers=1, capacity=4), runner=runner
                )
                await service.start()
                http = HttpServer(service, port=0)
                _host, port = await http.start()
                box["port"] = port
                box["stop"] = asyncio.Event()
                started.set()
                await box["stop"].wait()
                await http.close()
                await service.stop()

            box["loop"] = asyncio.new_event_loop()
            box["loop"].run_until_complete(amain())
            box["loop"].close()

        thread = threading.Thread(target=thread_main, daemon=True)
        thread.start()
        assert started.wait(10)
        yield box["port"]
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(10)

    def test_submit_wait_and_jobs(self, server, capsys):
        code = run_cli(
            "submit", "OR1200", "--scale", "0.002", "--wait",
            "--wait-timeout", "30", "--port", str(server),
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert '"hpwl": 42.0' in out

        assert run_cli("jobs", "--port", str(server)) == 0
        out = capsys.readouterr().out
        assert "job-1" in out and "done" in out

        assert run_cli("jobs", "job-1", "--port", str(server)) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["state"] == "done"

    def test_submit_without_wait_returns_queued(self, server, capsys):
        assert run_cli("submit", "OR1200", "--port", str(server)) == 0
        out = capsys.readouterr().out
        assert "job-1" in out


class TestTracing:
    def test_place_trace_smoke(self, tmp_path, capsys):
        """End-to-end: place with --trace, then report the trace."""
        from repro import obs

        trace = tmp_path / "place.jsonl"
        code = run_cli(
            "place", "OR1200", "--scale", "0.002", "--max-iters", "300",
            "--route", "--trace", str(trace),
        )
        assert code == 0
        records = obs.read_trace(trace)
        spans = {r["name"] for r in records if r["type"] == "span"}
        assert {
            "api/run", "gp/iteration", "puffer/padding_round",
            "puffer/legalization", "route/run",
        } <= spans

        assert run_cli("report", str(trace)) == 0
        out = capsys.readouterr().out
        assert "TRACE REPORT" in out
        assert "gp/iteration" in out

    def test_explore_trace_has_tpe_trials(self, tmp_path, capsys):
        from repro import obs

        trace = tmp_path / "explore.jsonl"
        code = run_cli(
            "explore", "--design", "OR1200", "--scale", "0.0015",
            "--budget", "3", "--trace", str(trace),
        )
        assert code == 0
        spans = {
            r["name"] for r in obs.read_trace(trace) if r["type"] == "span"
        }
        assert "tpe/trial" in spans
        assert "explore/stage" in spans
