"""Tests for the routing grid and capacity model (paper Eq. 8)."""

import numpy as np
import pytest

from repro.netlist import DesignBuilder, Rect, Technology
from repro.router import DemandMaps, build_grid


def empty_design(die=64.0, blockages=()):
    tech = Technology()
    b = DesignBuilder("g", tech, Rect(0, 0, die, die))
    b.add_cell("c0", 2, tech.row_height, x=die / 2, y=die / 2)
    for rect, layer in blockages:
        b.add_blockage(rect, layer)
    return b.build()


class TestGrid:
    def test_dimensions(self):
        d = empty_design(die=64.0)
        grid = build_grid(d)
        assert grid.nx == 4 and grid.ny == 4  # 64 / 16

    def test_uniform_capacity_without_blockages(self):
        grid = build_grid(empty_design())
        assert np.allclose(grid.cap_h, grid.cap_h[0, 0])
        assert np.allclose(grid.cap_v, grid.cap_v[0, 0])
        tech = Technology()
        assert grid.cap_h[0, 0] == pytest.approx(tech.tracks_per_gcell("H"))

    def test_blockage_reduces_capacity(self):
        h_layer = next(
            i
            for i, l in enumerate(Technology().layers)
            if i >= 1 and l.direction == "H"
        )
        rect = Rect(0, 0, 16, 16)  # exactly Gcell (0, 0)
        base = build_grid(empty_design())
        blocked = build_grid(empty_design(blockages=[(rect, h_layer)]))
        assert blocked.cap_h[0, 0] < base.cap_h[0, 0]
        assert blocked.cap_h[1, 1] == pytest.approx(base.cap_h[1, 1])
        assert np.allclose(blocked.cap_v, base.cap_v)

    def test_full_gcell_blockage_removes_layer_tracks(self):
        tech = Technology()
        h_layer = next(
            i for i, l in enumerate(tech.layers) if i >= 1 and l.direction == "H"
        )
        rect = Rect(0, 0, 16, 16)
        blocked = build_grid(empty_design(blockages=[(rect, h_layer)]))
        base = build_grid(empty_design())
        layer = tech.layers[h_layer]
        expected_loss = 16.0 / layer.pitch
        assert base.cap_h[0, 0] - blocked.cap_h[0, 0] == pytest.approx(
            expected_loss, rel=1e-6
        )

    def test_capacity_never_negative(self):
        rect = Rect(0, 0, 64, 64)
        blockages = [(rect, i) for i in range(1, len(Technology().layers))]
        grid = build_grid(empty_design(blockages=blockages * 5))
        assert (grid.cap_h >= 0).all()
        assert (grid.cap_v >= 0).all()

    def test_gcell_of_clamps(self):
        grid = build_grid(empty_design())
        gx, gy = grid.gcell_of(np.array([-5.0, 100.0]), np.array([-5.0, 100.0]))
        assert gx[0] == 0 and gy[0] == 0
        assert gx[1] == grid.nx - 1 and gy[1] == grid.ny - 1

    def test_center_of_round_trip(self):
        grid = build_grid(empty_design())
        x, y = grid.center_of(2, 3)
        gx, gy = grid.gcell_of(x, y)
        assert gx == 2 and gy == 3


class TestDemandMaps:
    def test_zero_demand_zero_overflow(self):
        grid = build_grid(empty_design())
        demand = DemandMaps.zeros(grid)
        assert demand.overflow_ratio(grid) == (0.0, 0.0)

    def test_overflow_ratio_computation(self):
        grid = build_grid(empty_design())
        demand = DemandMaps.zeros(grid)
        demand.dmd_h[0, 0] = grid.cap_h[0, 0] + 10.0
        hof, vof = demand.overflow_ratio(grid)
        assert hof == pytest.approx(100.0 * 10.0 / grid.cap_h.sum())
        assert vof == 0.0

    def test_overflow_maps_clipped(self):
        grid = build_grid(empty_design())
        demand = DemandMaps.zeros(grid)
        demand.dmd_v[1, 1] = grid.cap_v[1, 1] / 2
        over_h, over_v = demand.overflow_maps(grid)
        assert (over_h >= 0).all()
        assert over_v[1, 1] == 0.0
