"""Tests for PUFFER's congestion estimation (capacity/demand/expansion)."""

import numpy as np
import pytest

from repro.core import (
    CongestionEstimator,
    EstimatorParams,
    ExpansionParams,
    accumulate_demand,
    build_topologies,
    combine_congestion,
    expand_demand,
)
from repro.core.capacity import CapacityModel
from repro.netlist import DesignBuilder, Rect, Technology
from repro.router import GlobalRouter, build_grid


def two_pin_design(ax, ay, bx, by, die=160.0):
    """Two cells at given positions joined by one net."""
    tech = Technology()
    b = DesignBuilder("two", tech, Rect(0, 0, die, die))
    c0 = b.add_cell("a", 2, tech.row_height, x=ax, y=ay)
    c1 = b.add_cell("b", 2, tech.row_height, x=bx, y=by)
    n = b.add_net("n")
    b.add_pin(c0, n)
    b.add_pin(c1, n)
    return b.build()


class TestCapacityModel:
    def test_cached(self, small_design):
        model = CapacityModel(small_design)
        assert model.grid is model.grid
        model.invalidate()
        assert model.grid is not None


class TestDemand:
    def test_i_segment_unit_demand(self):
        # Horizontal 2-pin net through Gcells 1..5 at gy 4.
        d = two_pin_design(24, 72, 88, 72)
        grid = build_grid(d)
        topos = build_topologies(d, grid)
        result = accumulate_demand(d, grid, topos, pin_penalty=0.0)
        assert result.dmd_h[1:6, 4].sum() == pytest.approx(5.0)
        assert result.dmd_v.sum() == 0.0
        assert len(result.i_segments) == 1

    def test_l_segment_average_demand(self):
        d = two_pin_design(24, 24, 88, 88)
        grid = build_grid(d)
        topos = build_topologies(d, grid)
        result = accumulate_demand(d, grid, topos, pin_penalty=0.0)
        # Bbox is 5x5 Gcells: H gets 1/5 per cell, V gets 1/5 per cell.
        assert result.dmd_h[1:6, 1:6].max() == pytest.approx(0.2)
        # Total demand preserved: 5 columns each contributing 1 in total.
        assert result.dmd_h.sum() == pytest.approx(5.0)
        assert result.dmd_v.sum() == pytest.approx(5.0)

    def test_local_net_only_pin_penalty(self):
        d = two_pin_design(24, 24, 25, 25)
        grid = build_grid(d)
        topos = build_topologies(d, grid)
        assert topos == []
        result = accumulate_demand(d, grid, topos, pin_penalty=0.1)
        assert result.dmd_h.sum() == pytest.approx(0.2)  # two pins

    def test_pin_count_map(self, placed_small_design):
        grid = build_grid(placed_small_design)
        topos = build_topologies(placed_small_design, grid)
        result = accumulate_demand(placed_small_design, grid, topos)
        assert result.pin_count.sum() == placed_small_design.num_pins

    def test_demand_correlates_with_router(self, placed_small_design):
        """The estimate must rank Gcells like the evaluation router."""
        est = CongestionEstimator(placed_small_design, EstimatorParams(expand=False))
        cmap, _, _ = est.estimate()
        report = GlobalRouter(placed_small_design).run()
        est_total = (cmap.dmd_h + cmap.dmd_v).ravel()
        real_total = (report.demand.dmd_h + report.demand.dmd_v).ravel()
        corr = np.corrcoef(est_total, real_total)[0, 1]
        assert corr > 0.8


class TestExpansion:
    def _congested_result(self):
        """A design whose single I-segment overflows its row."""
        d = two_pin_design(24, 72, 88, 72)
        grid = build_grid(d)
        # Shrink capacity so the segment overflows.
        grid.cap_h[:, :] = 0.5
        grid.cap_v[:, :] = 0.5
        topos = build_topologies(d, grid)
        result = accumulate_demand(d, grid, topos, pin_penalty=0.0)
        return d, grid, result

    def test_total_demand_preserved(self):
        _, grid, result = self._congested_result()
        before = result.dmd_h.sum()
        expand_demand(grid, result, ExpansionParams(radius=2))
        assert result.dmd_h.sum() == pytest.approx(before)

    def test_demand_spreads_to_neighbor_rows(self):
        _, grid, result = self._congested_result()
        expand_demand(grid, result, ExpansionParams(radius=2))
        assert result.dmd_h[1:6, 3].sum() > 0 or result.dmd_h[1:6, 5].sum() > 0

    def test_pin_endpoints_no_perpendicular_demand(self):
        # Both endpoints are pins -> no detour (V) demand added.
        _, grid, result = self._congested_result()
        expand_demand(grid, result, ExpansionParams(radius=2))
        assert result.dmd_v.sum() == pytest.approx(0.0)

    def test_steiner_endpoint_adds_detour(self):
        # Three pins forming a T: the Steiner point sits mid-segment.
        tech = Technology()
        b = DesignBuilder("t", tech, Rect(0, 0, 160, 160))
        cells = []
        for i, (x, y) in enumerate([(24, 72), (136, 72), (88, 136)]):
            cells.append(b.add_cell(f"c{i}", 2, tech.row_height, x=x, y=y))
        n = b.add_net("n")
        for c in cells:
            b.add_pin(c, n)
        d = b.build()
        grid = build_grid(d)
        grid.cap_h[:, :] = 0.5
        grid.cap_v[:, :] = 0.5
        topos = build_topologies(d, grid)
        result = accumulate_demand(d, grid, topos, pin_penalty=0.0)
        v_before = result.dmd_v.sum()
        expand_demand(grid, result, ExpansionParams(radius=2))
        assert result.dmd_v.sum() > v_before  # detour demand appeared

    def test_no_expansion_when_uncongested(self, placed_small_design):
        est_off = CongestionEstimator(
            placed_small_design, EstimatorParams(expand=False)
        )
        cmap_off, _, demand_off = est_off.estimate()
        grid = est_off.grid
        if np.maximum(demand_off.dmd_h - grid.cap_h, 0).sum() == 0:
            before = demand_off.dmd_h.copy()
            expand_demand(grid, demand_off, ExpansionParams())
            assert np.allclose(demand_off.dmd_h, before)


class TestCongestionMap:
    def test_combine_congestion_rules(self):
        cg_h = np.array([[0.5, -0.5]])
        cg_v = np.array([[0.2, 0.3]])
        combined = combine_congestion(cg_h, cg_v)
        assert combined[0, 0] == pytest.approx(0.7)  # same sign: sum
        assert combined[0, 1] == pytest.approx(0.3)  # opposite: max

    def test_signed_congestion_preserved(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        cmap, _, _ = est.estimate()
        # Somewhere there must be spare capacity => negative values kept.
        assert cmap.cg_h.min() < 0

    def test_overflow_ratio_nonnegative(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        cmap, _, _ = est.estimate()
        hof, vof = cmap.overflow_ratio()
        assert hof >= 0 and vof >= 0

    def test_topologies_cover_multi_gcell_nets(self, placed_small_design):
        est = CongestionEstimator(placed_small_design)
        _, topologies, _ = est.estimate()
        assert len(topologies) > 0
        for topo in topologies[:20]:
            assert len(topo.point_of) >= 1
            assert topo.edges.shape[1] == 2
