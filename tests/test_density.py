"""Tests for the electrostatic density system and spectral solver."""

import numpy as np
import pytest

from repro.placer import ElectrostaticDensity, PlacementParams, auto_grid_dim
from repro.placer.density import (
    _bilinear,
    _eval_coscos,
    _eval_cossin,
    _eval_sincos,
)


class TestAutoGrid:
    def test_power_of_two(self):
        for n in (10, 100, 5000, 100000):
            dim = auto_grid_dim(n)
            assert dim & (dim - 1) == 0

    def test_clamped(self):
        assert auto_grid_dim(1) >= 16
        assert auto_grid_dim(10**9) <= 256


class TestSpectral:
    @pytest.mark.parametrize("shape", [(8, 8), (16, 8)])
    def test_evaluators_match_direct_sum(self, shape, rng):
        m, n = shape
        c = rng.normal(size=(m, n))
        wu = np.pi * np.arange(m) / m
        wv = np.pi * np.arange(n) / n

        def direct(fu, fv):
            out = np.zeros((m, n))
            for mm in range(m):
                for nn in range(n):
                    out[mm, nn] = sum(
                        c[u, v] * fu(wu[u], mm) * fv(wv[v], nn)
                        for u in range(m)
                        for v in range(n)
                    )
            return out

        cos = lambda w, k: np.cos(w * (k + 0.5))
        sin = lambda w, k: np.sin(w * (k + 0.5))
        assert np.allclose(_eval_coscos(c), direct(cos, cos), atol=1e-10)
        assert np.allclose(_eval_sincos(c), direct(sin, cos), atol=1e-10)
        assert np.allclose(_eval_cossin(c), direct(cos, sin), atol=1e-10)

    def test_poisson_solution_on_single_mode(self, small_design):
        """For a pure cosine mode the analytic solution is known exactly:
        ``psi = rho / (wu^2 + wv^2)`` and
        ``ex = wu/(wu^2+wv^2) * sin*cos``."""
        dim = 32
        density = ElectrostaticDensity(small_design, PlacementParams(grid_dim=dim))
        u, v = 1, 2
        wu = np.pi * u / dim
        wv = np.pi * v / dim
        m = np.arange(dim) + 0.5
        rho = np.cos(wu * m)[:, None] * np.cos(wv * m)[None, :]
        psi, ex, ey = density.potential_and_field(rho)
        denom = wu * wu + wv * wv
        assert np.allclose(psi, rho / denom, atol=1e-10)
        expected_ex = (wu / denom) * np.sin(wu * m)[:, None] * np.cos(wv * m)[None, :]
        expected_ey = (wv / denom) * np.cos(wu * m)[:, None] * np.sin(wv * m)[None, :]
        assert np.allclose(ex, expected_ex, atol=1e-10)
        assert np.allclose(ey, expected_ey, atol=1e-10)

    def test_dc_component_removed(self, small_design, rng):
        density = ElectrostaticDensity(small_design, PlacementParams(grid_dim=16))
        rho = rng.random((16, 16)) + 5.0
        psi, _, _ = density.potential_and_field(rho)
        assert abs(psi.mean()) < 1e-8 * abs(psi).max()

    def test_field_is_negative_gradient(self, small_design, rng):
        from scipy.ndimage import gaussian_filter

        density = ElectrostaticDensity(small_design, PlacementParams(grid_dim=32))
        rho = gaussian_filter(rng.random((32, 32)), sigma=2.0, mode="wrap")
        psi, ex, ey = density.potential_and_field(rho)
        dpsi_dx = np.gradient(psi, axis=0)
        inner = slice(2, -2)
        corr = np.corrcoef(
            ex[inner, inner].ravel(), -dpsi_dx[inner, inner].ravel()
        )[0, 1]
        assert corr > 0.99


class TestDensityMap:
    def test_total_area_preserved(self, small_design):
        density = ElectrostaticDensity(small_design)
        rho = density.movable_density(small_design.x, small_design.y)
        assert rho.sum() == pytest.approx(small_design.movable_area, rel=1e-6)

    def test_area_preserved_after_padding(self, small_design):
        density = ElectrostaticDensity(small_design)
        density.set_sizes(small_design.w * 1.5, small_design.h)
        rho = density.movable_density(small_design.x, small_design.y)
        expected = float(
            (small_design.w[small_design.movable] * 1.5
             * small_design.h[small_design.movable]).sum()
        )
        assert rho.sum() == pytest.approx(expected, rel=1e-6)

    def test_fixed_map_nonzero_with_macros(self, small_design):
        density = ElectrostaticDensity(small_design)
        assert density.fixed_map.sum() > 0

    def test_fixed_map_clipped_at_bin_area(self, small_design):
        density = ElectrostaticDensity(small_design)
        assert (density.fixed_map <= density.bin_area + 1e-9).all()

    def test_overflow_decreases_when_spread(self, small_design, rng):
        density = ElectrostaticDensity(small_design)
        die = small_design.die
        x_center = np.full(small_design.num_cells, die.center.x)
        y_center = np.full(small_design.num_cells, die.center.y)
        clustered = density.overflow(x_center, y_center)
        x_rand = rng.uniform(die.xlo, die.xhi, small_design.num_cells)
        y_rand = rng.uniform(die.ylo, die.yhi, small_design.num_cells)
        spread = density.overflow(x_rand, y_rand)
        assert spread < clustered

    def test_gradient_points_away_from_cluster(self, small_design):
        """Cells right of a central cluster must feel a rightward force."""
        density = ElectrostaticDensity(small_design)
        die = small_design.die
        x = np.full(small_design.num_cells, die.center.x)
        y = np.full(small_design.num_cells, die.center.y)
        probe = int(np.flatnonzero(small_design.movable)[0])
        x[probe] = die.center.x + die.width * 0.25
        _, gx, _, _ = density.penalty_and_grad(x, y)
        # Descent direction is -gx; moving away from the cluster (further
        # right) must reduce the penalty: gx > 0 is wrong, gx < 0 right.
        assert gx[probe] < 0

    def test_set_sizes_length_mismatch_raises(self, small_design):
        density = ElectrostaticDensity(small_design)
        with pytest.raises(ValueError):
            density.set_sizes(np.ones(3), np.ones(3))


class TestBilinear:
    def test_exact_on_grid_points(self, rng):
        grid = rng.random((8, 8))
        fx = np.array([2.0, 5.0])
        fy = np.array([3.0, 7.0])
        out = _bilinear(grid, fx, fy)
        assert out[0] == pytest.approx(grid[2, 3])
        assert out[1] == pytest.approx(grid[5, 7])

    def test_interpolates_midpoint(self):
        grid = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = _bilinear(grid, np.array([0.5]), np.array([0.0]))
        assert out[0] == pytest.approx(0.5)

    def test_clamps_out_of_range(self, rng):
        grid = rng.random((4, 4))
        out = _bilinear(grid, np.array([-3.0, 99.0]), np.array([-1.0, 99.0]))
        assert out[0] == pytest.approx(grid[0, 0])
        assert out[1] == pytest.approx(grid[3, 3])
