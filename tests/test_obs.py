"""Tests for the observability layer (repro.obs)."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.report import render_report, summarize_trace
from repro.obs.trace import NOOP_INSTRUMENT, NOOP_SPAN, JsonlSink, Tracer


class TestNoopDefault:
    def test_default_tracer_is_disabled(self):
        assert not obs.is_enabled()
        assert isinstance(obs.get_tracer(), obs.NullTracer)

    def test_noop_singletons_are_shared(self):
        tracer = obs.NullTracer()
        assert tracer.span("x") is NOOP_SPAN
        assert tracer.counter("c") is NOOP_INSTRUMENT
        assert tracer.gauge("g") is NOOP_INSTRUMENT
        assert tracer.histogram("h") is NOOP_INSTRUMENT

    def test_noop_accepts_everything(self):
        with obs.span("anything", k=1) as sp:
            sp.set(more=2)
        obs.event("evt", a=1)
        obs.counter("c").inc(5)
        obs.gauge("g").set(1.0)
        obs.histogram("h").observe(3.0)

    def test_noop_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs.span("x"):
                raise RuntimeError("boom")


class TestSpans:
    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = list(tracer.ring)
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] == 0
        assert inner["dur"] <= outer["dur"]

    def test_attrs_and_set_are_recorded(self):
        tracer = Tracer()
        with tracer.span("s", static=1) as sp:
            sp.set(dynamic=2.5, label="x")
        (record,) = tracer.ring
        assert record["attrs"] == {"static": 1, "dynamic": 2.5, "label": "x"}

    def test_numpy_attrs_are_coerced(self):
        tracer = Tracer()
        with tracer.span("s", n=np.int64(3), x=np.float64(0.5)):
            pass
        (record,) = tracer.ring
        assert record["attrs"] == {"n": 3, "x": 0.5}
        json.dumps(record)

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("nope")
        (record,) = tracer.ring
        assert record["error"] == "ValueError: nope"

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("tick", i=1)
        event, span = list(tracer.ring)
        assert event["type"] == "event"
        assert event["parent"] == span["id"]
        assert event["attrs"] == {"i": 1}

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(ring_size=8)
        for i in range(50):
            tracer.event("e", i=i)
        assert len(tracer.ring) == 8
        assert [r["attrs"]["i"] for r in tracer.ring] == list(range(42, 50))


class TestInstruments:
    def test_counter_gauge_histogram_aggregate(self):
        tracer = Tracer()
        tracer.counter("c").inc()
        tracer.counter("c").inc(4)
        tracer.gauge("g").set(1.0)
        tracer.gauge("g").set(2.0)
        for v in (1.0, 3.0, 2.0):
            tracer.histogram("h").observe(v)
        metrics = tracer.metrics()
        assert metrics["c"] == {"kind": "counter", "value": 5.0}
        assert metrics["g"] == {"kind": "gauge", "value": 2.0, "updates": 2}
        assert metrics["h"] == {
            "kind": "histogram", "count": 3, "sum": 6.0,
            "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_same_name_returns_same_instrument(self):
        tracer = Tracer()
        assert tracer.counter("x") is tracer.counter("x")

    def test_kind_conflict_raises(self):
        tracer = Tracer()
        tracer.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            tracer.histogram("x")

    def test_close_flushes_metric_records_once(self):
        tracer = Tracer()
        tracer.counter("c").inc(2)
        tracer.close()
        tracer.close()  # idempotent
        metric_records = [r for r in tracer.ring if r["type"] == "metric"]
        assert len(metric_records) == 1
        assert metric_records[0] == {
            "type": "metric", "kind": "counter", "name": "c", "value": 2.0,
        }


class TestJsonlRoundTrip:
    def test_records_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        with tracer.span("flow", design="X"):
            tracer.event("mark")
            tracer.histogram("h").observe(1.5)
        tracer.close()
        records = obs.read_trace(path)
        assert [r["type"] for r in records] == ["event", "span", "metric"]
        assert records == list(tracer.ring)

    def test_read_trace_rejects_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"event","name":"ok"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            obs.read_trace(path)

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"type":"event","name":"ok"}\n\n')
        assert len(obs.read_trace(path)) == 1


class TestTracingContext:
    def test_path_target_installs_and_restores(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert not obs.is_enabled()
        with obs.tracing(path) as tracer:
            assert obs.is_enabled()
            assert obs.get_tracer() is tracer
            obs.event("inside")
        assert not obs.is_enabled()
        records = obs.read_trace(path)
        assert records[0]["name"] == "inside"

    def test_none_target_keeps_current_tracer(self):
        with obs.tracing(None) as tracer:
            assert tracer is obs.get_tracer()
            assert not obs.is_enabled()

    def test_tracer_target_is_not_closed(self):
        tracer = Tracer()
        with obs.tracing(tracer):
            obs.counter("c").inc()
        assert not tracer._closed
        assert obs.get_tracer() is not tracer

    def test_restores_previous_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with obs.tracing(tmp_path / "t.jsonl"):
                raise RuntimeError
        assert not obs.is_enabled()


class TestReport:
    def _trace(self):
        tracer = Tracer()
        with tracer.span("flow"):
            for i in range(3):
                with tracer.span("step", i=i):
                    tracer.counter("widgets").inc()
        tracer.event("done")
        tracer.close()
        return list(tracer.ring)

    def test_summarize_groups_spans_by_name(self):
        summary = summarize_trace(self._trace())
        by_name = {s["name"]: s for s in summary["spans"]}
        assert by_name["step"]["count"] == 3
        assert by_name["flow"]["count"] == 1
        assert summary["events"] == [("done", 1)]
        metrics = {m["name"]: m for m in summary["metrics"]}
        assert metrics["widgets"]["value"] == 3.0
        assert summary["errors"] == []

    def test_render_report_mentions_spans_and_metrics(self):
        text = render_report(self._trace())
        assert "step" in text
        assert "widgets" in text
        assert "TRACE REPORT" in text

    def test_render_report_lists_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("broke")
        text = render_report(list(tracer.ring))
        assert "ValueError: broke" in text


class TestFlowIntegration:
    def test_puffer_run_emits_expected_spans(self, tmp_path):
        from repro.benchgen import make_design
        from repro.core import PufferPlacer

        path = tmp_path / "flow.jsonl"
        with obs.tracing(path):
            PufferPlacer(make_design("OR1200", scale=0.002)).run()
        names = {r["name"] for r in obs.read_trace(path) if r["type"] == "span"}
        assert {
            "puffer/run", "puffer/global_placement", "puffer/legalization",
            "puffer/padding_round", "gp/iteration", "congestion/estimate",
        } <= names

    def test_forked_workers_do_not_corrupt_the_trace(self, tmp_path):
        """A --jobs run forks workers while the tracer is installed; the
        children inherit it (and its open file) and must stay silent."""
        from repro.evalkit import SuiteRunConfig, run_suite

        path = tmp_path / "parallel.jsonl"
        with obs.tracing(path):
            run_suite(
                SuiteRunConfig(scale=0.0015, benchmarks=["OR1200"]), jobs=2
            )
        records = obs.read_trace(path)  # raises on an interleaved line
        # Workers do the placement; only the parent's records survive.
        assert sum(1 for r in records if r["name"] == "runtime/task_finished") == 3
        assert not any(r["name"] == "api/run" for r in records if r["type"] == "span")

    def test_child_process_emit_is_dropped(self):
        tracer = Tracer()
        tracer._pid = tracer._pid + 1  # simulate a forked child
        tracer.event("from-child")
        with tracer.span("child-span"):
            pass
        assert not tracer.ring

    def test_runtime_telemetry_mirrors_into_trace(self):
        from repro.runtime import TASK_FINISHED, RunEvent, Telemetry

        tracer = Tracer()
        with obs.tracing(tracer):
            Telemetry().emit(RunEvent(kind=TASK_FINISHED, key="k", wall_time=1.0))
        (record,) = tracer.ring
        assert record["name"] == "runtime/task_finished"
        assert record["attrs"]["key"] == "k"


class TestReportTopAndIpc:
    """The --top stage filter and the serialization-vs-compute split."""

    @staticmethod
    def _span(name, dur, parent=0, **attrs):
        record = {"type": "span", "name": name, "parent": parent, "dur": dur}
        if attrs:
            record["attrs"] = attrs
        return record

    def _trace(self):
        return [
            self._span("flow", 10.0),
            self._span("flow/gp", 6.0, parent=1),
            self._span("flow/legalize", 3.0, parent=1),
            self._span("runtime/ipc/publish", 0.5, parent=1, bytes=1000),
            self._span("runtime/ipc/attach", 0.25, parent=1, bytes=1000),
            self._span("flow/route", 0.25, parent=1),
        ]

    def test_top_keeps_most_expensive_in_flow_order(self):
        summary = summarize_trace(self._trace(), top=2)
        assert [s["name"] for s in summary["spans"]] == ["flow", "flow/gp"]
        assert summary["span_count"] == 6  # the unfiltered total

    def test_top_none_and_large_top_keep_everything(self):
        assert len(summarize_trace(self._trace())["spans"]) == 6
        assert len(summarize_trace(self._trace(), top=99)["spans"]) == 6

    def test_pct_is_relative_to_root_wall_clock(self):
        summary = summarize_trace(self._trace())
        by_name = {s["name"]: s for s in summary["spans"]}
        assert summary["root_total"] == pytest.approx(10.0)
        assert by_name["flow"]["pct"] == pytest.approx(100.0)
        assert by_name["flow/gp"]["pct"] == pytest.approx(60.0)
        assert by_name["runtime/ipc/publish"]["pct"] == pytest.approx(5.0)

    def test_ipc_split_sums_spans_and_bytes(self):
        ipc = summarize_trace(self._trace())["ipc"]
        assert ipc["serialization"] == pytest.approx(0.75)
        assert ipc["compute"] == pytest.approx(9.25)
        assert ipc["bytes"] == 2000
        assert ipc["pct"] == pytest.approx(7.5)

    def test_no_ipc_spans_means_no_split(self):
        records = [self._span("flow", 1.0)]
        assert summarize_trace(records)["ipc"] is None
        assert "serialization vs compute" not in render_report(records)

    def test_render_mentions_hidden_spans_and_split(self):
        text = render_report(self._trace(), top=2)
        assert "... 4 more spans (raise --top to show)" in text
        assert "serialization vs compute" in text
        assert "2000 payload bytes" in text
        assert "flow/legalize" not in text

    def test_report_file_round_trip(self, tmp_path):
        import json

        from repro.obs.report import report_file

        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in self._trace()) + "\n"
        )
        text = report_file(path, top=1)
        assert "flow" in text
        assert "% root" in text
