"""Tests for row management, Abacus, and Tetris legalization."""

import numpy as np
import pytest

from repro.legalizer import (
    SegmentIndex,
    build_segments,
    legalize_abacus,
    legalize_tetris,
)
from repro.netlist import DesignBuilder, Rect, Technology, check_legal
from repro.placer import GlobalPlacer, PlacementParams


class TestRowSegments:
    def test_full_rows_without_blockers(self):
        tech = Technology()
        b = DesignBuilder("r", tech, Rect(0, 0, 64, 64))
        b.add_cell("c", 2, tech.row_height, x=32, y=32)
        d = b.build()
        segments = build_segments(d)
        assert len(segments) == 8  # 64 / 8 rows
        assert all(s.xlo == 0 and s.xhi == 64 for s in segments)

    def test_macro_splits_rows(self):
        tech = Technology()
        b = DesignBuilder("r", tech, Rect(0, 0, 64, 64))
        b.add_cell("c", 2, tech.row_height, x=5, y=4)
        b.add_cell("m", 16, 16, x=32, y=16, movable=False, macro=True)
        d = b.build()
        segments = build_segments(d)
        # Rows 1 and 2 (y in [8, 24)) are split into two segments each.
        split_rows = [s for s in segments if s.y in (8.0, 16.0)]
        assert len(split_rows) == 4
        assert all(s.xhi <= 24 or s.xlo >= 40 for s in split_rows)

    def test_segment_index_nearest_row(self, small_design):
        index = SegmentIndex.build(small_design)
        assert index.nearest_row(small_design.die.ylo) == 0
        assert index.nearest_row(small_design.die.yhi + 100) == index.num_rows - 1


@pytest.fixture
def placed(small_design):
    GlobalPlacer(small_design, PlacementParams(max_iters=300)).run()
    return small_design


class TestAbacus:
    def test_produces_legal_placement(self, placed):
        legalize_abacus(placed)
        assert check_legal(placed).ok

    def test_small_hpwl_degradation(self, placed):
        before = placed.hpwl()
        legalize_abacus(placed)
        assert placed.hpwl() < before * 1.25

    def test_displacement_reported(self, placed):
        result = legalize_abacus(placed)
        assert result.total_displacement > 0
        assert result.max_displacement <= result.total_displacement
        assert result.num_cells == int(
            (placed.movable & ~placed.is_macro).sum()
        )

    def test_padded_widths_respected(self, placed):
        widths = placed.w.copy()
        movable = placed.movable & ~placed.is_macro
        padded = np.flatnonzero(movable)[::3]  # pad a third of the cells
        widths[padded] += 2.0
        legalize_abacus(placed, widths=widths)
        assert check_legal(placed).ok
        # A padded cell's footprint must not overlap any neighbour: its
        # neighbours in the same row stay at least 2 units of air away
        # from the padded outline on the two sides combined.
        idx = np.flatnonzero(movable)
        ylo = placed.y[idx] - placed.h[idx] / 2
        order = np.lexsort((placed.x[idx], ylo))
        padded_set = set(padded.tolist())
        for a, b in zip(order[:-1], order[1:]):
            if ylo[a] != ylo[b]:
                continue
            gap = (placed.x[idx[b]] - placed.w[idx[b]] / 2) - (
                placed.x[idx[a]] + placed.w[idx[a]] / 2
            )
            both_padded = int(idx[a] in padded_set) + int(idx[b] in padded_set)
            assert gap >= both_padded * 1.0 - 1e-6

    def test_impossible_padding_raises(self, placed):
        widths = placed.w + placed.die.width  # cannot fit anywhere
        with pytest.raises(RuntimeError):
            legalize_abacus(placed, widths=widths)

    def test_fixed_cells_not_moved(self, placed):
        fixed = ~placed.movable
        x0 = placed.x[fixed].copy()
        legalize_abacus(placed)
        assert np.array_equal(placed.x[fixed], x0)

    def test_max_row_search_zero_pins_home_row(self):
        # Regression: `max_row_search or num_rows` treated an explicit 0
        # as "search everything"; 0 must mean home-row-only.
        tech = Technology()
        b = DesignBuilder("sparse", tech, Rect(0, 0, 64, 64))
        for i in range(8):
            b.add_cell(f"c{i}", 4, tech.row_height, x=8 * i + 4, y=8 * i + 4)
        d = b.build()
        index = SegmentIndex.build(d)
        movable = np.flatnonzero(d.movable & ~d.is_macro)
        home = {
            int(c): index.nearest_row(d.y[c] - d.h[c] / 2) for c in movable
        }
        legalize_abacus(d, max_row_search=0)
        assert check_legal(d).ok
        for c in movable:
            assert index.nearest_row(d.y[c] - d.h[c] / 2) == home[int(c)]

    def test_max_row_search_zero_fails_on_full_home_row(self):
        # Nine 8-wide cells target one 64-wide row.  Home-row-only must
        # fail loudly; the old falsy check silently searched every row.
        def overfull():
            tech = Technology()
            b = DesignBuilder("full", tech, Rect(0, 0, 64, 16))
            for i in range(9):
                b.add_cell(f"c{i}", 8, tech.row_height, x=7 * i + 4, y=4)
            return b.build()

        with pytest.raises(RuntimeError):
            legalize_abacus(overfull(), max_row_search=0)
        d = overfull()
        legalize_abacus(d)  # unrestricted search spills to row 1
        assert check_legal(d).ok

    def test_max_row_search_radius_is_inclusive(self, placed):
        # A cap of r may move a cell at most r rows from its home row.
        index = SegmentIndex.build(placed)
        row_height = placed.technology.row_height
        movable = np.flatnonzero(placed.movable & ~placed.is_macro)
        home = {
            int(c): index.nearest_row(placed.y[c] - placed.h[c] / 2)
            for c in movable
        }
        result = legalize_abacus(placed, max_row_search=2)
        assert result.num_cells == len(movable)
        for c in movable:
            row = index.nearest_row(placed.y[c] - placed.h[c] / 2)
            assert abs(index.row_ys[row] - index.row_ys[home[int(c)]]) <= (
                2 * row_height + 1e-9
            )


class TestTetris:
    def test_produces_legal_placement(self, placed):
        legalize_tetris(placed)
        assert check_legal(placed).ok

    def test_worse_or_equal_to_abacus(self, small_design):
        GlobalPlacer(small_design, PlacementParams(max_iters=300)).run()
        snapshot = small_design.snapshot_positions()
        abacus = legalize_abacus(small_design)
        small_design.restore_positions(*snapshot)
        tetris = legalize_tetris(small_design)
        assert tetris.total_displacement >= abacus.total_displacement * 0.5

    def test_padded_widths(self, placed):
        widths = placed.w.copy()
        movable = placed.movable & ~placed.is_macro
        widths[movable] += 1.0
        legalize_tetris(placed, widths=widths)
        assert check_legal(placed).ok
