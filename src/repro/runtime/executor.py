"""Process-pool task executor with timeouts, retries, and crash recovery.

The executor runs a batch of independent :class:`Task`s across worker
processes (``concurrent.futures.ProcessPoolExecutor``) and degrades
gracefully to inline execution when ``jobs=1`` or when a task payload
cannot cross the process boundary (e.g. a lambda flow).  It is the
substrate under the parallel suite matrix and batched strategy
exploration.

Fault model:

* A task that **raises** is retried up to its retry budget with
  exponential backoff, then reported as a failed :class:`TaskResult`
  carrying a :class:`repro.runtime.errors.TaskExecutionError` (the run
  continues; callers decide whether a failed cell is fatal).
* A task that **exceeds its timeout** is cancelled; if it is already
  running, the worker pool is torn down and rebuilt so the hung worker
  cannot poison later tasks.  In-flight innocents are resubmitted
  without an attempt penalty.
* A **worker crash** (``os._exit``, segfault, OOM kill) breaks the whole
  pool.  If exactly one task was in flight it is the culprit and is
  charged an attempt, failing with ``WorkerCrashError`` once its budget
  runs out.  With several tasks in flight the culprit cannot be told
  from the victims, so nobody is charged: the pool is rebuilt and the
  suspects are re-probed one at a time until each has either completed
  or broken the pool alone — innocents never lose attempts to someone
  else's crash, and the quarantine bounds the number of restarts.

Timeouts are enforced only in pool mode — inline execution cannot
preempt a running Python call, so ``jobs=1`` runs every task to
completion (documented degradation, mirrored by the tests).

Long-lived services (:mod:`repro.serve`) use two extra knobs:
``persistent=True`` keeps one process pool alive across ``run()``
calls instead of building and tearing one down per batch (call
:meth:`TaskExecutor.close` when done), and ``force_pool=True`` sends
work to the pool even at ``jobs=1`` — a single-process *shard* whose
tasks can crash, hang, time out, or be :meth:`~TaskExecutor.abort`-ed
without taking the parent down.  Aborting terminates the live workers,
so whatever is in flight fails through the ordinary crash-quarantine
path and the pool is rebuilt for the next task.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import pickle
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from .. import obs
from .errors import TaskExecutionError, TaskTimeoutError, WorkerCrashError
from .progress import (
    POOL_RESTARTED,
    TASK_FAILED,
    TASK_FINISHED,
    TASK_INLINE,
    TASK_RETRIED,
    TASK_STARTED,
    RunEvent,
    Telemetry,
)

#: Scheduler poll interval (seconds) while futures are in flight.
_TICK = 0.05


def _warmup() -> int:
    """No-op task used by :meth:`TaskExecutor.warm` to spawn workers."""
    return os.getpid()


@dataclass
class Task:
    """One unit of work.

    Attributes:
        key: unique identifier (also the journal / telemetry key).
        fn: callable executed as ``fn(*args, **kwargs)``; must be
            picklable (with its arguments) to run in a worker process,
            otherwise the task silently runs inline.
        args, kwargs: call arguments.
        timeout: per-task wall-clock budget in seconds (``None`` uses
            the executor default).
        retries: extra attempts after the first (``None`` uses the
            executor default).
    """

    key: str
    fn: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    timeout: float | None = None
    retries: int | None = None


@dataclass
class TaskResult:
    """Outcome of one task after all attempts.

    Attributes:
        key: the task's key.
        value: return value (``None`` on failure).
        error: the terminal exception, or ``None`` on success.
        attempts: attempts consumed.
        wall_time: seconds of the final attempt.
    """

    key: str
    value: object = None
    error: Exception | None = None
    attempts: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Flight:
    """Bookkeeping for one submitted attempt."""

    task: Task
    attempt: int
    started: float
    deadline: float | None


class TaskExecutor:
    """Runs task batches inline or across a recoverable process pool.

    Args:
        jobs: worker-process count; ``<= 1`` means inline execution.
        retries: default extra attempts per task after the first.
        backoff: base retry delay in seconds, doubled per attempt.
        timeout: default per-task timeout (pool mode only).
        telemetry: optional :class:`Telemetry` receiving run events.
        mp_context: ``multiprocessing`` context (``None`` = platform
            default; tests use it to force ``spawn``).
        persistent: keep one process pool alive across ``run()`` calls
            (the serving shards); call :meth:`close` to release it.
        force_pool: use the process pool even at ``jobs=1`` instead of
            degrading to inline execution — isolates every picklable
            task in a worker process.
    """

    def __init__(
        self,
        jobs: int = 1,
        retries: int = 1,
        backoff: float = 0.2,
        timeout: float | None = None,
        telemetry: Telemetry | None = None,
        mp_context=None,
        persistent: bool = False,
        force_pool: bool = False,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = max(int(jobs), 1)
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.telemetry = telemetry or Telemetry()
        self.mp_context = mp_context
        self.persistent = persistent
        self.force_pool = force_pool
        self._pool: cf.ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, tasks: list, on_result=None) -> list:
        """Execute ``tasks`` and return their results in task order.

        Args:
            tasks: :class:`Task` batch; keys must be unique.
            on_result: optional callable receiving each final
                :class:`TaskResult` in *completion* order (the natural
                place to append a checkpoint journal).

        Returns:
            ``TaskResult`` list aligned with ``tasks``.
        """
        tasks = list(tasks)
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("task keys must be unique")
        results: dict = {}
        if self.jobs <= 1 and not self.force_pool:
            for task in tasks:
                results[task.key] = self._run_inline(task, on_result)
            return [results[k] for k in keys]

        pool_tasks, inline_tasks = self._split_picklable(tasks)
        if pool_tasks:
            self._run_pool(pool_tasks, results, on_result)
        for task in inline_tasks:
            results[task.key] = self._run_inline(task, on_result)
        return [results[k] for k in keys]

    def run_one(self, task: Task) -> TaskResult:
        """Execute a single task and return its :class:`TaskResult`.

        The submission hook used by the :mod:`repro.serve` worker pool:
        each service worker owns an inline executor and funnels one job
        at a time through it, inheriting the retry/backoff accounting
        and telemetry of :meth:`run`.  Safe to call concurrently from
        several threads on an inline (``jobs=1``) executor — the inline
        path keeps no shared mutable state beyond telemetry.
        """
        return self.run([task])[0]

    def map(self, fn, items: list, key_prefix: str = "item") -> list:
        """Apply ``fn`` to every item, preserving order; raise on failure.

        A thin convenience for callers (batched exploration) that want
        plain values back and treat any task failure as fatal.
        """
        tasks = [
            Task(key=f"{key_prefix}-{i}", fn=fn, args=(item,))
            for i, item in enumerate(items)
        ]
        out = []
        for result in self.run(tasks):
            if not result.ok:
                raise result.error
            out.append(result.value)
        return out

    # ------------------------------------------------------------------
    # Inline path
    # ------------------------------------------------------------------

    def _budget(self, task: Task) -> int:
        return self.retries if task.retries is None else task.retries

    def _run_inline(self, task: Task, on_result) -> TaskResult:
        budget = self._budget(task)
        attempt = 0
        while True:
            attempt += 1
            self._emit(TASK_STARTED, task.key, attempt=attempt)
            start = time.perf_counter()
            try:
                value = task.fn(*task.args, **task.kwargs)
            except BaseException as exc:
                wall = time.perf_counter() - start
                error = TaskExecutionError(task.key, str(exc), traceback.format_exc())
                if attempt <= budget:
                    self._emit(TASK_RETRIED, task.key, attempt=attempt, detail=str(exc))
                    time.sleep(self.backoff * (2 ** (attempt - 1)))
                    continue
                return self._finalize(
                    task, on_result,
                    TaskResult(task.key, error=error, attempts=attempt, wall_time=wall),
                )
            wall = time.perf_counter() - start
            return self._finalize(
                task, on_result,
                TaskResult(task.key, value=value, attempts=attempt, wall_time=wall),
            )

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------

    def _split_picklable(self, tasks: list) -> tuple:
        pool_tasks, inline_tasks = [], []
        payload_bytes = 0
        with obs.span("runtime/ipc/pickle_check", tasks=len(tasks)) as span:
            for task in tasks:
                try:
                    blob = pickle.dumps((task.fn, task.args, task.kwargs))
                except (pickle.PicklingError, TypeError, AttributeError):
                    self._emit(TASK_INLINE, task.key, detail="unpicklable payload")
                    inline_tasks.append(task)
                else:
                    payload_bytes += len(blob)
                    pool_tasks.append(task)
            span.set(bytes=payload_bytes)
        return pool_tasks, inline_tasks

    def _make_pool(self) -> cf.ProcessPoolExecutor:
        return cf.ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self.mp_context
        )

    def _acquire_pool(self) -> cf.ProcessPoolExecutor:
        """The pool for one ``run()``: fresh, or the retained one."""
        if self.persistent:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool
        return self._make_pool()

    def _kill_pool(self, pool: cf.ProcessPoolExecutor) -> None:
        """Tear a pool down hard, terminating any hung workers."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except (OSError, ValueError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def warm(self) -> None:
        """Spawn the persistent pool's worker processes eagerly.

        Forking is safest before the caller grows helper threads, so
        services call this once at startup from their main thread.  A
        no-op unless the executor is persistent and pool-capable.
        """
        if not (self.persistent and (self.jobs > 1 or self.force_pool)):
            return
        pool = self._acquire_pool()
        futures = [pool.submit(_warmup) for _ in range(self.jobs)]
        for future in futures:
            future.result()

    def abort(self) -> None:
        """Terminate the persistent pool's workers (best effort).

        Whatever is in flight fails through the crash-quarantine path
        of the scheduling loop — the observable outcome of the aborted
        task is a ``WorkerCrashError`` once its retry budget is spent —
        and the pool is rebuilt for the next task.  Callers use this to
        actually stop a running task, which cooperative cancellation
        cannot do.
        """
        pool = self._pool
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except (OSError, ValueError, AttributeError):
                pass

    def close(self) -> None:
        """Release the persistent pool (idempotent)."""
        if self._pool is not None:
            self._kill_pool(self._pool)
            self._pool = None

    def _run_pool(self, tasks: list, results: dict, on_result) -> None:
        # Ready queue entries are (task, attempt, ready_at); the ready_at
        # stamp implements non-blocking retry backoff.
        queue = [(task, 1, 0.0) for task in tasks]
        inflight: dict = {}
        # Keys quarantined after a multi-task pool break: probed one at a
        # time so a repeat break implicates exactly one task.
        suspects: set = set()
        pool = self._acquire_pool()
        try:
            while queue or inflight:
                now = time.perf_counter()
                ready = [item for item in queue if item[2] <= now]
                window = 1 if suspects else self.jobs
                if suspects:
                    ready.sort(key=lambda item: item[0].key not in suspects)
                while ready and len(inflight) < window:
                    task, attempt, _ = item = ready.pop(0)
                    queue.remove(item)
                    self._emit(TASK_STARTED, task.key, attempt=attempt)
                    start = time.perf_counter()
                    timeout = self.timeout if task.timeout is None else task.timeout
                    deadline = None if timeout is None else start + timeout
                    try:
                        future = pool.submit(task.fn, *task.args, **task.kwargs)
                    except (BrokenProcessPool, RuntimeError):
                        # A persistent pool aborted (or broken) between
                        # batches: rebuild and resubmit without penalty.
                        queue.append((task, attempt, 0.0))
                        pool = self._restart_pool(pool, "broken at submit")
                        break
                    inflight[future] = _Flight(task, attempt, start, deadline)

                if not inflight:
                    # Everything queued is backing off; sleep to the
                    # earliest ready stamp instead of busy-waiting.
                    wake = min(item[2] for item in queue)
                    time.sleep(max(wake - time.perf_counter(), 0.0) + 0.001)
                    continue

                done, _pending = cf.wait(
                    set(inflight), timeout=_TICK, return_when=cf.FIRST_COMPLETED
                )
                doomed = []
                for future in done:
                    flight = inflight.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        doomed.append(flight)
                    except cf.CancelledError:
                        # Cancelled by the timeout sweep of an earlier
                        # iteration; already accounted for there.
                        continue
                    except BaseException as exc:
                        suspects.discard(flight.task.key)
                        self._after_failure(flight, exc, queue, results, on_result)
                    else:
                        suspects.discard(flight.task.key)
                        wall = time.perf_counter() - flight.started
                        result = TaskResult(
                            flight.task.key, value=value,
                            attempts=flight.attempt, wall_time=wall,
                        )
                        results[flight.task.key] = self._finalize(
                            flight.task, on_result, result
                        )

                if doomed:
                    # The pool is broken: every in-flight future is doomed.
                    doomed.extend(inflight.values())
                    inflight.clear()
                    if len(doomed) == 1:
                        # Sole occupant of the pool: definitely the culprit.
                        # Stays quarantined while retrying; released once a
                        # result (terminal failure here, or a later
                        # success) is recorded.
                        flight = doomed[0]
                        self._after_crash(flight, queue, results, on_result)
                        if flight.task.key in results:
                            suspects.discard(flight.task.key)
                        else:
                            suspects.add(flight.task.key)
                    else:
                        # Ambiguous break: charge nobody, quarantine all.
                        for flight in doomed:
                            suspects.add(flight.task.key)
                            queue.append((flight.task, flight.attempt, 0.0))
                    pool = self._restart_pool(pool, "worker crash")
                    continue

                # Timeout sweep.
                now = time.perf_counter()
                hung = False
                for future, flight in list(inflight.items()):
                    if flight.deadline is None or now <= flight.deadline or future.done():
                        continue
                    cancelled = future.cancel()
                    del inflight[future]
                    self._after_timeout(flight, queue, results, on_result)
                    if flight.task.key in results:
                        suspects.discard(flight.task.key)
                    if not cancelled:
                        hung = True  # already running: worker must die
                if hung:
                    for future, flight in list(inflight.items()):
                        if not future.done():
                            # Innocent victims of the restart: resubmit
                            # with no attempt penalty.
                            del inflight[future]
                            queue.append((flight.task, flight.attempt, 0.0))
                    pool = self._restart_pool(pool, "hung worker")
        finally:
            if not self.persistent:
                pool.shutdown(wait=False, cancel_futures=True)

    def _restart_pool(self, pool, why: str) -> cf.ProcessPoolExecutor:
        self._kill_pool(pool)
        self._emit(POOL_RESTARTED, detail=why)
        fresh = self._make_pool()
        if self.persistent:
            self._pool = fresh
        return fresh

    # ------------------------------------------------------------------
    # Attempt accounting
    # ------------------------------------------------------------------

    def _retry_or_fail(self, flight: _Flight, error, queue, results, on_result) -> None:
        task = flight.task
        if flight.attempt <= self._budget(task):
            self._emit(TASK_RETRIED, task.key, attempt=flight.attempt, detail=str(error))
            ready_at = time.perf_counter() + self.backoff * (2 ** (flight.attempt - 1))
            queue.append((task, flight.attempt + 1, ready_at))
            return
        wall = time.perf_counter() - flight.started
        result = TaskResult(task.key, error=error, attempts=flight.attempt, wall_time=wall)
        results[task.key] = self._finalize(task, on_result, result)

    def _after_failure(self, flight, exc, queue, results, on_result) -> None:
        remote_tb = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        error = TaskExecutionError(flight.task.key, str(exc), remote_tb)
        self._retry_or_fail(flight, error, queue, results, on_result)

    def _after_timeout(self, flight, queue, results, on_result) -> None:
        timeout = self.timeout if flight.task.timeout is None else flight.task.timeout
        error = TaskTimeoutError(flight.task.key, timeout)
        self._retry_or_fail(flight, error, queue, results, on_result)

    def _after_crash(self, flight, queue, results, on_result) -> None:
        error = WorkerCrashError(flight.task.key)
        self._retry_or_fail(flight, error, queue, results, on_result)

    def _finalize(self, task: Task, on_result, result: TaskResult) -> TaskResult:
        kind = TASK_FINISHED if result.ok else TASK_FAILED
        detail = "" if result.ok else str(result.error)
        self._emit(kind, task.key, attempt=result.attempts,
                   wall_time=result.wall_time, detail=detail)
        if on_result is not None:
            on_result(result)
        return result

    def _emit(self, kind, key="", attempt=0, wall_time=0.0, detail="") -> None:
        self.telemetry.emit(
            RunEvent(kind=kind, key=key, wall_time=wall_time,
                     attempt=attempt, detail=detail)
        )
