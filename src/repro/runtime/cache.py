"""Content-addressed on-disk artifact cache.

Expensive suite cells and exploration evaluations are pure functions of
their configuration — (benchmark, scale, seed, placement, strategy,
router) — so their results can be cached on disk and reused across runs.
Keys come from :func:`stable_hash`, a canonical-JSON SHA-256 over the
configuration: dataclasses, dicts, numpy scalars, and tuples all reduce
to the same canonical form regardless of insertion order or numeric
type, so a key survives process boundaries and code that rebuilds the
configuration from parsed CLI arguments.

Values are stored with :mod:`pickle` under ``<root>/<k[:2]>/<k>.pkl``
and written atomically (temp file + ``os.replace``) so a killed run
never leaves a truncated entry behind; unreadable entries are treated as
misses and evicted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile

from .progress import CACHE_HIT, CACHE_MISS, RunEvent

#: Sentinel returned by :meth:`ArtifactCache.get` on a miss (``None`` is
#: a legitimate cached value).
MISSING = object()


def _canonical(value):
    """Reduce ``value`` to canonical JSON-serializable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        # repr keeps full precision and distinguishes 1.0 from 1.
        return {"__float__": repr(float(value))}
    if hasattr(value, "item"):  # numpy scalars
        return _canonical(value.item())
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def stable_hash(payload) -> str:
    """Deterministic hex digest of a configuration payload.

    Args:
        payload: any nesting of dataclasses, dicts, sequences, numbers,
            strings, bools, and ``None``.

    Returns:
        A 64-character SHA-256 hex digest, stable across processes,
        platforms, and dict insertion orders.

    Note:
        Dict *keys* are canonicalized through ``str()``, so ``{1: v}``
        and ``{"1": v}`` hash identically.  This is deliberate: JSON
        round-trips (the journal, CLI-parsed configs) stringify keys,
        and a key must survive that round-trip.  Payloads whose keys
        differ only in type are therefore indistinguishable — use
        string keys in configuration payloads.
    """
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ArtifactCache:
    """Pickle-backed key/value store addressed by configuration hash.

    Args:
        root: cache directory (created on first write).
        telemetry: optional :class:`repro.runtime.progress.Telemetry`
            receiving hit/miss events.
    """

    def __init__(self, root: str, telemetry=None) -> None:
        self.root = str(root)
        self.telemetry = telemetry
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def _emit(self, kind: str, key: str) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(RunEvent(kind=kind, key=key))

    def get(self, key: str):
        """The cached value for ``key``, or :data:`MISSING`.

        Corrupt or unreadable entries are evicted and count as misses.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            self._emit(CACHE_MISS, key)
            return MISSING
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError, OSError):
            self.invalidate(key)
            self.misses += 1
            self._emit(CACHE_MISS, key)
            return MISSING
        self.hits += 1
        self._emit(CACHE_HIT, key)
        return value

    def put(self, key: str, value) -> None:
        """Atomically store ``value`` under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def contains(self, key: str) -> bool:
        """Whether ``key`` has an entry (without counting a hit)."""
        return os.path.exists(self._path(key))

    def invalidate(self, key: str) -> None:
        """Drop the entry for ``key`` if present."""
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    def clear(self) -> None:
        """Drop every entry (leaves the directory tree in place)."""
        if not os.path.isdir(self.root):
            return
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".pkl"):
                    os.unlink(os.path.join(dirpath, name))

    def stats(self) -> dict:
        """Hit/miss counters for this cache handle."""
        return {"hits": self.hits, "misses": self.misses}
