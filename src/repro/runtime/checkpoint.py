"""Journal-style checkpoint/resume for long runs.

A :class:`Journal` is an append-only JSON-lines file: every completed
task appends one record ``{"key": ..., ...payload}`` and flushes, so a
run killed mid-matrix loses at most the tasks that were in flight.  On
resume the journal is replayed — records whose keys are still wanted are
reused verbatim and only the remainder is scheduled.

A process killed mid-append leaves a truncated final line; replay
tolerates that by discarding any trailing bytes that fail to parse
(:meth:`Journal.records` never raises on a torn tail, only on a file
that is corrupt in the middle).
"""

from __future__ import annotations

import json
import os

from .errors import CheckpointError


class Journal:
    """Append-only JSON-lines checkpoint file.

    Args:
        path: journal location; parent directories are created lazily.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def clear(self) -> None:
        """Start the journal over (used for non-resume runs)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def append(self, record: dict) -> None:
        """Durably append one record.

        The line is flushed and fsynced before returning so a subsequent
        crash cannot lose an acknowledged task.
        """
        if "key" not in record:
            raise CheckpointError("journal records need a 'key' field")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if "\n" in line:
            raise CheckpointError("journal records must serialize to one line")
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    def records(self) -> list:
        """Every parseable record, in append order.

        A truncated final line (torn write from a kill) is silently
        dropped.  A record that fails to parse *before* the final line
        means real corruption and raises :class:`CheckpointError`.
        """
        if not self.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as f:
            lines = f.read().split("\n")
        # A well-formed file ends with "\n", so the final split element
        # is "".  Anything else there is a torn tail: ignore it.
        body, tail = lines[:-1], lines[-1]
        records = []
        for i, line in enumerate(body):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"{self.path}: corrupt journal record on line {i + 1}"
                ) from exc
        if tail.strip():
            try:
                records.append(json.loads(tail))
            except json.JSONDecodeError:
                pass  # torn final write — resume without it
        return records

    def completed(self) -> dict:
        """``key -> record`` for every journaled record (last write wins)."""
        return {record["key"]: record for record in self.records() if "key" in record}

    def remainder(self, keys: list) -> list:
        """The subset of ``keys`` not yet journaled, preserving order."""
        done = self.completed()
        return [key for key in keys if key not in done]
