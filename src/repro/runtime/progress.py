"""Structured progress and telemetry events for long runs.

The executor, cache, and checkpoint layers all narrate what they do by
emitting :class:`RunEvent` records into a :class:`Telemetry` collector.
The collector keeps machine-readable counters (consumed by benchmarks
and the CLI summary line) and forwards every event to optional sinks —
e.g. :func:`console_sink` for live ``--jobs`` progress output.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from .. import obs

#: Event kinds emitted by the runtime layers.
TASK_STARTED = "task_started"
TASK_FINISHED = "task_finished"
TASK_RETRIED = "task_retried"
TASK_FAILED = "task_failed"
TASK_INLINE = "task_inline"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
JOURNAL_REPLAYED = "journal_replayed"
POOL_RESTARTED = "pool_restarted"


@dataclass
class RunEvent:
    """One telemetry event.

    Attributes:
        kind: one of the module-level event-kind constants.
        key: the task / cache key the event concerns ("" for global
            events such as pool restarts).
        wall_time: seconds spent, where meaningful (task finish/fail).
        attempt: 1-based attempt number, where meaningful.
        detail: free-form human-readable context.
    """

    kind: str
    key: str = ""
    wall_time: float = 0.0
    attempt: int = 0
    detail: str = ""


class Telemetry:
    """Counts events and fans them out to sinks.

    Args:
        sinks: callables receiving each :class:`RunEvent`.
    """

    def __init__(self, sinks: list | None = None) -> None:
        self.sinks = list(sinks or [])
        self.counters: dict = {}
        self.task_seconds = 0.0
        self._born = time.perf_counter()

    def emit(self, event: RunEvent) -> None:
        """Record ``event``, mirror it into the trace, and fan it out.

        Every telemetry event also lands in the current
        :mod:`repro.obs` trace (as a ``runtime/<kind>`` event), so task
        lifecycles share a timeline with the flow's spans.
        """
        self.counters[event.kind] = self.counters.get(event.kind, 0) + 1
        if event.kind in (TASK_FINISHED, TASK_FAILED):
            self.task_seconds += event.wall_time
        if obs.is_enabled():
            obs.event(
                "runtime/" + event.kind,
                key=event.key,
                wall_time=event.wall_time,
                attempt=event.attempt,
                detail=event.detail,
            )
        for sink in self.sinks:
            sink(event)

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were emitted."""
        return self.counters.get(kind, 0)

    # Convenience accessors for the counters benchmarks care about.
    @property
    def finished(self) -> int:
        return self.count(TASK_FINISHED)

    @property
    def retried(self) -> int:
        return self.count(TASK_RETRIED)

    @property
    def failed(self) -> int:
        return self.count(TASK_FAILED)

    @property
    def cache_hits(self) -> int:
        return self.count(CACHE_HIT)

    @property
    def cache_misses(self) -> int:
        return self.count(CACHE_MISS)

    def snapshot(self) -> dict:
        """Machine-readable counter state (for ``BENCH_runtime.json``)."""
        return {
            "counters": dict(self.counters),
            "task_seconds": self.task_seconds,
            "elapsed_seconds": time.perf_counter() - self._born,
        }

    def summary(self) -> str:
        """One-line human summary of the run so far."""
        parts = [
            f"{self.finished} done",
            f"{self.failed} failed",
            f"{self.retried} retried",
        ]
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses} hits")
        replayed = self.count(JOURNAL_REPLAYED)
        if replayed:
            parts.append(f"{replayed} replayed")
        return ", ".join(parts)


def console_sink(stream=None, verbose: bool = False):
    """A sink printing progress lines to ``stream`` (default stderr).

    Args:
        stream: file-like target.
        verbose: also print task starts and cache hits (otherwise only
            finishes, retries, failures, and pool restarts).
    """
    stream = stream or sys.stderr
    quiet_kinds = {TASK_STARTED, CACHE_HIT, CACHE_MISS, TASK_INLINE}

    def sink(event: RunEvent) -> None:
        if not verbose and event.kind in quiet_kinds:
            return
        line = f"[runtime] {event.kind} {event.key}"
        if event.attempt > 1:
            line += f" attempt={event.attempt}"
        if event.wall_time:
            line += f" {event.wall_time:.2f}s"
        if event.detail:
            line += f" ({event.detail})"
        print(line, file=stream)

    return sink
