"""Exception types of the job-execution runtime.

Every failure the runtime can surface is one of these, so callers can
catch :class:`RuntimeTaskError` and decide between retrying, skipping,
or aborting without string-matching messages.
"""

from __future__ import annotations


class RuntimeTaskError(Exception):
    """Base class for all runtime failures."""


class TaskExecutionError(RuntimeTaskError):
    """A task body raised; carries the remote traceback text.

    Attributes:
        key: the failing task's key.
        traceback_text: formatted traceback from the worker (or the
            inline attempt), preserved because the original exception
            object may not survive the process boundary.
    """

    def __init__(self, key: str, message: str, traceback_text: str = "") -> None:
        super().__init__(f"task {key!r} failed: {message}")
        self.key = key
        self.traceback_text = traceback_text


class TaskTimeoutError(RuntimeTaskError):
    """A task exceeded its wall-clock budget."""

    def __init__(self, key: str, timeout: float) -> None:
        super().__init__(f"task {key!r} exceeded its {timeout:.3g}s timeout")
        self.key = key
        self.timeout = timeout


class WorkerCrashError(RuntimeTaskError):
    """A worker process died (segfault, ``os._exit``, OOM kill, ...)."""

    def __init__(self, key: str, detail: str = "") -> None:
        message = f"worker died while task {key!r} was in flight"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.key = key


class CheckpointError(RuntimeTaskError):
    """A checkpoint journal could not be read or written."""
