"""Parallel job-execution runtime: executor, artifact cache, checkpointing.

The runtime packages the machinery every expensive loop in the repo
shares — the Table-II suite matrix and batched strategy exploration
today, sharded/serving workloads later:

* :class:`TaskExecutor` — process-pool execution with per-task
  timeouts, bounded retry with backoff, and worker-crash recovery;
  degrades to inline execution at ``jobs=1`` or for unpicklable tasks.
* :class:`ArtifactCache` / :func:`stable_hash` — content-addressed
  on-disk cache keyed by configuration hash.
* :class:`Journal` — append-only JSON-lines checkpoint enabling
  resume-after-kill.
* :class:`Telemetry` / :class:`RunEvent` — structured progress events
  and counters consumed by the CLI and benchmarks.
"""

from .cache import MISSING, ArtifactCache, stable_hash
from .checkpoint import Journal
from .errors import (
    CheckpointError,
    RuntimeTaskError,
    TaskExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from .executor import Task, TaskExecutor, TaskResult
from .shm import (
    SharedDesign,
    SharedDesignCache,
    SharedDesignHandle,
    SharedMemoryError,
    attach_design,
    publish_design,
)
from .progress import (
    CACHE_HIT,
    CACHE_MISS,
    JOURNAL_REPLAYED,
    POOL_RESTARTED,
    TASK_FAILED,
    TASK_FINISHED,
    TASK_INLINE,
    TASK_RETRIED,
    TASK_STARTED,
    RunEvent,
    Telemetry,
    console_sink,
)

__all__ = [
    "ArtifactCache",
    "CACHE_HIT",
    "CACHE_MISS",
    "CheckpointError",
    "JOURNAL_REPLAYED",
    "Journal",
    "MISSING",
    "POOL_RESTARTED",
    "RunEvent",
    "RuntimeTaskError",
    "SharedDesign",
    "SharedDesignCache",
    "SharedDesignHandle",
    "SharedMemoryError",
    "TASK_FAILED",
    "TASK_FINISHED",
    "TASK_INLINE",
    "TASK_RETRIED",
    "TASK_STARTED",
    "Task",
    "TaskExecutionError",
    "TaskExecutor",
    "TaskResult",
    "TaskTimeoutError",
    "Telemetry",
    "WorkerCrashError",
    "attach_design",
    "console_sink",
    "publish_design",
    "stable_hash",
]
