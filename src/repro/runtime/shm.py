"""Zero-copy design sharing across worker processes.

Every cross-process job used to pay a full pickle of the
:class:`~repro.netlist.design.Design` (or regenerated it from scratch
inside the worker).  The netlist already holds structure-of-arrays
numpy views, so this module publishes them once into a
``multiprocessing.shared_memory`` segment and hands workers a tiny
picklable :class:`SharedDesignHandle`; :func:`attach_design` rebuilds a
read-only-topology ``Design`` over views of the segment — no copy of
the sizes, masks, pin offsets, or net CSR, only a private copy of the
mutable position arrays.

Lifecycle rules (pinned by ``tests/test_shm.py``):

* The **publishing process owns the segment**.  :class:`SharedDesign`
  is refcounted (:meth:`~SharedDesign.acquire` /
  :meth:`~SharedDesign.release`); the segment is unlinked when the
  count reaches zero, at :meth:`~SharedDesign.close`, or — for
  anything still owned at interpreter exit — by an ``atexit`` sweep.
  A publisher killed hard is covered by the stdlib resource tracker
  (a separate process), so ``/dev/shm`` never accumulates segments.
* **Workers attach untracked.**  A worker registers nothing with its
  resource tracker (``track=False`` on new Pythons, registration
  suppressed during attach elsewhere), so a worker that exits — or is
  SIGKILLed mid-job — can never unlink a segment the parent still
  serves from.
* **Fallback is transparent.**  Publish/attach failures raise
  :class:`SharedMemoryError`; every integration point (suite workers,
  serve shards) catches it and falls back to the pickling /
  regenerate-by-name path, so shared memory is an optimization, never
  a requirement.

Attach results are memoized per worker process (keyed by segment name,
small FIFO), so a persistent shard worker maps each design once and
serves every later job from the existing mapping.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import threading
from dataclasses import dataclass

import numpy as np

from .. import obs

try:  # pragma: no cover - exercised only where the module is missing
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Array fields published into the segment, in layout order.  The
#: position arrays are included so an attached design starts from the
#: published placement; ``attach_design`` copies them (they mutate).
_ARRAY_FIELDS = (
    "w", "h", "x", "y", "movable", "is_macro",
    "net_start", "net_pins", "pin_cell", "pin_net", "pin_dx", "pin_dy",
)

#: Cell->pin CSR index, shared so workers skip the rebuild sort.
_INDEX_FIELDS = ("_cellpin_start", "_cellpin_list")

_ALIGN = 64


class SharedMemoryError(RuntimeError):
    """Publish or attach failed; callers fall back to pickling."""


def available() -> bool:
    """Whether POSIX shared memory is usable on this platform."""
    return _shared_memory is not None


@dataclass(frozen=True)
class SharedDesignHandle:
    """Picklable pointer to a published design.

    Attributes:
        segment: shared-memory segment name.
        arrays: ``field -> (offset, dtype string, length)`` table.
        meta_offset, meta_size: pickled metadata blob (names,
            technology, die, blockages) inside the segment.
        nbytes: total segment payload size.
    """

    segment: str
    arrays: tuple
    meta_offset: int
    meta_size: int
    nbytes: int

    def to_dict(self) -> dict:
        """JSON-safe wire form (for request payloads)."""
        return {
            "segment": self.segment,
            "arrays": [list(row) for row in self.arrays],
            "meta_offset": self.meta_offset,
            "meta_size": self.meta_size,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SharedDesignHandle":
        return cls(
            segment=payload["segment"],
            arrays=tuple(
                (field, int(offset), dtype, int(length))
                for field, offset, dtype, length in payload["arrays"]
            ),
            meta_offset=int(payload["meta_offset"]),
            meta_size=int(payload["meta_size"]),
            nbytes=int(payload["nbytes"]),
        )


#: Segments owned (published) by this process, for the atexit sweep.
_OWNED: dict = {}


def _sweep_owned() -> None:  # pragma: no cover - runs at interpreter exit
    for shared in list(_OWNED.values()):
        shared._unlink(force=True)


atexit.register(_sweep_owned)


class SharedDesign:
    """Owner-side view of a published design segment.

    Reference counted: :func:`publish_design` returns it with one
    reference held by the publisher.  :meth:`acquire` / :meth:`release`
    let several consumers (e.g. cached service entries) share one
    segment; the segment is unlinked when the last reference drops or
    on :meth:`close`.
    """

    def __init__(self, shm, handle: SharedDesignHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._refs = 1
        self._closed = False
        _OWNED[handle.segment] = self

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def acquire(self) -> "SharedDesign":
        if self._closed:
            raise SharedMemoryError(f"segment {self.handle.segment} already unlinked")
        self._refs += 1
        return self

    def release(self) -> None:
        self._refs -= 1
        if self._refs <= 0:
            self._unlink()

    def close(self) -> None:
        """Force the segment away regardless of outstanding references."""
        self._unlink()

    def _unlink(self, force: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        _OWNED.pop(self.handle.segment, None)
        for op in (self._shm.close, self._shm.unlink):
            try:
                op()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __enter__(self) -> "SharedDesign":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def publish_design(design) -> SharedDesign:
    """Copy ``design``'s SoA arrays into a fresh shared-memory segment.

    Returns a :class:`SharedDesign` owned by the calling process.

    Raises:
        SharedMemoryError: shared memory unavailable or the segment
            could not be created/populated (callers fall back to
            pickling).
    """
    if _shared_memory is None:
        raise SharedMemoryError("multiprocessing.shared_memory is unavailable")
    arrays = []
    offset = 0
    specs = []
    for field in _ARRAY_FIELDS + _INDEX_FIELDS:
        arr = np.ascontiguousarray(getattr(design, field))
        arrays.append(arr)
        specs.append((field, offset, arr.dtype.str, len(arr)))
        offset += (arr.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
    meta = pickle.dumps(
        {
            "name": design.name,
            "technology": design.technology,
            "die": design.die,
            "cell_names": design.cell_names,
            "net_names": design.net_names,
            "blockages": design.blockages,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    meta_offset = offset
    total = offset + len(meta)
    name = f"repro_{os.getpid()}_{secrets.token_hex(6)}"
    with obs.span("runtime/ipc/publish", design=design.name, bytes=total):
        try:
            shm = _shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
        except (OSError, ValueError) as exc:
            raise SharedMemoryError(f"cannot create shared segment: {exc}") from exc
        try:
            for (field, off, dtype, length), arr in zip(specs, arrays):
                view = np.ndarray(length, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
                view[:] = arr
            shm.buf[meta_offset:meta_offset + len(meta)] = meta
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            raise
    handle = SharedDesignHandle(
        segment=name,
        arrays=tuple(specs),
        meta_offset=meta_offset,
        meta_size=len(meta),
        nbytes=total,
    )
    return SharedDesign(shm, handle)


_ATTACH_LOCK = threading.Lock()


def _open_untracked(segment: str):
    """Attach a segment without registering it with the resource tracker.

    The stdlib tracker assumes whoever maps a segment co-owns it and
    unlinks "leaked" segments when the registering process exits — a
    worker attaching read-only must never trigger that.  Python >= 3.13
    has ``track=False``; earlier versions attach with registration
    suppressed (unregister-after-attach would collide with the
    publisher's own unlink-time unregister in the shared tracker).
    """
    try:
        return _shared_memory.SharedMemory(name=segment, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=segment)
        finally:
            resource_tracker.register = original


#: Per-process attach memo: segment name -> (shm, meta, field -> array).
_ATTACHED: dict = {}
_ATTACH_CAPACITY = 4


def _evict_attached() -> None:
    while len(_ATTACHED) > _ATTACH_CAPACITY:
        name = next(iter(_ATTACHED))
        shm, _meta, _views = _ATTACHED.pop(name)
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


def _map_segment(handle: SharedDesignHandle) -> tuple:
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached
    if _shared_memory is None:
        raise SharedMemoryError("multiprocessing.shared_memory is unavailable")
    try:
        shm = _open_untracked(handle.segment)
    except (OSError, ValueError) as exc:
        raise SharedMemoryError(
            f"cannot attach segment {handle.segment!r}: {exc}"
        ) from exc
    views = {}
    for field, offset, dtype, length in handle.arrays:
        view = np.ndarray(length, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[field] = view
    meta = pickle.loads(
        bytes(shm.buf[handle.meta_offset:handle.meta_offset + handle.meta_size])
    )
    _ATTACHED[handle.segment] = (shm, meta, views)
    _evict_attached()
    return _ATTACHED[handle.segment]


def attach_design(handle: SharedDesignHandle):
    """Rebuild a ``Design`` over the published segment.

    Topology arrays are zero-copy read-only views of the segment; the
    position arrays are private copies (each attach starts from the
    published placement and mutates freely).  The mapping is cached per
    process, so repeated attaches of the same segment only pay the
    position copy.

    Raises:
        SharedMemoryError: the segment is gone or unmappable (the
            publisher unlinked it, or shared memory is unavailable).
    """
    from ..netlist.design import Design

    with obs.span("runtime/ipc/attach", segment=handle.segment,
                  bytes=handle.nbytes):
        _shm, meta, views = _map_segment(handle)
        design = Design(
            name=meta["name"],
            technology=meta["technology"],
            die=meta["die"],
            cell_names=meta["cell_names"],
            w=views["w"],
            h=views["h"],
            x=views["x"],
            y=views["y"],
            movable=views["movable"],
            is_macro=views["is_macro"],
            net_names=meta["net_names"],
            net_start=views["net_start"],
            net_pins=views["net_pins"],
            pin_cell=views["pin_cell"],
            pin_net=views["pin_net"],
            pin_dx=views["pin_dx"],
            pin_dy=views["pin_dy"],
            blockages=meta["blockages"],
            cell_pin_index=(views["_cellpin_start"], views["_cellpin_list"]),
        )
        # Pin the mapping to the design's lifetime: the buffer views
        # above are only valid while the SharedMemory object is open.
        design._shm_segment = _shm
    return design


def detach_all() -> None:
    """Drop this process's attach memo (close every cached mapping)."""
    while _ATTACHED:
        _name, (shm, _meta, _views) = _ATTACHED.popitem()
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


class SharedDesignCache:
    """Publish-once cache for services handing the same design to many jobs.

    Keyed by ``(design name, scale, seed)``; a miss generates the design
    through ``provider`` (default: :func:`repro.api.resolve_design`,
    which handles both suite names and Yosys ``*.json`` netlist paths)
    and publishes it.  Bounded FIFO — evicted entries release their
    segment reference.  :meth:`close` releases everything.
    """

    def __init__(self, provider=None, capacity: int = 4) -> None:
        self._provider = provider
        self._capacity = max(int(capacity), 1)
        self._entries: dict = {}
        self._lock = threading.Lock()
        self.publishes = 0
        self.hits = 0

    def _make(self, name: str, scale: float, seed: int):
        if self._provider is not None:
            return self._provider(name, scale, seed)
        from ..api import resolve_design

        return resolve_design(name, scale, seed)

    def handle_for(self, name: str, scale: float, seed: int):
        """The (cached) handle for a design identity, or ``None``.

        Publish failures are swallowed — the caller's pickling fallback
        is always correct, and a dead ``/dev/shm`` should not fail jobs.
        """
        if not available():
            return None
        key = (name, float(scale), int(seed))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry.handle
        # Generate + publish outside the lock: a multi-second design
        # build must not serialize unrelated shard threads.
        try:
            shared = publish_design(self._make(name, scale, seed))
        except Exception:
            return None
        with self._lock:
            if key in self._entries:  # racing thread published first
                self.hits += 1
                shared.release()
                return self._entries[key].handle
            self._entries[key] = shared
            self.publishes += 1
            while len(self._entries) > self._capacity:
                oldest = next(iter(self._entries))
                self._entries.pop(oldest).release()
            return shared.handle

    def handle_for_request(self, request: dict):
        """Handle for a normalized service request (or ``None``).

        Design identity (scale/seed defaults) is resolved through
        :class:`repro.api.RunConfig` so the published design is exactly
        the one the worker would regenerate from the same request.
        """
        name = request.get("design")
        if not isinstance(name, str):
            return None
        from .. import api

        try:
            config = api.RunConfig.from_dict(request.get("config") or {})
        except Exception:
            return None
        return self.handle_for(name, config.scale, config.seed)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "publishes": self.publishes,
                "hits": self.hits,
                "bytes": sum(e.nbytes for e in self._entries.values()),
            }

    def close(self) -> None:
        with self._lock:
            while self._entries:
                _key, shared = self._entries.popitem()
                shared.release()
