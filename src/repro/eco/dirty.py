"""Dirty-set computation: which cells, rows, and Gcells an edit touches.

An ECO edit invalidates a neighbourhood, not the die: the edited cells
themselves, every cell whose footprint intersects the edit's inflated
bounding boxes (they may need to shift during re-legalization), the rows
those boxes cover, and the Gcell window the router must renegotiate.
The margins come from :class:`repro.eco.session.EcoParams`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design
from ..router.grid import RoutingGrid


@dataclass
class DirtySet:
    """What one delta invalidates.

    Attributes:
        cells: indices of movable standard cells to re-legalize.
        nets: net indices whose topology/pins moved (to re-route).
        rows: row indices covered by the dirty geometry.
        window: inclusive ``(gx_lo, gy_lo, gx_hi, gy_hi)`` Gcell box
            for the router's local negotiation, or ``None`` when the
            edit has no geometric footprint.
        fraction: dirty movable-cell fraction (drives the fall-back to
            a full warm re-place).
    """

    cells: np.ndarray
    nets: np.ndarray
    rows: np.ndarray
    window: tuple | None
    fraction: float


def nets_of_cells(design: Design, cells) -> np.ndarray:
    """Net ids with at least one pin on any of ``cells``."""
    cells = np.asarray(cells, dtype=np.int64)
    if len(cells) == 0:
        return np.zeros(0, dtype=np.int64)
    on_cells = np.isin(design.pin_cell, cells)
    return np.unique(design.pin_net[on_cells]).astype(np.int64)


def compute_dirty(
    design: Design,
    grid: RoutingGrid,
    seed_cells,
    boxes,
    margin_sites: int,
    margin_rows: int,
    route_margin_gcells: int,
    extra_nets=None,
) -> DirtySet:
    """Grow ``seed_cells`` and geometry ``boxes`` into a full dirty set.

    Args:
        seed_cells: cells directly named by the delta.
        boxes: ``(xlo, ylo, xhi, yhi)`` rectangles invalidated by the
            edit — typically the old *and* new footprints of each edited
            cell — inflated here by the legalization margins.
        extra_nets: nets dirtied independently of cell membership (e.g.
            the nets of a removed cell, whose pins no longer exist).
    """
    tech = design.technology
    mx = margin_sites * tech.site_width
    my = margin_rows * tech.row_height

    dirty = np.zeros(design.num_cells, dtype=bool)
    seed_cells = np.asarray(list(seed_cells), dtype=np.int64)
    if len(seed_cells):
        dirty[seed_cells] = True

    std = design.movable & ~design.is_macro
    x, y, w, h = design.x, design.y, design.w, design.h
    inflated = []
    for xlo, ylo, xhi, yhi in boxes:
        xlo, ylo, xhi, yhi = xlo - mx, ylo - my, xhi + mx, yhi + my
        inflated.append((xlo, ylo, xhi, yhi))
        hit = (x < xhi) & (x + w > xlo) & (y < yhi) & (y + h > ylo)
        dirty |= std & hit
    dirty &= std | np.isin(
        np.arange(design.num_cells), seed_cells
    )  # macros/fixed never re-legalize unless explicitly seeded

    cells = np.nonzero(dirty)[0].astype(np.int64)
    nets = nets_of_cells(design, cells)
    if extra_nets is not None and len(extra_nets):
        nets = np.unique(
            np.concatenate([nets, np.asarray(extra_nets, dtype=np.int64)])
        )

    rh = tech.row_height
    row_set = set()
    for xlo, ylo, xhi, yhi in inflated:
        lo = int(np.floor((ylo - design.die.ylo) / rh))
        hi = int(np.floor((yhi - design.die.ylo) / rh))
        row_set.update(range(max(lo, 0), hi + 1))
    rows = np.asarray(sorted(row_set), dtype=np.int64)

    window = None
    if inflated:
        xlo = min(b[0] for b in inflated)
        ylo = min(b[1] for b in inflated)
        xhi = max(b[2] for b in inflated)
        yhi = max(b[3] for b in inflated)
        gx, gy = grid.gcell_of(np.asarray([xlo, xhi]), np.asarray([ylo, yhi]))
        m = int(route_margin_gcells)
        window = (
            max(int(gx[0]) - m, 0),
            max(int(gy[0]) - m, 0),
            min(int(gx[1]) + m, grid.nx - 1),
            min(int(gy[1]) + m, grid.ny - 1),
        )

    movable_std = int(std.sum())
    fraction = len(cells) / max(movable_std, 1)
    return DirtySet(cells=cells, nets=nets, rows=rows, window=window, fraction=fraction)
