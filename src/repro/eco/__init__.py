"""Incremental placement sessions (ECO mode).

Converge once with the full PUFFER flow, then apply typed deltas —
resize/add/remove cells, move a macro, change a strategy knob — and pay
only for the dirtied region: warm-started global placement with recycled
padding, dirty-row re-legalization, and windowed incremental rerouting.
"""

from .deltas import (
    DELTA_KINDS,
    AddCell,
    ChangeStrategy,
    MoveMacro,
    RemoveCell,
    ResizeCell,
    delta_from_dict,
)
from .dirty import DirtySet, compute_dirty, nets_of_cells
from .session import EcoParams, EcoResult, EcoSession

__all__ = [
    "AddCell",
    "ChangeStrategy",
    "DELTA_KINDS",
    "DirtySet",
    "EcoParams",
    "EcoResult",
    "EcoSession",
    "MoveMacro",
    "RemoveCell",
    "ResizeCell",
    "compute_dirty",
    "delta_from_dict",
    "nets_of_cells",
]
