"""Typed, versioned deltas — the ECO session wire format.

Every edit a client can apply to a converged placement is a small
dataclass with a ``kind`` tag.  The wire shape follows the conventions
of :mod:`repro.schema`: every payload is stamped with
``schema_version``, unknown keys are rejected at the boundary, and
``json.loads(json.dumps(d.to_dict()))`` is lossless.  The dispatcher
:func:`delta_from_dict` turns an incoming payload back into the right
delta type (or raises :class:`repro.schema.SchemaError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema import SchemaError, dataclass_from_dict, dataclass_to_dict


def _wire(obj, kind: str) -> dict:
    data = dataclass_to_dict(obj)
    data["kind"] = kind
    return data


def _unwire(cls, kind: str, data: dict) -> dict:
    data = dict(data)
    got = data.pop("kind", kind)
    if got != kind:
        raise SchemaError(f"expected delta kind {kind!r}, got {got!r}")
    return data


@dataclass
class ResizeCell:
    """Change a standard cell's footprint (ECO resize / swap).

    Attributes:
        cell: index of the movable standard cell.
        width: new cell width (database units).
        height: new height; ``None`` keeps the current (row) height.
    """

    cell: int
    width: float
    height: float | None = None

    KIND = "resize_cell"

    def to_dict(self) -> dict:
        return _wire(self, self.KIND)

    @classmethod
    def from_dict(cls, data: dict) -> "ResizeCell":
        return dataclass_from_dict(cls, _unwire(cls, cls.KIND, data))


@dataclass
class MoveMacro:
    """Move a fixed macro to a new lower-left corner."""

    macro: int
    x: float
    y: float

    KIND = "move_macro"

    def to_dict(self) -> dict:
        return _wire(self, self.KIND)

    @classmethod
    def from_dict(cls, data: dict) -> "MoveMacro":
        return dataclass_from_dict(cls, _unwire(cls, cls.KIND, data))


@dataclass
class AddCell:
    """Insert a new movable standard cell (e.g. an ECO buffer).

    Attributes:
        name: unique cell name.
        width / height: footprint.
        x / y: seed position (the session legalizes it).
        nets: names of existing nets the new cell's center pin joins.
    """

    name: str
    width: float
    height: float
    x: float
    y: float
    nets: list = field(default_factory=list)

    KIND = "add_cell"

    def to_dict(self) -> dict:
        return _wire(self, self.KIND)

    @classmethod
    def from_dict(cls, data: dict) -> "AddCell":
        return dataclass_from_dict(cls, _unwire(cls, cls.KIND, data))


@dataclass
class RemoveCell:
    """Delete a movable standard cell (its pins leave their nets)."""

    cell: int

    KIND = "remove_cell"

    def to_dict(self) -> dict:
        return _wire(self, self.KIND)

    @classmethod
    def from_dict(cls, data: dict) -> "RemoveCell":
        return dataclass_from_dict(cls, _unwire(cls, cls.KIND, data))


@dataclass
class ChangeStrategy:
    """Change one :class:`repro.core.StrategyParams` knob.

    Triggers a warm-started global re-place (padding recycled via the
    paper's Eq. 15) rather than a local repair.
    """

    param: str
    value: float

    KIND = "change_strategy"

    def to_dict(self) -> dict:
        return _wire(self, self.KIND)

    @classmethod
    def from_dict(cls, data: dict) -> "ChangeStrategy":
        return dataclass_from_dict(cls, _unwire(cls, cls.KIND, data))


#: kind tag -> delta class, the dispatch table of :func:`delta_from_dict`.
DELTA_KINDS = {
    cls.KIND: cls
    for cls in (ResizeCell, MoveMacro, AddCell, RemoveCell, ChangeStrategy)
}


def delta_from_dict(data: dict):
    """Rebuild a typed delta from its wire dict.

    Raises:
        repro.schema.SchemaError: on a missing/unknown ``kind``, an
            unsupported ``schema_version``, or unknown keys.
    """
    if not isinstance(data, dict):
        raise SchemaError(f"delta payload must be a dict, got {type(data).__name__}")
    kind = data.get("kind")
    cls = DELTA_KINDS.get(kind)
    if cls is None:
        raise SchemaError(
            f"unknown delta kind {kind!r}; expected one of {sorted(DELTA_KINDS)}"
        )
    return cls.from_dict(data)
