"""Incremental placement sessions: converge once, then apply deltas.

An :class:`EcoSession` owns a converged PUFFER run — cell positions, the
accumulated *continuous* padding (the input of Eq. 17), the discretized
legalization widths, and the router's live demand/segment state — and
applies typed :mod:`repro.eco.deltas` edits against it:

* geometric edits (resize, add, remove, macro move) re-legalize only the
  dirtied rows via the existing Abacus path
  (:func:`repro.legalizer.legalize_region`) and re-route only the nets
  crossing the dirtied Gcell window
  (:func:`repro.router.incremental.reroute_nets`);
* strategy edits (and geometric edits whose dirty fraction exceeds
  ``EcoParams.full_place_threshold``) warm-start global placement from
  the previous converged positions with the padding history recycled
  across runs (paper Eq. 15 via ``PaddingEngine(initial_pad=...)``),
  then legalize and route fully.

Each applied delta bumps the session version and yields an
:class:`EcoResult`, and the :mod:`repro.verify` invariant checkers can
audit every intermediate state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace

import numpy as np

from .. import obs
from ..api import RunConfig
from ..core import PufferPlacer, StrategyParams
from ..core.optimizer import RoutabilityOptimizer
from ..dplace.incremental import IncrementalHpwl
from ..legalizer import legalize_abacus, legalize_region, padded_widths
from ..legalizer.abacus import LegalizeResult
from ..netlist import add_cell as netlist_add_cell
from ..netlist import remove_cell as netlist_remove_cell
from ..netlist.design import Design
from ..placer import GlobalPlacer
from ..router import GlobalRouter, reroute_nets
from ..router.router import RouteReport
from ..runtime.cache import MISSING, stable_hash
from ..schema import dataclass_from_dict, dataclass_to_dict
from ..verify import VerifyContext, run_checkers
from .deltas import (
    AddCell,
    ChangeStrategy,
    MoveMacro,
    RemoveCell,
    ResizeCell,
)
from .dirty import DirtySet, compute_dirty, nets_of_cells


@dataclass
class EcoParams:
    """Knobs of the incremental engine.

    Attributes:
        legal_margin_sites: horizontal inflation (sites) of an edit's
            footprint when collecting cells to re-legalize.
        legal_margin_rows: vertical inflation (rows) of the same.
        route_margin_gcells: Gcell inflation of the dirty routing window.
        reroute_rounds: bounded local RRR rounds per incremental reroute.
        max_reroute: rip-up cap per local round.
        max_row_search: Abacus row-search radius for dirty-region
            legalization (small keeps the repair local).
        warm_gp_iters: Nesterov iteration cap for warm-started global
            re-placement.
        full_place_threshold: dirty movable-cell fraction above which a
            geometric edit escalates to the warm re-place path.
    """

    legal_margin_sites: int = 24
    legal_margin_rows: int = 1
    route_margin_gcells: int = 4
    reroute_rounds: int = 2
    max_reroute: int = 2000
    max_row_search: int = 4
    warm_gp_iters: int = 48
    full_place_threshold: float = 0.25

    def to_dict(self) -> dict:
        """JSON-safe wire dict (see :mod:`repro.schema`)."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EcoParams":
        """Rebuild from :meth:`to_dict`; unknown keys raise ``SchemaError``."""
        return dataclass_from_dict(cls, data)


@dataclass
class EcoResult:
    """Outcome of one session step (the cold start or one delta).

    Attributes:
        version: session version after this step (0 = cold start).
        kind: ``"start"`` or the applied delta's kind tag.
        delta: the applied delta's wire dict (``None`` for the start).
        hpwl: post-step legalized HPWL.
        hof / vof / wirelength: post-step routing metrics.
        dirty_cells / dirty_nets: size of the recomputed region.
        full_fallbacks: stages that escalated to a full recompute
            (``"place"`` for the warm re-place path, ``"legalize"``
            when the local repair did not fit).
        seconds: wall time per stage plus ``"total"``.
        verify_ok / verify_errors / verify_warnings: invariant-checker
            outcome (``None``/0/0 when verification was off).
    """

    version: int
    kind: str
    delta: dict | None
    hpwl: float
    hof: float
    vof: float
    wirelength: float
    dirty_cells: int = 0
    dirty_nets: int = 0
    full_fallbacks: list = field(default_factory=list)
    seconds: dict = field(default_factory=dict)
    verify_ok: bool | None = None
    verify_errors: int = 0
    verify_warnings: int = 0

    def to_summary(self) -> dict:
        """A JSON-safe summary (the sessions-API result format)."""
        return {
            "version": int(self.version),
            "kind": self.kind,
            "delta": self.delta,
            "hpwl": float(self.hpwl),
            "hof": float(self.hof),
            "vof": float(self.vof),
            "wirelength": float(self.wirelength),
            "dirty_cells": int(self.dirty_cells),
            "dirty_nets": int(self.dirty_nets),
            "full_fallbacks": list(self.full_fallbacks),
            "seconds": {k: float(v) for k, v in self.seconds.items()},
            "verify": None
            if self.verify_ok is None
            else {
                "ok": bool(self.verify_ok),
                "errors": int(self.verify_errors),
                "warnings": int(self.verify_warnings),
            },
        }


class EcoSession:
    """A stateful incremental-placement session.

    Args:
        design: a :class:`~repro.netlist.design.Design` or a suite
            benchmark name (generated from ``config.scale`` /
            ``config.seed``; name-based sessions can reuse a cold start
            from ``cache``).
        config: the run configuration of the underlying flow.
        eco: incremental-engine knobs.
        cache: optional :class:`repro.runtime.cache.ArtifactCache`; the
            converged cold-start state (positions + padding) is memoized
            under a :func:`~repro.runtime.cache.stable_hash` key.

    Example:
        >>> from repro.eco import EcoSession, ResizeCell
        >>> session = EcoSession("OR1200", config=RunConfig(scale=0.002))
        >>> base = session.start()                       # doctest: +SKIP
        >>> step = session.apply(ResizeCell(cell=7, width=12.0))  # doctest: +SKIP
    """

    def __init__(
        self,
        design,
        config: RunConfig | None = None,
        eco: EcoParams | None = None,
        cache=None,
    ) -> None:
        self.config = config or RunConfig()
        self.eco = eco or EcoParams()
        self.cache = cache
        self._from_name = isinstance(design, str)
        if self._from_name:
            from ..benchgen import make_design

            self._name = design
            design = make_design(design, self.config.scale, seed=self.config.seed)
        else:
            self._name = design.name
        self.design: Design = design
        self.strategy = self.config.strategy or StrategyParams()
        self.pad: np.ndarray | None = None
        self.legal_widths: np.ndarray | None = None
        self.padding_rounds = 0
        self.route_report: RouteReport | None = None
        self.hpwl_tracker: IncrementalHpwl | None = None
        self.version = -1
        self.history: list = []
        self.closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self.route_report is not None

    def close(self) -> None:
        """Release the retained state (the session becomes unusable)."""
        self.closed = True
        self.route_report = None
        self.hpwl_tracker = None

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("session is closed")

    def _cache_key(self) -> str:
        return stable_hash(
            {
                "eco_start": self._name,
                "config": self.config.to_dict(),
            }
        )

    def start(self) -> EcoResult:
        """Run (or restore) the converged baseline; version becomes 0."""
        self._check_open()
        if self.started:
            raise RuntimeError("session already started")
        start = time.perf_counter()
        seconds: dict = {}
        with obs.span("eco/start", design=self._name) as span:
            restored = self._restore_start() if self._from_name else False
            if not restored:
                t0 = time.perf_counter()
                flow = PufferPlacer(
                    self.design,
                    strategy=self.config.strategy,
                    placement=self.config.placement,
                )
                result = flow.run()
                seconds["place"] = time.perf_counter() - t0
                self.pad = result.padding
                self.legal_widths = result.legal_widths
                self.padding_rounds = result.padding_rounds
                if self.cache is not None and self._from_name:
                    self.cache.put(
                        self._cache_key(),
                        {
                            "x": self.design.x.copy(),
                            "y": self.design.y.copy(),
                            "pad": self.pad.copy(),
                            "legal_widths": np.asarray(self.legal_widths).copy(),
                            "padding_rounds": self.padding_rounds,
                        },
                    )
            t0 = time.perf_counter()
            self.route_report = GlobalRouter(
                self.design, self.config.router, keep_state=True
            ).run()
            seconds["route"] = time.perf_counter() - t0
            self.hpwl_tracker = IncrementalHpwl(self.design)
            self.version = 0
            span.set(restored=restored, hpwl=self.design.hpwl())
        result = self._result(
            kind="start", delta=None, dirty=None, fallbacks=[], seconds=seconds,
            start=start, verify_report=None,
        )
        self.history.append(result)
        return result

    def _restore_start(self) -> bool:
        """Warm the session from a cached cold start, if present."""
        if self.cache is None:
            return False
        cached = self.cache.get(self._cache_key())
        if cached is MISSING:
            return False
        self.design.x[:] = cached["x"]
        self.design.y[:] = cached["y"]
        self.pad = np.asarray(cached["pad"]).copy()
        self.legal_widths = np.asarray(cached["legal_widths"]).copy()
        self.padding_rounds = int(cached["padding_rounds"])
        return True

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------

    def apply(self, delta, verify: str = "off") -> EcoResult:
        """Apply one typed delta; returns the step's :class:`EcoResult`.

        Args:
            delta: a :mod:`repro.eco.deltas` instance or its wire dict.
            verify: invariant-checker level run on the updated state
                (``"off"``, ``"cheap"``, or ``"full"``).
        """
        self._check_open()
        if not self.started:
            raise RuntimeError("session not started; call start() first")
        if isinstance(delta, dict):
            from .deltas import delta_from_dict

            delta = delta_from_dict(delta)
        start = time.perf_counter()
        seconds: dict = {}
        with obs.span("eco/apply", kind=delta.KIND, version=self.version + 1) as span:
            dirty, fallbacks = self._dispatch(delta, seconds)
            obs.counter("eco/deltas").inc()
            if dirty is not None:
                span.set(
                    dirty_cells=len(dirty.cells),
                    dirty_nets=len(dirty.nets),
                    fraction=dirty.fraction,
                )
            verify_report = None
            if verify != "off":
                t0 = time.perf_counter()
                verify_report = run_checkers(self._verify_context(), level=verify)
                seconds["verify"] = time.perf_counter() - t0
                span.set(verify_errors=len(verify_report.errors))
        self.version += 1
        result = self._result(
            kind=delta.KIND,
            delta=delta.to_dict(),
            dirty=dirty,
            fallbacks=fallbacks,
            seconds=seconds,
            start=start,
            verify_report=verify_report,
        )
        self.history.append(result)
        return result

    def _dispatch(self, delta, seconds) -> tuple:
        if isinstance(delta, ResizeCell):
            return self._apply_resize(delta, seconds)
        if isinstance(delta, MoveMacro):
            return self._apply_move_macro(delta, seconds)
        if isinstance(delta, AddCell):
            return self._apply_add_cell(delta, seconds)
        if isinstance(delta, RemoveCell):
            return self._apply_remove_cell(delta, seconds)
        if isinstance(delta, ChangeStrategy):
            return self._apply_change_strategy(delta, seconds)
        raise TypeError(f"unsupported delta type {type(delta).__name__}")

    # -- geometric edits ------------------------------------------------

    def _cell_rect(self, cell: int) -> tuple:
        d = self.design
        return (
            float(d.x[cell]),
            float(d.y[cell]),
            float(d.x[cell] + d.w[cell]),
            float(d.y[cell] + d.h[cell]),
        )

    def _apply_resize(self, delta: ResizeCell, seconds) -> tuple:
        d = self.design
        cell = int(delta.cell)
        if not (0 <= cell < d.num_cells):
            raise ValueError(f"cell index {cell} out of range")
        if not (d.movable[cell] and not d.is_macro[cell]):
            raise ValueError(f"cell {cell} is not a movable standard cell")
        if delta.width <= 0:
            raise ValueError("width must be positive")
        old = self._cell_rect(cell)
        d.w[cell] = float(delta.width)
        if delta.height is not None:
            d.h[cell] = float(delta.height)
        new = self._cell_rect(cell)
        return self._local_repair([cell], [old, new], seconds)

    def _apply_move_macro(self, delta: MoveMacro, seconds) -> tuple:
        d = self.design
        macro = int(delta.macro)
        if not (0 <= macro < d.num_cells):
            raise ValueError(f"macro index {macro} out of range")
        if not (d.is_macro[macro] or not d.movable[macro]):
            raise ValueError(f"cell {macro} is not a macro or fixed cell")
        old = self._cell_rect(macro)
        d.x[macro] = float(delta.x)
        d.y[macro] = float(delta.y)
        new = self._cell_rect(macro)
        return self._local_repair([macro], [old, new], seconds)

    def _apply_add_cell(self, delta: AddCell, seconds) -> tuple:
        new_design, cell = netlist_add_cell(
            self.design,
            delta.name,
            delta.width,
            delta.height,
            x=delta.x,
            y=delta.y,
            nets=list(delta.nets),
        )
        self._swap_design(new_design, pad=np.append(self.pad, 0.0))
        return self._local_repair([cell], [self._cell_rect(cell)], seconds)

    def _apply_remove_cell(self, delta: RemoveCell, seconds) -> tuple:
        cell = int(delta.cell)
        old = self._cell_rect(cell)
        orphan_nets = nets_of_cells(self.design, [cell])
        new_design = netlist_remove_cell(self.design, cell)
        self._swap_design(new_design, pad=np.delete(self.pad, cell))
        # Nothing to legalize (a removal cannot create overlap); the
        # orphaned nets still need their RSMTs rebuilt.
        return self._local_repair([], [old], seconds, extra_nets=orphan_nets)

    def _swap_design(self, new_design: Design, pad: np.ndarray) -> None:
        """Install a rebuilt design (topology edit) and remap state."""
        self.design = new_design
        self.pad = pad
        self.hpwl_tracker = None  # rebuilt after the repair

    def _local_repair(self, seed_cells, boxes, seconds, extra_nets=None) -> tuple:
        """Dirty-region legalization + windowed reroute (the fast path)."""
        d = self.design
        state = self.route_report.state
        dirty = compute_dirty(
            d,
            state.grid,
            seed_cells,
            boxes,
            margin_sites=self.eco.legal_margin_sites,
            margin_rows=self.eco.legal_margin_rows,
            route_margin_gcells=self.eco.route_margin_gcells,
            extra_nets=extra_nets,
        )
        if dirty.fraction > self.eco.full_place_threshold:
            fallbacks = self._warm_replace(seconds)
            return dirty, ["place", *fallbacks]

        fallbacks = []
        self.legal_widths = padded_widths(
            d, self.pad, theta=self.strategy.theta,
            area_cap=self.strategy.legal_area_cap,
        )
        t0 = time.perf_counter()
        if len(dirty.cells):
            try:
                legalize_region(
                    d,
                    dirty.cells,
                    widths=self.legal_widths,
                    max_row_search=self.eco.max_row_search,
                )
            except RuntimeError:
                # The edit does not fit locally — full legalization.
                fallbacks.append("legalize")
                legalize_abacus(d, widths=self.legal_widths)
        seconds["legalize"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        self.route_report = reroute_nets(
            state,
            d,
            dirty.nets,
            window=dirty.window,
            rounds=self.eco.reroute_rounds,
            max_reroute=self.eco.max_reroute,
        )
        seconds["route"] = time.perf_counter() - t0
        self._refresh_tracker(dirty)
        return dirty, fallbacks

    def _refresh_tracker(self, dirty: DirtySet | None) -> None:
        if self.hpwl_tracker is None or self.hpwl_tracker.design is not self.design:
            self.hpwl_tracker = IncrementalHpwl(self.design)
        elif dirty is not None and len(dirty.cells):
            d = self.design
            self.hpwl_tracker.commit(
                {int(c): (float(d.x[c]), float(d.y[c])) for c in dirty.cells}
            )

    # -- strategy edits -------------------------------------------------

    def _apply_change_strategy(self, delta: ChangeStrategy, seconds) -> tuple:
        names = {f.name for f in fields(StrategyParams)}
        if delta.param not in names:
            raise ValueError(
                f"unknown strategy parameter {delta.param!r}; "
                f"expected one of {sorted(names)}"
            )
        current = getattr(self.strategy, delta.param)
        value = type(current)(delta.value) if not isinstance(current, str) else str(delta.value)
        self.strategy = self.strategy.replaced(**{delta.param: value})
        fallbacks = self._warm_replace(seconds)
        return None, ["place", *fallbacks]

    def _warm_replace(self, seconds) -> list:
        """Warm-started global re-place with recycled padding (Eq. 15),
        then full legalization and routing."""
        d = self.design
        with obs.span("eco/warm_replace") as span:
            t0 = time.perf_counter()
            optimizer = RoutabilityOptimizer(
                d,
                self.strategy,
                initial_padding=self.pad,
                initial_round=self.padding_rounds,
            )
            params = replace(
                self.config.placement,
                max_iters=self.eco.warm_gp_iters,
                min_iters=min(self.config.placement.min_iters, self.eco.warm_gp_iters),
            )
            placer = GlobalPlacer(d, params, hooks=[optimizer], seed_positions=False)
            placer.set_density_sizes(*optimizer.padding.padded_sizes())
            gp = placer.run()
            self.pad = optimizer.padding.pad.copy()
            self.padding_rounds += optimizer.calls
            seconds["place"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            self.legal_widths = padded_widths(
                d, self.pad, theta=self.strategy.theta,
                area_cap=self.strategy.legal_area_cap,
            )
            legalize_abacus(d, widths=self.legal_widths)
            seconds["legalize"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            self.route_report = GlobalRouter(
                d, self.config.router, keep_state=True
            ).run()
            seconds["route"] = time.perf_counter() - t0
            self.hpwl_tracker = IncrementalHpwl(d)
            span.set(iterations=gp.iterations, hpwl=d.hpwl())
        return []

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _verify_context(self) -> VerifyContext:
        report = self.route_report
        return VerifyContext(
            design=self.design,
            pad=self.pad,
            padded_widths=self.legal_widths,
            area_cap=self.strategy.legal_area_cap,
            grid=None if report is None else report.grid,
            demand=None if report is None else report.demand,
            route_report=report,
        )

    def verify(self, level: str = "full"):
        """Run the invariant checkers on the current session state."""
        self._check_open()
        return run_checkers(self._verify_context(), level=level)

    def _result(
        self, kind, delta, dirty, fallbacks, seconds, start, verify_report
    ) -> EcoResult:
        report = self.route_report
        seconds = dict(seconds)
        seconds["total"] = time.perf_counter() - start
        return EcoResult(
            version=self.version,
            kind=kind,
            delta=delta,
            hpwl=float(self.design.hpwl()),
            hof=float(report.hof),
            vof=float(report.vof),
            wirelength=float(report.wirelength),
            dirty_cells=0 if dirty is None else len(dirty.cells),
            dirty_nets=0 if dirty is None else len(dirty.nets),
            full_fallbacks=list(fallbacks),
            seconds=seconds,
            verify_ok=None if verify_report is None else bool(verify_report.ok),
            verify_errors=0 if verify_report is None else len(verify_report.errors),
            verify_warnings=0 if verify_report is None else len(verify_report.warnings),
        )

    def to_summary(self) -> dict:
        """JSON-safe session snapshot (the sessions-API wire shape)."""
        return {
            "design": self._name,
            "version": int(self.version),
            "started": self.started,
            "closed": self.closed,
            "deltas_applied": max(self.version, 0),
            "hpwl": float(self.design.hpwl()) if self.started else None,
            "config": self.config.to_dict(),
            "eco": self.eco.to_dict(),
        }
