"""Cross-backend differential harness.

The vectorized kernels of :mod:`repro.kernels` are only trustworthy
while they stay equivalent to the reference loops *as both evolve*; the
golden unit tests pin the kernels in isolation, and this harness pins
the composed system: the same randomized designs run through every
map-building stage, through the evaluation router, and through the full
placer → legalizer flow under each backend, and the outputs are diffed
within stated tolerances.

Two tolerance regimes apply, deliberately:

* **single-shot stages** (demand, RUDY, density maps) are one kernel
  evaluation deep — the backends must agree to ``1e-9`` relative.
* **iterative stages** (routing rounds, the full flow) amplify
  ulp-level differences through feedback (cost-tie breaks, hundreds of
  Nesterov iterations), so they are compared on *metrics* with loose,
  explicitly stated tolerances, and each backend's end result must
  independently pass the invariant checkers.

:func:`run_differential` returns a :class:`DiffReport` whose
``to_dict()`` is the machine-readable artifact the CI ``verify`` job
uploads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from .. import kernels, obs
from ..benchgen import make_design
from ..placer import PlacementParams
from ..router import GlobalRouter, RouterParams
from .checkers import VerifyContext, run_checkers

#: The two backends every case runs under, golden one first.
BACKENDS = ("reference", "vectorized")

#: Map-stage agreement (single kernel evaluation, no feedback).
MAP_RTOL = 1e-9
MAP_ATOL = 1e-9

#: Metric-stage agreement (iterative, feedback-amplified stages).
HPWL_RTOL = 0.05
OVERFLOW_ATOL = 1.0  # percentage points of HOF/VOF
WIRELENGTH_RTOL = 0.05


@dataclass
class DiffCase:
    """One compared quantity.

    Attributes:
        name: stage/quantity, e.g. ``"maps/demand_h"`` or ``"flow/hpwl"``.
        measured: the observed discrepancy (max abs error for maps,
            relative or absolute difference for metrics).
        tolerance: the stated bound ``measured`` must stay under.
        ok: whether the case passed.
        detail: free-form context (per-backend values, shapes).
    """

    name: str
    measured: float
    tolerance: float
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "measured": self.measured,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass
class DiffReport:
    """Machine-readable outcome of a differential run."""

    design: str
    scale: float
    seed: int
    quick: bool
    backends: tuple = BACKENDS
    cases: list = field(default_factory=list)
    #: backend name -> ``VerifyReport.to_dict()`` of its end-to-end run.
    invariants: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """All cases within tolerance and all invariant runs clean."""
        return all(c.ok for c in self.cases) and all(
            r["num_errors"] == 0 for r in self.invariants.values()
        )

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "scale": self.scale,
            "seed": self.seed,
            "quick": self.quick,
            "backends": list(self.backends),
            "ok": self.ok,
            "cases": [c.to_dict() for c in self.cases],
            "invariants": self.invariants,
        }

    def to_json(self, path: str) -> None:
        """Write the report as JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)

    def summary(self) -> str:
        failed = [c for c in self.cases if not c.ok]
        status = "OK" if self.ok else f"FAIL ({len(failed)} cases)"
        lines = [
            f"differential {self.design} scale={self.scale} seed={self.seed}: {status}"
        ]
        for c in self.cases:
            mark = "ok " if c.ok else "FAIL"
            lines.append(
                f"  {mark} {c.name:<24} err {c.measured:.3e} tol {c.tolerance:.3e}"
            )
        for backend, inv in sorted(self.invariants.items()):
            lines.append(
                f"  invariants[{backend}]: {inv['num_errors']} errors, "
                f"{inv['num_warnings']} warnings over {len(inv['checkers_run'])} checkers"
            )
        return "\n".join(lines)


def _both(fn):
    """Evaluate ``fn()`` under each backend: ``(reference, vectorized)``."""
    with kernels.using(BACKENDS[0]):
        ref = fn()
    with kernels.using(BACKENDS[1]):
        vec = fn()
    return ref, vec


def _map_case(name: str, ref: np.ndarray, vec: np.ndarray) -> DiffCase:
    ref = np.asarray(ref, dtype=np.float64)
    vec = np.asarray(vec, dtype=np.float64)
    if ref.shape != vec.shape:
        return DiffCase(
            name=name,
            measured=float("inf"),
            tolerance=MAP_ATOL,
            ok=False,
            detail=f"shape mismatch {ref.shape} vs {vec.shape}",
        )
    err = float(np.abs(ref - vec).max()) if ref.size else 0.0
    bound = MAP_ATOL + MAP_RTOL * float(np.abs(ref).max() if ref.size else 0.0)
    return DiffCase(name=name, measured=err, tolerance=bound, ok=err <= bound)


def _metric_case(name: str, a: float, b: float, *, rtol=0.0, atol=0.0) -> DiffCase:
    err = abs(a - b)
    bound = atol + rtol * max(abs(a), abs(b))
    return DiffCase(
        name=name,
        measured=float(err),
        tolerance=float(bound),
        ok=err <= bound,
        detail=f"{BACKENDS[0]}={a:.6g} {BACKENDS[1]}={b:.6g}",
    )


def diff_maps(design) -> list:
    """Single-shot map stages: congestion demand, RUDY, density."""
    from ..core.demand import accumulate_demand, build_topologies
    from ..core.rudy import rudy_maps
    from ..placer.density import ElectrostaticDensity
    from ..router.grid import build_grid

    cases = []
    grid = build_grid(design)
    topologies = build_topologies(design, grid)
    ref, vec = _both(lambda: accumulate_demand(design, grid, topologies))
    cases.append(_map_case("maps/demand_h", ref.dmd_h, vec.dmd_h))
    cases.append(_map_case("maps/demand_v", ref.dmd_v, vec.dmd_v))

    ref, vec = _both(lambda: rudy_maps(design)[:2])
    cases.append(_map_case("maps/rudy_h", ref[0], vec[0]))
    cases.append(_map_case("maps/rudy_v", ref[1], vec[1]))

    def density():
        system = ElectrostaticDensity(design, PlacementParams())
        return system.movable_density(design.x, design.y)

    ref, vec = _both(density)
    cases.append(_map_case("maps/density", ref, vec))
    return cases


def diff_route(design, router: RouterParams | None = None) -> list:
    """Route the same placement under each backend, diff the report.

    Maze cost ties may break to different equal-cost paths, and the
    committed demand feeds back into later costs, so the comparison is
    on report metrics with loose tolerances.
    """
    ref, vec = _both(lambda: GlobalRouter(design, router).run())
    return [
        _metric_case("route/hof", ref.hof, vec.hof, atol=OVERFLOW_ATOL),
        _metric_case("route/vof", ref.vof, vec.vof, atol=OVERFLOW_ATOL),
        _metric_case(
            "route/wirelength", ref.wirelength, vec.wirelength, rtol=WIRELENGTH_RTOL
        ),
    ]


def diff_flow(
    name: str,
    scale: float,
    seed: int,
    placement: PlacementParams | None = None,
    level: str = "full",
):
    """Run placer → legalizer end-to-end under each backend.

    Each backend places a freshly generated (identical) copy of the
    design; the HPWLs are diffed and each result independently runs the
    invariant checkers.

    Returns:
        ``(cases, invariants, results)`` where ``invariants`` maps
        backend name to the ``VerifyReport`` of its run.
    """
    from .. import api

    results = {}
    invariants = {}
    for backend in BACKENDS:
        with kernels.using(backend):
            result = api.run(
                name,
                flow="puffer",
                config=api.RunConfig(scale=scale, seed=seed, placement=placement or PlacementParams()),
            )
        ctx = VerifyContext(
            design=result.design,
            pad=getattr(result.flow_result, "padding", None),
            padded_widths=getattr(result.flow_result, "legal_widths", None),
        )
        invariants[backend] = run_checkers(ctx, level=level)
        results[backend] = result
    cases = [
        _metric_case(
            "flow/hpwl",
            results[BACKENDS[0]].hpwl,
            results[BACKENDS[1]].hpwl,
            rtol=HPWL_RTOL,
        )
    ]
    return cases, invariants, results


def run_differential(
    design: str = "OR1200",
    scale: float = 0.004,
    seed: int = 0,
    quick: bool = False,
    placement: PlacementParams | None = None,
    router: RouterParams | None = None,
) -> DiffReport:
    """The full differential sweep on one generated Table-I design.

    Args:
        design: suite benchmark name.
        scale: generation scale (``quick`` shrinks it).
        seed: generation seed offset.
        quick: CI smoke mode — smaller design, fewer placer iterations.
        placement: placement parameters for the end-to-end stage.
        router: router parameters for the routing stage.

    Returns:
        A :class:`DiffReport` (see :meth:`DiffReport.to_dict` for the
        machine-readable form).
    """
    if quick:
        scale = min(scale, 0.002)
        placement = placement or PlacementParams(max_iters=300)
    with obs.span("verify/differential", design=design, scale=scale, quick=quick):
        report = DiffReport(design=design, scale=scale, seed=seed, quick=quick)

        placed = make_design(design, scale, seed=seed)
        flow_cases, invariants, results = diff_flow(
            design, scale, seed, placement=placement
        )

        # Map stages diff on the legalized placement of the golden run
        # (any fixed placement would do; a legal one exercises the
        # boundary-clamp paths).
        golden = results[BACKENDS[0]].design
        placed.x[:], placed.y[:] = golden.x, golden.y
        report.cases.extend(diff_maps(placed))
        report.cases.extend(diff_route(placed, router))
        report.cases.extend(flow_cases)
        report.invariants = {
            backend: rep.to_dict() for backend, rep in invariants.items()
        }
        obs.counter("verify/differential_cases").inc(len(report.cases))
        if not report.ok:
            obs.counter("verify/differential_failures").inc(
                sum(not c.ok for c in report.cases)
            )
    return report
