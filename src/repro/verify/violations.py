"""Structured verification findings.

Checkers never raise on a bad placement — they *describe* it.  Every
finding is a :class:`Violation` carrying the checker that produced it, a
severity, the affected cell/net ids, and the measured-vs-allowed
quantities, so reports can be rendered for humans, serialized for CI,
or counted by the observability layer without re-parsing messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Recognized severities, most severe first.  ``error`` marks a broken
#: invariant (the result must not be trusted); ``warning`` marks a
#: suspicious but usable condition.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Violation:
    """One broken (or suspicious) invariant.

    Attributes:
        checker: name of the checker that found it (e.g.
            ``"placement/overlap"``).
        severity: one of :data:`SEVERITIES`.
        message: human-readable description.
        cells: affected cell ids (possibly truncated; see ``message``).
        nets: affected net ids.
        measured: the offending measured quantity, when scalar.
        allowed: the bound the measurement violated, when scalar.
    """

    checker: str
    severity: str
    message: str
    cells: tuple = ()
    nets: tuple = ()
    measured: float | None = None
    allowed: float | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        record = {
            "checker": self.checker,
            "severity": self.severity,
            "message": self.message,
        }
        if self.cells:
            record["cells"] = [int(c) for c in self.cells]
        if self.nets:
            record["nets"] = [int(n) for n in self.nets]
        if self.measured is not None:
            record["measured"] = float(self.measured)
        if self.allowed is not None:
            record["allowed"] = float(self.allowed)
        return record

    def __str__(self) -> str:
        return f"[{self.severity}] {self.checker}: {self.message}"


@dataclass
class VerifyReport:
    """Outcome of a checker run: all findings plus what actually ran.

    ``checkers_run`` matters as much as ``violations`` — a report with
    zero findings from zero checkers proves nothing, and CI consumers
    should assert on both.
    """

    violations: list = field(default_factory=list)
    checkers_run: list = field(default_factory=list)

    @property
    def errors(self) -> list:
        """Error-severity violations."""
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list:
        """Warning-severity violations."""
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def ok(self) -> bool:
        """``True`` when no error-severity violation was found."""
        return not self.errors

    def counts(self) -> dict:
        """Violation count per checker (only checkers with findings)."""
        out: dict = {}
        for v in self.violations:
            out[v.checker] = out.get(v.checker, 0) + 1
        return out

    def merge(self, other: "VerifyReport") -> "VerifyReport":
        """Fold ``other`` into this report (returns ``self``)."""
        self.violations.extend(other.violations)
        self.checkers_run.extend(
            name for name in other.checkers_run if name not in self.checkers_run
        )
        return self

    def to_dict(self) -> dict:
        """JSON-ready representation (machine-readable CI output)."""
        return {
            "ok": self.ok,
            "checkers_run": list(self.checkers_run),
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "violations": [v.to_dict() for v in self.violations],
        }

    def __str__(self) -> str:
        lines = [
            f"verify: {len(self.checkers_run)} checkers, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        ]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


class VerificationError(RuntimeError):
    """A verified run produced error-severity violations.

    Raised by consumers that must fail loudly (the suite runner, the
    CLI) rather than hand silently-illegal numbers downstream.

    Attributes:
        report: the offending :class:`VerifyReport` (or ``None`` when
            the caller aggregated violations another way).
        rows: optional partial results the caller computed before
            failing, so a loud failure does not discard finished work.
    """

    def __init__(self, message: str, report=None, rows=None) -> None:
        super().__init__(message)
        self.report = report
        self.rows = rows
