"""Placement / padding / netlist / routing invariant checkers.

Each checker is a pure function ``checker(ctx) -> list[Violation]`` over
a :class:`VerifyContext`; it inspects one invariant family and reports
structured findings instead of raising.  :func:`run_checkers` drives a
level of the registry (``"cheap"`` or ``"full"``), wraps every checker
in a ``verify/<name>`` observability span, and bumps the
``verify/violations`` counter, so a traced run records exactly which
invariants were checked and what they found.

Checkers that need inputs the context does not carry (padding arrays,
a route report) skip silently — a skipped checker does not appear in
``VerifyReport.checkers_run``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..legalizer.padding import DEFAULT_AREA_CAP
from ..netlist.design import Design
from .violations import VerifyReport, Violation

#: Verification levels, in increasing coverage order.
LEVELS = ("off", "cheap", "full")

#: Cap on per-checker reported ids so a catastrophically broken
#: placement cannot produce a gigabyte of violations.
MAX_REPORTED = 50


@dataclass
class VerifyContext:
    """Everything the checkers may inspect.

    Only ``design`` is required; the optional fields unlock the padding
    and routing checkers.

    Attributes:
        design: the (placed) design under test.
        tolerance: geometric slack in database units.
        pad: per-cell *continuous* padding (pre-discretization).
        padded_widths: per-cell legalization footprint widths
            (``design.w`` + discrete padding).
        area_cap: padded-area budget as a fraction of movable area.
        grid: routing grid of the evaluation router.
        demand: per-direction demand maps on ``grid``.
        route_report: the router's :class:`~repro.router.RouteReport`.
        slot_grid: the :class:`repro.slots.SlotGrid` of a fixed-slot
            run (unlocks the slot-assignment checker).
        slot_assignment: per-cell slot ids (``-1`` = not slotted).
    """

    design: Design
    tolerance: float = 1e-6
    pad: np.ndarray | None = None
    padded_widths: np.ndarray | None = None
    area_cap: float = DEFAULT_AREA_CAP
    grid: object | None = None
    demand: object | None = None
    route_report: object | None = None
    slot_grid: object | None = None
    slot_assignment: np.ndarray | None = None


def _std_bounds(design: Design):
    """Movable standard cells and their bounding boxes."""
    idx = np.flatnonzero(design.movable & ~design.is_macro)
    xlo = design.x[idx] - design.w[idx] / 2
    ylo = design.y[idx] - design.h[idx] / 2
    xhi = design.x[idx] + design.w[idx] / 2
    yhi = design.y[idx] + design.h[idx] / 2
    return idx, xlo, ylo, xhi, yhi


def _ids(cells) -> tuple:
    return tuple(int(c) for c in cells[:MAX_REPORTED])


def check_die_containment(ctx: VerifyContext) -> list:
    """Every movable standard cell lies fully inside the die."""
    design, die, tol = ctx.design, ctx.design.die, ctx.tolerance
    idx, xlo, ylo, xhi, yhi = _std_bounds(design)
    if len(idx) == 0:
        return []
    outside = (
        (xlo < die.xlo - tol)
        | (ylo < die.ylo - tol)
        | (xhi > die.xhi + tol)
        | (yhi > die.yhi + tol)
    )
    if not outside.any():
        return []
    bad = idx[outside]
    spill = np.maximum.reduce(
        [
            die.xlo - xlo[outside],
            die.ylo - ylo[outside],
            xhi[outside] - die.xhi,
            yhi[outside] - die.yhi,
        ]
    )
    return [
        Violation(
            checker="placement/containment",
            severity="error",
            message=f"{len(bad)} cells extend outside the die",
            cells=_ids(bad),
            measured=float(spill.max()),
            allowed=tol,
        )
    ]


def check_row_alignment(ctx: VerifyContext) -> list:
    """Movable standard cells sit exactly on a row boundary."""
    design, tol = ctx.design, ctx.tolerance
    idx, _xlo, ylo, _xhi, _yhi = _std_bounds(design)
    if len(idx) == 0:
        return []
    offset = (ylo - design.die.ylo) / design.technology.row_height
    err = np.abs(offset - np.round(offset))
    bad = err > tol
    if not bad.any():
        return []
    return [
        Violation(
            checker="placement/row_alignment",
            severity="error",
            message=f"{int(bad.sum())} cells not row-aligned",
            cells=_ids(idx[bad]),
            measured=float(err.max()),
            allowed=tol,
        )
    ]


def check_site_alignment(ctx: VerifyContext) -> list:
    """Movable standard-cell left edges fall on the site grid."""
    design, tol = ctx.design, ctx.tolerance
    idx, xlo, _ylo, _xhi, _yhi = _std_bounds(design)
    if len(idx) == 0:
        return []
    offset = (xlo - design.die.xlo) / design.technology.site_width
    err = np.abs(offset - np.round(offset))
    bad = err > tol
    if not bad.any():
        return []
    return [
        Violation(
            checker="placement/site_alignment",
            severity="error",
            message=f"{int(bad.sum())} cells not site-aligned",
            cells=_ids(idx[bad]),
            measured=float(err.max()),
            allowed=tol,
        )
    ]


def check_overlaps(ctx: VerifyContext) -> list:
    """No movable cell overlaps any other cell (movable or fixed).

    Pairs of *fixed* objects are exempt: generated designs legitimately
    place fixed power-grid cells over macro outlines, and no placement
    decision can change fixed-on-fixed geometry anyway.

    A plane sweep over x with an active interval set: near-linear on
    legal placements, worst-case quadratic only when the placement is
    badly broken (in which case reporting caps at :data:`MAX_REPORTED`
    pairs anyway).
    """
    design, tol = ctx.design, ctx.tolerance
    n = design.num_cells
    if n < 2:
        return []
    xlo = design.x - design.w / 2
    ylo = design.y - design.h / 2
    xhi = design.x + design.w / 2
    yhi = design.y + design.h / 2
    movable = design.movable
    order = np.argsort(xlo, kind="stable")
    active: list = []
    pairs: list = []
    for i in order:
        i = int(i)
        active = [j for j in active if xhi[j] > xlo[i] + tol]
        for j in active:
            if not (movable[i] or movable[j]):
                continue
            if ylo[i] < yhi[j] - tol and ylo[j] < yhi[i] - tol:
                pairs.append((j, i))
                if len(pairs) >= MAX_REPORTED:
                    break
        if len(pairs) >= MAX_REPORTED:
            break
        active.append(i)
    if not pairs:
        return []
    worst = 0.0
    for a, b in pairs:
        ox = min(xhi[a], xhi[b]) - max(xlo[a], xlo[b])
        oy = min(yhi[a], yhi[b]) - max(ylo[a], ylo[b])
        worst = max(worst, min(ox, oy))
    suffix = " (truncated)" if len(pairs) >= MAX_REPORTED else ""
    return [
        Violation(
            checker="placement/overlap",
            severity="error",
            message=f"{len(pairs)} overlapping cell pairs{suffix}",
            cells=_ids(sorted({c for pair in pairs for c in pair})),
            measured=float(worst),
            allowed=tol,
        )
    ]


def check_padding(ctx: VerifyContext) -> list:
    """Discrete padding accounting (paper Eq. 17 and the 5 % budget).

    Requires ``ctx.padded_widths``; checks that every movable standard
    cell's extra footprint is a non-negative whole-site multiple, that
    the total padded area respects ``area_cap * movable_area``, that
    zero continuous padding got zero discrete padding (when ``ctx.pad``
    is available), and that fixed cells / macros are unpadded.
    """
    if ctx.padded_widths is None:
        return []
    design, tol = ctx.design, ctx.tolerance
    widths = np.asarray(ctx.padded_widths, dtype=np.float64)
    site = design.technology.site_width
    movable = design.movable & ~design.is_macro
    extra = widths - design.w
    out: list = []

    bad = movable & (extra < -tol)
    if bad.any():
        out.append(
            Violation(
                checker="padding/accounting",
                severity="error",
                message=f"{int(bad.sum())} cells with footprint below native width",
                cells=_ids(np.flatnonzero(bad)),
                measured=float(extra[bad].min()),
                allowed=0.0,
            )
        )

    sites = extra[movable] / site
    off_grid = np.abs(sites - np.round(sites)) > tol
    if off_grid.any():
        out.append(
            Violation(
                checker="padding/accounting",
                severity="error",
                message=f"{int(off_grid.sum())} cells with non-whole-site padding",
                cells=_ids(np.flatnonzero(movable)[off_grid]),
                measured=float(np.abs(sites - np.round(sites)).max()),
                allowed=tol,
            )
        )

    padded_area = float((np.maximum(extra[movable], 0.0) * design.h[movable]).sum())
    budget = ctx.area_cap * design.movable_area
    if padded_area > budget * (1.0 + 1e-9) + tol:
        out.append(
            Violation(
                checker="padding/accounting",
                severity="error",
                message="total padded area exceeds the area budget",
                measured=padded_area,
                allowed=budget,
            )
        )

    if ctx.pad is not None:
        pad = np.asarray(ctx.pad, dtype=np.float64)
        ghost = movable & (pad <= 0.0) & (extra > tol)
        if ghost.any():
            out.append(
                Violation(
                    checker="padding/accounting",
                    severity="error",
                    message=f"{int(ghost.sum())} unpadded cells received discrete padding",
                    cells=_ids(np.flatnonzero(ghost)),
                    measured=float(extra[ghost].max()),
                    allowed=0.0,
                )
            )

    frozen = ~movable
    if frozen.any() and np.abs(extra[frozen]).max() > tol:
        bad = frozen & (np.abs(extra) > tol)
        out.append(
            Violation(
                checker="padding/accounting",
                severity="error",
                message=f"{int(bad.sum())} fixed cells / macros were padded",
                cells=_ids(np.flatnonzero(bad)),
                measured=float(np.abs(extra[frozen]).max()),
                allowed=0.0,
            )
        )
    return out


def check_netlist(ctx: VerifyContext) -> list:
    """Netlist integrity: pin offsets, CSR structure, net degrees."""
    design, tol = ctx.design, ctx.tolerance
    out: list = []
    p = design.num_pins
    if p:
        if (
            design.pin_cell.min() < 0
            or design.pin_cell.max() >= design.num_cells
            or design.pin_net.min() < 0
            or design.pin_net.max() >= design.num_nets
        ):
            out.append(
                Violation(
                    checker="netlist/integrity",
                    severity="error",
                    message="dangling pin references (cell or net id out of range)",
                )
            )
            return out  # everything below indexes through these arrays

        inside = (
            np.abs(design.pin_dx) <= design.w[design.pin_cell] / 2 + tol
        ) & (np.abs(design.pin_dy) <= design.h[design.pin_cell] / 2 + tol)
        if not inside.all():
            bad_cells = np.unique(design.pin_cell[~inside])
            out.append(
                Violation(
                    checker="netlist/integrity",
                    severity="error",
                    message=f"{int((~inside).sum())} pin offsets outside the cell outline",
                    cells=_ids(bad_cells),
                )
            )

        counts = np.bincount(design.net_pins, minlength=p)
        if len(design.net_pins) != p or (counts != 1).any():
            out.append(
                Violation(
                    checker="netlist/integrity",
                    severity="error",
                    message="net CSR does not cover every pin exactly once",
                )
            )
        else:
            # pin_net must agree with the CSR grouping.
            owner = np.empty(p, dtype=np.int64)
            for net in range(design.num_nets):
                owner[design.pins_of_net(net)] = net
            mismatched = owner != design.pin_net
            if mismatched.any():
                out.append(
                    Violation(
                        checker="netlist/integrity",
                        severity="error",
                        message=f"{int(mismatched.sum())} pins whose pin_net "
                        "disagrees with the net CSR",
                        nets=_ids(np.unique(design.pin_net[mismatched])),
                    )
                )

    degrees = design.net_degrees()
    thin = degrees < 2
    if thin.any():
        out.append(
            Violation(
                checker="netlist/integrity",
                severity="warning",
                message=f"{int(thin.sum())} nets with fewer than two pins",
                nets=_ids(np.flatnonzero(thin)),
                measured=float(degrees.min()) if len(degrees) else 0.0,
                allowed=2.0,
            )
        )
    return out


def check_routing(ctx: VerifyContext) -> list:
    """Routing accounting: demand non-negative, overflow self-consistent."""
    if ctx.grid is None or ctx.demand is None:
        return []
    grid, demand = ctx.grid, ctx.demand
    out: list = []
    for direction, dmd in (("h", demand.dmd_h), ("v", demand.dmd_v)):
        if dmd.min() < -1e-9:
            out.append(
                Violation(
                    checker="routing/accounting",
                    severity="error",
                    message=f"negative {direction}-demand in {int((dmd < -1e-9).sum())} Gcells",
                    measured=float(dmd.min()),
                    allowed=0.0,
                )
            )
    for direction, cap in (("h", grid.cap_h), ("v", grid.cap_v)):
        if cap.min() < 0.0:
            out.append(
                Violation(
                    checker="routing/accounting",
                    severity="error",
                    message=f"negative {direction}-capacity in the grid",
                    measured=float(cap.min()),
                    allowed=0.0,
                )
            )
    if ctx.route_report is not None:
        hof, vof = demand.overflow_ratio(grid)
        for name, reported, recomputed in (
            ("hof", ctx.route_report.hof, hof),
            ("vof", ctx.route_report.vof, vof),
        ):
            if abs(reported - recomputed) > 1e-6 * max(1.0, abs(recomputed)):
                out.append(
                    Violation(
                        checker="routing/accounting",
                        severity="error",
                        message=f"reported {name.upper()} disagrees with the demand maps",
                        measured=float(reported),
                        allowed=float(recomputed),
                    )
                )
    return out


def check_slot_assignment(ctx: VerifyContext) -> list:
    """Fixed-slot invariants: total, injective, fitting, in-die, in-sync.

    Requires ``ctx.slot_grid`` and ``ctx.slot_assignment``.  Every
    movable standard cell must hold exactly one slot (injectively), the
    slot must be at least as wide as the cell and lie inside the die,
    and the cell's position must be its slot's left-aligned position.
    """
    if ctx.slot_grid is None or ctx.slot_assignment is None:
        return []
    design, tol = ctx.design, ctx.tolerance
    grid = ctx.slot_grid
    assignment = np.asarray(ctx.slot_assignment)
    out: list = []
    movable = design.movable & ~design.is_macro
    cells = np.flatnonzero(movable)

    unassigned = cells[assignment[cells] < 0]
    if len(unassigned):
        out.append(
            Violation(
                checker="slots/assignment",
                severity="error",
                message=f"{len(unassigned)} movable cells without a slot",
                cells=_ids(unassigned),
            )
        )
    stray = np.flatnonzero(~movable & (assignment >= 0))
    if len(stray):
        out.append(
            Violation(
                checker="slots/assignment",
                severity="error",
                message=f"{len(stray)} fixed cells / macros hold slots",
                cells=_ids(stray),
            )
        )

    holders = cells[assignment[cells] >= 0]
    slots = assignment[holders]
    bad_ids = holders[(slots < 0) | (slots >= grid.num_slots)]
    if len(bad_ids):
        out.append(
            Violation(
                checker="slots/assignment",
                severity="error",
                message=f"{len(bad_ids)} cells reference slots outside the grid",
                cells=_ids(bad_ids),
            )
        )
        return out  # everything below indexes through the slot arrays

    if len(slots):
        counts = np.bincount(slots, minlength=grid.num_slots)
        shared = np.flatnonzero(counts > 1)
        if len(shared):
            offenders = holders[np.isin(slots, shared)]
            out.append(
                Violation(
                    checker="slots/assignment",
                    severity="error",
                    message=f"{len(shared)} slots hold more than one cell",
                    cells=_ids(offenders),
                    measured=float(counts.max()),
                    allowed=1.0,
                )
            )

        unfit = design.w[holders] > grid.w[slots] + tol
        if unfit.any():
            out.append(
                Violation(
                    checker="slots/assignment",
                    severity="error",
                    message=f"{int(unfit.sum())} cells wider than their slot",
                    cells=_ids(holders[unfit]),
                    measured=float((design.w[holders] - grid.w[slots])[unfit].max()),
                    allowed=tol,
                )
            )

        die = design.die
        s_out = (
            (grid.x[slots] < die.xlo - tol)
            | (grid.y[slots] < die.ylo - tol)
            | (grid.x[slots] + grid.w[slots] > die.xhi + tol)
            | (grid.y[slots] + grid.row_height > die.yhi + tol)
        )
        if s_out.any():
            out.append(
                Violation(
                    checker="slots/assignment",
                    severity="error",
                    message=f"{int(s_out.sum())} occupied slots extend outside the die",
                    cells=_ids(holders[s_out]),
                )
            )

        want_x = grid.x[slots] + design.w[holders] / 2
        want_y = grid.y[slots] + design.h[holders] / 2
        drift = np.maximum(
            np.abs(design.x[holders] - want_x), np.abs(design.y[holders] - want_y)
        )
        adrift = drift > tol
        if adrift.any():
            out.append(
                Violation(
                    checker="slots/assignment",
                    severity="error",
                    message=f"{int(adrift.sum())} cells not at their slot position",
                    cells=_ids(holders[adrift]),
                    measured=float(drift.max()),
                    allowed=tol,
                )
            )
    return out


#: Ordered checker registry: name -> (checker, cheapest level that runs it).
CHECKERS = {
    "placement/containment": (check_die_containment, "cheap"),
    "placement/row_alignment": (check_row_alignment, "cheap"),
    "placement/site_alignment": (check_site_alignment, "cheap"),
    "placement/overlap": (check_overlaps, "cheap"),
    "padding/accounting": (check_padding, "cheap"),
    "slots/assignment": (check_slot_assignment, "cheap"),
    "netlist/integrity": (check_netlist, "full"),
    "routing/accounting": (check_routing, "full"),
}


def checkers_for(level: str) -> list:
    """Checker names enabled at ``level`` (registry order).

    Raises:
        ValueError: for a level outside :data:`LEVELS`.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown verify level {level!r}; expected one of {LEVELS}")
    if level == "off":
        return []
    if level == "cheap":
        return [n for n, (_f, lv) in CHECKERS.items() if lv == "cheap"]
    return list(CHECKERS)


def run_checkers(
    ctx: VerifyContext, level: str = "cheap", names: list | None = None
) -> VerifyReport:
    """Run the checkers enabled at ``level`` (or exactly ``names``).

    Every checker executes under a ``verify/<name>`` span with its
    violation count attached, and each finding bumps the
    ``verify/violations`` counter, so traces carry the full audit.
    Checkers missing their inputs (no padding arrays, no route report)
    are skipped and excluded from ``checkers_run``.

    Returns:
        A :class:`VerifyReport`.
    """
    selected = names if names is not None else checkers_for(level)
    report = VerifyReport()
    counter = obs.counter("verify/violations")
    for name in selected:
        fn, _lv = CHECKERS[name]
        with obs.span(f"verify/{name}") as sp:
            found = fn(ctx)
            sp.set(violations=len(found))
        skipped = not found and _checker_skipped(name, ctx)
        if skipped:
            continue
        report.checkers_run.append(name)
        if found:
            counter.inc(len(found))
            report.violations.extend(found)
    return report


def _checker_skipped(name: str, ctx: VerifyContext) -> bool:
    """Whether ``name`` could not actually inspect anything on ``ctx``."""
    if name == "padding/accounting":
        return ctx.padded_widths is None
    if name == "routing/accounting":
        return ctx.grid is None or ctx.demand is None
    if name == "slots/assignment":
        return ctx.slot_grid is None or ctx.slot_assignment is None
    return False
