"""Correctness tooling: invariant checkers + cross-backend differential
harness.

PUFFER's quality claims rest on properties the rest of the code only
assumes: legalized placements are overlap-free, row/site-aligned, and
inside the die; discrete padding respects the area budget; netlists are
structurally sound; routing accounting is self-consistent; and the
vectorized kernels stay equivalent to the reference loops.  This package
makes every one of those properties *checkable*:

* :func:`run_checkers` drives the checker registry over a
  :class:`VerifyContext` and returns a :class:`VerifyReport` of
  structured :class:`Violation` records — no raising, no string parsing.
* :func:`run_differential` runs the same generated design through both
  kernel backends (map stages, the router, and the placer → legalizer
  flow) and diffs the outputs within stated tolerances.

Entry points: ``RunConfig(verify="cheap"|"full")`` on the
:mod:`repro.api` facade, ``--verify`` on the CLI run commands, and the
``repro verify`` subcommand for the differential harness.  Checkers run
under ``verify/*`` observability spans and bump the
``verify/violations`` counter.
"""

from .checkers import (
    CHECKERS,
    LEVELS,
    VerifyContext,
    check_die_containment,
    check_netlist,
    check_overlaps,
    check_padding,
    check_routing,
    check_row_alignment,
    check_site_alignment,
    checkers_for,
    run_checkers,
)
from .differential import (
    BACKENDS,
    DiffCase,
    DiffReport,
    diff_flow,
    diff_maps,
    diff_route,
    run_differential,
)
from .violations import (
    SEVERITIES,
    VerificationError,
    VerifyReport,
    Violation,
)

__all__ = [
    "BACKENDS",
    "CHECKERS",
    "DiffCase",
    "DiffReport",
    "LEVELS",
    "SEVERITIES",
    "VerificationError",
    "VerifyContext",
    "VerifyReport",
    "Violation",
    "check_die_containment",
    "check_netlist",
    "check_overlaps",
    "check_padding",
    "check_routing",
    "check_row_alignment",
    "check_site_alignment",
    "checkers_for",
    "diff_flow",
    "diff_maps",
    "diff_route",
    "run_checkers",
    "run_differential",
]
