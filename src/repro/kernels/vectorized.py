"""Vectorized (batched numpy) kernel implementations.

Each function is a whole-batch reformulation of the corresponding loop
in :mod:`repro.kernels.reference`:

* :func:`rect_add` — 2D difference-array: scatter the four signed
  corners of every rectangle with one ``np.add.at``, then integrate with
  two cumulative sums.  O(rects + grid) instead of O(rects x area).
* :func:`bin_overlap` — closed-form bin coverage (in bin units) plus a
  ``bincount`` per (dx, dy) bin offset accumulated into shifted views.
  Cells whose clamped bin span would alias the boundary bin (the
  reference's ``np.clip(..., dim - 1)`` re-accumulation) take a separate
  exact path so the boundary quirk is reproduced bit-for-bit in shape.
* :func:`rect_area` — per-axis coverage matrices contracted with one
  matmul: ``out = covx.T @ covy``.
* :func:`maze_search` — label-correcting wavefront: directional
  min-scans relax entire straight runs per sweep, so the sweep count is
  bounded by the number of turns on the optimal path, not its length.
"""

from __future__ import annotations

import numpy as np

from .. import obs

# ----------------------------------------------------------------------
# Weighted-rectangle accumulation (demand / RUDY rasterization)
# ----------------------------------------------------------------------


def rect_add(nx, ny, x0, x1, y0, y1, w, out=None):
    """Add ``w[i]`` to ``out[x0[i]:x1[i]+1, y0[i]:y1[i]+1]`` per rectangle.

    Difference-array formulation: each rectangle contributes four signed
    corner impulses; a double cumulative sum recovers the dense map.
    Agrees with the reference to float64 summation-order tolerance.
    """
    if out is None:
        out = np.zeros((nx, ny))
    x0 = np.asarray(x0, dtype=np.int64)
    if len(x0) == 0:
        return out
    x1 = np.asarray(x1, dtype=np.int64)
    y0 = np.asarray(y0, dtype=np.int64)
    y1 = np.asarray(y1, dtype=np.int64)
    ww = np.ascontiguousarray(
        np.broadcast_to(np.asarray(w, dtype=np.float64), x0.shape)
    )
    diff = np.zeros((nx + 1, ny + 1))
    np.add.at(diff, (x0, y0), ww)
    np.add.at(diff, (x1 + 1, y0), -ww)
    np.add.at(diff, (x0, y1 + 1), -ww)
    np.add.at(diff, (x1 + 1, y1 + 1), ww)
    np.cumsum(diff, axis=0, out=diff)
    np.cumsum(diff, axis=1, out=diff)
    out += diff[:nx, :ny]
    return out


# ----------------------------------------------------------------------
# Movable-cell bin overlap (electrostatic charge density)
# ----------------------------------------------------------------------


def bin_overlap(xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale, dim, bin_w, bin_h):
    """Smoothed movable-area map, batched over all cells at once.

    Interior cells (bin span entirely inside the grid) use closed-form
    per-offset coverage in bin units and one ``bincount`` per (dx, dy)
    offset pair, added into the offset-shifted view of the map.  Cells
    whose span would be clamped at the boundary replay the reference's
    clamped-index accumulation exactly (including the boundary-bin
    re-accumulation) on the small clamped subset.
    """
    rho = np.zeros((dim, dim))
    n = len(xlo)
    if n == 0:
        return rho
    scale = np.broadcast_to(np.asarray(scale, dtype=np.float64), (n,))
    # Closed-form pass over every cell: offset (a, b) contributions land
    # in the (a, b)-shifted view, which silently *drops* spill past the
    # last bin instead of clamping it like the reference does.  The few
    # boundary cells are then corrected: remove their closed-form terms,
    # re-add them with the reference's clamped indices.  Precondition
    # (guaranteed by the die-clipped extents): 0 <= ix0, iy0 < dim.
    _overlap_closed_form(rho, xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale,
                         bin_w, bin_h)
    edge = (ix0 > dim - kx) | (iy0 > dim - ky) | (ix0 < 0) | (iy0 < 0)
    if edge.any():
        e = np.flatnonzero(edge)
        _overlap_edge_fix(rho, xlo[e], xhi[e], ylo[e], yhi[e], ix0[e], iy0[e],
                          kx, ky, scale[e], bin_w, bin_h)
    return rho


def _coverage(lo, hi, i0, k, inv):
    """Per-offset bin coverage columns, in bin units: column ``j`` is the
    overlap of ``[lo, hi]`` with the ``(i0 + j)``-th bin."""
    a = hi * inv
    a -= i0
    b = lo * inv
    b -= i0
    col = np.minimum(a, 1.0)
    col -= b
    cols = [col]
    for j in range(1, k):
        col = a - j
        np.minimum(col, 1.0, out=col)
        np.clip(col, 0.0, None, out=col)
        cols.append(col)
    return cols


def _overlap_closed_form(rho, xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale,
                         bin_w, bin_h):
    """Closed-form coverage + one ``bincount`` per offset pair, added
    into the offset-shifted view of the map."""
    dim = rho.shape[0]
    oxs = _coverage(xlo, xhi, ix0, kx, 1.0 / bin_w)
    oys = _coverage(ylo, yhi, iy0, ky, 1.0 / bin_h)
    # Fold the per-cell scale and the bin area (bin-unit -> area) into x.
    s = scale * (bin_w * bin_h)
    for col in oxs:
        col *= s
    base = ix0 * dim
    base += iy0
    size = dim * dim
    prod = np.empty_like(s)
    for a in range(kx):
        for b in range(ky):
            np.multiply(oxs[a], oys[b], out=prod)
            m = np.bincount(base, weights=prod, minlength=size)
            rho[a:, b:] += m.reshape(dim, dim)[: dim - a or None, : dim - b or None]


def _overlap_edge_fix(rho, xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale,
                      bin_w, bin_h):
    """Swap boundary cells' closed-form terms for reference-clamped ones."""
    dim = rho.shape[0]
    size = dim * dim
    s = scale * (bin_w * bin_h)
    # Remove: the identical closed-form weights, at their unclamped
    # (in-grid only) positions — cancels what the main pass added.
    ox = np.stack(_coverage(xlo, xhi, ix0, kx, 1.0 / bin_w), axis=1) * s[:, None]
    oy = np.stack(_coverage(ylo, yhi, iy0, ky, 1.0 / bin_h), axis=1)
    ixs = ix0[:, None] + np.arange(kx)[None, :]
    iys = iy0[:, None] + np.arange(ky)[None, :]
    wgt = ox[:, :, None] * oy[:, None, :]
    flat = ixs[:, :, None] * dim + iys[:, None, :]
    ok = ((ixs >= 0) & (ixs < dim))[:, :, None] & ((iys >= 0) & (iys < dim))[:, None, :]
    rho -= np.bincount(flat[ok], weights=wgt[ok], minlength=size).reshape(dim, dim)
    # Add: the reference accumulation — offsets clamped to the last bin,
    # overlap recomputed against the clamped bin.
    ix = np.clip(ixs, 0, dim - 1)
    ox = np.clip(
        np.minimum(xhi[:, None], (ix + 1) * bin_w)
        - np.maximum(xlo[:, None], ix * bin_w),
        0.0,
        None,
    )
    iy = np.clip(iys, 0, dim - 1)
    oy = np.clip(
        np.minimum(yhi[:, None], (iy + 1) * bin_h)
        - np.maximum(ylo[:, None], iy * bin_h),
        0.0,
        None,
    )
    wgt = ox[:, :, None] * oy[:, None, :] * scale[:, None, None]
    flat = ix[:, :, None] * dim + iy[:, None, :]
    rho += np.bincount(
        flat.ravel(), weights=wgt.ravel(), minlength=size
    ).reshape(dim, dim)


# ----------------------------------------------------------------------
# Fixed-rectangle rasterization (exact per-bin overlap area)
# ----------------------------------------------------------------------


def rect_area(x0, x1, y0, y1, dim, bin_w, bin_h):
    """Exact per-bin overlap area via per-axis coverage + one matmul.

    ``covx[i, b]`` is the x-extent rectangle ``i`` covers in bin column
    ``b`` (and ``covy`` its y counterpart); the per-bin area summed over
    rectangles is exactly ``covx.T @ covy``.
    """
    out = np.zeros((dim, dim))
    x0 = np.asarray(x0, dtype=np.float64)
    if len(x0) == 0:
        return out
    x1 = np.asarray(x1, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    y1 = np.asarray(y1, dtype=np.float64)
    edges_x = np.arange(dim + 1) * bin_w
    edges_y = np.arange(dim + 1) * bin_h
    covx = np.minimum(x1[:, None], edges_x[None, 1:]) - np.maximum(
        x0[:, None], edges_x[None, :-1]
    )
    np.clip(covx, 0.0, None, out=covx)
    covy = np.minimum(y1[:, None], edges_y[None, 1:]) - np.maximum(
        y0[:, None], edges_y[None, :-1]
    )
    np.clip(covy, 0.0, None, out=covy)
    out += covx.T @ covy
    return out


# ----------------------------------------------------------------------
# Maze search (label-correcting wavefront with directional scans)
# ----------------------------------------------------------------------

_H = 0
_V = 1


def maze_search(gx0, gy0, gx1, gy1, cost_h, cost_v, xlo, xhi, ylo, yhi):
    """Batched wavefront search with the reference cost semantics.

    ``gH[x, y]`` / ``gV[x, y]`` hold the cheapest cost of reaching the
    cell with a last move in that direction.  Each sweep first forms the
    pre-move potential ``a = min(g_same, g_other + turn_charge)``, then
    relaxes entire straight runs with prefix/suffix min-scans along each
    axis (the batched neighbor expansion), so convergence takes on the
    order of the optimal path's turn count.  The path is recovered by
    walking cost-consistent predecessors; charged cells match the
    reference accounting (entered cell in the move direction, corner
    cell on turns and at the start).
    """
    ny_full = cost_h.shape[1]
    ch = np.ascontiguousarray(cost_h[xlo : xhi + 1, ylo : yhi + 1])
    cv = np.ascontiguousarray(cost_v[xlo : xhi + 1, ylo : yhi + 1])
    w, h = ch.shape
    sx, sy = gx0 - xlo, gy0 - ylo
    tx, ty = gx1 - xlo, gy1 - ylo

    gH = np.full((w, h), np.inf)
    gV = np.full((w, h), np.inf)
    # Seed the four moves out of the start (entered cell + start charge).
    if sx + 1 < w:
        gH[sx + 1, sy] = ch[sx + 1, sy] + ch[sx, sy]
    if sx >= 1:
        gH[sx - 1, sy] = ch[sx - 1, sy] + ch[sx, sy]
    if sy + 1 < h:
        gV[sx, sy + 1] = cv[sx, sy + 1] + cv[sx, sy]
    if sy >= 1:
        gV[sx, sy - 1] = cv[sx, sy - 1] + cv[sx, sy]

    sh = np.cumsum(ch, axis=0)  # inclusive prefix of H step costs
    sv = np.cumsum(cv, axis=1)
    ph = sh - ch  # exclusive prefix
    pv = sv - cv

    converged = False
    sweeps = 0
    for _ in range(2 * w * h + 8):
        sweeps += 1
        aH = np.minimum(gH, gV + ch)
        aV = np.minimum(gV, gH + cv)
        # Straight H runs: cost k -> x (rightward) is sh[x] - sh[k], so
        # cand[x] = sh[x] + min_{k<x}(aH[k] - sh[k]); leftward uses the
        # exclusive prefix ph symmetrically.  One min-scan per direction.
        newH = gH.copy()
        run = np.minimum.accumulate(aH - sh, axis=0)
        np.minimum(newH[1:], run[:-1] + sh[1:], out=newH[1:])
        run = np.minimum.accumulate((aH + ph)[::-1], axis=0)[::-1]
        np.minimum(newH[:-1], run[1:] - ph[:-1], out=newH[:-1])
        newV = gV.copy()
        run = np.minimum.accumulate(aV - sv, axis=1)
        np.minimum(newV[:, 1:], run[:, :-1] + sv[:, 1:], out=newV[:, 1:])
        run = np.minimum.accumulate((aV + pv)[:, ::-1], axis=1)[:, ::-1]
        np.minimum(newV[:, :-1], run[:, 1:] - pv[:, :-1], out=newV[:, :-1])
        if np.array_equal(newH, gH) and np.array_equal(newV, gV):
            converged = True
            break
        gH, gV = newH, newV
    obs.histogram("maze/sweeps").observe(sweeps)
    if not converged:
        return None

    return _backtrack(gH, gV, ch, cv, sx, sy, tx, ty, xlo, ylo, ny_full)


def _backtrack(gH, gV, ch, cv, sx, sy, tx, ty, xlo, ylo, ny_full):
    """Charged-cell lists by walking cost-consistent predecessors."""
    w, h = ch.shape
    use_h = gH[tx, ty] <= gV[tx, ty]
    g = gH[tx, ty] if use_h else gV[tx, ty]
    if not np.isfinite(g):
        return None
    h_cells = []
    v_cells = []
    x, y, d = tx, ty, (_H if use_h else _V)
    for _ in range(4 * w * h + 8):
        cells = h_cells if d == _H else v_cells
        cells.append((x + xlo) * ny_full + (y + ylo))
        step = ch[x, y] if d == _H else cv[x, y]
        tol = 1e-9 * (1.0 + abs(g))
        # Direct move out of the start?
        if d == _H and y == sy and abs(x - sx) == 1:
            if abs(ch[x, y] + ch[sx, sy] - g) <= tol:
                cells.append((sx + xlo) * ny_full + (sy + ylo))
                return _as_routes(h_cells, v_cells)
        if d == _V and x == sx and abs(y - sy) == 1:
            if abs(cv[x, y] + cv[sx, sy] - g) <= tol:
                cells.append((sx + xlo) * ny_full + (sy + ylo))
                return _as_routes(h_cells, v_cells)
        g_same = gH if d == _H else gV
        g_turn = gV if d == _H else gH
        preds = ((x - 1, y), (x + 1, y)) if d == _H else ((x, y - 1), (x, y + 1))
        found = False
        for px, py in preds:  # straight continuation first
            if 0 <= px < w and 0 <= py < h and abs(g_same[px, py] + step - g) <= tol:
                x, y, g = px, py, g_same[px, py]
                found = True
                break
        if not found:
            for px, py in preds:  # then a turn (corner charge on pred)
                if not (0 <= px < w and 0 <= py < h):
                    continue
                corner = ch[px, py] if d == _H else cv[px, py]
                if abs(g_turn[px, py] + corner + step - g) <= tol:
                    cells.append((px + xlo) * ny_full + (py + ylo))
                    x, y, g, d = px, py, g_turn[px, py], (_V if d == _H else _H)
                    found = True
                    break
        if not found:
            return None
    return None


def _as_routes(h_cells, v_cells):
    return (
        np.unique(np.asarray(h_cells, dtype=np.int64)),
        np.unique(np.asarray(v_cells, dtype=np.int64)),
    )


# ----------------------------------------------------------------------
# Abacus trial insertion (legalizer cluster dynamic program)
# ----------------------------------------------------------------------

# Below this cluster count the scalar recurrence beats the array setup;
# the vectorized scan takes over on deep merge chains.
_ABACUS_SCALAR_MAX = 8


def abacus_trial(e, q, w, x, n, xlo, xhi, seg_width, width, weight, target_x):
    """Trial Abacus insertion into one row segment (suffix-scan form).

    Same contract as the reference: non-mutating AddCell / Collapse
    merge of a new cell into the cluster arrays ``e, q, w, x`` (first
    ``n`` valid), returning ``(x_left, merges)`` or ``None``.

    Instead of iterating the merge recurrence, the merged cluster's
    ``(E, Q, W)`` after ``s`` collapses is expressed in closed form from
    prefix/suffix sums, every candidate stop position is evaluated at
    once, and the first self-consistent stop wins — identical to the
    scalar loop's fixed point, computed in O(n) numpy instead of O(s)
    Python iterations.
    """
    if width > seg_width + 1e-9:
        return None
    if n < _ABACUS_SCALAR_MAX:
        from .reference import abacus_trial as _scalar

        return _scalar(e, q, w, x, n, xlo, xhi, seg_width, width, weight,
                       target_x)
    xi = min(max(target_x, xlo), xhi - width)
    e = e[:n]
    q = q[:n]
    w = w[:n]
    x = x[:n]
    cw = np.cumsum(w)
    totw = cw[-1]
    cw_before = cw - w  # exclusive prefix: total width left of cluster j
    # Suffix sums indexed by k = n - s (k = n means "no merges yet"):
    #   A[k] = sum(q[k:]),  C[k] = sum(e[k:]),  Bv[k] = sum((e*cw_before)[k:])
    A = np.zeros(n + 1)
    A[:n] = np.cumsum(q[::-1])[::-1]
    C = np.zeros(n + 1)
    C[:n] = np.cumsum(e[::-1])[::-1]
    Bv = np.zeros(n + 1)
    Bv[:n] = np.cumsum((e * cw_before)[::-1])[::-1]
    cwb = np.concatenate([cw_before, [totw]])
    s = np.arange(n + 1)
    k = n - s
    # Closed form of the merge recurrence after s collapses:
    #   E(s) = C[k] + weight
    #   W(s) = (totw - cwb[k]) + width
    #   Q(s) = A[k] - Bv[k] + C[k]*cwb[k] + weight*xi - weight*(totw - cwb[k])
    E = C[k] + weight
    W = (totw - cwb[k]) + width
    Q = A[k] - Bv[k] + C[k] * cwb[k] + weight * xi - weight * (totw - cwb[k])
    xc = np.minimum(np.maximum(Q / E, xlo), xhi - W)
    stop = np.empty(n + 1, dtype=bool)
    stop[n] = True
    left = n - 1 - s[:n]  # cluster the s-merge state would collapse next
    stop[:n] = x[left] + w[left] <= xc[:n] + 1e-9
    s_star = int(np.argmax(stop))
    overflow = W > seg_width + 1e-9
    overflow[0] = False  # s = 0 is covered by the entry width check
    if overflow[: s_star + 1].any():
        return None
    return (float(xc[s_star] + W[s_star]) - width, s_star)


# ----------------------------------------------------------------------
# Batched RSMT construction (per-net Steiner trees)
# ----------------------------------------------------------------------

_NO_EDGES = np.zeros((0, 2), dtype=np.int64)
_NO_EDGES.setflags(write=False)
_EDGE_2 = np.array([[0, 1]], dtype=np.int64)
_EDGE_2.setflags(write=False)
_STAR_3 = np.array([[0, 3], [1, 3], [2, 3]], dtype=np.int64)
_STAR_3.setflags(write=False)
_PINS_3S = np.array([True, True, True, False])
_PINS_3S.setflags(write=False)


def _all_pins(d):
    flags = np.ones(d, dtype=bool)
    flags.setflags(write=False)
    return flags


def _prim_batch(dist):
    """Prim MSTs of a ``(B, n, n)`` distance tensor, scalar tie-breaks.

    Batched transcription of :func:`repro.rsmt.rmst.rmst_edges`: the
    same masked argmin (lowest index wins ties) and the same
    strictly-closer parent update, applied to all ``B`` nets per step.
    """
    batch, n, _ = dist.shape
    in_tree = np.zeros((batch, n), dtype=bool)
    in_tree[:, 0] = True
    best = dist[:, 0, :].copy()
    parent = np.zeros((batch, n), dtype=np.int64)
    edges = np.zeros((batch, n - 1, 2), dtype=np.int64)
    rows = np.arange(batch)
    for k in range(n - 1):
        masked = np.where(in_tree, np.inf, best)
        j = np.argmin(masked, axis=1)
        edges[:, k, 0] = parent[rows, j]
        edges[:, k, 1] = j
        in_tree[rows, j] = True
        dj = dist[rows, j, :]
        closer = dj < best
        parent = np.where(closer, j[:, None], parent)
        best = np.minimum(best, dj)
    return edges


def steiner_batch(x, y, start, max_degree):
    """Per-net RSMT over CSR-packed point sets, grouped by degree.

    Degree groups dominate the work differently, so each gets its own
    formulation:

    * ``d <= 1`` — points only, no edges.
    * ``d == 2`` — the single edge, no tree search needed.
    * ``d == 3`` — batched Prim plus the exact closed form: the
      rectilinear median of three points is the optimal Steiner point;
      when it coincides with the path's middle vertex the MST is already
      optimal (the reference's zero-gain rejection), otherwise the
      median star replaces the path.
    * ``4 <= d <= max_degree`` — batched Prim for the MST (the O(n^2)
      part), then the reference's Steinerization per net.
    * ``d > max_degree`` — batched Prim only (matching the reference's
      plain-RMST cutoff).

    Returns ``(px, py, is_pin, edges)`` per net, in net order.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    start = np.asarray(start, dtype=np.int64)
    deg = np.diff(start)
    out = [None] * len(deg)
    for d in np.unique(deg).tolist():
        idx = np.flatnonzero(deg == d)
        lo = start[idx]
        if d <= 1:
            for i, l in zip(idx.tolist(), lo.tolist()):
                out[i] = (x[l:l + d], y[l:l + d], _all_pins(d), _NO_EDGES)
            continue
        if d == 2:
            pins = _all_pins(2)
            for i, l in zip(idx.tolist(), lo.tolist()):
                out[i] = (x[l:l + 2], y[l:l + 2], pins, _EDGE_2)
            continue
        gather = lo[:, None] + np.arange(d)[None, :]
        px = x[gather]
        py = y[gather]
        dist = (
            np.abs(px[:, :, None] - px[:, None, :])
            + np.abs(py[:, :, None] - py[:, None, :])
        )
        edges = _prim_batch(dist)
        if d == 3:
            _emit_degree3(out, idx, px, py, edges)
            continue
        if d > max_degree:
            pins = _all_pins(d)
            for b, i in enumerate(idx.tolist()):
                out[i] = (px[b], py[b], pins, edges[b])
            continue
        from ..rsmt.steiner import _adjacency, _finalize, _steinerize

        for b, i in enumerate(idx.tolist()):
            pxl = list(px[b])
            pyl = list(py[b])
            adjacency = _adjacency(d, edges[b])
            _steinerize(pxl, pyl, adjacency, num_pins=d)
            topo = _finalize(pxl, pyl, adjacency, num_pins=d)
            out[i] = (topo.x, topo.y, topo.is_pin, topo.edges)
    return out


def _emit_degree3(out, idx, px, py, edges):
    """Exact three-point RSMTs from the batched MST paths.

    The middle vertex is the one with MST degree 2; the componentwise
    median of the three points is the unique optimal Steiner point, and
    its insertion gain equals its distance to the middle vertex — so a
    star is emitted exactly when that distance clears the reference's
    ``1e-9`` gain threshold.  Non-star nets keep the MST path with
    edges in the reference's canonical (sorted) emission order.
    """
    batch = len(idx)
    rows = np.arange(batch)
    occ = edges.reshape(batch, 4)
    counts = (occ[:, :, None] == np.arange(3)[None, None, :]).sum(axis=1)
    mid = np.argmax(counts, axis=1)
    sx = px.sum(axis=1) - px.min(axis=1) - px.max(axis=1)
    sy = py.sum(axis=1) - py.min(axis=1) - py.max(axis=1)
    gain = np.abs(sx - px[rows, mid]) + np.abs(sy - py[rows, mid])
    star = gain > 1e-9
    # Canonical path edges: each (a, b) with a < b, rows in lex order.
    path = np.sort(edges, axis=2)
    swap = (path[:, 0, 0] > path[:, 1, 0]) | (
        (path[:, 0, 0] == path[:, 1, 0]) & (path[:, 0, 1] > path[:, 1, 1])
    )
    path[swap] = path[swap][:, ::-1, :]
    pins3 = _all_pins(3)
    for b, i in enumerate(idx.tolist()):
        if star[b]:
            out[i] = (
                np.append(px[b], sx[b]),
                np.append(py[b], sy[b]),
                _PINS_3S,
                _STAR_3,
            )
        else:
            out[i] = (px[b], py[b], pins3, path[b])
