"""Dispatchable numpy kernels for the measured hot paths.

The congestion estimator, the RUDY baseline, the electrostatic density
map, and the maze router all funnel their inner loops through this
module.  Two interchangeable backends implement every kernel:

* ``"vectorized"`` (the default) — whole-batch numpy formulations
  (:mod:`repro.kernels.vectorized`).
* ``"reference"`` — the original per-object loops, kept as the golden
  implementation (:mod:`repro.kernels.reference`).

Select a backend globally with :func:`use`, temporarily with
:func:`using`, per process with the ``REPRO_KERNELS`` environment
variable, or per CLI run with ``--kernels``.  Backends agree to
``allclose`` tolerance (``rtol=1e-9``, plus ``atol`` of a few ulps of
the accumulated magnitude) on the map kernels and to equal path cost on
the maze kernel; ``tests/test_kernels.py`` holds the golden-equivalence
suite and ``benchmarks/bench_kernels.py`` the speedup measurements.

Kernel inventory (full contracts in the backend docstrings):

* ``rect_add(nx, ny, x0, x1, y0, y1, w, out=None)`` — weighted
  inclusive-rectangle accumulation (RSMT demand, RUDY).
* ``bin_overlap(xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale, dim,
  bin_w, bin_h)`` — smoothed movable-area (charge density) map.
* ``rect_area(x0, x1, y0, y1, dim, bin_w, bin_h)`` — exact per-bin
  overlap area of fixed rectangles.
* ``maze_search(gx0, gy0, gx1, gy1, cost_h, cost_v, xlo, xhi, ylo,
  yhi)`` — windowed cheapest path with run-based turn accounting.
* ``abacus_trial(e, q, w, x, n, xlo, xhi, seg_width, width, weight,
  target_x)`` — non-mutating Abacus AddCell/Collapse trial insertion
  over a segment's cluster arrays.
* ``steiner_batch(x, y, start, max_degree)`` — per-net RSMT
  construction over CSR-packed point sets.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

from . import reference, vectorized

BACKENDS = ("vectorized", "reference")
ENV_VAR = "REPRO_KERNELS"

_MODULES = {"vectorized": vectorized, "reference": reference}


def _validated(name: str) -> str:
    if name not in _MODULES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def _from_env() -> str:
    name = os.environ.get(ENV_VAR, "vectorized")
    if name not in _MODULES:
        warnings.warn(
            f"{ENV_VAR}={name!r} is not one of {BACKENDS}; using 'vectorized'",
            stacklevel=2,
        )
        return "vectorized"
    return name


_active = _from_env()


def current() -> str:
    """Name of the active backend."""
    return _active


def use(name: str) -> str:
    """Select the active backend; returns the previous one."""
    global _active
    previous = _active
    _active = _validated(name)
    return previous


@contextmanager
def using(name: str):
    """Temporarily select a backend for the enclosed block."""
    previous = use(name)
    try:
        yield
    finally:
        use(previous)


def rect_add(*args, **kwargs):
    """Weighted inclusive-rectangle accumulation (active backend)."""
    return _MODULES[_active].rect_add(*args, **kwargs)


def bin_overlap(*args, **kwargs):
    """Smoothed movable-area (charge density) map (active backend)."""
    return _MODULES[_active].bin_overlap(*args, **kwargs)


def rect_area(*args, **kwargs):
    """Exact per-bin overlap area of rectangles (active backend)."""
    return _MODULES[_active].rect_area(*args, **kwargs)


def maze_search(*args, **kwargs):
    """Windowed cheapest-path maze search (active backend)."""
    return _MODULES[_active].maze_search(*args, **kwargs)


def abacus_trial(*args, **kwargs):
    """Abacus trial insertion into a row segment (active backend)."""
    return _MODULES[_active].abacus_trial(*args, **kwargs)


def steiner_batch(*args, **kwargs):
    """Batched per-net RSMT construction (active backend)."""
    return _MODULES[_active].steiner_batch(*args, **kwargs)
