"""Reference (loop-based) kernel implementations.

These are the original hot-path loops, preserved verbatim so the
vectorized backend always has a golden implementation to be checked
against (``tests/test_kernels.py``) and measured against
(``benchmarks/bench_kernels.py``).  Semantics — including accumulation
order and the boundary-bin clamping of the density kernel — are the
contract; the vectorized backend must agree to the tolerances stated in
:mod:`repro.kernels`.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from .. import obs

# ----------------------------------------------------------------------
# Weighted-rectangle accumulation (demand / RUDY rasterization)
# ----------------------------------------------------------------------


def rect_add(nx, ny, x0, x1, y0, y1, w, out=None):
    """Add ``w[i]`` to ``out[x0[i]:x1[i]+1, y0[i]:y1[i]+1]`` per rectangle.

    Bounds are inclusive Gcell indices, assumed in range.  ``w`` may be a
    scalar or a per-rectangle array.  Rectangles are applied in order
    with one slice-add each (the historical per-net loop).
    """
    if out is None:
        out = np.zeros((nx, ny))
    ww = np.broadcast_to(np.asarray(w, dtype=np.float64), np.shape(x0))
    for rx0, rx1, ry0, ry1, rw in zip(
        np.asarray(x0).tolist(),
        np.asarray(x1).tolist(),
        np.asarray(y0).tolist(),
        np.asarray(y1).tolist(),
        ww.tolist(),
    ):
        out[rx0 : rx1 + 1, ry0 : ry1 + 1] += rw
    return out


# ----------------------------------------------------------------------
# Movable-cell bin overlap (electrostatic charge density)
# ----------------------------------------------------------------------


def bin_overlap(xlo, xhi, ylo, yhi, ix0, iy0, kx, ky, scale, dim, bin_w, bin_h):
    """Smoothed movable-area map by per-offset clamped accumulation.

    Coordinates are die-relative cell extents; ``ix0``/``iy0`` the bin of
    the low edge; ``kx``/``ky`` the maximum bin span.  Matches the
    historical ePlace loop, including the boundary behaviour: bin indices
    are clamped to ``dim - 1``, so cells whose span sticks past the last
    bin re-accumulate that boundary bin once per clamped offset.
    """
    rho = np.zeros((dim, dim))
    if len(xlo) == 0:
        return rho
    flat = rho.ravel()
    for dxk in range(kx):
        ix = np.clip(ix0 + dxk, 0, dim - 1)
        ox = np.clip(
            np.minimum(xhi, (ix + 1) * bin_w) - np.maximum(xlo, ix * bin_w),
            0.0,
            None,
        )
        for dyk in range(ky):
            iy = np.clip(iy0 + dyk, 0, dim - 1)
            oy = np.clip(
                np.minimum(yhi, (iy + 1) * bin_h) - np.maximum(ylo, iy * bin_h),
                0.0,
                None,
            )
            np.add.at(flat, ix * dim + iy, ox * oy * scale)
    return rho


# ----------------------------------------------------------------------
# Fixed-rectangle rasterization (exact per-bin overlap area)
# ----------------------------------------------------------------------


def rect_area(x0, x1, y0, y1, dim, bin_w, bin_h):
    """Exact per-bin overlap area of die-relative rectangles.

    The historical ``_rasterize_fixed`` inner loops: for every rectangle,
    walk its covered bin range and add the x/y overlap product.  Inputs
    are assumed clipped to the die (``0 <= x0 < x1 <= dim * bin_w``).
    """
    out = np.zeros((dim, dim))
    for rx0, rx1, ry0, ry1 in zip(
        np.asarray(x0).tolist(),
        np.asarray(x1).tolist(),
        np.asarray(y0).tolist(),
        np.asarray(y1).tolist(),
    ):
        ix0 = int(rx0 / bin_w)
        ix1 = min(int(math.ceil(rx1 / bin_w)), dim)
        iy0 = int(ry0 / bin_h)
        iy1 = min(int(math.ceil(ry1 / bin_h)), dim)
        for i in range(max(ix0, 0), ix1):
            ox = min(rx1, (i + 1) * bin_w) - max(rx0, i * bin_w)
            if ox <= 0:
                continue
            for j in range(max(iy0, 0), iy1):
                oy = min(ry1, (j + 1) * bin_h) - max(ry0, j * bin_h)
                if oy > 0:
                    out[i, j] += ox * oy
    return out


# ----------------------------------------------------------------------
# Maze search (A* with run-based turn accounting)
# ----------------------------------------------------------------------

_DIRS = ((1, 0), (-1, 0), (0, 1), (0, -1))  # dx, dy
_H = 0  # horizontal movement kind
_V = 1


def maze_search(gx0, gy0, gx1, gy1, cost_h, cost_v, xlo, xhi, ylo, yhi):
    """A* from ``(gx0, gy0)`` to ``(gx1, gy1)`` inside the given window.

    Costs charge the entered Gcell in the movement direction and, on
    turns (or when leaving the start), additionally charge the corner
    cell in the new direction.  Returns ``(h_cells, v_cells)`` flat index
    arrays, or ``None`` when no path exists in the window.
    """
    ny = cost_h.shape[1]
    # State: (x, y, last_dir) with last_dir in {H, V, 2=start}.
    best = {}
    came = {}
    start = (gx0, gy0, 2)
    best[start] = 0.0
    frontier = [(_heuristic(gx0, gy0, gx1, gy1), 0.0, start)]
    goal_state = None
    pops = 0
    while frontier:
        f, g, state = heapq.heappop(frontier)
        pops += 1
        if g > best.get(state, np.inf):
            continue
        x, y, last = state
        if x == gx1 and y == gy1:
            goal_state = state
            break
        for dx, dy in _DIRS:
            nx_, ny_ = x + dx, y + dy
            if not (xlo <= nx_ <= xhi and ylo <= ny_ <= yhi):
                continue
            move = _H if dy == 0 else _V
            step = cost_h[nx_, ny_] if move == _H else cost_v[nx_, ny_]
            turn = 0.0
            if last == 2:
                # Leaving the start: charge the start cell in this direction.
                turn = cost_h[x, y] if move == _H else cost_v[x, y]
            elif last != move:
                turn = cost_h[x, y] if move == _H else cost_v[x, y]
            ng = g + step + turn
            nstate = (nx_, ny_, move)
            if ng < best.get(nstate, np.inf) - 1e-12:
                best[nstate] = ng
                came[nstate] = state
                heapq.heappush(
                    frontier, (ng + _heuristic(nx_, ny_, gx1, gy1), ng, nstate)
                )
    obs.histogram("maze/pops").observe(pops)
    if goal_state is None:
        return None
    return _reconstruct(goal_state, came, ny)


def _heuristic(x: int, y: int, tx: int, ty: int) -> float:
    return abs(x - tx) + abs(y - ty)


def _reconstruct(goal, came, ny: int):
    """Charged-cell lists from the predecessor chain."""
    h_cells = []
    v_cells = []
    state = goal
    while state in came:
        prev = came[state]
        x, y, move = state
        px, py, plast = prev
        (h_cells if move == _H else v_cells).append(x * ny + y)
        # Turn (or start) charge on the corner cell.
        if plast == 2 or plast != move:
            (h_cells if move == _H else v_cells).append(px * ny + py)
        state = prev
    return (
        np.unique(np.asarray(h_cells, dtype=np.int64)),
        np.unique(np.asarray(v_cells, dtype=np.int64)),
    )


# ----------------------------------------------------------------------
# Abacus trial insertion (legalizer cluster dynamic program)
# ----------------------------------------------------------------------


def abacus_trial(e, q, w, x, n, xlo, xhi, seg_width, width, weight, target_x):
    """Trial Abacus insertion into one row segment.

    The segment's cluster state is given as parallel arrays ``e`` (total
    weight), ``q`` (weighted target sum), ``w`` (total width), ``x``
    (clamped optimal start), of which the first ``n`` entries are valid
    and ordered left to right.  A new cell of ``width`` / ``weight``
    targeting left edge ``target_x`` is merged backwards through the
    classic AddCell / Collapse recurrence without mutating the state.

    Returns:
        ``(x_left, merges)`` — the final left edge the new cell would
        get and the number of existing clusters the insertion collapses
        — or ``None`` when the (merged) cluster cannot fit the segment.
    """
    if width > seg_width + 1e-9:
        return None
    xi = min(max(target_x, xlo), xhi - width)
    ce, cq, cw = weight, weight * xi, width
    i = n - 1
    while True:
        xc = min(max(cq / ce, xlo), xhi - cw)
        if i < 0:
            break
        if x[i] + w[i] <= xc + 1e-9:
            break
        ce_new = e[i] + ce
        cq_new = q[i] + cq - ce * w[i]
        cw_new = w[i] + cw
        if cw_new > seg_width + 1e-9:
            return None
        ce, cq, cw = ce_new, cq_new, cw_new
        i -= 1
    xc = min(max(cq / ce, xlo), xhi - cw)
    return (xc + cw - width, n - 1 - i)


# ----------------------------------------------------------------------
# Batched RSMT construction (per-net Steiner trees)
# ----------------------------------------------------------------------


def steiner_batch(x, y, start, max_degree):
    """Per-net RSMT over CSR-packed point sets — the historical loop.

    ``x`` / ``y`` hold the concatenated (deduplicated) points of every
    net; ``start`` is the CSR offset array (length ``nets + 1``).

    Returns:
        One ``(px, py, is_pin, edges)`` tuple per net, matching
        :func:`repro.rsmt.build_rsmt` on each slice.
    """
    from ..rsmt.steiner import build_rsmt

    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    start = np.asarray(start, dtype=np.int64)
    out = []
    for i in range(len(start) - 1):
        lo, hi = int(start[i]), int(start[i + 1])
        topo = build_rsmt(x[lo:hi], y[lo:hi], steinerize_max_degree=max_degree)
        out.append((topo.x, topo.y, topo.is_pin, topo.edges))
    return out
