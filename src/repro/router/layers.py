"""Post-routing layer assignment and per-layer utilization.

The router works on collapsed per-direction capacities (paper Fig. 1);
this module redistributes the routed demand back onto the metal stack —
each Gcell's directional demand is split across the same-direction
layers in proportion to their track share, bottom-up with overflow
spilling upward, which approximates how a layer assigner fills cheap
lower layers first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design
from ..netlist.technology import HORIZONTAL
from .router import RouteReport


@dataclass
class LayerUsage:
    """Utilization of one metal layer.

    Attributes:
        name: layer name.
        direction: preferred direction.
        tracks: per-Gcell track capacity of this layer.
        utilization: mean demand / capacity over the grid.
        peak: maximum per-Gcell utilization.
        overflow_gcells: Gcells whose assigned demand exceeds the layer.
    """

    name: str
    direction: str
    tracks: float
    utilization: float
    peak: float
    overflow_gcells: int


def assign_layers(design: Design, report: RouteReport) -> list:
    """Per-layer usage from a routing report.

    Returns:
        One :class:`LayerUsage` per routing layer, bottom-up.
    """
    tech = design.technology
    grid = report.grid
    usages = []
    for direction, demand, gcell_len in (
        (HORIZONTAL, report.demand.dmd_h, grid.gcell_w),
        ("V", report.demand.dmd_v, grid.gcell_h),
    ):
        layers = tech.layers_in_direction(direction)
        if not layers:
            continue
        remaining = demand.copy()
        for layer in layers:
            tracks = gcell_len / layer.pitch
            assigned = np.minimum(remaining, tracks)
            is_last = layer is layers[-1]
            if is_last:
                assigned = remaining.copy()
            remaining = remaining - assigned
            util = assigned / max(tracks, 1e-12)
            usages.append(
                LayerUsage(
                    name=layer.name,
                    direction=direction if direction == HORIZONTAL else "V",
                    tracks=tracks,
                    utilization=float(util.mean()),
                    peak=float(util.max()),
                    overflow_gcells=int((assigned > tracks + 1e-9).sum()),
                )
            )
    order = {l.name: i for i, l in enumerate(tech.layers)}
    usages.sort(key=lambda u: order[u.name])
    return usages


def format_layer_table(usages: list) -> str:
    """ASCII table of per-layer usage."""
    lines = [
        f"{'layer':<6}{'dir':<5}{'tracks':>8}{'mean util':>11}{'peak':>8}{'overflow':>10}"
    ]
    for u in usages:
        lines.append(
            f"{u.name:<6}{u.direction:<5}{u.tracks:>8.1f}{u.utilization:>11.3f}"
            f"{u.peak:>8.2f}{u.overflow_gcells:>10d}"
        )
    return "\n".join(lines)
