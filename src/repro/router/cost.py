"""Congestion cost model shared by pattern and maze routing.

The router negotiates congestion PathFinder-style: the cost of occupying
a Gcell in a direction is a base length cost plus a penalty growing with
the overflow the extra wire would cause, plus an accumulated history cost
on persistently congested Gcells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..schema import dataclass_from_dict, dataclass_to_dict
from .grid import DemandMaps, RoutingGrid


@dataclass
class CostParams:
    """Routing-cost knobs.

    Attributes:
        congestion_weight: multiplier on per-Gcell prospective overflow.
        history_increment: history added per overflowed Gcell per round.
        slack: capacity fraction at which the soft penalty starts.
    """

    congestion_weight: float = 16.0
    history_increment: float = 1.0
    slack: float = 0.9

    def to_dict(self) -> dict:
        """JSON-safe wire dict (see :mod:`repro.schema`)."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CostParams":
        """Rebuild from :meth:`to_dict`; unknown keys raise ``SchemaError``."""
        return dataclass_from_dict(cls, data)


class CostModel:
    """Live per-direction cost maps over a routing grid."""

    def __init__(self, grid: RoutingGrid, demand: DemandMaps, params: CostParams) -> None:
        self.grid = grid
        self.demand = demand
        self.params = params
        self.hist_h = np.zeros((grid.nx, grid.ny))
        self.hist_v = np.zeros((grid.nx, grid.ny))
        self._capn_h = np.maximum(grid.cap_h, 1.0)
        self._capn_v = np.maximum(grid.cap_v, 1.0)

    def cost_maps(self) -> tuple:
        """Full ``(cost_h, cost_v)`` maps for the current demand.

        ``cost = 1 + w * relu(dmd + 1 - slack*cap) / max(cap, 1) + hist``;
        the ``+1`` prices the wire about to be added.
        """
        p = self.params
        over_h = np.maximum(
            self.demand.dmd_h + 1.0 - p.slack * self.grid.cap_h, 0.0
        ) / self._capn_h
        over_v = np.maximum(
            self.demand.dmd_v + 1.0 - p.slack * self.grid.cap_v, 0.0
        ) / self._capn_v
        cost_h = 1.0 + p.congestion_weight * over_h + self.hist_h
        cost_v = 1.0 + p.congestion_weight * over_v + self.hist_v
        return cost_h, cost_v

    def bump_history(self) -> None:
        """Accumulate history cost on currently overflowed Gcells."""
        over_h, over_v = self.demand.overflow_maps(self.grid)
        self.hist_h += self.params.history_increment * (over_h > 0)
        self.hist_v += self.params.history_increment * (over_v > 0)
