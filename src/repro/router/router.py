"""The evaluation global router (Innovus-GR substitute).

Given a placed design, the router decomposes every net into two-point
segments via RSMT, pattern-routes them congestion-aware (straight / best
L), then negotiates residual overflow with history-based rip-up and
bounded A* maze rerouting.  It reports the same quantities the paper
reads off the Innovus global router: per-direction overflow ratios
("HOF"/"VOF"), routed wirelength, and congestion maps.

Local routing demand is modelled by a per-pin Gcell demand, following the
Gcell-based resource model the paper adopts from TritonRoute-WXL [17]:
clustered pins consume routing resources even when their nets never leave
the Gcell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..netlist.design import Design
from ..rsmt import build_rsmt_batch
from .cost import CostModel, CostParams
from .grid import DemandMaps, RoutingGrid, build_grid
from .maze import maze_route
from .pattern import best_pattern_route


@dataclass
class RouterParams:
    """Knobs of :class:`GlobalRouter`.

    Attributes:
        rrr_rounds: rip-up-and-reroute rounds after the initial pass.
        cost: congestion cost model parameters.
        maze_margin: initial bbox expansion for maze windows (Gcells).
        maze_margin_growth: margin added per RRR round.
        max_reroute_per_round: cap on rerouted segments per round.
        pin_demand: per-pin local demand added to both directions of the
            pin's Gcell.
        use_z_patterns: consider Z shapes already in the initial pass.
    """

    rrr_rounds: int = 4
    cost: CostParams = field(default_factory=CostParams)
    maze_margin: int = 6
    maze_margin_growth: int = 4
    max_reroute_per_round: int = 4000
    pin_demand: float = 0.05
    use_z_patterns: bool = False

    def to_dict(self) -> dict:
        """JSON-safe wire dict (``cost`` nests its own versioned dict)."""
        from ..schema import dataclass_to_dict

        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RouterParams":
        """Rebuild from :meth:`to_dict`; unknown keys raise ``SchemaError``."""
        from ..schema import dataclass_from_dict

        return dataclass_from_dict(cls, data, nested={"cost": CostParams.from_dict})


@dataclass
class RouteReport:
    """Outcome of a global-routing run."""

    hof: float
    vof: float
    wirelength: float
    runtime: float
    rounds: int
    num_segments: int
    via_count: int
    grid: RoutingGrid
    demand: DemandMaps
    overflow_history: list = field(default_factory=list)
    state: "RouteState | None" = field(default=None, repr=False)

    @property
    def total_overflow(self) -> float:
        """Combined overflow ratio (the exploration objective)."""
        return self.hof + self.vof

    def summary(self) -> str:
        return (
            f"HOF {self.hof:.3f}%  VOF {self.vof:.3f}%  "
            f"WL {self.wirelength:.4g}  RT {self.runtime:.1f}s"
        )


@dataclass
class RouteState:
    """Retained routing state for incremental reroutes.

    Captured by ``GlobalRouter(..., keep_state=True)`` and consumed by
    :func:`repro.router.incremental.reroute_nets`: everything needed to
    rip up the segments of a handful of nets, reroute them against live
    congestion, and report fresh metrics without touching the rest of
    the solution.
    """

    grid: RoutingGrid
    demand: DemandMaps
    cost_model: CostModel
    segments: list
    seg_net: np.ndarray
    routes: list
    pin_flat: np.ndarray
    params: RouterParams


# ----------------------------------------------------------------------
# Reusable pieces (shared by the full run and incremental reroutes)
# ----------------------------------------------------------------------


def pin_flat_indices(design: Design, grid: RoutingGrid) -> np.ndarray:
    """Flat Gcell index (``gx * ny + gy``) of every pin."""
    if design.num_pins == 0:
        return np.zeros(0, dtype=np.int64)
    px, py = design.pin_positions()
    gx, gy = grid.gcell_of(px, py)
    return (gx * grid.ny + gy).astype(np.int64)


def build_net_segments(
    design: Design, grid: RoutingGrid, nets=None
) -> tuple:
    """Two-point RSMT segments (Gcell coords) plus their owning net ids.

    Args:
        nets: net indices to decompose; defaults to every net.

    Returns:
        ``(segments, seg_net)`` — a list of ``(gx0, gy0, gx1, gy1)``
        tuples and a parallel int64 array of net ids.
    """
    px, py = design.pin_positions()
    gx, gy = grid.gcell_of(px, py)
    if nets is None:
        net_ids = np.arange(design.num_nets, dtype=np.int64)
    else:
        net_ids = np.asarray(list(nets), dtype=np.int64)
    if len(net_ids) == 0:
        return [], np.zeros(0, dtype=np.int64)
    # Batch the per-net work: gather each net's pins, dedup their Gcells
    # with one composite-key sort (gcell order matches the historical
    # per-net ``np.unique`` since ``gy < ny``), and build every RSMT in
    # one dispatch to the active kernel backend.
    s = design.net_start[net_ids]
    lens = design.net_start[net_ids + 1] - s
    total = int(lens.sum())
    off = np.zeros(len(net_ids) + 1, dtype=np.int64)
    np.cumsum(lens, out=off[1:])
    gather = np.repeat(s - off[:-1], lens) + np.arange(total)
    pins_sel = design.net_pins[gather]
    local = np.repeat(np.arange(len(net_ids), dtype=np.int64), lens)
    span_sz = np.int64(grid.nx) * np.int64(grid.ny)
    flat = gx[pins_sel] * grid.ny + gy[pins_sel]
    skey = np.sort(local * span_sz + flat)
    keep = np.ones(len(skey), dtype=bool)
    keep[1:] = skey[1:] != skey[:-1]
    ukey = skey[keep]
    ulocal = ukey // span_sz
    ucell = ukey % span_sz
    counts = np.bincount(ulocal, minlength=len(net_ids))
    ustart = np.zeros(len(net_ids) + 1, dtype=np.int64)
    np.cumsum(counts, out=ustart[1:])
    eligible = np.flatnonzero(counts >= 2)
    if len(eligible) == 0:
        return [], np.zeros(0, dtype=np.int64)
    blens = counts[eligible]
    bstart = np.zeros(len(eligible) + 1, dtype=np.int64)
    np.cumsum(blens, out=bstart[1:])
    pick = np.repeat(ustart[eligible] - bstart[:-1], blens) + np.arange(
        bstart[-1]
    )
    cells_sel = ucell[pick]
    topos = build_rsmt_batch(
        (cells_sel // grid.ny).astype(np.float64),
        (cells_sel % grid.ny).astype(np.float64),
        bstart,
    )
    segments = []
    seg_net = []
    for li, topo in zip(eligible.tolist(), topos):
        net = int(net_ids[li])
        tx = np.round(topo.x).astype(np.int64)
        ty = np.round(topo.y).astype(np.int64)
        for a, b in topo.edges:
            segments.append((int(tx[a]), int(ty[a]), int(tx[b]), int(ty[b])))
            seg_net.append(net)
    return segments, np.asarray(seg_net, dtype=np.int64)


def commit_route(route, sign, dmd_h, dmd_v, cost_model, cost_h_flat, cost_v_flat):
    """Apply a route's demand and refresh costs on the touched cells."""
    h_cells, v_cells = route
    params = cost_model.params
    grid = cost_model.grid
    if len(h_cells):
        np.add.at(dmd_h, h_cells, sign)
        capn = np.maximum(grid.cap_h.ravel()[h_cells], 1.0)
        over = np.maximum(
            dmd_h[h_cells] + 1.0 - params.slack * grid.cap_h.ravel()[h_cells], 0.0
        )
        cost_h_flat[h_cells] = (
            1.0 + params.congestion_weight * over / capn
            + cost_model.hist_h.ravel()[h_cells]
        )
    if len(v_cells):
        np.add.at(dmd_v, v_cells, sign)
        capn = np.maximum(grid.cap_v.ravel()[v_cells], 1.0)
        over = np.maximum(
            dmd_v[v_cells] + 1.0 - params.slack * grid.cap_v.ravel()[v_cells], 0.0
        )
        cost_v_flat[v_cells] = (
            1.0 + params.congestion_weight * over / capn
            + cost_model.hist_v.ravel()[v_cells]
        )


def select_victims(routes, grid: RoutingGrid, demand: DemandMaps, window=None,
                   baseline=None) -> list:
    """Routes passing through overflowed Gcells, worst offenders first.

    Args:
        window: optional inclusive ``(gx_lo, gy_lo, gx_hi, gy_hi)``
            Gcell box; overflow outside it is ignored, restricting the
            rip-up to a dirty region.
        baseline: optional ``(over_h, over_v)`` overflow maps from an
            earlier point in time; only overflow *in excess of* the
            baseline scores, so residual congestion a converged run
            already accepted does not trigger fresh rip-ups.
    """
    over_h, over_v = demand.overflow_maps(grid)
    if baseline is not None:
        over_h = np.maximum(over_h - np.clip(baseline[0], 0.0, None), 0.0)
        over_v = np.maximum(over_v - np.clip(baseline[1], 0.0, None), 0.0)
    if window is not None:
        gx_lo, gy_lo, gx_hi, gy_hi = window
        mask = np.zeros((grid.nx, grid.ny), dtype=bool)
        mask[
            max(gx_lo, 0): gx_hi + 1,
            max(gy_lo, 0): gy_hi + 1,
        ] = True
        over_h = np.where(mask, over_h, 0.0)
        over_v = np.where(mask, over_v, 0.0)
    over_h_flat = over_h.ravel()
    over_v_flat = over_v.ravel()
    scored = []
    for i, route in enumerate(routes):
        if route is None:
            continue
        h_cells, v_cells = route
        score = 0.0
        if len(h_cells):
            score += float(over_h_flat[h_cells].sum())
        if len(v_cells):
            score += float(over_v_flat[v_cells].sum())
        if score > 0:
            scored.append((score, i))
    scored.sort(reverse=True)
    return [i for _, i in scored]


def wirelength_and_vias(routes, grid: RoutingGrid) -> tuple:
    """Total routed length plus via count (Gcells used in both
    directions by the same route are layer changes)."""
    total = 0.0
    vias = 0
    for h_cells, v_cells in routes:
        total += len(h_cells) * grid.gcell_w + len(v_cells) * grid.gcell_h
        if len(h_cells) and len(v_cells):
            vias += len(np.intersect1d(h_cells, v_cells, assume_unique=False))
    return total, vias


class GlobalRouter:
    """Congestion-negotiating global router over the Gcell grid.

    Args:
        keep_state: retain the full routing state (demand, per-net
            segments, routes) on ``RouteReport.state`` so
            :func:`repro.router.incremental.reroute_nets` can later rip
            up and reroute individual nets.
    """

    def __init__(
        self,
        design: Design,
        params: RouterParams | None = None,
        keep_state: bool = False,
    ) -> None:
        self.design = design
        self.params = params or RouterParams()
        self.keep_state = keep_state

    def run(self) -> RouteReport:
        """Route the design at its current placement."""
        with obs.span("route/run") as run_span:
            report = self._run()
            run_span.set(
                hof=report.hof,
                vof=report.vof,
                wirelength=report.wirelength,
                rounds=report.rounds,
                segments=report.num_segments,
            )
        return report

    def _run(self) -> RouteReport:
        start = time.perf_counter()
        params = self.params
        design = self.design
        grid = build_grid(design)
        demand = DemandMaps.zeros(grid)
        cost_model = CostModel(grid, demand, params.cost)

        pin_flat = self._add_pin_demand(grid, demand)
        with obs.span("route/rsmt") as rsmt_span:
            segments, seg_net = build_net_segments(design, grid)
            rsmt_span.set(segments=len(segments))
        routes = [None] * len(segments)
        dmd_h = demand.dmd_h.ravel()
        dmd_v = demand.dmd_v.ravel()
        cost_h, cost_v = cost_model.cost_maps()
        cost_h_flat = cost_h.ravel()
        cost_v_flat = cost_v.ravel()

        # Initial pass: short segments first so long ones see congestion.
        with obs.span("route/initial_pass", segments=len(segments)):
            order = sorted(
                range(len(segments)),
                key=lambda i: abs(segments[i][0] - segments[i][2])
                + abs(segments[i][1] - segments[i][3]),
            )
            for i in order:
                gx0, gy0, gx1, gy1 = segments[i]
                route = best_pattern_route(
                    gx0, gy0, gx1, gy1, grid.ny, cost_h_flat, cost_v_flat,
                    use_z=params.use_z_patterns,
                )
                routes[i] = route
                commit_route(route, +1.0, dmd_h, dmd_v, cost_model, cost_h_flat, cost_v_flat)

        overflow_history = [demand.overflow_ratio(grid)]
        rip_ups = obs.counter("route/rip_ups")
        rounds = 0
        for rnd in range(params.rrr_rounds):
            hof, vof = demand.overflow_ratio(grid)
            if hof <= 0.0 and vof <= 0.0:
                break
            rounds += 1
            with obs.span("route/rrr_round", round=rnd) as round_span:
                cost_model.bump_history()
                cost_h, cost_v = cost_model.cost_maps()
                cost_h_flat = cost_h.ravel()
                cost_v_flat = cost_v.ravel()
                margin = params.maze_margin + rnd * params.maze_margin_growth
                victims = select_victims(routes, grid, demand)
                rerouted = victims[: params.max_reroute_per_round]
                rip_ups.inc(len(rerouted))
                for i in rerouted:
                    gx0, gy0, gx1, gy1 = segments[i]
                    commit_route(
                        routes[i], -1.0, dmd_h, dmd_v, cost_model, cost_h_flat, cost_v_flat
                    )
                    new_route = maze_route(gx0, gy0, gx1, gy1, cost_h, cost_v, margin)
                    if new_route is None:
                        new_route = routes[i]
                    routes[i] = new_route
                    commit_route(
                        new_route, +1.0, dmd_h, dmd_v, cost_model, cost_h_flat, cost_v_flat
                    )
                overflow_history.append(demand.overflow_ratio(grid))
                round_span.set(
                    rerouted=len(rerouted),
                    hof=overflow_history[-1][0],
                    vof=overflow_history[-1][1],
                )

        hof, vof = demand.overflow_ratio(grid)
        wirelength, via_count = wirelength_and_vias(routes, grid)
        state = None
        if self.keep_state:
            state = RouteState(
                grid=grid,
                demand=demand,
                cost_model=cost_model,
                segments=segments,
                seg_net=seg_net,
                routes=routes,
                pin_flat=pin_flat,
                params=params,
            )
        return RouteReport(
            hof=hof,
            vof=vof,
            wirelength=wirelength,
            runtime=time.perf_counter() - start,
            rounds=rounds,
            num_segments=len(segments),
            via_count=via_count,
            grid=grid,
            demand=demand,
            overflow_history=overflow_history,
            state=state,
        )

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _add_pin_demand(self, grid: RoutingGrid, demand: DemandMaps) -> np.ndarray:
        flat = pin_flat_indices(self.design, grid)
        if self.params.pin_demand > 0 and len(flat):
            np.add.at(demand.dmd_h.ravel(), flat, self.params.pin_demand)
            np.add.at(demand.dmd_v.ravel(), flat, self.params.pin_demand)
        return flat
