"""Bounded maze routing on the Gcell grid.

Used by the rip-up-and-reroute phase for segments that pattern routing
cannot place without overflow.  The search is restricted to the segment
bounding box expanded by a margin; costs charge the entered Gcell in the
movement direction and, on turns, additionally charge the corner Gcell in
the new direction — consistent with the run-based accounting of
:mod:`repro.router.pattern`.

The search itself lives in :mod:`repro.kernels` (``maze_search``): the
``"reference"`` backend is the historical A*, the ``"vectorized"``
backend a batched label-correcting wavefront.  Both return the same
charged-cell accounting at equal path cost.
"""

from __future__ import annotations

import numpy as np

from .. import kernels, obs


def maze_route(
    gx0: int,
    gy0: int,
    gx1: int,
    gy1: int,
    cost_h: np.ndarray,
    cost_v: np.ndarray,
    margin: int,
) -> "tuple | None":
    """Cheapest path from ``(gx0, gy0)`` to ``(gx1, gy1)`` in an expanded bbox.

    Args:
        cost_h, cost_v: 2D per-Gcell direction costs (>= 1).
        margin: bbox expansion in Gcells.

    Returns:
        ``(h_cells, v_cells)`` flat index arrays, or ``None`` when no
        path exists in the window.
    """
    obs.counter("maze/calls").inc()
    nx, ny = cost_h.shape
    xlo = max(min(gx0, gx1) - margin, 0)
    xhi = min(max(gx0, gx1) + margin, nx - 1)
    ylo = max(min(gy0, gy1) - margin, 0)
    yhi = min(max(gy0, gy1) + margin, ny - 1)
    if gx0 == gx1 and gy0 == gy1:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    route = kernels.maze_search(
        gx0, gy0, gx1, gy1, cost_h, cost_v, xlo, xhi, ylo, yhi
    )
    if route is None:
        obs.counter("maze/no_path").inc()
    return route
