"""Bounded A* maze routing on the Gcell grid.

Used by the rip-up-and-reroute phase for segments that pattern routing
cannot place without overflow.  The search is restricted to the segment
bounding box expanded by a margin; costs charge the entered Gcell in the
movement direction and, on turns, additionally charge the corner Gcell in
the new direction — consistent with the run-based accounting of
:mod:`repro.router.pattern`.
"""

from __future__ import annotations

import heapq

import numpy as np

from .. import obs

_DIRS = ((1, 0), (-1, 0), (0, 1), (0, -1))  # dx, dy
_H = 0  # horizontal movement kind
_V = 1


def maze_route(
    gx0: int,
    gy0: int,
    gx1: int,
    gy1: int,
    cost_h: np.ndarray,
    cost_v: np.ndarray,
    margin: int,
) -> "tuple | None":
    """A* from ``(gx0, gy0)`` to ``(gx1, gy1)`` inside an expanded bbox.

    Args:
        cost_h, cost_v: 2D per-Gcell direction costs (>= 1).
        margin: bbox expansion in Gcells.

    Returns:
        ``(h_cells, v_cells)`` flat index arrays, or ``None`` when no
        path exists in the window.
    """
    obs.counter("maze/calls").inc()
    nx, ny = cost_h.shape
    xlo = max(min(gx0, gx1) - margin, 0)
    xhi = min(max(gx0, gx1) + margin, nx - 1)
    ylo = max(min(gy0, gy1) - margin, 0)
    yhi = min(max(gy0, gy1) + margin, ny - 1)
    if gx0 == gx1 and gy0 == gy1:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)

    # State: (x, y, last_dir) with last_dir in {H, V, 2=start}.
    best = {}
    came = {}
    start = (gx0, gy0, 2)
    best[start] = 0.0
    frontier = [(_heuristic(gx0, gy0, gx1, gy1), 0.0, start)]
    goal_state = None
    pops = 0
    while frontier:
        f, g, state = heapq.heappop(frontier)
        pops += 1
        if g > best.get(state, np.inf):
            continue
        x, y, last = state
        if x == gx1 and y == gy1:
            goal_state = state
            break
        for dx, dy in _DIRS:
            nx_, ny_ = x + dx, y + dy
            if not (xlo <= nx_ <= xhi and ylo <= ny_ <= yhi):
                continue
            move = _H if dy == 0 else _V
            step = cost_h[nx_, ny_] if move == _H else cost_v[nx_, ny_]
            turn = 0.0
            if last == 2:
                # Leaving the start: charge the start cell in this direction.
                turn = cost_h[x, y] if move == _H else cost_v[x, y]
            elif last != move:
                turn = cost_h[x, y] if move == _H else cost_v[x, y]
            ng = g + step + turn
            nstate = (nx_, ny_, move)
            if ng < best.get(nstate, np.inf) - 1e-12:
                best[nstate] = ng
                came[nstate] = state
                heapq.heappush(
                    frontier, (ng + _heuristic(nx_, ny_, gx1, gy1), ng, nstate)
                )
    obs.histogram("maze/pops").observe(pops)
    if goal_state is None:
        obs.counter("maze/no_path").inc()
        return None
    return _reconstruct(goal_state, came, ny)


def _heuristic(x: int, y: int, tx: int, ty: int) -> float:
    return abs(x - tx) + abs(y - ty)


def _reconstruct(goal, came, ny: int):
    """Charged-cell lists from the predecessor chain."""
    h_cells = []
    v_cells = []
    state = goal
    while state in came:
        prev = came[state]
        x, y, move = state
        px, py, plast = prev
        (h_cells if move == _H else v_cells).append(x * ny + y)
        # Turn (or start) charge on the corner cell.
        if plast == 2 or plast != move:
            (h_cells if move == _H else v_cells).append(px * ny + py)
        state = prev
    return (
        np.unique(np.asarray(h_cells, dtype=np.int64)),
        np.unique(np.asarray(v_cells, dtype=np.int64)),
    )
