"""Incremental rip-up-and-reroute over retained routing state.

An ECO edit moves a handful of cells, so only the nets attached to them
(and whatever congestion they displace) need rerouting.  Given the
:class:`~repro.router.router.RouteState` captured by a
``keep_state=True`` run, :func:`reroute_nets` rips up exactly the dirty
nets' segments, reroutes them against the live congestion maps, and
negotiates residual overflow with a bounded, window-restricted RRR pass
— the full-router machinery applied to a sliver of the problem.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..netlist.design import Design
from .maze import maze_route
from .pattern import best_pattern_route
from .router import (
    RouteReport,
    RouteState,
    build_net_segments,
    commit_route,
    pin_flat_indices,
    select_victims,
    wirelength_and_vias,
)


def _update_pin_demand(state: RouteState, design: Design) -> None:
    """Move per-pin local demand to the pins' current Gcells."""
    new_flat = pin_flat_indices(design, state.grid)
    old_flat = state.pin_flat
    pd = state.params.pin_demand
    if pd > 0:
        dmd_h = state.demand.dmd_h.ravel()
        dmd_v = state.demand.dmd_v.ravel()
        if len(new_flat) == len(old_flat):
            moved = new_flat != old_flat
            old_touch, new_touch = old_flat[moved], new_flat[moved]
        else:  # topology changed: reassign every pin's demand
            old_touch, new_touch = old_flat, new_flat
        if len(old_touch):
            np.add.at(dmd_h, old_touch, -pd)
            np.add.at(dmd_v, old_touch, -pd)
        if len(new_touch):
            np.add.at(dmd_h, new_touch, pd)
            np.add.at(dmd_v, new_touch, pd)
    state.pin_flat = new_flat


def _bump_history_window(state: RouteState, window) -> None:
    """History bump restricted to the dirty window, so repeated ECO
    steps do not inflate costs across the whole die."""
    grid = state.grid
    over_h, over_v = state.demand.overflow_maps(grid)
    mask = np.ones((grid.nx, grid.ny), dtype=bool)
    if window is not None:
        gx_lo, gy_lo, gx_hi, gy_hi = window
        mask[:] = False
        mask[max(gx_lo, 0): gx_hi + 1, max(gy_lo, 0): gy_hi + 1] = True
    inc = state.cost_model.params.history_increment
    state.cost_model.hist_h += inc * ((over_h > 0) & mask)
    state.cost_model.hist_v += inc * ((over_v > 0) & mask)


def reroute_nets(
    state: RouteState,
    design: Design,
    nets,
    window=None,
    rounds: int = 2,
    max_reroute: int = 2000,
) -> RouteReport:
    """Rip up and reroute ``nets``; return a fresh :class:`RouteReport`.

    Mutates ``state`` in place (demand, segments, routes) so successive
    calls compose.  Metrics (HOF/VOF, wirelength, vias) are recomputed
    over the *whole* solution, making the report directly comparable to
    a cold full reroute.

    Args:
        state: retained state from ``GlobalRouter(..., keep_state=True)``
            or a previous :func:`reroute_nets` call.
        design: the (possibly rebuilt) design at its current placement;
            net ids must be stable w.r.t. the routed netlist.
        nets: net indices whose segments are stale.
        window: inclusive ``(gx_lo, gy_lo, gx_hi, gy_hi)`` dirty Gcell
            box; the RRR negotiation only rips victims crossing it.
        rounds: bounded local RRR rounds after the pattern pass.
        max_reroute: rip-up cap per local round.
    """
    start = time.perf_counter()
    nets = np.unique(np.asarray(list(nets), dtype=np.int64))
    grid = state.grid
    demand = state.demand
    cost_model = state.cost_model
    params = state.params

    with obs.span("route/reroute_nets", nets=len(nets)) as span:
        # Overflow snapshot at entry: the RRR pass below only negotiates
        # congestion *in excess of* this baseline.  Residual overflow
        # the converged full router already accepted is not this edit's
        # problem; re-ripping it on every delta would pay the maze cost
        # repeatedly without improving the solution.
        over_h0, over_v0 = demand.overflow_maps(grid)
        overflow_baseline = (over_h0.copy(), over_v0.copy())
        _update_pin_demand(state, design)
        dmd_h = demand.dmd_h.ravel()
        dmd_v = demand.dmd_v.ravel()
        cost_h, cost_v = cost_model.cost_maps()
        cost_h_flat = cost_h.ravel()
        cost_v_flat = cost_v.ravel()

        # Rip up every segment owned by a dirty net.
        rip = np.isin(state.seg_net, nets)
        for i in np.nonzero(rip)[0]:
            commit_route(
                state.routes[i], -1.0, dmd_h, dmd_v, cost_model,
                cost_h_flat, cost_v_flat,
            )
        keep = ~rip
        segments = [s for s, k in zip(state.segments, keep) if k]
        routes = [r for r, k in zip(state.routes, keep) if k]
        seg_net_list = list(state.seg_net[keep])

        # Fresh RSMT decomposition of the dirty nets at current pins.
        new_segments, new_seg_net = build_net_segments(
            design, grid, nets=[int(n) for n in nets]
        )
        span.set(ripped=int(rip.sum()), rebuilt=len(new_segments))

        order = sorted(
            range(len(new_segments)),
            key=lambda i: abs(new_segments[i][0] - new_segments[i][2])
            + abs(new_segments[i][1] - new_segments[i][3]),
        )
        for i in order:
            gx0, gy0, gx1, gy1 = new_segments[i]
            route = best_pattern_route(
                gx0, gy0, gx1, gy1, grid.ny, cost_h_flat, cost_v_flat,
                use_z=params.use_z_patterns,
            )
            segments.append(new_segments[i])
            routes.append(route)
            seg_net_list.append(int(new_seg_net[i]))
            commit_route(
                route, +1.0, dmd_h, dmd_v, cost_model,
                cost_h_flat, cost_v_flat,
            )

        # Bounded local negotiation inside the dirty window, restricted
        # to overflow this edit introduced (see the baseline above).
        overflow_history = [demand.overflow_ratio(grid)]
        rounds_run = 0
        for rnd in range(rounds):
            victims = select_victims(routes, grid, demand, window=window,
                                     baseline=overflow_baseline)
            if not victims:
                break
            rounds_run += 1
            _bump_history_window(state, window)
            cost_h, cost_v = cost_model.cost_maps()
            cost_h_flat = cost_h.ravel()
            cost_v_flat = cost_v.ravel()
            margin = params.maze_margin + rnd * params.maze_margin_growth
            for i in victims[:max_reroute]:
                gx0, gy0, gx1, gy1 = segments[i]
                commit_route(
                    routes[i], -1.0, dmd_h, dmd_v, cost_model,
                    cost_h_flat, cost_v_flat,
                )
                new_route = maze_route(gx0, gy0, gx1, gy1, cost_h, cost_v, margin)
                if new_route is None:
                    new_route = routes[i]
                routes[i] = new_route
                commit_route(
                    new_route, +1.0, dmd_h, dmd_v, cost_model,
                    cost_h_flat, cost_v_flat,
                )
            overflow_history.append(demand.overflow_ratio(grid))

        state.segments = segments
        state.routes = routes
        state.seg_net = np.asarray(seg_net_list, dtype=np.int64)

        hof, vof = demand.overflow_ratio(grid)
        wirelength, via_count = wirelength_and_vias(routes, grid)
        span.set(hof=hof, vof=vof, wirelength=wirelength)

    return RouteReport(
        hof=hof,
        vof=vof,
        wirelength=wirelength,
        runtime=time.perf_counter() - start,
        rounds=rounds_run,
        num_segments=len(segments),
        via_count=via_count,
        grid=grid,
        demand=demand,
        overflow_history=overflow_history,
        state=state,
    )
