"""The Gcell routing grid and its blockage-aware capacity model.

The routing region is a 2D array of square Gcells (paper Fig. 1 collapses
the layer dimension into per-direction capacities).  Capacity follows the
Gcell-based resource model of paper Eq. (8): per direction, the basic
track count from the metal stack minus the tracks consumed by blockages
(macro keep-outs, power straps, pin obstructions).

Both the global router and PUFFER's congestion estimator build their maps
on this grid, which is what makes the estimator's output commensurable
with the router's report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design
from ..netlist.geometry import Rect
from ..netlist.technology import HORIZONTAL, VERTICAL


@dataclass
class RoutingGrid:
    """Gcell geometry plus per-direction capacity maps.

    Attributes:
        nx, ny: Gcell counts along x and y.
        gcell_w, gcell_h: Gcell dimensions in database units.
        xlo, ylo: die origin.
        cap_h, cap_v: per-Gcell horizontal/vertical capacities (tracks),
            shape ``(nx, ny)``.
    """

    nx: int
    ny: int
    gcell_w: float
    gcell_h: float
    xlo: float
    ylo: float
    cap_h: np.ndarray
    cap_v: np.ndarray

    def gcell_of(self, x, y) -> tuple:
        """Gcell indices containing point(s) ``(x, y)`` (clamped)."""
        gx = np.clip(((np.asarray(x) - self.xlo) / self.gcell_w).astype(np.int64), 0, self.nx - 1)
        gy = np.clip(((np.asarray(y) - self.ylo) / self.gcell_h).astype(np.int64), 0, self.ny - 1)
        return gx, gy

    def center_of(self, gx, gy) -> tuple:
        """Center coordinates of Gcell(s) ``(gx, gy)``."""
        x = self.xlo + (np.asarray(gx) + 0.5) * self.gcell_w
        y = self.ylo + (np.asarray(gy) + 0.5) * self.gcell_h
        return x, y

    @property
    def num_gcells(self) -> int:
        return self.nx * self.ny


def build_grid(design: Design) -> RoutingGrid:
    """Construct the routing grid for ``design`` per paper Eq. (8)."""
    tech = design.technology
    die = design.die
    nx = max(int(math.ceil(die.width / tech.gcell_size)), 1)
    ny = max(int(math.ceil(die.height / tech.gcell_size)), 1)
    gcell_w = die.width / nx
    gcell_h = die.height / ny

    # layers_in_direction already restricts to routing layers.
    base_h = sum(gcell_w / l.pitch for l in tech.layers_in_direction(HORIZONTAL))
    base_v = sum(gcell_h / l.pitch for l in tech.layers_in_direction(VERTICAL))
    cap_h = np.full((nx, ny), base_h, dtype=np.float64)
    cap_v = np.full((nx, ny), base_v, dtype=np.float64)

    grid = RoutingGrid(nx, ny, gcell_w, gcell_h, die.xlo, die.ylo, cap_h, cap_v)
    for blk in design.blockages:
        _deduct_blockage(design, grid, blk.rect, blk.layer)
    np.maximum(cap_h, 0.0, out=cap_h)
    np.maximum(cap_v, 0.0, out=cap_v)
    return grid


def _deduct_blockage(design: Design, grid: RoutingGrid, rect: Rect, layer: int) -> None:
    """Subtract the tracks a blockage consumes from the affected Gcells.

    For a layer preferring direction H, tracks are stacked vertically at
    the layer pitch: a blockage spanning ``oy`` vertically blocks
    ``oy / pitch`` tracks over the fraction ``ox / gcell_w`` of the Gcell
    span — the ``OL_{H/V}(b, g) / (MetalWidth + WireSpacing)`` term of
    Eq. (8), with the overlap normalized to the Gcell length.
    """
    tech = design.technology
    metal = tech.layers[layer]
    clipped = rect.intersection(design.die)
    if clipped is None:
        return
    ix0 = max(int((clipped.xlo - grid.xlo) / grid.gcell_w), 0)
    ix1 = min(int(math.ceil((clipped.xhi - grid.xlo) / grid.gcell_w)), grid.nx)
    iy0 = max(int((clipped.ylo - grid.ylo) / grid.gcell_h), 0)
    iy1 = min(int(math.ceil((clipped.yhi - grid.ylo) / grid.gcell_h)), grid.ny)
    if ix1 <= ix0 or iy1 <= iy0:
        return
    # Vectorized overlap extents per Gcell row/column in the window.
    gx = np.arange(ix0, ix1)
    gy = np.arange(iy0, iy1)
    ox = np.minimum(clipped.xhi, grid.xlo + (gx + 1) * grid.gcell_w) - np.maximum(
        clipped.xlo, grid.xlo + gx * grid.gcell_w
    )
    oy = np.minimum(clipped.yhi, grid.ylo + (gy + 1) * grid.gcell_h) - np.maximum(
        clipped.ylo, grid.ylo + gy * grid.gcell_h
    )
    ox = np.clip(ox, 0.0, None)
    oy = np.clip(oy, 0.0, None)
    if metal.direction == HORIZONTAL:
        blocked = (oy[None, :] / metal.pitch) * (ox[:, None] / grid.gcell_w)
        grid.cap_h[ix0:ix1, iy0:iy1] -= blocked
    else:
        blocked = (ox[:, None] / metal.pitch) * (oy[None, :] / grid.gcell_h)
        grid.cap_v[ix0:ix1, iy0:iy1] -= blocked


@dataclass
class DemandMaps:
    """Mutable per-direction routing-demand maps on a :class:`RoutingGrid`."""

    dmd_h: np.ndarray
    dmd_v: np.ndarray

    @classmethod
    def zeros(cls, grid: RoutingGrid) -> "DemandMaps":
        return cls(
            np.zeros((grid.nx, grid.ny)),
            np.zeros((grid.nx, grid.ny)),
        )

    def overflow_ratio(self, grid: RoutingGrid) -> tuple:
        """``(hof, vof)`` in percent: total clipped excess over capacity,
        normalized by total capacity per direction."""
        over_h = np.maximum(self.dmd_h - grid.cap_h, 0.0).sum()
        over_v = np.maximum(self.dmd_v - grid.cap_v, 0.0).sum()
        hof = 100.0 * over_h / max(grid.cap_h.sum(), 1e-12)
        vof = 100.0 * over_v / max(grid.cap_v.sum(), 1e-12)
        return float(hof), float(vof)

    def overflow_maps(self, grid: RoutingGrid) -> tuple:
        """Per-Gcell clipped overflow (demand minus capacity, >= 0)."""
        return (
            np.maximum(self.dmd_h - grid.cap_h, 0.0),
            np.maximum(self.dmd_v - grid.cap_v, 0.0),
        )
