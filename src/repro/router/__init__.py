"""Global-routing evaluator on a Gcell grid."""

from .cost import CostModel, CostParams
from .grid import DemandMaps, RoutingGrid, build_grid
from .layers import LayerUsage, assign_layers, format_layer_table
from .maze import maze_route
from .pattern import (
    best_pattern_route,
    l_route,
    route_cost,
    straight_route,
    z_route,
)
from .incremental import reroute_nets
from .router import (
    GlobalRouter,
    RouteReport,
    RouterParams,
    RouteState,
    build_net_segments,
    wirelength_and_vias,
)

__all__ = [
    "CostModel",
    "CostParams",
    "DemandMaps",
    "GlobalRouter",
    "LayerUsage",
    "RouteReport",
    "RouteState",
    "RouterParams",
    "RoutingGrid",
    "assign_layers",
    "best_pattern_route",
    "build_grid",
    "build_net_segments",
    "format_layer_table",
    "l_route",
    "maze_route",
    "reroute_nets",
    "route_cost",
    "straight_route",
    "wirelength_and_vias",
    "z_route",
]
