"""Global-routing evaluator on a Gcell grid."""

from .cost import CostModel, CostParams
from .grid import DemandMaps, RoutingGrid, build_grid
from .layers import LayerUsage, assign_layers, format_layer_table
from .maze import maze_route
from .pattern import (
    best_pattern_route,
    l_route,
    route_cost,
    straight_route,
    z_route,
)
from .router import GlobalRouter, RouteReport, RouterParams

__all__ = [
    "CostModel",
    "CostParams",
    "DemandMaps",
    "GlobalRouter",
    "LayerUsage",
    "RouteReport",
    "RouterParams",
    "RoutingGrid",
    "assign_layers",
    "best_pattern_route",
    "build_grid",
    "format_layer_table",
    "l_route",
    "maze_route",
    "route_cost",
    "straight_route",
    "z_route",
]
