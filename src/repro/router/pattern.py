"""Pattern routing: straight and L-shaped routes on the Gcell grid.

Routes are represented as a pair of flat Gcell index arrays
``(h_cells, v_cells)`` — the Gcells whose horizontal / vertical demand the
route consumes.  A corner Gcell appears in both arrays, matching the
run-based accounting used throughout the router.
"""

from __future__ import annotations

import numpy as np

Route = tuple  # (h_cells, v_cells), flat int64 arrays

_EMPTY = np.zeros(0, dtype=np.int64)


def straight_route(gx0: int, gy0: int, gx1: int, gy1: int, ny: int) -> Route:
    """Route an I-shaped segment (endpoints aligned in x or y)."""
    if gy0 == gy1:
        lo, hi = sorted((gx0, gx1))
        cells = np.arange(lo, hi + 1, dtype=np.int64) * ny + gy0
        if lo == hi:
            return _EMPTY, _EMPTY
        return cells, _EMPTY
    if gx0 == gx1:
        lo, hi = sorted((gy0, gy1))
        cells = gx0 * ny + np.arange(lo, hi + 1, dtype=np.int64)
        return _EMPTY, cells
    raise ValueError("straight_route called on a non-aligned segment")


def l_route(gx0: int, gy0: int, gx1: int, gy1: int, ny: int, corner_first: bool) -> Route:
    """An L-shaped route; ``corner_first`` picks the corner at
    ``(gx1, gy0)`` (horizontal run first) versus ``(gx0, gy1)``."""
    xlo, xhi = sorted((gx0, gx1))
    ylo, yhi = sorted((gy0, gy1))
    if corner_first:
        h_y, v_x = gy0, gx1
    else:
        h_y, v_x = gy1, gx0
    h_cells = np.arange(xlo, xhi + 1, dtype=np.int64) * ny + h_y
    v_cells = v_x * ny + np.arange(ylo, yhi + 1, dtype=np.int64)
    return h_cells, v_cells


def z_route(
    gx0: int, gy0: int, gx1: int, gy1: int, ny: int, mid: int, horizontal_first: bool
) -> Route:
    """A Z-shaped route with two corners.

    ``horizontal_first`` routes H at ``gy0`` to column ``mid``, V along
    ``mid``, then H at ``gy1``; otherwise the transposed pattern with
    ``mid`` as the intermediate row.
    """
    if horizontal_first:
        xa, xb = sorted((gx0, mid))
        xc, xd = sorted((mid, gx1))
        ylo, yhi = sorted((gy0, gy1))
        h_cells = np.concatenate(
            [
                np.arange(xa, xb + 1, dtype=np.int64) * ny + gy0,
                np.arange(xc, xd + 1, dtype=np.int64) * ny + gy1,
            ]
        )
        v_cells = mid * ny + np.arange(ylo, yhi + 1, dtype=np.int64)
        return h_cells, v_cells
    ya, yb = sorted((gy0, mid))
    yc, yd = sorted((mid, gy1))
    xlo, xhi = sorted((gx0, gx1))
    v_cells = np.concatenate(
        [
            gx0 * ny + np.arange(ya, yb + 1, dtype=np.int64),
            gx1 * ny + np.arange(yc, yd + 1, dtype=np.int64),
        ]
    )
    h_cells = np.arange(xlo, xhi + 1, dtype=np.int64) * ny + mid
    return h_cells, v_cells


def route_cost(route: Route, cost_h_flat: np.ndarray, cost_v_flat: np.ndarray) -> float:
    """Total cost of a route under the given flat cost maps."""
    h_cells, v_cells = route
    total = 0.0
    if len(h_cells):
        total += float(cost_h_flat[h_cells].sum())
    if len(v_cells):
        total += float(cost_v_flat[v_cells].sum())
    return total


def best_pattern_route(
    gx0: int,
    gy0: int,
    gx1: int,
    gy1: int,
    ny: int,
    cost_h_flat: np.ndarray,
    cost_v_flat: np.ndarray,
    use_z: bool = False,
) -> Route:
    """The cheapest straight/L (optionally Z) route for a segment."""
    if gx0 == gx1 and gy0 == gy1:
        return _EMPTY, _EMPTY
    if gx0 == gx1 or gy0 == gy1:
        return straight_route(gx0, gy0, gx1, gy1, ny)
    candidates = [
        l_route(gx0, gy0, gx1, gy1, ny, corner_first=True),
        l_route(gx0, gy0, gx1, gy1, ny, corner_first=False),
    ]
    if use_z:
        xlo, xhi = sorted((gx0, gx1))
        ylo, yhi = sorted((gy0, gy1))
        for mid in _midpoints(xlo, xhi):
            candidates.append(z_route(gx0, gy0, gx1, gy1, ny, mid, True))
        for mid in _midpoints(ylo, yhi):
            candidates.append(z_route(gx0, gy0, gx1, gy1, ny, mid, False))
    costs = [route_cost(r, cost_h_flat, cost_v_flat) for r in candidates]
    return candidates[int(np.argmin(costs))]


def _midpoints(lo: int, hi: int, count: int = 3) -> list:
    """Up to ``count`` interior split positions between ``lo`` and ``hi``."""
    interior = range(lo + 1, hi)
    if len(interior) <= count:
        return list(interior)
    step = len(interior) / (count + 1)
    return [interior[int(step * (i + 1))] for i in range(count)]
