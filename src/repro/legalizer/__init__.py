"""Legalization: Abacus, Tetris fallback, discrete padding, and
dirty-region re-legalization."""

from .abacus import LegalizeResult, legalize_abacus
from .incremental import legalize_region
from .padding import (
    DEFAULT_AREA_CAP,
    cap_padding_area,
    discretize_padding,
    padded_widths,
)
from .rows import RowSegment, SegmentIndex, build_segments
from .tetris import legalize_tetris

__all__ = [
    "DEFAULT_AREA_CAP",
    "LegalizeResult",
    "RowSegment",
    "SegmentIndex",
    "build_segments",
    "cap_padding_area",
    "discretize_padding",
    "legalize_abacus",
    "legalize_region",
    "legalize_tetris",
    "padded_widths",
]
