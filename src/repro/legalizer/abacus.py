"""Abacus standard-cell legalization [20].

Cells are processed left to right; each cell is tried in the rows nearest
its global-placement position, where the classic cluster dynamic program
(``AddCell`` / ``AddCluster`` / ``Collapse``) yields the minimal quadratic
displacement placement of the row under the no-overlap constraint.  The
row with the cheapest insertion wins.

PUFFER's white-space-assisted legalization passes *padded* cell widths
(paper Eq. 17); cells are placed centered in their padded footprint, so
the extra width becomes distributed white space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import kernels, obs
from ..netlist.design import Design
from .rows import SegmentIndex


class _SegmentState:
    """Cluster state of one row segment, as parallel arrays.

    Clusters (maximal runs of abutting cells) are stored left to right
    in ``e`` (total weight), ``q`` (weighted target sum), ``w`` (total
    width), ``x`` (clamped optimal start); only the first ``n`` entries
    are valid.  The array layout feeds :func:`repro.kernels.abacus_trial`
    directly, so the hot trial-insertion scan runs on the active kernel
    backend while the (once-per-cell) commit stays scalar and therefore
    backend-independent.
    """

    __slots__ = ("segment", "n", "e", "q", "w", "x", "cells", "used")

    def __init__(self, segment) -> None:
        self.segment = segment
        self.n = 0
        self.e = np.zeros(8)
        self.q = np.zeros(8)
        self.w = np.zeros(8)
        self.x = np.zeros(8)
        self.cells: list = []  # per-cluster lists of (cell, width, target_x)
        self.used = 0.0

    def free(self) -> float:
        return self.segment.width - self.used

    def _reserve(self) -> None:
        if self.n == len(self.e):
            for name in ("e", "q", "w", "x"):
                old = getattr(self, name)
                grown = np.zeros(2 * len(old))
                grown[: self.n] = old
                setattr(self, name, grown)


@dataclass
class LegalizeResult:
    """Outcome of a legalization run."""

    total_displacement: float
    max_displacement: float
    num_cells: int
    failed: int


def legalize_abacus(
    design: Design,
    widths: np.ndarray | None = None,
    max_row_search: int | None = None,
) -> LegalizeResult:
    """Legalize all movable standard cells of ``design`` in place.

    Args:
        design: the placed design; positions are overwritten.
        widths: per-cell *footprint* widths (defaults to ``design.w``);
            PUFFER passes padded widths here.  Cells are centered in
            their footprint.
        max_row_search: inclusive cap on the row-distance search radius;
            ``0`` restricts every cell to its home row, ``None`` (the
            default) searches all rows.

    Returns:
        Displacement statistics.  Raises ``RuntimeError`` when a cell
        fits in no segment at all.
    """
    with obs.span("legalize/abacus") as span:
        result = _legalize_abacus(design, widths, max_row_search)
        span.set(
            displacement=result.total_displacement,
            max_displacement=result.max_displacement,
            cells=result.num_cells,
        )
    return result


def _legalize_abacus(
    design: Design,
    widths: np.ndarray | None,
    max_row_search: int | None,
) -> LegalizeResult:
    widths = design.w if widths is None else np.asarray(widths, dtype=np.float64)
    index = SegmentIndex.build(design)
    if index.num_rows == 0:
        raise RuntimeError("design has no rows")
    states = {}
    for row, segs in index.by_row.items():
        states[row] = [_SegmentState(s) for s in segs]
    site = design.technology.site_width
    row_height = design.technology.row_height
    # `is None`, not falsiness: an explicit 0 means home-row-only.
    if max_row_search is None:
        max_row_search = index.num_rows

    cells = np.flatnonzero(design.movable & ~design.is_macro)
    order = cells[np.argsort(design.x[cells], kind="stable")]
    target_x = design.x.copy()
    target_y = design.y.copy()
    placements = {}
    failed = 0

    for cell in order:
        cell = int(cell)
        width = float(widths[cell])
        w_sites = max(int(math.ceil(width / site - 1e-9)), 1) * site
        tx = target_x[cell] - w_sites / 2.0  # left edge target
        ty = target_y[cell] - design.h[cell] / 2.0
        home = index.nearest_row(ty)
        best = None  # (cost, state, trial_tuple)
        for radius in range(index.num_rows):
            rows = {home - radius, home + radius}
            y_cost = (radius * row_height) ** 2 if radius else 0.0
            if best is not None and y_cost >= best[0]:
                break
            for row in rows:
                if not 0 <= row < index.num_rows:
                    continue
                dy = index.row_ys[row] - ty
                for state in states.get(row, []):
                    if state.free() < w_sites - 1e-9:
                        continue
                    seg = state.segment
                    trial = kernels.abacus_trial(
                        state.e, state.q, state.w, state.x, state.n,
                        seg.xlo, seg.xhi, seg.width,
                        w_sites, _weight(design, cell), tx,
                    )
                    if trial is None:
                        continue
                    x_final = trial[0]
                    cost = (x_final - tx) ** 2 + dy * dy
                    if best is None or cost < best[0]:
                        best = (cost, state, row, x_final)
            # Radius cap checked *after* the radius is searched, so the
            # cap is inclusive and 0 still visits the home row.
            if radius >= max_row_search:
                break
        if best is None:
            failed += 1
            continue
        _, state, row, _ = best
        _commit_insert(state, cell, w_sites, _weight(design, cell), tx)
        state.used += w_sites
        placements[cell] = (state, row)

    disp_total, disp_max = _finalize(design, states, index, widths, site)
    if failed:
        raise RuntimeError(f"legalization failed for {failed} cells")
    return LegalizeResult(
        total_displacement=disp_total,
        max_displacement=disp_max,
        num_cells=len(order),
        failed=failed,
    )


def _weight(design: Design, cell: int) -> float:
    return float(design.w[cell] * design.h[cell])


def _commit_insert(state: _SegmentState, cell, width, weight, target_x) -> None:
    """Mutating Abacus AddCell / Collapse step.

    Runs once per placed cell (the trial scan already found the row), so
    it stays a scalar loop over the cluster arrays — identical state on
    every kernel backend.
    """
    seg = state.segment
    state._reserve()
    i = state.n
    x0 = min(max(target_x, seg.xlo), seg.xhi - width)
    state.e[i] = weight
    state.q[i] = weight * x0
    state.w[i] = width
    state.x[i] = min(max(state.q[i] / state.e[i], seg.xlo), seg.xhi - width)
    state.cells.append([(cell, width, target_x)])
    state.n = i + 1
    while state.n >= 2:
        i = state.n - 1
        p = i - 1
        if state.x[p] + state.w[p] <= state.x[i] + 1e-9:
            break
        state.e[p] += state.e[i]
        state.q[p] += state.q[i] - state.e[i] * state.w[p]
        state.w[p] += state.w[i]
        state.cells[p].extend(state.cells.pop())
        state.n = p + 1
        state.x[p] = min(
            max(state.q[p] / state.e[p], seg.xlo), seg.xhi - state.w[p]
        )


def _finalize(design: Design, states, index: SegmentIndex, widths, site) -> tuple:
    """Snap clusters to sites and write cell centers back to the design."""
    disp_total = 0.0
    disp_max = 0.0
    row_height = design.technology.row_height
    for row, seg_states in states.items():
        y = index.row_ys[row]
        for state in seg_states:
            for ci in range(state.n):
                xs = state.segment.xlo + math.floor(
                    (state.x[ci] - state.segment.xlo) / site + 1e-9
                ) * site
                cursor = xs
                for cell, width, _target in state.cells[ci]:
                    old_x, old_y = design.x[cell], design.y[cell]
                    # Center the actual cell in its (possibly padded)
                    # footprint, snapped so the cell edge stays on a site.
                    slack = width - design.w[cell]
                    left_pad = math.floor(slack / 2.0 / site + 1e-9) * site
                    design.x[cell] = cursor + left_pad + design.w[cell] / 2.0
                    design.y[cell] = y + design.h[cell] / 2.0
                    d = math.hypot(design.x[cell] - old_x, design.y[cell] - old_y)
                    disp_total += d
                    disp_max = max(disp_max, d)
                    cursor += width
    return disp_total, disp_max
