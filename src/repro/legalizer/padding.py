"""Discrete cell padding for white-space-assisted legalization.

Global placement carries continuous padding; legalization requires cell
footprints to be whole site multiples.  Paper Eq. (17) discretizes the
padding with a staircase function

``DisPad(c) = floor(theta * (Pad(c)/mp + 1/2))``

where ``mp`` is the maximum padding over all cells and ``theta`` is a
strategy parameter.  The total padded area is capped (the paper uses 5 %
of the movable area): while over budget, the cells with the *smallest*
padding inside each discrete level are relegated one level down.
"""

from __future__ import annotations

import numpy as np

from ..netlist.design import Design

DEFAULT_AREA_CAP = 0.05


def discretize_padding(
    pad: np.ndarray,
    theta: float,
    site_width: float,
) -> np.ndarray:
    """Paper Eq. (17): continuous padding to whole-site padding levels.

    Args:
        pad: per-cell continuous padding (>= 0; zeros stay zero).
        theta: staircase strategy parameter (number of levels).
        site_width: one padding level equals one site.

    Returns:
        Per-cell discrete padding *width* in database units.
    """
    pad = np.maximum(np.asarray(pad, dtype=np.float64), 0.0)
    mp = pad.max()
    if mp <= 0.0:
        return np.zeros_like(pad)
    levels = np.floor(theta * (pad / mp + 0.5)).astype(np.int64)
    levels[pad <= 0.0] = 0
    return levels * site_width


def cap_padding_area(
    design: Design,
    dis_pad: np.ndarray,
    area_cap: float = DEFAULT_AREA_CAP,
) -> np.ndarray:
    """Enforce the total-padding-area budget of Sec. III-D.

    While the padded area exceeds ``area_cap`` times the movable cell
    area, pick the cells with the smallest continuous padding in each
    occupied discrete level and relegate them one level down.  Here the
    per-level orderings use the discrete pad itself as the tie-break
    carrier, so relegation removes one site from the currently weakest
    padded cells level by level.

    Args:
        design: provides cell heights and the movable mask.
        dis_pad: per-cell discrete padding widths (modified copy returned).
        area_cap: maximum padded area as a fraction of movable area.

    Returns:
        The capped per-cell discrete padding widths.
    """
    dis_pad = np.asarray(dis_pad, dtype=np.float64).copy()
    movable = design.movable & ~design.is_macro
    budget = area_cap * design.movable_area
    site = design.technology.site_width

    def padded_area() -> float:
        return float((dis_pad[movable] * design.h[movable]).sum())

    guard = 0
    while padded_area() > budget and guard < 10_000:
        guard += 1
        levels = np.unique(dis_pad[movable & (dis_pad > 0)])
        if len(levels) == 0:
            break
        removed = False
        for level in levels:
            mask = movable & (np.abs(dis_pad - level) < 1e-9)
            idx = np.flatnonzero(mask)
            if len(idx) == 0:
                continue
            # Relegate the smallest-height (cheapest) half of the level,
            # at least one cell, by one site.
            count = max(len(idx) // 4, 1)
            chosen = idx[np.argsort(design.h[idx])[:count]]
            dis_pad[chosen] = np.maximum(dis_pad[chosen] - site, 0.0)
            removed = True
            if padded_area() <= budget:
                break
        if not removed:
            break
    return dis_pad


def padded_widths(
    design: Design,
    pad: np.ndarray,
    theta: float,
    area_cap: float = DEFAULT_AREA_CAP,
) -> np.ndarray:
    """Per-cell legalization footprint widths from continuous padding.

    Combines Eq. (17) discretization with the area cap and returns
    ``design.w + DisPad`` for movable standard cells (fixed cells and
    macros keep their native width).
    """
    site = design.technology.site_width
    dis = discretize_padding(pad, theta, site)
    dis = cap_padding_area(design, dis, area_cap)
    widths = design.w.copy()
    movable = design.movable & ~design.is_macro
    widths[movable] += dis[movable]
    return widths
