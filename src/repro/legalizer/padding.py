"""Discrete cell padding for white-space-assisted legalization.

Global placement carries continuous padding; legalization requires cell
footprints to be whole site multiples.  Paper Eq. (17) discretizes the
padding with a staircase function

``DisPad(c) = floor(theta * Pad(c)/mp + 1/2)``

where ``mp`` is the maximum padding over all cells and ``theta`` is a
strategy parameter — half-up rounding of ``theta * Pad(c)/mp``, with the
``+ 1/2`` *inside* the floor argument.  (A transcription that reads it
as ``floor(theta * (Pad(c)/mp + 1/2))`` hands every epsilon-padded cell
``floor(theta/2)`` levels; ``repro.verify``'s padding checker and the
regression tests in ``tests/test_legal_padding.py`` pin the correct
form.)  The total padded area is capped (the paper uses 5 % of the
movable area): while over budget, the cells with the *smallest*
continuous padding inside each discrete level are relegated one level
down.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..netlist.design import Design

DEFAULT_AREA_CAP = 0.05


def discretize_padding(
    pad: np.ndarray,
    theta: float,
    site_width: float,
) -> np.ndarray:
    """Paper Eq. (17): continuous padding to whole-site padding levels.

    Args:
        pad: per-cell continuous padding (>= 0; zeros stay zero).
        theta: staircase strategy parameter (number of levels).
        site_width: one padding level equals one site.

    Returns:
        Per-cell discrete padding *width* in database units.
    """
    pad = np.maximum(np.asarray(pad, dtype=np.float64), 0.0)
    mp = pad.max()
    if mp <= 0.0:
        return np.zeros_like(pad)
    # Half-up rounding of theta * pad/mp: the +1/2 belongs inside the
    # floor argument (Eq. 17), so a vanishing pad maps to level 0.
    levels = np.floor(theta * pad / mp + 0.5).astype(np.int64)
    levels[pad <= 0.0] = 0
    return levels * site_width


def cap_padding_area(
    design: Design,
    dis_pad: np.ndarray,
    area_cap: float = DEFAULT_AREA_CAP,
    *,
    pad: np.ndarray | None = None,
    max_rounds: int = 10_000,
) -> np.ndarray:
    """Enforce the total-padding-area budget of Sec. III-D.

    While the padded area exceeds ``area_cap`` times the movable cell
    area, pick the cells with the *smallest continuous padding* in each
    occupied discrete level and relegate them one level down — the
    paper-faithful order: the cells whose padding demand was weakest
    lose their site first.  When ``pad`` is not supplied the cells of a
    level are indistinguishable by padding, and the smallest-height
    cells (the cheapest area-wise) are relegated instead.

    If the budget is still exceeded after ``max_rounds`` relegation
    rounds, the loop stops and the truncation is reported through the
    observability layer (``legalize/padding_cap_exhausted`` counter and
    event) instead of silently returning an over-budget result.

    Args:
        design: provides cell heights and the movable mask.
        dis_pad: per-cell discrete padding widths (modified copy returned).
        area_cap: maximum padded area as a fraction of movable area.
        pad: per-cell continuous padding, used to order relegation
            within a level.
        max_rounds: guard on the relegation loop.

    Returns:
        The capped per-cell discrete padding widths.
    """
    dis_pad = np.asarray(dis_pad, dtype=np.float64).copy()
    movable = design.movable & ~design.is_macro
    budget = area_cap * design.movable_area
    site = design.technology.site_width
    order_key = design.h if pad is None else np.asarray(pad, dtype=np.float64)

    def padded_area() -> float:
        return float((dis_pad[movable] * design.h[movable]).sum())

    guard = 0
    while padded_area() > budget and guard < max_rounds:
        guard += 1
        levels = np.unique(dis_pad[movable & (dis_pad > 0)])
        if len(levels) == 0:
            break
        removed = False
        for level in levels:
            mask = movable & (np.abs(dis_pad - level) < 1e-9)
            idx = np.flatnonzero(mask)
            if len(idx) == 0:
                continue
            # Relegate the weakest quarter of the level, at least one
            # cell, by one site.
            count = max(len(idx) // 4, 1)
            chosen = idx[np.argsort(order_key[idx], kind="stable")[:count]]
            dis_pad[chosen] = np.maximum(dis_pad[chosen] - site, 0.0)
            removed = True
            if padded_area() <= budget:
                break
        if not removed:
            break
    if padded_area() > budget:
        obs.counter("legalize/padding_cap_exhausted").inc()
        obs.event(
            "legalize/padding_cap_exhausted",
            rounds=guard,
            padded_area=padded_area(),
            budget=budget,
        )
    return dis_pad


def padded_widths(
    design: Design,
    pad: np.ndarray,
    theta: float,
    area_cap: float = DEFAULT_AREA_CAP,
) -> np.ndarray:
    """Per-cell legalization footprint widths from continuous padding.

    Combines Eq. (17) discretization with the area cap and returns
    ``design.w + DisPad`` for movable standard cells (fixed cells and
    macros keep their native width).
    """
    site = design.technology.site_width
    dis = discretize_padding(pad, theta, site)
    dis = cap_padding_area(design, dis, area_cap, pad=pad)
    widths = design.w.copy()
    movable = design.movable & ~design.is_macro
    widths[movable] += dis[movable]
    return widths
