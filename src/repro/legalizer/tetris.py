"""Greedy (Tetris-style) legalization fallback.

Cells are processed left to right and dropped into the nearest row
position whose remaining gap fits, scanning rows outward from the cell's
global-placement row.  Quality is worse than Abacus but the algorithm is
simple and never benefits from cluster pathologies — useful both as a
fallback and as a baseline in tests.
"""

from __future__ import annotations

import math

import numpy as np

from .. import obs
from ..netlist.design import Design
from .abacus import LegalizeResult
from .rows import SegmentIndex


def legalize_tetris(design: Design, widths: np.ndarray | None = None) -> LegalizeResult:
    """Greedy row-fill legalization of all movable standard cells.

    Args:
        design: the placed design; positions are overwritten.
        widths: per-cell footprint widths (defaults to ``design.w``).
    """
    with obs.span("legalize/tetris") as span:
        result = _legalize_tetris(design, widths)
        span.set(
            displacement=result.total_displacement,
            max_displacement=result.max_displacement,
            cells=result.num_cells,
        )
    return result


def _legalize_tetris(design: Design, widths: np.ndarray | None) -> LegalizeResult:
    widths = design.w if widths is None else np.asarray(widths, dtype=np.float64)
    index = SegmentIndex.build(design)
    if index.num_rows == 0:
        raise RuntimeError("design has no rows")
    site = design.technology.site_width
    # Per segment: the next free x cursor.
    cursors = {}
    for row, segs in index.by_row.items():
        cursors[row] = [[seg, seg.xlo] for seg in segs]

    cells = np.flatnonzero(design.movable & ~design.is_macro)
    order = cells[np.argsort(design.x[cells], kind="stable")]
    disp_total = 0.0
    disp_max = 0.0
    failed = 0
    for cell in order:
        cell = int(cell)
        width = max(int(math.ceil(widths[cell] / site - 1e-9)), 1) * site
        ty = design.y[cell] - design.h[cell] / 2.0
        home = index.nearest_row(ty)
        placed = False
        for radius in range(index.num_rows):
            for row in {home - radius, home + radius}:
                if not 0 <= row < index.num_rows or placed:
                    continue
                for entry in cursors.get(row, []):
                    seg, cursor = entry
                    if cursor + width <= seg.xhi + 1e-9:
                        slack = width - design.w[cell]
                        left_pad = math.floor(slack / 2.0 / site + 1e-9) * site
                        old_x, old_y = design.x[cell], design.y[cell]
                        design.x[cell] = cursor + left_pad + design.w[cell] / 2.0
                        design.y[cell] = index.row_ys[row] + design.h[cell] / 2.0
                        entry[1] = cursor + width
                        d = math.hypot(design.x[cell] - old_x, design.y[cell] - old_y)
                        disp_total += d
                        disp_max = max(disp_max, d)
                        placed = True
                        break
            if placed:
                break
        if not placed:
            failed += 1
    if failed:
        raise RuntimeError(f"tetris legalization failed for {failed} cells")
    return LegalizeResult(disp_total, disp_max, len(order), failed)
