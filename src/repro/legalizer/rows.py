"""Standard-cell row and sub-row (segment) management.

Legalization operates on *segments*: the maximal free intervals of each
row after subtracting fixed objects (macros, IO pads).  Segment x bounds
are snapped inward to the site grid so any site-aligned cell inside a
segment is legal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..netlist.design import Design


@dataclass
class RowSegment:
    """A free interval of one row.

    Attributes:
        row: row index (bottom row is 0).
        y: bottom y coordinate of the row.
        xlo, xhi: free interval (site aligned).
    """

    row: int
    y: float
    xlo: float
    xhi: float

    @property
    def width(self) -> float:
        return self.xhi - self.xlo


def build_segments(design: Design) -> list:
    """All free row segments of ``design``, ordered by (row, xlo).

    Fixed objects are subtracted from every row they overlap; intervals
    narrower than one site are dropped.
    """
    tech = design.technology
    die = design.die
    site = tech.site_width
    row_ys = design.row_ys()
    blockers = []
    for cell in np.flatnonzero(~design.movable):
        rect = design.cell_rect(int(cell))
        clipped = rect.intersection(die)
        if clipped is not None:
            blockers.append(clipped)

    segments = []
    for row, y in enumerate(row_ys):
        y_top = y + tech.row_height
        intervals = [(die.xlo, die.xhi)]
        for rect in blockers:
            if rect.ylo >= y_top or rect.yhi <= y:
                continue
            intervals = _subtract(intervals, rect.xlo, rect.xhi)
        for xlo, xhi in intervals:
            xlo_snap = die.xlo + math.ceil((xlo - die.xlo) / site - 1e-9) * site
            xhi_snap = die.xlo + math.floor((xhi - die.xlo) / site + 1e-9) * site
            if xhi_snap - xlo_snap >= site - 1e-9:
                segments.append(RowSegment(row, float(y), xlo_snap, xhi_snap))
    return segments


def _subtract(intervals: list, xlo: float, xhi: float) -> list:
    """Remove ``[xlo, xhi]`` from a list of disjoint intervals."""
    result = []
    for lo, hi in intervals:
        if xhi <= lo or xlo >= hi:
            result.append((lo, hi))
            continue
        if xlo > lo:
            result.append((lo, xlo))
        if xhi < hi:
            result.append((xhi, hi))
    return result


@dataclass
class SegmentIndex:
    """Per-row lookup of segments for fast candidate enumeration."""

    segments: list
    by_row: dict = field(default_factory=dict)
    row_ys: np.ndarray = None
    row_height: float = 0.0

    @classmethod
    def build(cls, design: Design) -> "SegmentIndex":
        segments = build_segments(design)
        by_row = {}
        for seg in segments:
            by_row.setdefault(seg.row, []).append(seg)
        for seg_list in by_row.values():
            seg_list.sort(key=lambda s: s.xlo)
        return cls(
            segments=segments,
            by_row=by_row,
            row_ys=design.row_ys(),
            row_height=design.technology.row_height,
        )

    @property
    def num_rows(self) -> int:
        return len(self.row_ys)

    def nearest_row(self, y_bottom: float) -> int:
        """Row index whose bottom y is closest to ``y_bottom``."""
        if len(self.row_ys) == 0:
            raise ValueError("design has no rows")
        idx = int(np.clip(
            np.round((y_bottom - self.row_ys[0]) / self.row_height),
            0,
            len(self.row_ys) - 1,
        ))
        return idx

    def segments_in_row(self, row: int) -> list:
        return self.by_row.get(row, [])
