"""Dirty-region re-legalization over the existing Abacus path.

An ECO edit (resize, add, macro move) invalidates legality only in a
small neighbourhood; re-running Abacus over the whole design throws away
the work the converged run already paid for.  :func:`legalize_region`
re-legalizes *only* the dirty cells: every other cell is temporarily
treated as fixed, so the standard segment construction of
:mod:`repro.legalizer.rows` subtracts them from the free intervals and
the unmodified Abacus dynamic program places the dirty cells into the
remaining gaps with minimal displacement.

Because previously legalized cells sit on site boundaries, the snapped
segments stay site-aligned and the composed placement remains legal —
the property :mod:`repro.verify`'s placement checkers audit after every
incremental step.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..netlist.design import Design
from .abacus import LegalizeResult, legalize_abacus


def legalize_region(
    design: Design,
    cells,
    widths: np.ndarray | None = None,
    max_row_search: int | None = None,
) -> LegalizeResult:
    """Re-legalize only ``cells``, keeping every other cell in place.

    Args:
        design: the placed design; only the dirty cells' positions are
            overwritten.
        cells: indices of the dirty movable standard cells (fixed cells
            and macros among them are ignored).
        widths: per-cell footprint widths (PUFFER's padded widths);
            defaults to ``design.w``.
        max_row_search: inclusive row-distance search cap handed to
            Abacus — small radii keep the incremental step local.

    Returns:
        The Abacus :class:`~repro.legalizer.abacus.LegalizeResult` over
        the dirty cells.  Raises ``RuntimeError`` (like
        :func:`legalize_abacus`) when a dirty cell fits nowhere within
        the search radius; callers widen the region or fall back to a
        full legalization.
    """
    cells = np.asarray(cells, dtype=np.int64)
    dirty = np.zeros(design.num_cells, dtype=bool)
    if len(cells):
        dirty[cells] = True
    saved = design.movable
    with obs.span("legalize/region", cells=int(dirty.sum())) as span:
        try:
            # Non-dirty cells become blockers for segment construction;
            # the Abacus path itself is unchanged.
            design.movable = saved & dirty
            result = legalize_abacus(
                design, widths=widths, max_row_search=max_row_search
            )
        finally:
            design.movable = saved
        span.set(displacement=result.total_displacement)
    return result
