"""The paper's published numbers, as data.

Table II of the paper, kept verbatim so benchmarks and documentation can
compare measured shapes (who wins, by what factor) against the original.
Index: ``PAPER_TABLE2[benchmark][placer] = (hof, vof, wl, rt_seconds)``.
"""

from __future__ import annotations

from dataclasses import dataclass

PAPER_PLACERS = ("Commercial_Inn", "RePlAce", "PUFFER")

PAPER_TABLE2 = {
    "OR1200": {
        "Commercial_Inn": (0.88, 0.21, 3_724_999, 1006),
        "RePlAce": (0.92, 1.33, 3_238_951, 449),
        "PUFFER": (0.79, 0.96, 3_145_834, 243),
    },
    "ASIC_ENTITY": {
        "Commercial_Inn": (0.27, 0.07, 16_562_470, 804),
        "RePlAce": (0.40, 0.08, 17_699_450, 487),
        "PUFFER": (0.25, 0.04, 17_237_170, 364),
    },
    "BIT_COIN": {
        "Commercial_Inn": (0.03, 0.07, 10_216_500, 3551),
        "RePlAce": (0.01, 0.04, 12_756_620, 2400),
        "PUFFER": (0.00, 0.05, 12_136_850, 1471),
    },
    "MEDIA_SUBSYS": {
        "Commercial_Inn": (0.67, 5.83, 30_304_690, 8005),
        "RePlAce": (4.44, 14.84, 33_373_000, 3350),
        "PUFFER": (0.38, 3.03, 31_900_040, 3195),
    },
    "MEDIA_PG_MODIFY": {
        "Commercial_Inn": (0.15, 0.39, 30_524_130, 7643),
        "RePlAce": (0.88, 2.21, 33_768_920, 2884),
        "PUFFER": (0.07, 0.54, 34_008_440, 1630),
    },
    "A53_ADB_WRAP": {
        "Commercial_Inn": (0.59, 2.40, 30_438_870, 7074),
        "RePlAce": (3.34, 14.44, 33_464_500, 3388),
        "PUFFER": (0.43, 3.70, 32_607_770, 3119),
    },
    "CT_SCAN": {
        "Commercial_Inn": (0.00, 0.10, 32_966_640, 5316),
        "RePlAce": (0.57, 0.25, 34_120_310, 3017),
        "PUFFER": (0.01, 0.01, 33_743_970, 1917),
    },
    "CT_TOP": {
        "Commercial_Inn": (0.00, 0.07, 27_003_190, 3887),
        "RePlAce": (0.00, 0.04, 27_632_000, 1988),
        "PUFFER": (0.00, 0.03, 27_222_070, 1350),
    },
    "E31_ECOREPLEX": {
        "Commercial_Inn": (0.01, 0.14, 22_108_530, 6641),
        "RePlAce": (0.00, 0.30, 27_342_060, 6581),
        "PUFFER": (0.00, 0.15, 25_436_660, 4932),
    },
    "OPENC910": {
        "Commercial_Inn": (0.81, 0.14, 45_595_670, 9491),
        "RePlAce": (1.74, 0.15, 52_682_470, 6086),
        "PUFFER": (0.96, 0.11, 49_007_690, 5354),
    },
}

#: The paper's Average row (HOF/VOF means; WL/RT ratios vs PUFFER).
PAPER_AVERAGES = {
    "Commercial_Inn": (0.341, 0.942, 0.954, 2.699),
    "RePlAce": (1.230, 3.368, 1.035, 1.424),
    "PUFFER": (0.289, 0.862, 1.000, 1.000),
}

#: The paper's Pass Count row (H passes, V passes at the 1% criterion).
PAPER_PASS_COUNTS = {
    "Commercial_Inn": (10, 8),
    "RePlAce": (7, 6),
    "PUFFER": (10, 8),
}

#: Mapping between this repo's flow names and the paper's columns.
FLOW_TO_PAPER = {
    "Commercial_Inn*": "Commercial_Inn",
    "RePlAce-like": "RePlAce",
    "PUFFER": "PUFFER",
}


@dataclass
class ShapeCheck:
    """One qualitative agreement check between measured and paper data."""

    name: str
    paper: str
    measured: str
    agrees: bool


def shape_checks(averages: list) -> list:
    """Qualitative Table-II shape comparison.

    Args:
        averages: :class:`repro.evalkit.metrics.PlacerAverages` rows
            (reference placer PUFFER).

    Returns:
        A list of :class:`ShapeCheck` covering the paper's headline
        claims: PUFFER has the best mean HOF/VOF and pass counts, and
        the commercial tool is the slowest flow.
    """
    by_name = {FLOW_TO_PAPER.get(a.placer, a.placer): a for a in averages}
    puffer = by_name["PUFFER"]
    commercial = by_name["Commercial_Inn"]
    replace = by_name["RePlAce"]
    checks = [
        ShapeCheck(
            "PUFFER best mean HOF",
            "0.289 vs 0.341 / 1.230",
            f"{puffer.hof_mean:.3f} vs {commercial.hof_mean:.3f} / {replace.hof_mean:.3f}",
            puffer.hof_mean <= commercial.hof_mean
            and puffer.hof_mean <= replace.hof_mean,
        ),
        ShapeCheck(
            "PUFFER best mean VOF",
            "0.862 vs 0.942 / 3.368",
            f"{puffer.vof_mean:.3f} vs {commercial.vof_mean:.3f} / {replace.vof_mean:.3f}",
            puffer.vof_mean <= commercial.vof_mean + 1e-9
            and puffer.vof_mean <= replace.vof_mean + 1e-9,
        ),
        ShapeCheck(
            "RePlAce worst mean VOF",
            "3.368 highest",
            f"{replace.vof_mean:.3f}",
            replace.vof_mean >= max(puffer.vof_mean, commercial.vof_mean) - 1e-9,
        ),
        ShapeCheck(
            "commercial slowest",
            "RT ratio 2.70",
            f"RT ratio {commercial.rt_ratio:.2f}",
            commercial.rt_ratio
            >= max(replace.rt_ratio, 1.0),
        ),
        ShapeCheck(
            "PUFFER ties best pass count",
            "10/8",
            f"{puffer.pass_h}/{puffer.pass_v}",
            puffer.pass_h >= max(commercial.pass_h, replace.pass_h)
            and puffer.pass_v >= max(commercial.pass_v, replace.pass_v),
        ),
    ]
    return checks
