"""ASCII renderings of the paper's tables."""

from __future__ import annotations

from ..benchgen import SUITE, make_design
from ..netlist.design import Design
from .metrics import aggregate


def format_table1(scale: float, designs: "list[Design] | None" = None) -> str:
    """Reproduce Table I: benchmark statistics.

    Shows the paper's full-scale numbers next to the statistics of the
    regenerated designs at ``scale``.

    Args:
        scale: generation scale for the regenerated columns.
        designs: pre-generated designs (regenerated when omitted).
    """
    if designs is None:
        designs = [make_design(entry.name, scale) for entry in SUITE]
    by_name = {d.name: d for d in designs}
    header = (
        f"{'Benchmark':<17}{'#Macros':>8}{'#Cells':>9}{'#Nets':>9}{'#Pins':>9}"
        f"  |{'gen #Macros':>12}{'gen #Cells':>11}{'gen #Nets':>10}{'gen #Pins':>10}"
    )
    lines = [
        f"TABLE I  statistics of the benchmarks (paper full scale | regenerated at scale={scale:g})",
        header,
        "-" * len(header),
    ]
    for entry in SUITE:
        d = by_name[entry.name]
        movable = d.num_movable - 0  # all movable cells
        lines.append(
            f"{entry.name:<17}{entry.macros:>8}{_k(entry.cells):>9}{_k(entry.nets):>9}"
            f"{_k(entry.pins):>9}  |{d.num_macros:>12}{movable:>11}{d.num_nets:>10}"
            f"{d.num_pins:>10}"
        )
    return "\n".join(lines)


def format_table2(rows: list, reference_placer: str = "PUFFER") -> str:
    """Reproduce Table II: HOF/VOF/WL/RT per benchmark and placer.

    Args:
        rows: :class:`PlacerMetrics` for every (benchmark, placer) pair.
        reference_placer: placer defining the WL/RT ratio baseline.
    """
    placers = []
    benchmarks = []
    for r in rows:
        if r.placer not in placers:
            placers.append(r.placer)
        if r.benchmark not in benchmarks:
            benchmarks.append(r.benchmark)
    index = {(r.benchmark, r.placer): r for r in rows}

    cols = "".join(
        f"|{p:^38}" for p in placers
    )
    header = f"{'Benchmark':<17}" + cols
    sub = f"{'':<17}" + "".join(
        f"|{'HOF(%)':>9}{'VOF(%)':>9}{'WL':>12}{'RT(s)':>8}" for _ in placers
    )
    lines = [
        "TABLE II  comparison of HOF, VOF, WL, and RT",
        header,
        sub,
        "-" * len(sub),
    ]
    for b in benchmarks:
        cells = []
        for p in placers:
            r = index.get((b, p))
            if r is None:
                cells.append(f"|{'-':>9}{'-':>9}{'-':>12}{'-':>8}")
            else:
                cells.append(
                    f"|{r.hof:>9.2f}{r.vof:>9.2f}{r.wirelength:>12.4g}{r.runtime:>8.1f}"
                )
        lines.append(f"{b:<17}" + "".join(cells))

    lines.append("-" * len(sub))
    averages = aggregate(rows, reference_placer)
    avg_cells = []
    pass_cells = []
    for p in placers:
        a = next(x for x in averages if x.placer == p)
        avg_cells.append(
            f"|{a.hof_mean:>9.3f}{a.vof_mean:>9.3f}{a.wl_ratio:>12.3f}{a.rt_ratio:>8.3f}"
        )
        pass_cells.append(f"|{a.pass_h:>9d}{a.pass_v:>9d}{'-':>12}{'-':>8}")
    lines.append(f"{'Average':<17}" + "".join(avg_cells))
    lines.append(f"{'Pass Count':<17}" + "".join(pass_cells))
    lines.append(
        f"(WL and RT averages are ratios normalized to {reference_placer}; "
        "pass threshold 1%)"
    )
    return "\n".join(lines)


def _k(value: int) -> str:
    return f"{value // 1000}K"
