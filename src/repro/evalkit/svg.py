"""SVG rendering of placements and congestion overlays.

Dependency-free plotting for an open-source release: die outline, fixed
macros, movable cells, and an optional per-Gcell congestion overlay are
emitted as a standalone SVG file.
"""

from __future__ import annotations

import numpy as np

from ..netlist.design import Design

_SVG_HEADER = (
    '<?xml version="1.0" encoding="UTF-8"?>\n'
    '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
    'viewBox="{vb}">\n'
)


def placement_svg(
    design: Design,
    width: int = 800,
    congestion: np.ndarray | None = None,
    congestion_vmax: float | None = None,
    max_cells: int = 50_000,
) -> str:
    """Render ``design`` as an SVG string.

    Args:
        design: the placed design.
        width: output pixel width (height follows the die aspect).
        congestion: optional per-Gcell map (``[gx, gy]``) drawn as a red
            overlay behind the cells.
        congestion_vmax: overlay saturation (default: 99th percentile).
        max_cells: cap on drawn movable cells (uniform subsample beyond).

    Returns:
        The SVG document as a string.
    """
    die = design.die
    scale = width / die.width
    height = int(round(die.height * scale))

    def sx(x: float) -> float:
        return (x - die.xlo) * scale

    def sy(y: float) -> float:
        # SVG y grows downward; flip so the die origin is bottom-left.
        return height - (y - die.ylo) * scale

    parts = [_SVG_HEADER.format(w=width, h=height, vb=f"0 0 {width} {height}")]
    parts.append(
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        'fill="#fafafa" stroke="#222" stroke-width="1"/>\n'
    )

    if congestion is not None:
        parts.append(_congestion_overlay(congestion, congestion_vmax, width, height))

    # Fixed objects (macros dark, IO pads medium).
    for cell in np.flatnonzero(~design.movable):
        cell = int(cell)
        rect = design.cell_rect(cell)
        color = "#555566" if design.is_macro[cell] else "#8888aa"
        parts.append(
            f'<rect x="{sx(rect.xlo):.2f}" y="{sy(rect.yhi):.2f}" '
            f'width="{rect.width * scale:.2f}" height="{rect.height * scale:.2f}" '
            f'fill="{color}" stroke="none"/>\n'
        )

    movable = np.flatnonzero(design.movable & ~design.is_macro)
    step = max(len(movable) // max_cells, 1)
    for cell in movable[::step]:
        cell = int(cell)
        rect = design.cell_rect(cell)
        parts.append(
            f'<rect x="{sx(rect.xlo):.2f}" y="{sy(rect.yhi):.2f}" '
            f'width="{max(rect.width * scale, 0.5):.2f}" '
            f'height="{max(rect.height * scale, 0.5):.2f}" '
            'fill="#3b6fb6" fill-opacity="0.75" stroke="none"/>\n'
        )

    parts.append("</svg>\n")
    return "".join(parts)


def _congestion_overlay(congestion, vmax, width, height) -> str:
    values = np.asarray(congestion, dtype=np.float64)
    if vmax is None:
        vmax = float(np.percentile(values, 99)) or 1.0
    vmax = max(vmax, 1e-12)
    nx, ny = values.shape
    cell_w = width / nx
    cell_h = height / ny
    parts = []
    for i in range(nx):
        for j in range(ny):
            alpha = min(values[i, j] / vmax, 1.0)
            if alpha < 0.05:
                continue
            x = i * cell_w
            y = height - (j + 1) * cell_h
            parts.append(
                f'<rect x="{x:.2f}" y="{y:.2f}" width="{cell_w:.2f}" '
                f'height="{cell_h:.2f}" fill="#cc2222" '
                f'fill-opacity="{alpha * 0.6:.3f}" stroke="none"/>\n'
            )
    return "".join(parts)


def save_placement_svg(design: Design, path: str, **kwargs) -> None:
    """Write :func:`placement_svg` output to ``path``."""
    with open(path, "w") as f:
        f.write(placement_svg(design, **kwargs))
