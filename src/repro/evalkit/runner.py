"""Suite runner: place each benchmark with each flow, route, and score.

This drives the Table-II reproduction: every flow places a freshly
generated copy of each benchmark (so flows never see each other's
positions), the evaluation router scores the legalized result, and the
rows feed :func:`repro.evalkit.tables.format_table2`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines import (
    place_commercial_like,
    place_replace_like,
    place_wirelength_driven,
)
from ..benchgen import make_design
from ..core import PufferPlacer, StrategyParams
from ..placer import PlacementParams
from ..router import GlobalRouter, RouterParams
from .metrics import PlacerMetrics


def place_puffer(design, placement=None, strategy: StrategyParams | None = None):
    """PUFFER flow adapter matching the baseline signature."""
    return PufferPlacer(design, strategy=strategy, placement=placement).run()


def default_flows(strategy: StrategyParams | None = None) -> dict:
    """The three Table-II flows, in the paper's column order."""
    return {
        "Commercial_Inn*": lambda d, p: place_commercial_like(d, p),
        "RePlAce-like": lambda d, p: place_replace_like(d, p),
        "PUFFER": lambda d, p: place_puffer(d, p, strategy),
    }


@dataclass
class SuiteRunConfig:
    """Configuration of a suite evaluation run.

    Attributes:
        scale: benchmark generation scale.
        placement: engine parameters shared by all flows.
        router: evaluation-router parameters.
        benchmarks: names to run (defaults to the full Table-I suite).
    """

    scale: float = 0.004
    placement: PlacementParams = field(default_factory=PlacementParams)
    router: RouterParams = field(default_factory=RouterParams)
    benchmarks: list | None = None


def run_benchmark(name: str, flow, config: SuiteRunConfig, flow_name: str) -> PlacerMetrics:
    """Place + route one benchmark with one flow."""
    design = make_design(name, config.scale)
    start = time.time()
    flow(design, config.placement)
    place_time = time.time() - start
    report = GlobalRouter(design, config.router).run()
    return PlacerMetrics(
        benchmark=name,
        placer=flow_name,
        hof=report.hof,
        vof=report.vof,
        wirelength=report.wirelength,
        runtime=place_time,
        hpwl=design.hpwl(),
    )


def run_suite(
    config: SuiteRunConfig | None = None,
    flows: dict | None = None,
    progress=None,
) -> list:
    """Evaluate every flow on every benchmark.

    Args:
        config: run configuration.
        flows: ``name -> flow(design, placement_params)`` mapping
            (defaults to :func:`default_flows`).
        progress: optional callable receiving each finished
            :class:`PlacerMetrics` row.

    Returns:
        All metric rows, benchmark-major in flow order.
    """
    from ..benchgen import suite_names

    config = config or SuiteRunConfig()
    flows = flows or default_flows()
    names = config.benchmarks or suite_names()
    rows = []
    for name in names:
        for flow_name, flow in flows.items():
            row = run_benchmark(name, flow, config, flow_name)
            rows.append(row)
            if progress is not None:
                progress(row)
    return rows
