"""Suite runner: place each benchmark with each flow, route, and score.

This drives the Table-II reproduction: every flow places a freshly
generated copy of each benchmark (so flows never see each other's
positions), the evaluation router scores the legalized result, and the
rows feed :func:`repro.evalkit.tables.format_table2`.

The design×flow grid is embarrassingly parallel, and
:func:`run_suite` runs it through :mod:`repro.runtime`:

* ``jobs > 1`` fans the matrix cells out across worker processes (the
  default flows are reconstructed by name inside each worker; custom
  flow callables that cannot be pickled fall back to inline execution).
* an :class:`repro.runtime.ArtifactCache` skips cells whose
  (benchmark, scale, seed, placement, router, strategy) configuration
  was already evaluated in an earlier run.
* a :class:`repro.runtime.Journal` records each finished cell, so an
  interrupted run resumes with only the remainder.

``jobs=1`` without cache or journal executes the grid inline, in grid
order, exactly like the historical serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import api, obs
from ..core import StrategyParams
from ..placer import PlacementParams
from ..router import RouterParams
from ..runtime import (
    JOURNAL_REPLAYED,
    MISSING,
    ArtifactCache,
    Journal,
    RunEvent,
    Task,
    TaskExecutor,
    Telemetry,
    stable_hash,
)
from ..runtime import shm
from .metrics import PlacerMetrics


def place_puffer(design, placement=None, strategy: StrategyParams | None = None):
    """PUFFER flow adapter (thin wrapper over :func:`repro.api.flow_puffer`)."""
    return api.flow_puffer(design, placement=placement, strategy=strategy)


def default_flows(strategy: StrategyParams | None = None) -> dict:
    """The three Table-II flows, in the paper's column order.

    Thin wrapper over :func:`repro.api.table2_flows`; flow resolution
    lives behind the facade.
    """
    return api.table2_flows(strategy)


@dataclass
class SuiteRunConfig:
    """Configuration of a suite evaluation run.

    Attributes:
        scale: benchmark generation scale.
        placement: engine parameters shared by all flows.
        router: evaluation-router parameters.
        benchmarks: names to run (defaults to the full Table-I suite).
        seed: explicit benchmark-generation seed offset, threaded into
            every :func:`repro.benchgen.make_design` call so serial and
            parallel runs generate identical designs and the runtime
            cache key fully determines the generated netlist.
        verify: :mod:`repro.verify` checker level per cell (``"off"``,
            ``"cheap"``, ``"full"``).  When enabled, each row records
            its error-severity violation count and :func:`run_suite`
            raises :class:`repro.verify.VerificationError` if any cell
            produced violations.
    """

    scale: float = 0.004
    placement: PlacementParams = field(default_factory=PlacementParams)
    router: RouterParams = field(default_factory=RouterParams)
    benchmarks: list | None = None
    seed: int = 0
    verify: str = "off"


def suite_cell_key(
    name: str,
    flow_name: str,
    config: SuiteRunConfig,
    strategy: StrategyParams | None = None,
    flow=None,
) -> str:
    """Content-address of one (benchmark, flow) matrix cell.

    The key covers everything the cell's result depends on: benchmark
    identity, generation scale and seed, placement and router
    parameters, the flow, and (for PUFFER) the strategy parameters.
    Custom flow callables contribute their module-qualified name, which
    is stable across runs but deliberately coarse — changing a custom
    flow's *body* without renaming it requires clearing the cache.
    """
    payload = {
        "kind": "suite-cell",
        "benchmark": name,
        "flow": flow_name,
        "scale": config.scale,
        "seed": config.seed,
        "placement": config.placement,
        "router": config.router,
        "strategy": strategy,
    }
    if config.verify != "off":
        # Only key on the level when it changes what the row records, so
        # enabling verification never invalidates existing `off` caches.
        payload["verify"] = config.verify
    if flow is not None:
        payload["flow_impl"] = (
            f"{getattr(flow, '__module__', '?')}.{getattr(flow, '__qualname__', '?')}"
        )
    return stable_hash(payload)


def run_benchmark(
    name: str,
    flow,
    config: SuiteRunConfig,
    flow_name: str,
    design=None,
) -> PlacerMetrics:
    """Place + route one benchmark with one flow.

    Thin wrapper over :func:`repro.api.run`: the facade generates the
    design, times the flow call, and routes the result; this adapter
    repackages the outcome as a :class:`PlacerMetrics` row.  When
    ``design`` is given (the zero-copy shared-memory path) it is placed
    directly instead of regenerating ``name``.
    """
    result = api.run(
        design if design is not None else name,
        flow=flow,
        config=api.RunConfig(
            scale=config.scale,
            seed=config.seed,
            placement=config.placement,
            router=config.router,
            verify=config.verify,
        ),
        route=True,
    )
    report = result.route_report
    violations = (
        len(result.verify_report.errors) if result.verify_report is not None else 0
    )
    return PlacerMetrics(
        benchmark=name,
        placer=flow_name,
        hof=report.hof,
        vof=report.vof,
        wirelength=report.wirelength,
        runtime=result.place_seconds,
        hpwl=result.hpwl,
        violations=violations,
    )


def _default_flow_cell(
    name: str, flow_name: str, config: SuiteRunConfig, strategy
) -> PlacerMetrics:
    """Picklable task body: resolve the default flow by column name.

    The flow crosses the process boundary as its column name, so
    workers resolve it locally through the facade registry.  An
    unresolvable name raises :class:`repro.api.UnknownFlowError` naming
    the flow and the available registry — previously this surfaced as a
    bare ``KeyError`` with no context.
    """
    _, flow = api.resolve_flow(flow_name, strategy=strategy)
    return run_benchmark(name, flow, config, flow_name)


def _shared_flow_cell(
    handle_dict: dict, name: str, flow_name: str, config: SuiteRunConfig, strategy
) -> PlacerMetrics:
    """Picklable task body: attach the parent-published shared design.

    The parent generated ``name`` once and published its arrays into
    shared memory; the worker maps them read-only instead of
    regenerating the benchmark.  A failed attach (segment evicted or
    unlinked) falls back to the by-name path — same result, just
    slower.
    """
    from ..runtime import shm as shm_runtime

    _, flow = api.resolve_flow(flow_name, strategy=strategy)
    try:
        design = shm_runtime.attach_design(
            shm_runtime.SharedDesignHandle.from_dict(handle_dict)
        )
    except shm_runtime.SharedMemoryError:
        design = None
    return run_benchmark(name, flow, config, flow_name, design=design)


def _row_record(key: str, row: PlacerMetrics) -> dict:
    from dataclasses import asdict

    return {"key": key, "row": asdict(row)}


def run_suite(
    config: SuiteRunConfig | None = None,
    flows: dict | None = None,
    progress=None,
    *,
    strategy: StrategyParams | None = None,
    jobs: int = 1,
    cache=None,
    journal=None,
    resume: bool = False,
    retries: int = 0,
    telemetry: Telemetry | None = None,
    executor: TaskExecutor | None = None,
) -> list:
    """Evaluate every flow on every benchmark.

    Args:
        config: run configuration.
        flows: ``name -> flow(design, placement_params)`` mapping
            (defaults to :func:`default_flows`; the defaults are
            reconstructed inside workers, so they parallelize — custom
            callables must be picklable to leave the main process).
        progress: optional callable receiving each finished
            :class:`PlacerMetrics` row (completion order when
            ``jobs > 1``, grid order otherwise).
        strategy: PUFFER strategy parameters for the default flows
            (also part of the cache key).
        jobs: worker-process count; ``1`` runs inline.
        cache: :class:`ArtifactCache` or directory path; finished cells
            are stored and later runs reuse them.
        journal: :class:`Journal` or file path; every finished cell is
            checkpointed for :func:`run_suite(..., resume=True)`.
        resume: replay journaled cells instead of starting over.
        retries: extra attempts per failed cell (worker crashes always
            consume the retry budget).
        telemetry: shared event collector (created when omitted).
        executor: pre-built :class:`TaskExecutor` (overrides ``jobs``
            and ``retries``).

    Returns:
        All metric rows, benchmark-major in flow order (independent of
        completion order).

    Raises:
        The terminal error of the first cell whose attempts are
        exhausted.
    """
    from ..benchgen import suite_names

    config = config or SuiteRunConfig()
    custom_flows = flows is not None
    flows = flows if custom_flows else default_flows(strategy)
    names = config.benchmarks or suite_names()
    telemetry = telemetry or Telemetry()
    if isinstance(cache, str):
        cache = ArtifactCache(cache, telemetry=telemetry)
    elif cache is not None and cache.telemetry is None:
        cache.telemetry = telemetry
    if isinstance(journal, str):
        journal = Journal(journal)
    if journal is not None and not resume:
        journal.clear()

    cells = [(name, flow_name) for name in names for flow_name in flows]
    keys = {
        cell: suite_cell_key(
            cell[0], cell[1], config, strategy,
            flow=flows[cell[1]] if custom_flows else None,
        )
        for cell in cells
    }
    rows: dict = {}

    def settle(cell, key, row, journal_it: bool) -> None:
        rows[cell] = row
        if getattr(row, "violations", 0):
            obs.event(
                "suite/cell_violations",
                benchmark=cell[0],
                flow=cell[1],
                violations=row.violations,
            )
        if cache is not None:
            cache.put(key, row)
        if journal is not None and journal_it:
            journal.append(_row_record(key, row))
        if progress is not None:
            progress(row)

    # 1. Resume: replay journaled cells.
    if resume and journal is not None:
        done = journal.completed()
        for cell in cells:
            record = done.get(keys[cell])
            if record is None:
                continue
            row = PlacerMetrics(**record["row"])
            telemetry.emit(RunEvent(kind=JOURNAL_REPLAYED, key=keys[cell]))
            settle(cell, keys[cell], row, journal_it=False)

    # 2. Cache: reuse identical cells from earlier runs.
    if cache is not None:
        for cell in cells:
            if cell in rows:
                continue
            value = cache.get(keys[cell])
            if value is not MISSING:
                settle(cell, keys[cell], value, journal_it=True)

    # 3. Execute the remainder.
    remainder = [cell for cell in cells if cell not in rows]
    if remainder:
        if executor is None:
            executor = TaskExecutor(jobs=jobs, retries=retries, telemetry=telemetry)
        key_to_cell = {keys[cell]: cell for cell in remainder}

        # Zero-copy fan-out: with a worker pool and the default flows,
        # generate each benchmark once here and publish its arrays to
        # shared memory; workers attach instead of regenerating the
        # design per (benchmark, flow) cell.  Custom flows keep the
        # pickling path (their callables cross the boundary anyway).
        shared = None
        if (
            not custom_flows
            and getattr(executor, "jobs", 1) > 1
            and shm.available()
        ):
            shared = shm.SharedDesignCache(
                capacity=max(len({cell[0] for cell in remainder}), 1)
            )

        tasks = []
        for cell in remainder:
            name, flow_name = cell
            if custom_flows:
                task = Task(
                    key=keys[cell],
                    fn=run_benchmark,
                    args=(name, flows[flow_name], config, flow_name),
                )
            else:
                handle = (
                    shared.handle_for(name, config.scale, config.seed)
                    if shared is not None else None
                )
                if handle is not None:
                    task = Task(
                        key=keys[cell],
                        fn=_shared_flow_cell,
                        args=(handle.to_dict(), name, flow_name, config, strategy),
                    )
                else:
                    task = Task(
                        key=keys[cell],
                        fn=_default_flow_cell,
                        args=(name, flow_name, config, strategy),
                    )
            tasks.append(task)

        def on_result(result) -> None:
            if not result.ok:
                cell = key_to_cell[result.key]
                obs.event(
                    "suite/cell_failed",
                    benchmark=cell[0],
                    flow=cell[1],
                    key=result.key,
                    error=repr(result.error),
                )
                raise result.error
            settle(key_to_cell[result.key], result.key, result.value, journal_it=True)

        try:
            executor.run(tasks, on_result=on_result)
        finally:
            if shared is not None:
                shared.close()

    ordered = [rows[cell] for cell in cells]
    illegal = [row for row in ordered if getattr(row, "violations", 0)]
    if illegal:
        from ..verify import VerificationError

        offenders = ", ".join(
            f"{row.benchmark}/{row.placer} ({row.violations})" for row in illegal
        )
        raise VerificationError(
            f"suite produced invariant violations in {len(illegal)} cells: {offenders}",
            rows=ordered,
        )
    return ordered
