"""ASCII trend charts for engine convergence histories.

Renders the per-iteration records of a global-placement run (HPWL,
density overflow, penalty factor) as terminal-friendly sparkline charts
so convergence behaviour can be inspected without plotting libraries.
"""

from __future__ import annotations

import numpy as np

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """A one-line unicode sparkline of ``values`` (downsampled)."""
    v = np.asarray(list(values), dtype=np.float64)
    if len(v) == 0:
        return ""
    if len(v) > width:
        step = len(v) / width
        v = np.asarray([v[int(i * step)] for i in range(width)])
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-15:
        return _BARS[0] * len(v)
    idx = ((v - lo) / (hi - lo) * (len(_BARS) - 1)).astype(int)
    return "".join(_BARS[i] for i in idx)


def convergence_chart(history, width: int = 60) -> str:
    """Multi-line chart of a GlobalPlaceResult history.

    Args:
        history: list of :class:`repro.placer.engine.IterationRecord`.
        width: chart width in characters.
    """
    if not history:
        return "(empty history)"
    hpwl = [h.hpwl for h in history]
    overflow = [h.overflow for h in history]
    penalty = [h.penalty_factor for h in history]
    lines = [
        f"iterations: {len(history)}",
        f"hpwl      {sparkline(hpwl, width)}  "
        f"[{min(hpwl):.3g} .. {max(hpwl):.3g}]",
        f"overflow  {sparkline(overflow, width)}  "
        f"[{min(overflow):.3f} .. {max(overflow):.3f}]",
        f"penalty   {sparkline(np.log10(np.maximum(penalty, 1e-30)), width)}  "
        f"[log10 {np.log10(max(min(penalty), 1e-30)):.1f} .. "
        f"{np.log10(max(max(penalty), 1e-30)):.1f}]",
    ]
    return "\n".join(lines)
