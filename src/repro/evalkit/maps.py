"""Congestion-map rendering: text heatmaps and PGM images.

Regenerates the artifacts of paper Fig. 5 (per-direction congestion maps
of placement results, as reported by the evaluation router) without any
plotting dependency: maps render as ASCII heatmaps for terminals and as
binary PGM images for files.
"""

from __future__ import annotations

import numpy as np

_RAMP = " .:-=+*#%@"


def utilization_maps(report) -> tuple:
    """Per-direction routing utilization from a
    :class:`repro.router.router.RouteReport`."""
    grid = report.grid
    util_h = report.demand.dmd_h / np.maximum(grid.cap_h, 1e-9)
    util_v = report.demand.dmd_v / np.maximum(grid.cap_v, 1e-9)
    return util_h, util_v


def ascii_heatmap(values: np.ndarray, vmax: float | None = None, width: int = 64) -> str:
    """Render a 2D map as an ASCII heatmap (origin bottom-left).

    Args:
        values: map indexed ``[x, y]``.
        vmax: saturation value (defaults to the 99th percentile).
        width: maximum output columns; the map is downsampled beyond it.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 2:
        raise ValueError("heatmap expects a 2D array")
    step = max(int(np.ceil(v.shape[0] / width)), 1)
    if step > 1:
        nx = v.shape[0] // step * step
        ny = v.shape[1] // step * step
        v = v[:nx, :ny].reshape(nx // step, step, ny // step, step).mean(axis=(1, 3))
    if vmax is None:
        vmax = float(np.percentile(v, 99)) or 1.0
    vmax = max(vmax, 1e-12)
    scaled = np.clip(v / vmax, 0.0, 1.0)
    idx = np.minimum((scaled * len(_RAMP)).astype(int), len(_RAMP) - 1)
    rows = []
    for j in range(v.shape[1] - 1, -1, -1):  # top row first
        rows.append("".join(_RAMP[idx[i, j]] for i in range(v.shape[0])))
    return "\n".join(rows)


def write_pgm(path: str, values: np.ndarray, vmax: float | None = None) -> None:
    """Write a 2D map as a binary PGM (P5) grayscale image.

    High values render bright.  The image is oriented with the die
    origin at the bottom-left.
    """
    v = np.asarray(values, dtype=np.float64)
    if vmax is None:
        vmax = float(np.percentile(v, 99)) or 1.0
    vmax = max(vmax, 1e-12)
    img = np.clip(v / vmax * 255.0, 0.0, 255.0).astype(np.uint8)
    img = img.T[::-1, :]  # rows top-to-bottom
    with open(path, "wb") as f:
        f.write(f"P5\n{img.shape[1]} {img.shape[0]}\n255\n".encode())
        f.write(img.tobytes())


def side_by_side(maps: dict, vmax: float | None = None, width: int = 40) -> str:
    """Render several maps next to each other with titles.

    Args:
        maps: ordered ``title -> 2D array``.
        vmax: shared saturation value (default: global 99th percentile).
        width: per-map column budget.
    """
    if vmax is None:
        vmax = max(
            float(np.percentile(np.asarray(m), 99)) for m in maps.values()
        )
    blocks = {
        title: ascii_heatmap(m, vmax=vmax, width=width).split("\n")
        for title, m in maps.items()
    }
    height = max(len(b) for b in blocks.values())
    widths = {title: len(b[0]) for title, b in blocks.items()}
    for b in blocks.values():
        while len(b) < height:
            b.insert(0, " " * len(b[0]))
    titles = "   ".join(f"{t[:widths[t]]:<{widths[t]}}" for t in blocks)
    lines = [titles]
    for i in range(height):
        lines.append("   ".join(blocks[t][i] for t in blocks))
    return "\n".join(lines)
