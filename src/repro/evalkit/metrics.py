"""Metric records and Table-II-style aggregation.

The paper reports, per benchmark and placer: the horizontal/vertical
routing overflow ratios (HOF/VOF, in percent, from the global router),
the routed wirelength, and the runtime.  Averages follow the paper's
conventions: HOF/VOF are averaged as *values* (they are small), while WL
and RT are averaged as ratios against a reference placer.  A benchmark
*passes* a direction when its overflow is at most 1 %.
"""

from __future__ import annotations

from dataclasses import dataclass

PASS_THRESHOLD = 1.0  # percent, the paper's industrial pass criterion


@dataclass
class PlacerMetrics:
    """One (benchmark, placer) evaluation row.

    ``violations`` counts the error-severity findings of the
    :mod:`repro.verify` checkers when the suite ran with verification
    enabled (always ``0`` with ``verify="off"``); the suite runner
    fails loudly on any non-zero count rather than aggregating
    silently-illegal numbers into Table II.
    """

    benchmark: str
    placer: str
    hof: float
    vof: float
    wirelength: float
    runtime: float
    hpwl: float = 0.0
    violations: int = 0

    @property
    def passes_h(self) -> bool:
        return self.hof <= PASS_THRESHOLD

    @property
    def passes_v(self) -> bool:
        return self.vof <= PASS_THRESHOLD


@dataclass
class PlacerAverages:
    """Aggregate row for one placer over a benchmark suite."""

    placer: str
    hof_mean: float
    vof_mean: float
    wl_ratio: float
    rt_ratio: float
    pass_h: int
    pass_v: int


def aggregate(rows: list, reference_placer: str) -> list:
    """Per-placer averages with WL/RT normalized to ``reference_placer``.

    Args:
        rows: :class:`PlacerMetrics` covering a full suite.
        reference_placer: the placer whose WL and RT define ratio 1.0
            (the paper normalizes to PUFFER).

    Returns:
        One :class:`PlacerAverages` per placer, in first-seen order.
    """
    placers = []
    for row in rows:
        if row.placer not in placers:
            placers.append(row.placer)
    reference = {
        row.benchmark: row for row in rows if row.placer == reference_placer
    }
    if not reference:
        raise ValueError(f"no rows for reference placer {reference_placer!r}")
    averages = []
    for placer in placers:
        mine = [r for r in rows if r.placer == placer]
        wl_ratios = []
        rt_ratios = []
        for r in mine:
            ref = reference.get(r.benchmark)
            if ref is None:
                continue
            wl_ratios.append(r.wirelength / max(ref.wirelength, 1e-12))
            rt_ratios.append(r.runtime / max(ref.runtime, 1e-12))
        averages.append(
            PlacerAverages(
                placer=placer,
                hof_mean=sum(r.hof for r in mine) / len(mine),
                vof_mean=sum(r.vof for r in mine) / len(mine),
                wl_ratio=sum(wl_ratios) / max(len(wl_ratios), 1),
                rt_ratio=sum(rt_ratios) / max(len(rt_ratios), 1),
                pass_h=sum(r.passes_h for r in mine),
                pass_v=sum(r.passes_v for r in mine),
            )
        )
    return averages
