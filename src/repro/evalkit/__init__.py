"""Evaluation harness: metrics, tables, congestion maps, suite runner."""

from .maps import ascii_heatmap, side_by_side, utilization_maps, write_pgm
from .metrics import PASS_THRESHOLD, PlacerAverages, PlacerMetrics, aggregate
from .paper import (
    FLOW_TO_PAPER,
    PAPER_AVERAGES,
    PAPER_PASS_COUNTS,
    PAPER_TABLE2,
    ShapeCheck,
    shape_checks,
)
from .runner import SuiteRunConfig, default_flows, place_puffer, run_benchmark, run_suite
from .svg import placement_svg, save_placement_svg
from .tables import format_table1, format_table2
from .trend import convergence_chart, sparkline

__all__ = [
    "FLOW_TO_PAPER",
    "PAPER_AVERAGES",
    "PAPER_PASS_COUNTS",
    "PAPER_TABLE2",
    "PASS_THRESHOLD",
    "PlacerAverages",
    "PlacerMetrics",
    "ShapeCheck",
    "SuiteRunConfig",
    "aggregate",
    "ascii_heatmap",
    "convergence_chart",
    "default_flows",
    "format_table1",
    "format_table2",
    "place_puffer",
    "placement_svg",
    "run_benchmark",
    "run_suite",
    "save_placement_svg",
    "shape_checks",
    "side_by_side",
    "sparkline",
    "utilization_maps",
    "write_pgm",
]
