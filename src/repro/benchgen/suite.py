"""The ten Table-I industrial designs, regenerated synthetically.

Each entry records the full-scale statistics from Table I of the paper
(used verbatim when printing the Table-I reproduction) plus the congestion
character inferred from Table II: designs whose global-routing overflow is
high in the paper (``MEDIA_SUBSYS``, ``A53_ADB_WRAP``) get a reduced metal
stack, a denser power grid, and stronger netlist locality, while easy
designs get generous routing budgets.  ``MEDIA_PG_MODIFY`` shares the
netlist seed of ``MEDIA_SUBSYS`` but relaxes the power grid, mirroring the
paper's modified-PG variant.

Designs are produced at a configurable ``scale`` because full-size
(10^6-cell) placement is outside pure-Python reach; PUFFER's mechanisms
operate on scale-free Gcell statistics, so placer *ranking* is preserved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .generator import GeneratorSpec, generate_design
from ..netlist.design import Design

DEFAULT_SCALE = 0.01


@dataclass(frozen=True)
class SuiteEntry:
    """Full-scale Table-I statistics plus synthesis knobs for one design."""

    name: str
    cells: int
    nets: int
    pins: int
    macros: int
    utilization: float
    locality: float
    reduced_stack: bool
    pg_density: float
    seed: int

    @property
    def pins_per_net(self) -> float:
        return self.pins / self.nets


SUITE = (
    SuiteEntry("OR1200", 122_000, 193_000, 660_000, 22, 0.75, 0.96, False, 1.0, 101),
    SuiteEntry("ASIC_ENTITY", 149_000, 155_000, 630_000, 45, 0.68, 0.93, False, 0.8, 102),
    SuiteEntry("BIT_COIN", 760_000, 760_000, 3_151_000, 43, 0.65, 0.94, False, 0.7, 103),
    SuiteEntry("MEDIA_SUBSYS", 1_228_000, 1_296_000, 5_235_000, 70, 0.60, 0.96, True, 1.5, 104),
    SuiteEntry("MEDIA_PG_MODIFY", 1_228_000, 1_296_000, 5_235_000, 70, 0.62, 0.95, False, 0.6, 104),
    SuiteEntry("A53_ADB_WRAP", 1_232_000, 1_300_000, 5_242_000, 7, 0.60, 0.96, True, 1.4, 106),
    SuiteEntry("CT_SCAN", 1_249_000, 1_317_000, 5_282_000, 39, 0.64, 0.94, False, 0.7, 107),
    SuiteEntry("CT_TOP", 1_270_000, 1_272_000, 4_091_000, 38, 0.64, 0.94, False, 0.7, 108),
    SuiteEntry("E31_ECOREPLEX", 1_533_000, 1_537_000, 6_303_000, 56, 0.64, 0.94, False, 0.8, 109),
    SuiteEntry("OPENC910", 1_590_000, 1_741_000, 7_276_000, 332, 0.58, 0.95, False, 0.9, 110),
)

SUITE_BY_NAME = {entry.name: entry for entry in SUITE}

#: The paper tunes strategy parameters on "a small design with the
#: routability problem" and transfers them; OR1200 is the smallest
#: congested design and plays that role here.
EXPLORATION_DESIGN = "OR1200"


def suite_names() -> list:
    """Benchmark names in Table-I order."""
    return [entry.name for entry in SUITE]


def spec_for(name: str, scale: float = DEFAULT_SCALE, seed: int = 0) -> GeneratorSpec:
    """Generator spec for suite design ``name`` at ``scale``.

    Args:
        name: suite design name.
        scale: generation scale.
        seed: extra seed offset added to the entry's netlist seed; the
            default ``0`` reproduces the canonical suite design.  Runs
            that vary the design (seed sweeps, cache-key isolation)
            pass a nonzero offset, and the offset is part of the
            runtime cache key so cached artifacts never cross seeds.
    """
    entry = SUITE_BY_NAME[name]
    num_cells = max(int(round(entry.cells * scale)), 64)
    num_nets = max(int(round(entry.nets * scale)), 64)
    # Keep macro counts recognizable but bounded at small scale.
    num_macros = max(2, min(entry.macros, int(round(entry.macros * (scale * 40))))) if entry.macros else 0
    return GeneratorSpec(
        name=name,
        num_cells=num_cells,
        num_nets=num_nets,
        pins_per_net=entry.pins_per_net,
        num_macros=num_macros,
        num_io=max(16, int(32 * (scale / DEFAULT_SCALE) ** 0.5)),
        utilization=entry.utilization,
        locality=entry.locality,
        reduced_stack=entry.reduced_stack,
        pg_density=entry.pg_density,
        seed=entry.seed + int(seed),
    )


def make_design(name: str, scale: float = DEFAULT_SCALE, seed: int = 0) -> Design:
    """Generate suite design ``name`` at ``scale`` (seed offset ``seed``)."""
    return generate_design(spec_for(name, scale, seed))


def env_scale(default: float = DEFAULT_SCALE) -> float:
    """Benchmark scale from the ``REPRO_SCALE`` environment variable."""
    raw = os.environ.get("REPRO_SCALE")
    if not raw:
        return default
    scale = float(raw)
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"REPRO_SCALE out of range: {scale}")
    return scale
