"""Synthetic industrial-like benchmark generation.

The PUFFER paper evaluates on ten proprietary industrial designs that are
not available, so this module synthesizes designs with matching *shape*:
macro counts, pins-per-net and pins-per-cell ratios from Table I, plus a
controllable congestion character (metal-stack budget, power-grid density,
netlist locality).  Netlist connectivity follows the standard clustered
model: cells are leaves of an implicit hierarchy over their index space,
and each net picks its pins inside a window whose size follows a power
law, yielding Rent's-rule-like locality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..netlist import (
    DesignBuilder,
    Rect,
    Technology,
    default_metal_stack,
    reduced_metal_stack,
)
from ..netlist.design import Design


@dataclass
class GeneratorSpec:
    """Parameters controlling one synthetic design.

    Attributes:
        name: design name.
        num_cells: movable standard-cell count.
        num_nets: net count.
        pins_per_net: mean net degree (Table I: ``#Pins / #Nets``).
        num_macros: fixed macro count.
        num_io: fixed boundary IO pads.
        utilization: movable-area / free-area target; higher is denser.
        locality: in (0, 1]; larger means more local nets (stronger
            clustering, heavier local congestion).
        window_exponent: power-law exponent of the net window size;
            larger concentrates nets into smaller windows.
        macro_area_fraction: die-area fraction covered by macros.
        pg_density: power-grid strap density multiplier (0 disables).
        reduced_stack: route on a tighter 4-layer stack (congested designs).
        seed: RNG seed; generation is fully deterministic.
    """

    name: str
    num_cells: int
    num_nets: int
    pins_per_net: float
    num_macros: int = 0
    num_io: int = 32
    utilization: float = 0.7
    locality: float = 0.94
    window_exponent: float = 2.2
    macro_area_fraction: float = 0.08
    pg_density: float = 1.0
    reduced_stack: bool = False
    seed: int = 0


def generate_design(spec: GeneratorSpec) -> Design:
    """Build a :class:`Design` from ``spec`` (deterministic in the seed)."""
    rng = np.random.default_rng(spec.seed)
    tech = _make_technology(spec)
    cell_w, cell_h = _cell_sizes(spec, rng, tech)
    die = _die_for(spec, tech, cell_w, cell_h)
    builder = DesignBuilder(spec.name, tech, die)

    macro_rects = _place_macros(spec, rng, die, tech)
    macro_ids = []
    for k, rect in enumerate(macro_rects):
        macro_ids.append(
            builder.add_cell(
                f"MACRO_{k}",
                rect.width,
                rect.height,
                x=rect.center.x,
                y=rect.center.y,
                movable=False,
                macro=True,
            )
        )
        # Macros obstruct the two lowest routing layers over their outline.
        for layer in range(
            tech.routing_layers_start,
            min(tech.routing_layers_start + 2, len(tech.layers)),
        ):
            builder.add_blockage(rect, layer)

    io_ids = _place_ios(spec, rng, die, tech, builder)

    for i in range(spec.num_cells):
        builder.add_cell(f"c{i}", float(cell_w[i]), float(cell_h[i]))
    first_cell = len(macro_ids) + len(io_ids)

    _build_nets(spec, rng, builder, first_cell, cell_w, cell_h, macro_ids, io_ids)
    _add_power_grid(spec, die, tech, builder)
    return builder.build()


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------


def _make_technology(spec: GeneratorSpec) -> Technology:
    layers = reduced_metal_stack() if spec.reduced_stack else default_metal_stack()
    return Technology(layers=layers)


def _cell_sizes(spec: GeneratorSpec, rng, tech: Technology):
    """Standard-cell widths in sites (1-16, geometric-ish) at row height."""
    widths = 1 + rng.geometric(p=0.45, size=spec.num_cells)
    widths = np.minimum(widths, 16) * tech.site_width
    heights = np.full(spec.num_cells, tech.row_height)
    return widths.astype(np.float64), heights


def _die_for(spec: GeneratorSpec, tech: Technology, cell_w, cell_h) -> Rect:
    """Square-ish die sized so movable area / free area hits utilization."""
    movable_area = float((cell_w * cell_h).sum())
    free_needed = movable_area / spec.utilization
    total = free_needed / max(1.0 - spec.macro_area_fraction, 0.05)
    side = math.sqrt(total)
    # Round to whole rows and whole Gcells for clean grids.
    height = math.ceil(side / tech.row_height) * tech.row_height
    width = math.ceil(side / tech.gcell_size) * tech.gcell_size
    height = math.ceil(height / tech.gcell_size) * tech.gcell_size
    return Rect(0.0, 0.0, float(width), float(height))


def _place_macros(spec: GeneratorSpec, rng, die: Rect, tech: Technology):
    """Non-overlapping fixed macro rectangles inside the die."""
    if spec.num_macros == 0:
        return []
    target_area = die.area * spec.macro_area_fraction
    mean_area = target_area / spec.num_macros
    rects = []
    attempts = 0
    while len(rects) < spec.num_macros and attempts < spec.num_macros * 200:
        attempts += 1
        aspect = rng.uniform(0.5, 2.0)
        area = mean_area * rng.uniform(0.6, 1.5)
        w = math.sqrt(area * aspect)
        h = area / w
        # Snap to rows/sites so macros respect the fabric.
        w = max(tech.site_width * 4, round(w / tech.site_width) * tech.site_width)
        h = max(tech.row_height, round(h / tech.row_height) * tech.row_height)
        if w >= die.width / 2 or h >= die.height / 2:
            continue
        x = rng.uniform(die.xlo, die.xhi - w)
        y = die.ylo + round(rng.uniform(0, (die.height - h) / tech.row_height)) * tech.row_height
        x = die.xlo + round((x - die.xlo) / tech.site_width) * tech.site_width
        cand = Rect(x, y, x + w, y + h)
        margin = cand.expanded(tech.gcell_size / 2)
        if any(margin.intersects(r) for r in rects):
            continue
        rects.append(cand)
    return rects


def _place_ios(spec: GeneratorSpec, rng, die: Rect, tech: Technology, builder) -> list:
    """Fixed unit-size IO pads spread around the die boundary."""
    ids = []
    for k in range(spec.num_io):
        side = k % 4
        t = (k // 4 + 0.5) / max(spec.num_io // 4, 1)
        w = h = tech.site_width
        if side == 0:
            x, y = die.xlo + w / 2, die.ylo + t * die.height
        elif side == 1:
            x, y = die.xhi - w / 2, die.ylo + t * die.height
        elif side == 2:
            x, y = die.xlo + t * die.width, die.ylo + h / 2
        else:
            x, y = die.xlo + t * die.width, die.yhi - h / 2
        y = min(max(y, die.ylo + h / 2), die.yhi - h / 2)
        x = min(max(x, die.xlo + w / 2), die.xhi - w / 2)
        ids.append(builder.add_cell(f"IO_{k}", w, h, x=x, y=y, movable=False))
    return ids


def _degree_distribution(spec: GeneratorSpec, rng) -> np.ndarray:
    """Net degrees with the requested mean; mostly 2-4 pins, a long tail."""
    mean_extra = max(spec.pins_per_net - 2.0, 0.05)
    # geometric(p) has mean 1/p, so shift by one to give extras mean
    # ``mean_extra`` and degrees mean ``pins_per_net``.
    extras = rng.geometric(p=1.0 / (mean_extra + 1.0), size=spec.num_nets) - 1
    degrees = 2 + np.minimum(extras, 24)
    # A few high-fanout nets (clock/reset-like).
    num_fanout = max(spec.num_nets // 500, 1)
    idx = rng.choice(spec.num_nets, size=num_fanout, replace=False)
    degrees[idx] = rng.integers(32, 96, size=num_fanout)
    return degrees


def _build_nets(
    spec: GeneratorSpec,
    rng,
    builder: DesignBuilder,
    first_cell: int,
    cell_w,
    cell_h,
    macro_ids,
    io_ids,
) -> None:
    """Clustered nets over the cell index space (power-law windows)."""
    n = spec.num_cells
    degrees = _degree_distribution(spec, rng)
    min_window, max_window = 12, n
    for nid in range(spec.num_nets):
        net = builder.add_net(f"n{nid}")
        d = int(degrees[nid])
        if rng.random() < spec.locality:
            u = rng.random()
            window = int(
                min_window
                * (max_window / min_window) ** (u ** spec.window_exponent)
            )
        else:
            window = max_window
        window = max(window, d + 1)
        start = int(rng.integers(0, max(n - window, 1)))
        members = rng.choice(
            np.arange(start, min(start + window, n)),
            size=min(d, min(window, n)),
            replace=False,
        )
        for cell in members:
            gid = first_cell + int(cell)
            dx = rng.uniform(-0.4, 0.4) * cell_w[cell]
            dy = rng.uniform(-0.4, 0.4) * cell_h[cell]
            builder.add_pin(gid, net, dx, dy)
        # Occasionally tie the net to a macro or an IO pad.
        if macro_ids and rng.random() < 0.02:
            builder.add_pin(int(rng.choice(macro_ids)), net)
        elif io_ids and rng.random() < 0.02:
            builder.add_pin(int(rng.choice(io_ids)), net)


def _add_power_grid(spec: GeneratorSpec, die: Rect, tech: Technology, builder) -> None:
    """Power straps as blockages on the top routing layers.

    Vertical straps are denser and wider than horizontal ones (they also
    land on the top *two* vertical layers), so heavy power grids starve
    vertical routing first — giving high-``pg_density`` designs the
    VOF-dominated congestion profile of the paper's hard benchmarks.
    """
    if spec.pg_density <= 0:
        return
    h_layers = [
        i
        for i, l in enumerate(tech.layers)
        if i >= tech.routing_layers_start and l.direction == "H"
    ]
    v_layers = [
        i
        for i, l in enumerate(tech.layers)
        if i >= tech.routing_layers_start and l.direction == "V"
    ]
    strap_w = 3.0 * spec.pg_density
    pitch = max(tech.gcell_size * 3 / spec.pg_density, strap_w * 3)
    if h_layers:
        layer = h_layers[-1]
        y = die.ylo + pitch / 2
        while y + strap_w * 0.7 < die.yhi:
            builder.add_blockage(
                Rect(die.xlo, y, die.xhi, y + strap_w * 0.7), layer
            )
            y += pitch
    for layer in v_layers[-2:]:
        x = die.xlo + pitch / 2
        while x + strap_w * 1.4 < die.xhi:
            builder.add_blockage(
                Rect(x, die.ylo, x + strap_w * 1.4, die.yhi), layer
            )
            x += pitch
