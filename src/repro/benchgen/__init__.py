"""Synthetic benchmark generation and the Table-I suite."""

from .generator import GeneratorSpec, generate_design
from .stats import NetlistStats, rent_exponent, wirelength_distribution
from .suite import (
    DEFAULT_SCALE,
    EXPLORATION_DESIGN,
    SUITE,
    SUITE_BY_NAME,
    SuiteEntry,
    env_scale,
    make_design,
    spec_for,
    suite_names,
)

__all__ = [
    "DEFAULT_SCALE",
    "EXPLORATION_DESIGN",
    "GeneratorSpec",
    "NetlistStats",
    "SUITE",
    "SUITE_BY_NAME",
    "SuiteEntry",
    "env_scale",
    "generate_design",
    "make_design",
    "rent_exponent",
    "spec_for",
    "suite_names",
    "wirelength_distribution",
]
