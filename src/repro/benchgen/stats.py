"""Netlist and placement statistics for benchmark validation.

The synthetic suite claims "industrial-like" structure; this module
provides the measurements that back the claim: degree distributions,
pin/cell ratios, placed wirelength distributions, and a Rent-exponent
estimate from recursive bisection of the placed design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design


@dataclass
class NetlistStats:
    """Structural statistics of a netlist."""

    num_cells: int
    num_nets: int
    num_pins: int
    mean_degree: float
    max_degree: int
    degree_histogram: dict
    pins_per_cell: float

    @classmethod
    def of(cls, design: Design) -> "NetlistStats":
        degrees = design.net_degrees()
        histogram = {}
        for d in degrees:
            histogram[int(d)] = histogram.get(int(d), 0) + 1
        return cls(
            num_cells=design.num_cells,
            num_nets=design.num_nets,
            num_pins=design.num_pins,
            mean_degree=float(degrees.mean()) if len(degrees) else 0.0,
            max_degree=int(degrees.max()) if len(degrees) else 0,
            degree_histogram=histogram,
            pins_per_cell=design.num_pins / max(design.num_cells, 1),
        )


def wirelength_distribution(design: Design) -> dict:
    """Per-net HPWL percentiles of the current placement."""
    xlo, ylo, xhi, yhi = design.net_bboxes()
    lengths = (xhi - xlo) + (yhi - ylo)
    lengths = lengths[design.net_degrees() >= 2]
    if len(lengths) == 0:
        return {}
    return {
        "mean": float(lengths.mean()),
        "p50": float(np.percentile(lengths, 50)),
        "p90": float(np.percentile(lengths, 90)),
        "p99": float(np.percentile(lengths, 99)),
        "max": float(lengths.max()),
    }


def rent_exponent(design: Design, min_block: int = 8) -> float:
    """Rent-exponent estimate via recursive bisection of the placement.

    Recursively halves the placed movable cells along the wider spatial
    dimension; at every block, counts the *terminals* (nets with pins
    both inside and outside the block).  Fitting
    ``log T = p · log B + c`` over all blocks gives the Rent exponent
    ``p``.  Industrial logic typically lands in 0.5-0.75; values near
    1.0 mean no locality (random netlist), near 0 a chain.

    Args:
        design: a *placed* design (positions define the partitioning).
        min_block: stop splitting below this many cells.

    Returns:
        The fitted exponent (NaN for degenerate inputs).
    """
    movable = np.flatnonzero(design.movable & ~design.is_macro)
    if len(movable) < 2 * min_block:
        return float("nan")

    # Per net: sorted list of member cells for fast membership counting.
    cell_sets = []
    for net in range(design.num_nets):
        pins = design.pins_of_net(net)
        if len(pins) >= 2:
            cell_sets.append(np.unique(design.pin_cell[pins]))

    points = []  # (block_size, terminal_count)

    def terminals(block: np.ndarray) -> int:
        inside = np.zeros(design.num_cells, dtype=bool)
        inside[block] = True
        count = 0
        for members in cell_sets:
            flags = inside[members]
            if flags.any() and not flags.all():
                count += 1
        return count

    def recurse(block: np.ndarray) -> None:
        if len(block) < min_block:
            return
        points.append((len(block), terminals(block)))
        if len(block) < 2 * min_block:
            return
        xs = design.x[block]
        ys = design.y[block]
        if xs.max() - xs.min() >= ys.max() - ys.min():
            order = np.argsort(xs, kind="stable")
        else:
            order = np.argsort(ys, kind="stable")
        half = len(block) // 2
        recurse(block[order[:half]])
        recurse(block[order[half:]])

    recurse(movable)
    sizes = np.array([s for s, t in points if t > 0], dtype=np.float64)
    terms = np.array([t for s, t in points if t > 0], dtype=np.float64)
    if len(sizes) < 3:
        return float("nan")
    slope, _ = np.polyfit(np.log(sizes), np.log(terms), 1)
    return float(slope)
