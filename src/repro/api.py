"""Unified run facade: one front door for every placement flow.

Historically each entry point — :func:`repro.evalkit.place_puffer`, the
CLI's private flow table, :func:`repro.evalkit.run_benchmark` — resolved
flows and threaded parameters its own way.  This module centralizes all
of that:

* a canonical **flow registry** (:data:`FLOWS`) of picklable,
  module-level flow functions, plus :data:`FLOW_ALIASES` mapping the
  paper's Table-II column names onto canonical flow names;
* :class:`RunConfig`, one dataclass holding everything a run depends on
  (scale, seed, placement/router parameters, PUFFER strategy);
* :func:`run` / :func:`route` / :func:`suite` / :func:`explore`, thin
  orchestration entry points that accept an optional ``trace`` target
  and execute under :func:`repro.obs.tracing`.

The legacy entry points in :mod:`repro.evalkit.runner` and the CLI
delegate here, so flow resolution has exactly one home.

Example:
    >>> from repro import api
    >>> result = api.run("OR1200", flow="puffer",
    ...                  config=api.RunConfig(scale=0.002))
    >>> result.hpwl > 0
    True
"""

from __future__ import annotations

import functools
import time
import warnings
from dataclasses import dataclass, field

from . import obs, schema
from .baselines import (
    place_commercial_like,
    place_replace_like,
    place_wirelength_driven,
)
from .benchgen import make_design
from .core import PufferPlacer, StrategyParams
from .netlist import check_legal
from .netlist.design import Design
from .placer import PlacementParams
from .router import GlobalRouter, RouterParams
from .schema import dataclass_from_dict, dataclass_to_dict
from .slots import SlotParams

#: Placement modes :func:`run` understands.  ``"standard"`` places
#: continuously with the configured flow; ``"slots"`` assigns cells to a
#: pre-fabricated slot grid (:func:`repro.slots.place_slots`).
MODES = ("standard", "slots")


class UnknownFlowError(ValueError):
    """A flow name that is neither canonical nor a known alias.

    Attributes:
        flow: the name that failed to resolve.
        available: the canonical flow names (sorted).
    """

    def __init__(self, flow: str, available: tuple) -> None:
        self.flow = flow
        self.available = tuple(available)
        super().__init__(
            f"unknown flow {flow!r}; available flows: {', '.join(self.available)}"
            f" (aliases: {', '.join(sorted(FLOW_ALIASES))})"
        )


def flow_puffer(design, placement=None, strategy=None):
    """The PUFFER flow (routability padding + inherited legalization)."""
    return PufferPlacer(design, strategy=strategy, placement=placement).run()


def flow_slots(design, placement=None, params=None, seed=0):
    """The fixed-slot flow (``mode="slots"``): grid, greedy seed, SA.

    ``placement`` is accepted for flow-signature compatibility and
    ignored — slot assignment has its own :class:`repro.slots.SlotParams`.
    """
    from .slots import place_slots

    del placement
    return place_slots(design, params=params, seed=seed)


def resolve_design(design, scale: float = 0.004, seed: int = 0):
    """Resolve a design argument into a :class:`~repro.netlist.design.Design`.

    A :class:`Design` passes through.  A string ending in ``.json`` is
    loaded as a Yosys ``write_json`` netlist
    (:func:`repro.netlist.load_yosys`); any other string is a suite
    benchmark name generated at ``scale`` / ``seed``.
    """
    if not isinstance(design, str):
        return design
    if design.endswith(".json"):
        from .netlist import load_yosys

        return load_yosys(design)
    return make_design(design, scale, seed=seed)


#: Canonical flow name -> module-level flow function.  Every function is
#: picklable, so resolved flows can cross process boundaries.
_FLOW_IMPLS = {
    "commercial": place_commercial_like,
    "puffer": flow_puffer,
    "replace": place_replace_like,
    "wirelength": place_wirelength_driven,
}

#: Canonical flow names, sorted (the CLI's ``--flow`` choices).
FLOWS = tuple(sorted(_FLOW_IMPLS))

#: Display-name aliases (the paper's Table-II column headings) mapped
#: onto canonical flow names.
FLOW_ALIASES = {
    "Commercial_Inn*": "commercial",
    "PUFFER": "puffer",
    "RePlAce-like": "replace",
}

#: Table-II column order (paper order, not alphabetical).
TABLE2_COLUMNS = ("Commercial_Inn*", "RePlAce-like", "PUFFER")


def resolve_flow(flow, strategy: StrategyParams | None = None):
    """Resolve ``flow`` into ``(name, callable)``.

    Args:
        flow: a canonical flow name, a Table-II alias, or a custom
            callable ``flow(design, placement_params)`` (returned as-is
            with its ``__name__``).
        strategy: PUFFER strategy parameters, bound into the returned
            callable for the ``puffer`` flow (ignored by others).

    Returns:
        ``(canonical_name, flow_fn)`` where ``flow_fn(design,
        placement)`` runs the flow.  The callable is picklable whenever
        ``flow`` and ``strategy`` are.

    Raises:
        UnknownFlowError: when a string name matches no flow or alias.
    """
    if callable(flow):
        return getattr(flow, "__name__", str(flow)), flow
    name = FLOW_ALIASES.get(flow, flow)
    impl = _FLOW_IMPLS.get(name)
    if impl is None:
        raise UnknownFlowError(flow, FLOWS)
    if name == "puffer" and strategy is not None:
        impl = functools.partial(flow_puffer, strategy=strategy)
    return name, impl


def table2_flows(strategy: StrategyParams | None = None) -> dict:
    """The three Table-II flows keyed by paper column name, in order."""
    return {
        alias: resolve_flow(alias, strategy)[1] for alias in TABLE2_COLUMNS
    }


@dataclass
class RunConfig:
    """Everything a single run depends on.

    Attributes:
        scale: benchmark-generation scale (for name-based designs).
        seed: benchmark-generation seed offset.
        placement: global-placement engine parameters.
        router: evaluation-router parameters.
        strategy: PUFFER strategy parameters (``None`` = defaults).
        mode: placement mode — ``"standard"`` (default) runs the
            configured flow; ``"slots"`` runs fixed-slot assignment
            (:func:`repro.slots.place_slots`), ignoring ``flow``.
        slots: fixed-slot parameters (``None`` = defaults; only
            meaningful with ``mode="slots"``).
        verify: invariant-checker level — ``"off"`` (default),
            ``"cheap"`` (placement legality + padding accounting), or
            ``"full"`` (adds netlist integrity and routing accounting).
            Checkers run post-legalization and, when routing, post-route;
            the report lands on :attr:`RunResult.verify_report`.

    A ``RunConfig`` is the service wire format: :meth:`to_dict` /
    :meth:`from_dict` round-trip losslessly (``schema_version``-stamped,
    unknown keys rejected), and :func:`repro.runtime.cache.stable_hash`
    of :meth:`to_dict` is a reproducible cross-process cache key.
    Validation happens at construction — a bad ``verify`` level raises
    here, not mid-run.
    """

    scale: float = 0.004
    seed: int = 0
    placement: PlacementParams = field(default_factory=PlacementParams)
    router: RouterParams = field(default_factory=RouterParams)
    strategy: StrategyParams | None = None
    mode: str = "standard"
    slots: SlotParams | None = None
    verify: str = "off"

    def __post_init__(self) -> None:
        from .verify import LEVELS

        if self.verify not in LEVELS:
            raise ValueError(
                f"unknown verify level {self.verify!r}; expected one of {LEVELS}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown placement mode {self.mode!r}; expected one of {MODES}"
            )
        if self.slots is not None:
            self.slots.validate()

    def to_dict(self) -> dict:
        """JSON-safe wire dict; nested params carry their own versions."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Rebuild from :meth:`to_dict`.

        Raises:
            repro.schema.SchemaError: on unknown keys or an unsupported
                ``schema_version`` (at any nesting level).
            ValueError: on a bad ``verify`` level (via ``__post_init__``).
        """
        return dataclass_from_dict(
            cls,
            data,
            nested={
                "placement": PlacementParams.from_dict,
                "router": RouterParams.from_dict,
                "strategy": StrategyParams.from_dict,
                "slots": SlotParams.from_dict,
            },
        )


@dataclass
class RunResult:
    """Outcome of :func:`run`.

    Attributes:
        design: the placed design (positions mutated in place).
        flow: canonical name of the flow that ran.
        flow_result: whatever the flow returned (e.g.
            :class:`repro.core.PufferResult`).
        hpwl: post-flow half-perimeter wirelength.
        place_seconds: wall time of the flow call alone.
        route_report: router evaluation, when ``route=True``.
        legality: :func:`repro.netlist.check_legal` report, when
            ``verify_legal=True``.
        verify_report: :class:`repro.verify.VerifyReport` of the
            invariant checkers, when ``config.verify != "off"``.
    """

    design: Design
    flow: str
    flow_result: object
    hpwl: float
    place_seconds: float
    route_report: object | None = None
    legality: object | None = None
    verify_report: object | None = None

    def to_summary(self) -> dict:
        """A JSON-safe summary of the run (the service result format).

        Carries everything a remote caller can consume — metrics, not
        live objects: the placed :attr:`design` itself stays behind.
        """
        summary = {
            "design": self.design.name,
            "flow": self.flow,
            "hpwl": float(self.hpwl),
            "place_seconds": float(self.place_seconds),
            "route": _route_report_summary(self.route_report),
            "legal": None if self.legality is None else bool(self.legality.ok),
            "verify": None,
        }
        if self.verify_report is not None:
            summary["verify"] = {
                "ok": bool(self.verify_report.ok),
                "errors": len(self.verify_report.errors),
                "warnings": len(self.verify_report.warnings),
            }
        sa = getattr(self.flow_result, "sa", None)
        if getattr(self.flow_result, "slot_assignment", None) is not None:
            summary["slots"] = {
                "hpwl_initial": float(self.flow_result.hpwl_initial),
                "hpwl_final": float(self.flow_result.hpwl_final),
                "num_slots": int(self.flow_result.slot_grid.num_slots),
                "sa_iterations": 0 if sa is None else int(sa.iterations),
                "sa_accepted": 0 if sa is None else int(sa.accepted),
            }
        return summary


def _route_report_summary(report) -> dict | None:
    """JSON-safe metrics of a :class:`repro.router.RouteReport`."""
    if report is None:
        return None
    return {
        "hof": float(report.hof),
        "vof": float(report.vof),
        "total_overflow": float(report.total_overflow),
        "wirelength": float(report.wirelength),
        "runtime": float(report.runtime),
        "rounds": int(report.rounds),
        "num_segments": int(report.num_segments),
        "via_count": int(report.via_count),
    }


@dataclass
class RouteResult:
    """Outcome of :func:`route`, mirroring :class:`RunResult`.

    Attributes:
        design: the routed design (unchanged by routing).
        route_report: the :class:`repro.router.RouteReport`.
        route_seconds: wall time of the routing call.

    Attribute access that falls through to the underlying report
    (``result.hof``, ``result.summary()``, …) still works as a
    deprecation shim for callers written against the old bare-report
    return shape of :func:`route`, with a :class:`DeprecationWarning`.
    """

    design: Design
    route_report: object
    route_seconds: float

    def to_summary(self) -> dict:
        """A JSON-safe summary of the route (the service result format)."""
        return {
            "design": self.design.name,
            "hpwl": float(self.design.hpwl()),
            "route_seconds": float(self.route_seconds),
            "route": _route_report_summary(self.route_report),
        }

    def __getattr__(self, name: str):
        # Deprecation shim: ``route()`` used to return the bare report.
        report = object.__getattribute__(self, "route_report")
        value = getattr(report, name)
        warnings.warn(
            f"accessing {name!r} on RouteResult is deprecated; use "
            f"RouteResult.route_report.{name}",
            DeprecationWarning,
            stacklevel=2,
        )
        return value


def run(
    design,
    flow="puffer",
    config: RunConfig | None = None,
    *,
    trace=None,
    route: bool = False,
    verify_legal: bool = False,
    verify: str | None = None,
) -> RunResult:
    """Place ``design`` with ``flow`` — the unified entry point.

    Args:
        design: a :class:`~repro.netlist.design.Design` (placed in
            place), a suite benchmark name (generated from
            ``config.scale`` / ``config.seed``), or a path to a Yosys
            ``*_mapped.json`` netlist (loaded via
            :func:`repro.netlist.load_yosys`).
        flow: flow name, Table-II alias, or custom callable (ignored
            when ``config.mode == "slots"``).
        config: run configuration (defaults throughout when omitted).
        trace: observability target — a trace-file path or a
            :class:`repro.obs.Tracer`; the whole run executes under
            :func:`repro.obs.tracing`.
        route: also evaluate the result with the global router.
        verify_legal: also run the legality checker on the result.
        verify: invariant-checker level override; defaults to
            ``config.verify``.

    Returns:
        A :class:`RunResult`.

    Raises:
        UnknownFlowError: for an unrecognized flow name.
        ValueError: for an unrecognized verify level.
    """
    from .verify import LEVELS

    config = config or RunConfig()
    verify = config.verify if verify is None else verify
    if verify not in LEVELS:
        raise ValueError(f"unknown verify level {verify!r}; expected one of {LEVELS}")
    if config.mode == "slots":
        flow_name = "slots"
        flow_fn = functools.partial(
            flow_slots, params=config.slots, seed=config.seed
        )
    else:
        flow_name, flow_fn = resolve_flow(flow, strategy=config.strategy)
    with obs.tracing(trace):
        with obs.span("api/run", flow=flow_name) as run_span:
            if isinstance(design, str):
                run_span.set(design=design)
                design = resolve_design(design, config.scale, config.seed)
            start = time.perf_counter()
            flow_result = flow_fn(design, config.placement)
            place_seconds = time.perf_counter() - start
            report = GlobalRouter(design, config.router).run() if route else None
            legality = check_legal(design) if verify_legal else None
            verify_report = (
                _verify_run(design, config, flow_result, report, verify)
                if verify != "off"
                else None
            )
            run_span.set(hpwl=design.hpwl(), place_seconds=place_seconds)
            if verify_report is not None:
                run_span.set(verify_errors=len(verify_report.errors))
    return RunResult(
        design=design,
        flow=flow_name,
        flow_result=flow_result,
        hpwl=design.hpwl(),
        place_seconds=place_seconds,
        route_report=report,
        legality=legality,
        verify_report=verify_report,
    )


def _verify_run(design, config: RunConfig, flow_result, route_report, level: str):
    """Post-legalization / post-route invariant checking for :func:`run`.

    Pulls the padding arrays off the flow result when the flow exposes
    them (the PUFFER flow does) and the routing maps off the route
    report when the run routed, so the padding and routing checkers have
    their inputs whenever they can.
    """
    from .legalizer import DEFAULT_AREA_CAP
    from .verify import VerifyContext, run_checkers

    area_cap = (
        config.strategy.legal_area_cap
        if config.strategy is not None
        else DEFAULT_AREA_CAP
    )
    ctx = VerifyContext(
        design=design,
        pad=getattr(flow_result, "padding", None),
        padded_widths=getattr(flow_result, "legal_widths", None),
        area_cap=area_cap,
        grid=getattr(route_report, "grid", None),
        demand=getattr(route_report, "demand", None),
        route_report=route_report,
        slot_grid=getattr(flow_result, "slot_grid", None),
        slot_assignment=getattr(flow_result, "slot_assignment", None),
    )
    return run_checkers(ctx, level=level)


def route(design: Design, config: RunConfig | None = None, *, trace=None) -> RouteResult:
    """Route an already-placed design.

    Returns:
        A typed :class:`RouteResult`.  (Older callers that treated the
        return value as the bare :class:`repro.router.RouteReport` keep
        working through a deprecation shim.)
    """
    config = config or RunConfig()
    with obs.tracing(trace):
        with obs.span("api/route", design=design.name):
            start = time.perf_counter()
            report = GlobalRouter(design, config.router).run()
            route_seconds = time.perf_counter() - start
    return RouteResult(design=design, route_report=report, route_seconds=route_seconds)


def suite(
    config: RunConfig | None = None,
    benchmarks: list | None = None,
    flows: dict | None = None,
    *,
    trace=None,
    progress=None,
    jobs: int = 1,
    cache=None,
    journal=None,
    resume: bool = False,
    retries: int = 0,
    telemetry=None,
) -> list:
    """The Table-II suite evaluation through the facade.

    Thin wrapper over :func:`repro.evalkit.runner.run_suite`: converts
    :class:`RunConfig` into the runner's configuration, threads the
    strategy, and executes under :func:`repro.obs.tracing`.
    """
    from .evalkit.runner import SuiteRunConfig, run_suite

    config = config or RunConfig()
    suite_config = SuiteRunConfig(
        scale=config.scale,
        placement=config.placement,
        router=config.router,
        benchmarks=benchmarks,
        seed=config.seed,
        verify=config.verify,
    )
    with obs.tracing(trace):
        return run_suite(
            suite_config,
            flows,
            progress,
            strategy=config.strategy,
            jobs=jobs,
            cache=cache,
            journal=journal,
            resume=resume,
            retries=retries,
            telemetry=telemetry,
        )


#: Sentinel distinguishing "``rng`` not passed" from any real seed value.
_UNSET = object()

#: Transfer-prior modes an :class:`ExploreConfig` accepts.
PRIOR_MODES = ("auto", "off")


@dataclass
class ExploreConfig:
    """Everything one strategy exploration depends on.

    The typed counterpart of :func:`explore`'s historical loose kwargs,
    mirroring :class:`RunConfig`: :meth:`to_dict` / :meth:`from_dict`
    round-trip losslessly (``schema_version``-stamped, unknown keys
    rejected) and :func:`repro.runtime.cache.stable_hash` of
    :meth:`to_dict` is a reproducible cross-process key.  This is the
    wire format of ``POST /v1/explorations``.

    Attributes:
        design: suite benchmark name (or Yosys ``.json`` path) to
            explore on.
        scale: benchmark-generation scale.
        budget: global-stage evaluation budget (paper ``TC``).
        group_evals: per-group budget per round (``None`` derives
            ``max(budget // 3, 3)``, as the CLI always has).
        patience: early-stop limit per stage (``None`` derives
            ``max(budget // 3, 3)``).
        max_group_rounds: cap on sweeps over the parameter groups.
        seed: exploration RNG seed.
        batch_size: TPE candidates evaluated per round; ``1`` is
            bit-identical to the strictly-serial protocol.
        wl_weight: wirelength tiebreak weight of the objective.
        priors: transfer-prior mode — ``"auto"`` seeds the global TPE
            stage from completed explorations on similar designs when a
            prior store is available, ``"off"`` never does.
        prior_limit: maximum prior observations replayed.
    """

    design: str = "OR1200"
    scale: float = 0.008
    budget: int = 12
    group_evals: int | None = None
    patience: int | None = None
    max_group_rounds: int = 1
    seed: int = 7
    batch_size: int = 1
    wl_weight: float = 0.02
    priors: str = "auto"
    prior_limit: int = 32

    def __post_init__(self) -> None:
        if not isinstance(self.design, str) or not self.design:
            raise ValueError(f"design must be a non-empty string, got {self.design!r}")
        if not self.scale > 0:
            raise ValueError(f"scale must be positive, got {self.scale!r}")
        if not isinstance(self.budget, int) or self.budget < 1:
            raise ValueError(f"budget must be a positive int, got {self.budget!r}")
        for name in ("group_evals", "patience"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValueError(f"{name} must be None or a positive int, got {value!r}")
        if not isinstance(self.max_group_rounds, int) or self.max_group_rounds < 1:
            raise ValueError(
                f"max_group_rounds must be a positive int, got {self.max_group_rounds!r}"
            )
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ValueError(f"batch_size must be a positive int, got {self.batch_size!r}")
        if self.priors not in PRIOR_MODES:
            raise ValueError(
                f"unknown priors mode {self.priors!r}; expected one of {PRIOR_MODES}"
            )
        if not isinstance(self.prior_limit, int) or self.prior_limit < 0:
            raise ValueError(
                f"prior_limit must be a non-negative int, got {self.prior_limit!r}"
            )

    @property
    def resolved_group_evals(self) -> int:
        return self.group_evals if self.group_evals is not None else max(self.budget // 3, 3)

    @property
    def resolved_patience(self) -> int:
        return self.patience if self.patience is not None else max(self.budget // 3, 3)

    def to_dict(self) -> dict:
        """JSON-safe wire dict (``schema_version``-stamped)."""
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreConfig":
        """Rebuild from :meth:`to_dict`.

        Raises:
            repro.schema.SchemaError: on unknown keys or an unsupported
                ``schema_version``.
            ValueError: on out-of-range values (via ``__post_init__``).
        """
        return dataclass_from_dict(cls, data)


class _RecordingEvaluator:
    """Wrap a batch evaluator, recording every candidate as a wire Trial.

    The wrapper is loss- and RNG-transparent: it forwards each batch
    unchanged and returns the inner losses unchanged, so wrapping does
    not perturb the exploration.  Per-trial measurements come from the
    inner evaluator's ``last_details`` when it publishes them
    (:func:`repro.core.exploration.make_batch_evaluator` and the serve
    tier's ``DistributedEvaluator`` both do).
    """

    def __init__(self, inner, on_trial=None) -> None:
        self.inner = inner
        self.on_trial = on_trial
        self.trials: list = []
        self.stage = "global"

    def set_stage(self, stage: str) -> None:
        self.stage = stage

    def __call__(self, batch: list) -> list:
        losses = self.inner(batch)
        details = getattr(self.inner, "last_details", None)
        if not details or len(details) != len(batch):
            details = [None] * len(batch)
        for params, loss, detail in zip(batch, losses, details):
            detail = detail or {}
            trial = schema.Trial(
                index=len(self.trials),
                stage=self.stage,
                params={key: value for key, value in params.items()},
                loss=float(loss),
                overflow=detail.get("overflow"),
                wirelength=detail.get("wirelength"),
                cached=bool(detail.get("cached", False)),
            )
            self.trials.append(trial)
            if self.on_trial is not None:
                self.on_trial(trial)
        return losses


@dataclass
class ExplorationOutcome:
    """What :func:`run_exploration` returns.

    Attributes:
        config: the :class:`ExploreConfig` that ran.
        report: the live :class:`repro.core.exploration.ExplorationReport`
            (holds ``StrategyParams`` and the final ``Space``).
        wire: the :class:`repro.schema.ExplorationReport` wire record,
            trials included — what the ``/v1/explorations`` resource
            serves.
    """

    config: ExploreConfig
    report: object
    wire: schema.ExplorationReport

    @property
    def trials(self) -> list:
        return self.wire.trials


def _wire_exploration_report(design: str, report, trials: list) -> schema.ExplorationReport:
    """Flatten a live exploration report into its wire record."""
    return schema.ExplorationReport(
        design=design,
        params=report.params.to_dict(),
        best_loss=float(report.best_loss),
        best_params={key: value for key, value in report.best_params.items()},
        evaluations=int(report.evaluations),
        group_rounds=int(report.group_rounds),
        history=[[stage, float(loss)] for stage, loss in report.history],
        trials=list(trials),
    )


def run_exploration(
    config: ExploreConfig | None = None,
    *,
    evaluator=None,
    on_trial=None,
    priors=None,
    trace=None,
) -> ExplorationOutcome:
    """Drive one full strategy exploration under a typed config.

    The engine under both :func:`explore` power users and the
    ``/v1/explorations`` service resource: builds the placement
    objective, wraps the evaluator so every candidate is recorded as a
    :class:`repro.schema.Trial` (streamed through ``on_trial`` as it
    completes), optionally seeds the global TPE stage from a
    :class:`repro.tpe.TransferPriors` store, and returns both the live
    report and its wire form.

    Args:
        config: the :class:`ExploreConfig` (defaults throughout).
        evaluator: optional batch evaluator (``list[params] ->
            list[loss]``); defaults to a local
            :func:`~repro.core.exploration.make_batch_evaluator` over
            the objective.  The serve tier passes its
            ``DistributedEvaluator`` here.
        on_trial: optional callable receiving each completed
            :class:`repro.schema.Trial` in evaluation order.
        priors: optional :class:`repro.tpe.TransferPriors`; consulted
            (and updated with this run's trials) unless
            ``config.priors == "off"``.  Seeding changes the TPE RNG
            stream, so bit-identity comparisons must run without it.
        trace: observability target (path or tracer).

    Returns:
        An :class:`ExplorationOutcome`.
    """
    from .core.exploration import (
        SuiteDesignFactory,
        make_batch_evaluator,
        make_placement_objective,
        strategy_exploration,
    )
    from .core.strategy import default_space

    config = config or ExploreConfig()
    objective = make_placement_objective(
        SuiteDesignFactory(config.design, config.scale), wl_weight=config.wl_weight
    )
    recorder = _RecordingEvaluator(
        evaluator if evaluator is not None else make_batch_evaluator(objective),
        on_trial=on_trial,
    )
    use_priors = priors is not None and config.priors != "off"
    warm_start = None
    features = None
    space = default_space()
    if use_priors:
        from .tpe import design_features

        features = design_features(resolve_design(config.design, config.scale, config.seed))
        warm_start = priors.load(space, features, limit=config.prior_limit) or None
    with obs.tracing(trace):
        with obs.span(
            "explore/run",
            design=config.design,
            budget=config.budget,
            batch_size=config.batch_size,
        ) as run_span:
            report = strategy_exploration(
                objective,
                space=space,
                global_evals=config.budget,
                group_evals=config.resolved_group_evals,
                patience=config.resolved_patience,
                max_group_rounds=config.max_group_rounds,
                rng=config.seed,
                batch_size=config.batch_size,
                evaluator=recorder,
                warm_start=warm_start,
                on_stage=recorder.set_stage,
            )
            run_span.set(
                best_loss=float(report.best_loss),
                evaluations=int(report.evaluations),
                warm_trials=0 if warm_start is None else len(warm_start),
            )
    if use_priors:
        priors.save(
            space, features, [(trial.params, trial.loss) for trial in recorder.trials]
        )
    wire = _wire_exploration_report(config.design, report, recorder.trials)
    return ExplorationOutcome(config=config, report=report, wire=wire)


def explore(
    design: str = "OR1200",
    *,
    scale: float = 0.008,
    budget: int = 12,
    seed: int = 7,
    rng=_UNSET,
    trace=None,
    batch_size: int = 1,
    evaluator=None,
    config: ExploreConfig | None = None,
):
    """Strategy exploration (paper Sec. III-C) through the facade.

    Args:
        design: suite benchmark to explore on.
        scale: benchmark-generation scale.
        budget: global-stage evaluation budget (group stages derive
            their budget and patience from it, as the CLI always has).
        seed: RNG seed (named like :attr:`RunConfig.seed`; the old
            ``rng=`` keyword still works with a ``DeprecationWarning``).
        trace: observability target (path or tracer).
        batch_size: TPE candidates per round.
        evaluator: optional parallel batch evaluator.
        config: a full :class:`ExploreConfig`; when given it wins over
            the individual kwargs.  (Callers wanting trial streams or
            transfer priors use :func:`run_exploration` directly.)

    Returns:
        The :class:`repro.core.exploration.ExplorationReport`.
    """
    from .core.exploration import (
        SuiteDesignFactory,
        make_placement_objective,
        strategy_exploration,
    )

    if rng is not _UNSET:
        warnings.warn(
            "explore(rng=...) is deprecated; use seed= (like RunConfig.seed)",
            DeprecationWarning,
            stacklevel=2,
        )
        seed = rng
    if config is None:
        config = ExploreConfig(
            design=design,
            scale=scale,
            budget=budget,
            seed=seed,
            batch_size=batch_size,
        )
    objective = make_placement_objective(
        SuiteDesignFactory(config.design, config.scale), wl_weight=config.wl_weight
    )
    with obs.tracing(trace):
        return strategy_exploration(
            objective,
            global_evals=config.budget,
            group_evals=config.resolved_group_evals,
            patience=config.resolved_patience,
            max_group_rounds=config.max_group_rounds,
            rng=config.seed,
            batch_size=config.batch_size,
            evaluator=evaluator,
        )


__all__ = [
    "ExplorationOutcome",
    "ExploreConfig",
    "FLOWS",
    "FLOW_ALIASES",
    "MODES",
    "PRIOR_MODES",
    "RouteResult",
    "RunConfig",
    "RunResult",
    "TABLE2_COLUMNS",
    "UnknownFlowError",
    "explore",
    "flow_puffer",
    "flow_slots",
    "resolve_design",
    "resolve_flow",
    "route",
    "run",
    "run_exploration",
    "suite",
    "table2_flows",
]
