"""Circuit database: geometry, technology, netlist, serialization."""

from .builder import DesignBuilder
from .design import Blockage, Design
from .geometry import Point, Rect, bounding_box, clamp
from .technology import (
    HORIZONTAL,
    VERTICAL,
    MetalLayer,
    Technology,
    default_metal_stack,
    reduced_metal_stack,
)
from .bookshelf import load_design, save_design
from .transform import (
    add_cell,
    clone_design,
    extract_window,
    mirror_horizontal,
    remove_cell,
)
from .validate import ValidationReport, check_legal, validate_design
from .yosys import CellLibrary, load_yosys

__all__ = [
    "Blockage",
    "CellLibrary",
    "Design",
    "DesignBuilder",
    "HORIZONTAL",
    "MetalLayer",
    "Point",
    "Rect",
    "Technology",
    "VERTICAL",
    "ValidationReport",
    "add_cell",
    "bounding_box",
    "check_legal",
    "clamp",
    "clone_design",
    "default_metal_stack",
    "extract_window",
    "load_design",
    "load_yosys",
    "mirror_horizontal",
    "reduced_metal_stack",
    "remove_cell",
    "save_design",
    "validate_design",
]
