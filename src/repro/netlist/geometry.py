"""Planar geometry primitives shared by every subsystem.

All coordinates are floats in database units (one unit equals one
placement-site width; row height and Gcell size are expressed in the same
units by :class:`repro.netlist.technology.Technology`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in the plane."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside or on the boundary."""
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share interior area."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` for disjoint inputs."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi <= xlo or yhi <= ylo:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def overlap_area(self, other: "Rect") -> float:
        """Area shared with ``other`` (zero for disjoint rectangles)."""
        w = min(self.xhi, other.xhi) - max(self.xlo, other.xlo)
        h = min(self.yhi, other.yhi) - max(self.ylo, other.ylo)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def expanded(self, margin_x: float, margin_y: float | None = None) -> "Rect":
        """A copy grown by ``margin_x`` / ``margin_y`` on every side."""
        if margin_y is None:
            margin_y = margin_x
        return Rect(
            self.xlo - margin_x,
            self.ylo - margin_y,
            self.xhi + margin_x,
            self.yhi + margin_y,
        )

    def clipped_to(self, bounds: "Rect") -> "Rect":
        """This rectangle clipped to ``bounds`` (must overlap)."""
        clipped = self.intersection(bounds)
        if clipped is None:
            raise ValueError(f"{self} does not overlap clip bounds {bounds}")
        return clipped


def bounding_box(points: "list[Point]") -> Rect:
    """The smallest rectangle enclosing ``points`` (non-empty)."""
    if not points:
        raise ValueError("bounding_box of an empty point set")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def clamp(value: float, lo: float, hi: float) -> float:
    """``value`` limited to the closed interval ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty clamp interval [{lo}, {hi}]")
    return lo if value < lo else hi if value > hi else value
