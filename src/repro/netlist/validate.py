"""Design sanity and legality checks.

Two levels are provided: :func:`validate_design` checks structural
well-formedness (run after construction or deserialization), and
:func:`check_legal` verifies placement legality (run after legalization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .design import Design


@dataclass
class ValidationReport:
    """Outcome of a validation pass.

    Attributes:
        errors: fatal problems; the design must not be used.
        warnings: suspicious but usable conditions.
    """

    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def __str__(self) -> str:
        lines = [f"errors: {len(self.errors)}, warnings: {len(self.warnings)}"]
        lines += [f"  E: {e}" for e in self.errors]
        lines += [f"  W: {w}" for w in self.warnings]
        return "\n".join(lines)


def validate_design(design: Design) -> ValidationReport:
    """Structural checks: sizes, containment, connectivity degeneracies."""
    report = ValidationReport()
    if design.num_cells == 0:
        report.errors.append("design has no cells")
        return report
    if np.any(design.w <= 0) or np.any(design.h <= 0):
        report.errors.append("non-positive cell dimensions")
    die = design.die
    fixed = ~design.movable
    if fixed.any():
        xlo = design.x[fixed] - design.w[fixed] / 2
        ylo = design.y[fixed] - design.h[fixed] / 2
        xhi = design.x[fixed] + design.w[fixed] / 2
        yhi = design.y[fixed] + design.h[fixed] / 2
        eps = 1e-6
        outside = (
            (xlo < die.xlo - eps)
            | (ylo < die.ylo - eps)
            | (xhi > die.xhi + eps)
            | (yhi > die.yhi + eps)
        )
        if outside.any():
            report.errors.append(
                f"{int(outside.sum())} fixed cells extend outside the die"
            )
    degrees = design.net_degrees()
    singletons = int((degrees <= 1).sum())
    if singletons:
        report.warnings.append(f"{singletons} nets with fewer than two pins")
    if design.num_pins:
        counts = np.bincount(design.pin_cell, minlength=design.num_cells)
        floating = int((counts == 0)[design.movable].sum())
        if floating:
            report.warnings.append(f"{floating} movable cells with no pins")
    util = design.movable_area / max(_free_area(design), 1e-12)
    if util > 1.0:
        report.errors.append(f"movable area exceeds free die area (util={util:.3f})")
    elif util > 0.95:
        report.warnings.append(f"very high utilization {util:.3f}")
    return report


def check_legal(
    design: Design, site_align: bool = True, tolerance: float = 1e-6
) -> ValidationReport:
    """Placement-legality checks for movable standard cells.

    Verifies die containment, row alignment, site alignment (optional),
    and pairwise non-overlap within each row.
    """
    report = ValidationReport()
    tech = design.technology
    die = design.die
    movable = np.flatnonzero(design.movable & ~design.is_macro)
    if len(movable) == 0:
        return report
    xlo = design.x[movable] - design.w[movable] / 2
    ylo = design.y[movable] - design.h[movable] / 2
    xhi = design.x[movable] + design.w[movable] / 2
    yhi = design.y[movable] + design.h[movable] / 2

    outside = (
        (xlo < die.xlo - tolerance)
        | (ylo < die.ylo - tolerance)
        | (xhi > die.xhi + tolerance)
        | (yhi > die.yhi + tolerance)
    )
    if outside.any():
        report.errors.append(f"{int(outside.sum())} cells outside the die")

    row_offset = (ylo - die.ylo) / tech.row_height
    misrow = np.abs(row_offset - np.round(row_offset)) > tolerance
    if misrow.any():
        report.errors.append(f"{int(misrow.sum())} cells not row-aligned")

    if site_align:
        site_offset = (xlo - die.xlo) / tech.site_width
        missite = np.abs(site_offset - np.round(site_offset)) > tolerance
        if missite.any():
            report.errors.append(f"{int(missite.sum())} cells not site-aligned")

    overlaps = _count_row_overlaps(xlo, xhi, ylo, tolerance, die.ylo, tech.row_height)
    if overlaps:
        report.errors.append(f"{overlaps} overlapping cell pairs within rows")

    blockers = np.flatnonzero(~design.movable | design.is_macro)
    macro_overlaps = 0
    for b in blockers:
        br = design.cell_rect(int(b))
        hit = (
            (xlo < br.xhi - tolerance)
            & (br.xlo < xhi - tolerance)
            & (ylo < br.yhi - tolerance)
            & (br.ylo < yhi - tolerance)
        )
        macro_overlaps += int(hit.sum())
    if macro_overlaps:
        report.errors.append(f"{macro_overlaps} cells overlapping fixed objects")
    return report


def _count_row_overlaps(
    xlo: np.ndarray,
    xhi: np.ndarray,
    ylo: np.ndarray,
    tolerance: float,
    die_ylo: float,
    row_height: float,
) -> int:
    """Number of overlapping cell pairs among cells sharing a row.

    Cells are grouped by row *index* — ``round((ylo - die_ylo) /
    row_height)`` — rather than by exact bottom-y, so sub-tolerance y
    jitter (e.g. 1e-9 from float round-trips) cannot split one physical
    row into two groups and hide an overlap.
    """
    overlaps = 0
    rows = np.round((ylo - die_ylo) / row_height)
    order = np.lexsort((xlo, rows))
    prev_row = None
    prev_xhi = -np.inf
    for i in order:
        if prev_row is None or rows[i] != prev_row:
            prev_row = rows[i]
            prev_xhi = xhi[i]
            continue
        if xlo[i] < prev_xhi - tolerance:
            overlaps += 1
        prev_xhi = max(prev_xhi, xhi[i])
    return overlaps


def _free_area(design: Design) -> float:
    """Die area minus the area of fixed objects (approximate: no dedup).

    Subtracts fixed-cell area plus the die-clipped area of placement
    blockages — blockages on layers below ``routing_layers_start``
    obstruct placement sites, not just routing tracks — so utilization
    checks can fire on blockage-heavy designs.
    """
    area = design.die.area
    fixed = ~design.movable
    if fixed.any():
        area -= float((design.w[fixed] * design.h[fixed]).sum())
    routing_start = design.technology.routing_layers_start
    for blk in design.blockages:
        if blk.layer >= routing_start:
            continue
        area -= blk.rect.overlap_area(design.die)
    return area
