"""Technology description: metal stack, sites, rows, and Gcell geometry.

The routing-capacity model of PUFFER (paper Eq. 8) needs, for every metal
layer, its preferred direction, wire width, and wire spacing.  The
placement and legalization substrates additionally need the placement-site
width and the standard-row height.  All dimensions are in database units
where one unit equals one site width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HORIZONTAL = "H"
VERTICAL = "V"


@dataclass(frozen=True)
class MetalLayer:
    """A single routing layer.

    Attributes:
        name: layer name, e.g. ``"M2"``.
        direction: preferred routing direction, ``"H"`` or ``"V"``.
        wire_width: default wire width in database units.
        wire_spacing: minimum spacing between wires in database units.
    """

    name: str
    direction: str
    wire_width: float
    wire_spacing: float

    def __post_init__(self) -> None:
        if self.direction not in (HORIZONTAL, VERTICAL):
            raise ValueError(f"layer {self.name}: bad direction {self.direction!r}")
        if self.wire_width <= 0.0 or self.wire_spacing <= 0.0:
            raise ValueError(f"layer {self.name}: non-positive width/spacing")

    @property
    def pitch(self) -> float:
        """Track pitch: wire width plus spacing."""
        return self.wire_width + self.wire_spacing


@dataclass(frozen=True)
class Technology:
    """Complete technology information for one design.

    Attributes:
        site_width: placement-site width (the unit of legal cell x).
        row_height: standard-cell row height.
        gcell_size: edge length of one square Gcell, in database units.
        layers: bottom-up metal stack.  Layer 0 (typically ``M1``) is
            reserved for intra-cell routing and carries no global-routing
            capacity, mirroring common industrial practice.
        routing_layers_start: index of the first layer that contributes
            global-routing capacity.
    """

    site_width: float = 1.0
    row_height: float = 8.0
    gcell_size: float = 16.0
    layers: tuple = field(default_factory=tuple)
    routing_layers_start: int = 1

    def __post_init__(self) -> None:
        if self.site_width <= 0 or self.row_height <= 0 or self.gcell_size <= 0:
            raise ValueError("site_width, row_height, gcell_size must be positive")
        if not self.layers:
            object.__setattr__(self, "layers", default_metal_stack())
        if not 0 <= self.routing_layers_start <= len(self.layers):
            raise ValueError("routing_layers_start out of range")

    @property
    def routing_layers(self) -> tuple:
        """Layers that contribute global-routing capacity."""
        return self.layers[self.routing_layers_start :]

    def layers_in_direction(self, direction: str) -> tuple:
        """Routing layers whose preferred direction is ``direction``."""
        return tuple(l for l in self.routing_layers if l.direction == direction)

    def tracks_per_gcell(self, direction: str) -> float:
        """Total routing tracks crossing one Gcell in ``direction``.

        This is the first (basic-capacity) term of paper Eq. (8):
        ``sum_l GcellLength / (MetalWidth_l + WireSpacing_l)`` over layers
        whose preferred direction matches.
        """
        return sum(self.gcell_size / l.pitch for l in self.layers_in_direction(direction))


def default_metal_stack(num_layers: int = 9, base_pitch: float = 1.2) -> tuple:
    """A generic alternating-HV metal stack.

    ``M1`` (vertical here) is excluded from routing capacity by the
    default ``routing_layers_start=1``; M2/M4/M6 are horizontal and
    M3/M5/M7 vertical, with fatter pitches on the top two layers as in
    real stacks.  The default seven-layer stack gives balanced H/V
    capacity of roughly 21 tracks per 16-unit Gcell per direction.

    Args:
        num_layers: total layer count including M1.
        base_pitch: pitch of the lower routing layers.

    Returns:
        Tuple of :class:`MetalLayer` bottom-up.
    """
    if num_layers < 2:
        raise ValueError("need at least two layers")
    layers = []
    for i in range(num_layers):
        direction = HORIZONTAL if i % 2 == 1 else VERTICAL
        # The top two layers are fatter, as in real stacks.
        pitch = base_pitch * (1.5 if i >= num_layers - 2 and i >= 4 else 1.0)
        width = pitch * 0.45
        spacing = pitch - width
        layers.append(MetalLayer(f"M{i + 1}", direction, width, spacing))
    return tuple(layers)


def reduced_metal_stack(num_layers: int = 9, base_pitch: float = 1.42) -> tuple:
    """A tighter stack for routability-stressed designs.

    A coarser pitch cuts per-Gcell capacity by roughly a sixth in both
    directions; the VOF-dominated character of designs such as
    ``MEDIA_SUBSYS`` (cf. Table II) then comes from their dense *vertical*
    power straps, which the benchmark generator biases against the
    vertical layers.
    """
    return default_metal_stack(num_layers=num_layers, base_pitch=base_pitch)
