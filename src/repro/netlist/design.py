"""The frozen circuit database used by every placement subsystem.

A :class:`Design` is an immutable-topology, mutable-position view of a
netlist ``H = (V, E)``: cells carry sizes and center coordinates, pins
carry per-cell offsets, and nets are stored in CSR form so wirelength and
congestion kernels can run vectorized over numpy arrays.

Construct designs through :class:`repro.netlist.builder.DesignBuilder` or
load them with :mod:`repro.netlist.bookshelf`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .geometry import Rect
from .technology import Technology


@dataclass(frozen=True)
class Blockage:
    """A routing obstruction occupying ``rect`` on metal layer ``layer``.

    Blockages model pin obstructions, power/ground straps, and macro
    keep-outs; the capacity model (paper Eq. 8) subtracts the routing
    tracks they consume from the affected Gcells.
    """

    rect: Rect
    layer: int


class Design:
    """A placed (or placeable) netlist with structure-of-arrays access.

    Topology (cells, pins, nets) is frozen after construction; only the
    position arrays ``x`` and ``y`` (cell centers) mutate during placement.

    Attributes:
        name: design name.
        technology: the :class:`Technology` this design targets.
        die: placement region.
        cell_names: per-cell names.
        w, h: per-cell widths/heights.
        x, y: per-cell center coordinates (mutable).
        movable: boolean mask of movable cells.
        is_macro: boolean mask of macro cells.
        net_names: per-net names.
        net_start: CSR offsets into ``net_pins`` (length ``num_nets + 1``).
        net_pins: pin indices grouped by net.
        pin_cell: owning cell of each pin.
        pin_net: owning net of each pin.
        pin_dx, pin_dy: pin offsets from the owning cell's center.
        blockages: routing obstructions.
    """

    def __init__(
        self,
        name: str,
        technology: Technology,
        die: Rect,
        cell_names: list,
        w: np.ndarray,
        h: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        movable: np.ndarray,
        is_macro: np.ndarray,
        net_names: list,
        net_start: np.ndarray,
        net_pins: np.ndarray,
        pin_cell: np.ndarray,
        pin_net: np.ndarray,
        pin_dx: np.ndarray,
        pin_dy: np.ndarray,
        blockages: list | None = None,
        cell_pin_index: tuple | None = None,
    ) -> None:
        self.name = name
        self.technology = technology
        self.die = die
        self.cell_names = list(cell_names)
        self.w = np.asarray(w, dtype=np.float64)
        self.h = np.asarray(h, dtype=np.float64)
        self.x = np.asarray(x, dtype=np.float64).copy()
        self.y = np.asarray(y, dtype=np.float64).copy()
        self.movable = np.asarray(movable, dtype=bool)
        self.is_macro = np.asarray(is_macro, dtype=bool)
        self.net_names = list(net_names)
        self.net_start = np.asarray(net_start, dtype=np.int64)
        self.net_pins = np.asarray(net_pins, dtype=np.int64)
        self.pin_cell = np.asarray(pin_cell, dtype=np.int64)
        self.pin_net = np.asarray(pin_net, dtype=np.int64)
        self.pin_dx = np.asarray(pin_dx, dtype=np.float64)
        self.pin_dy = np.asarray(pin_dy, dtype=np.float64)
        self.blockages = list(blockages or [])
        if cell_pin_index is not None:
            # Zero-copy construction (repro.runtime.shm): reuse a
            # prebuilt CSR index instead of re-sorting the pins.
            self._cellpin_start, self._cellpin_list = cell_pin_index
        else:
            self._cellpin_start, self._cellpin_list = self._build_cell_pin_index()
        self._check_consistency()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_cell_pin_index(self):
        """CSR index mapping each cell to its pin ids."""
        num_pins = len(self.pin_cell)
        order = np.argsort(self.pin_cell, kind="stable")
        counts = np.bincount(self.pin_cell, minlength=self.num_cells)
        start = np.zeros(self.num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=start[1:])
        return start, order.astype(np.int64)

    def _check_consistency(self) -> None:
        n, m, p = self.num_cells, self.num_nets, self.num_pins
        if not (
            len(self.w) == len(self.h) == len(self.x) == len(self.y)
            == len(self.movable) == len(self.is_macro) == n
        ):
            raise ValueError("cell array length mismatch")
        if len(self.net_start) != m + 1 or self.net_start[-1] != p:
            raise ValueError("net CSR structure inconsistent with pin count")
        if len(self.net_pins) != p or len(self.pin_net) != p:
            raise ValueError("pin array length mismatch")
        if p and (self.pin_cell.min() < 0 or self.pin_cell.max() >= n):
            raise ValueError("pin_cell index out of range")
        if p and (self.pin_net.min() < 0 or self.pin_net.max() >= m):
            raise ValueError("pin_net index out of range")

    # ------------------------------------------------------------------
    # Sizes and areas
    # ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cell_names)

    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    @property
    def num_pins(self) -> int:
        return len(self.pin_cell)

    @property
    def num_movable(self) -> int:
        return int(self.movable.sum())

    @property
    def num_macros(self) -> int:
        return int(self.is_macro.sum())

    @property
    def cell_area(self) -> np.ndarray:
        """Per-cell area ``w * h``."""
        return self.w * self.h

    @property
    def movable_area(self) -> float:
        """Total area of movable cells."""
        return float((self.w[self.movable] * self.h[self.movable]).sum())

    def cell_rect(self, cell: int) -> Rect:
        """The bounding rectangle of ``cell`` at its current position."""
        hw, hh = self.w[cell] / 2.0, self.h[cell] / 2.0
        return Rect(
            self.x[cell] - hw, self.y[cell] - hh, self.x[cell] + hw, self.y[cell] + hh
        )

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def pins_of_net(self, net: int) -> np.ndarray:
        """Pin indices of ``net``."""
        return self.net_pins[self.net_start[net] : self.net_start[net + 1]]

    def pins_of_cell(self, cell: int) -> np.ndarray:
        """Pin indices owned by ``cell``."""
        return self._cellpin_list[self._cellpin_start[cell] : self._cellpin_start[cell + 1]]

    def net_degree(self, net: int) -> int:
        """Number of pins on ``net``."""
        return int(self.net_start[net + 1] - self.net_start[net])

    def net_degrees(self) -> np.ndarray:
        """Pin counts of every net."""
        return np.diff(self.net_start)

    def pin_positions(self) -> tuple:
        """Current absolute pin coordinates ``(px, py)``."""
        px = self.x[self.pin_cell] + self.pin_dx
        py = self.y[self.pin_cell] + self.pin_dy
        return px, py

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets."""
        if self.num_pins == 0:
            return 0.0
        px, py = self.pin_positions()
        return _hpwl_from_pins(px, py, self.net_start, self.net_pins)

    def net_bboxes(self) -> tuple:
        """Per-net bounding boxes as arrays ``(xlo, ylo, xhi, yhi)``.

        Degenerate (``degree < 1``) nets yield zero-size boxes at the die
        center so downstream vectorized code never sees NaNs.
        """
        px, py = self.pin_positions()
        xpins = px[self.net_pins]
        ypins = py[self.net_pins]
        cx, cy = self.die.center.x, self.die.center.y
        m = self.num_nets
        xlo = np.full(m, cx)
        xhi = np.full(m, cx)
        ylo = np.full(m, cy)
        yhi = np.full(m, cy)
        nonempty = np.diff(self.net_start) > 0
        starts = self.net_start[:-1][nonempty]
        xlo[nonempty] = np.minimum.reduceat(xpins, starts)
        xhi[nonempty] = np.maximum.reduceat(xpins, starts)
        ylo[nonempty] = np.minimum.reduceat(ypins, starts)
        yhi[nonempty] = np.maximum.reduceat(ypins, starts)
        return xlo, ylo, xhi, yhi

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------

    def row_ys(self) -> np.ndarray:
        """Bottom y coordinate of every standard-cell row inside the die."""
        rh = self.technology.row_height
        num_rows = int(np.floor((self.die.yhi - self.die.ylo) / rh))
        return self.die.ylo + rh * np.arange(num_rows)

    # ------------------------------------------------------------------
    # Position snapshots
    # ------------------------------------------------------------------

    def snapshot_positions(self) -> tuple:
        """Copies of the current position arrays ``(x, y)``."""
        return self.x.copy(), self.y.copy()

    def restore_positions(self, x: np.ndarray, y: np.ndarray) -> None:
        """Restore positions from a prior :meth:`snapshot_positions`."""
        if len(x) != self.num_cells or len(y) != self.num_cells:
            raise ValueError("snapshot size mismatch")
        self.x[:] = x
        self.y[:] = y

    def __repr__(self) -> str:
        return (
            f"Design({self.name!r}, cells={self.num_cells}, "
            f"nets={self.num_nets}, pins={self.num_pins}, "
            f"macros={self.num_macros})"
        )


def _hpwl_from_pins(
    px: np.ndarray, py: np.ndarray, net_start: np.ndarray, net_pins: np.ndarray
) -> float:
    """HPWL given absolute pin coordinates and a net CSR structure."""
    nonempty = np.diff(net_start) > 0
    starts = net_start[:-1][nonempty]
    xpins = px[net_pins]
    ypins = py[net_pins]
    wx = np.maximum.reduceat(xpins, starts) - np.minimum.reduceat(xpins, starts)
    wy = np.maximum.reduceat(ypins, starts) - np.minimum.reduceat(ypins, starts)
    return float(wx.sum() + wy.sum())
