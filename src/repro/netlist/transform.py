"""Design transformations: cloning, mirroring, window extraction, and
topology edits.

Utilities an open-source placement framework needs around the core:
deep-copying a design so flows can run side by side, mirroring a
placement (symmetry checks and test-data augmentation), extracting the
subcircuit inside a window (debugging congestion hotspots at full
fidelity without the whole chip), and the single-cell topology edits
(:func:`add_cell`, :func:`remove_cell`) that back :mod:`repro.eco`'s
incremental-placement deltas.
"""

from __future__ import annotations

import numpy as np

from .builder import DesignBuilder
from .design import Design
from .geometry import Rect


def clone_design(design: Design) -> Design:
    """A deep, independent copy (topology shared semantics re-created)."""
    copy = Design(
        name=design.name,
        technology=design.technology,
        die=design.die,
        cell_names=list(design.cell_names),
        w=design.w.copy(),
        h=design.h.copy(),
        x=design.x.copy(),
        y=design.y.copy(),
        movable=design.movable.copy(),
        is_macro=design.is_macro.copy(),
        net_names=list(design.net_names),
        net_start=design.net_start.copy(),
        net_pins=design.net_pins.copy(),
        pin_cell=design.pin_cell.copy(),
        pin_net=design.pin_net.copy(),
        pin_dx=design.pin_dx.copy(),
        pin_dy=design.pin_dy.copy(),
        blockages=list(design.blockages),
    )
    return copy


def mirror_horizontal(design: Design) -> None:
    """Mirror the placement about the die's vertical center line.

    Positions (including fixed cells) and pin x-offsets flip; HPWL is
    invariant, which the tests assert.
    """
    die = design.die
    design.x[:] = die.xlo + die.xhi - design.x
    design.pin_dx[:] = -design.pin_dx


def add_cell(
    design: Design,
    name: str,
    width: float,
    height: float,
    x: float | None = None,
    y: float | None = None,
    nets: list | None = None,
) -> tuple:
    """A new design with one extra movable standard cell appended.

    The cell connects to the named *existing* nets through center pins
    (``dx = dy = 0``), the shape :mod:`repro.eco`'s ``AddCell`` delta
    uses.  Topology arrays are rebuilt (a :class:`Design` is frozen);
    positions and every other cell are carried over unchanged, and the
    new cell's index is ``design.num_cells`` of the input.

    Args:
        design: source design (not mutated).
        name: new cell's name (must be unique).
        width, height: cell dimensions.
        x, y: initial center (defaults to the die center).
        nets: names of existing nets to connect to.

    Returns:
        ``(new_design, new_cell_index)``.

    Raises:
        ValueError: duplicate cell name, non-positive size, or an
            unknown net name.
    """
    if name in design.cell_names:
        raise ValueError(f"duplicate cell name {name!r}")
    if width <= 0 or height <= 0:
        raise ValueError(f"cell {name!r}: non-positive size {width}x{height}")
    net_index = {n: i for i, n in enumerate(design.net_names)}
    net_ids = []
    for net_name in nets or []:
        if net_name not in net_index:
            raise ValueError(f"unknown net {net_name!r}")
        net_ids.append(net_index[net_name])

    new_cell = design.num_cells
    center = design.die.center
    px = center.x if x is None else float(x)
    py = center.y if y is None else float(y)

    # Rebuild the net CSR with one extra pin per connected net.
    extra = np.bincount(net_ids, minlength=design.num_nets) if net_ids else np.zeros(
        design.num_nets, dtype=np.int64
    )
    degrees = np.diff(design.net_start) + extra
    net_start = np.zeros(design.num_nets + 1, dtype=np.int64)
    np.cumsum(degrees, out=net_start[1:])

    num_pins = design.num_pins + len(net_ids)
    pin_cell = np.concatenate(
        [design.pin_cell, np.full(len(net_ids), new_cell, dtype=np.int64)]
    )
    pin_net = np.concatenate(
        [design.pin_net, np.asarray(net_ids, dtype=np.int64)]
    )
    pin_dx = np.concatenate([design.pin_dx, np.zeros(len(net_ids))])
    pin_dy = np.concatenate([design.pin_dy, np.zeros(len(net_ids))])
    # Regroup pins by net: stable sort of pin ids by their net keeps the
    # original relative pin order within every net.
    net_pins = np.argsort(pin_net, kind="stable").astype(np.int64)

    new_design = Design(
        name=design.name,
        technology=design.technology,
        die=design.die,
        cell_names=list(design.cell_names) + [name],
        w=np.append(design.w, float(width)),
        h=np.append(design.h, float(height)),
        x=np.append(design.x, px),
        y=np.append(design.y, py),
        movable=np.append(design.movable, True),
        is_macro=np.append(design.is_macro, False),
        net_names=list(design.net_names),
        net_start=net_start,
        net_pins=net_pins,
        pin_cell=pin_cell,
        pin_net=pin_net,
        pin_dx=pin_dx,
        pin_dy=pin_dy,
        blockages=list(design.blockages),
    )
    assert new_design.num_pins == num_pins
    return new_design, new_cell


def remove_cell(design: Design, cell: int) -> Design:
    """A new design with ``cell`` (and its pins) removed.

    Cell indices above ``cell`` shift down by one; nets keep their
    remaining pins (a net left with fewer than two pins is retained —
    the integrity checker flags it as a warning, matching
    :func:`extract_window`'s convention).  Only movable standard cells
    can be removed.

    Args:
        design: source design (not mutated).
        cell: index of the cell to remove.

    Returns:
        The new :class:`Design`.

    Raises:
        ValueError: out-of-range index, or a fixed/macro cell.
    """
    if not 0 <= cell < design.num_cells:
        raise ValueError(f"cell index {cell} out of range")
    if not design.movable[cell] or design.is_macro[cell]:
        raise ValueError(f"cell {design.cell_names[cell]!r} is not a movable standard cell")

    keep_pins = design.pin_cell != cell
    pin_net = design.pin_net[keep_pins]
    pin_cell = design.pin_cell[keep_pins]
    pin_cell = np.where(pin_cell > cell, pin_cell - 1, pin_cell)

    degrees = np.bincount(pin_net, minlength=design.num_nets)
    net_start = np.zeros(design.num_nets + 1, dtype=np.int64)
    np.cumsum(degrees, out=net_start[1:])
    net_pins = np.argsort(pin_net, kind="stable").astype(np.int64)

    keep_cells = np.ones(design.num_cells, dtype=bool)
    keep_cells[cell] = False
    return Design(
        name=design.name,
        technology=design.technology,
        die=design.die,
        cell_names=[n for i, n in enumerate(design.cell_names) if i != cell],
        w=design.w[keep_cells],
        h=design.h[keep_cells],
        x=design.x[keep_cells],
        y=design.y[keep_cells],
        movable=design.movable[keep_cells],
        is_macro=design.is_macro[keep_cells],
        net_names=list(design.net_names),
        net_start=net_start,
        net_pins=net_pins,
        pin_cell=pin_cell,
        pin_net=pin_net,
        pin_dx=design.pin_dx[keep_pins],
        pin_dy=design.pin_dy[keep_pins],
        blockages=list(design.blockages),
    )


def extract_window(design: Design, window: Rect, name: str | None = None) -> Design:
    """The subcircuit whose cells lie (by center) inside ``window``.

    Nets keep only their in-window pins; nets left with a single pin are
    retained (they become placement anchors toward the boundary in the
    original but are simply degree-1 here).  Blockages are clipped to
    the window.  The result's die is the window itself.

    Args:
        design: source design.
        window: extraction region (must overlap the die).
        name: new design name (defaults to ``<name>_window``).

    Returns:
        A standalone :class:`Design`.  Raises ``ValueError`` when no
        cell lies inside the window.
    """
    clipped = window.intersection(design.die)
    if clipped is None:
        raise ValueError("window does not overlap the die")
    inside = np.asarray(
        [
            clipped.contains_point(float(design.x[i]), float(design.y[i]))
            for i in range(design.num_cells)
        ]
    )
    if not inside.any():
        raise ValueError("window contains no cells")

    builder = DesignBuilder(
        name or f"{design.name}_window", design.technology, clipped
    )
    new_id = {}
    for old in np.flatnonzero(inside):
        old = int(old)
        new_id[old] = builder.add_cell(
            design.cell_names[old],
            float(design.w[old]),
            float(design.h[old]),
            x=float(design.x[old]),
            y=float(design.y[old]),
            movable=bool(design.movable[old]),
            macro=bool(design.is_macro[old]),
        )
    for net in range(design.num_nets):
        pins = [p for p in design.pins_of_net(net) if int(design.pin_cell[p]) in new_id]
        if not pins:
            continue
        new_net = builder.add_net(design.net_names[net])
        for p in pins:
            builder.add_pin(
                new_id[int(design.pin_cell[p])],
                new_net,
                float(design.pin_dx[p]),
                float(design.pin_dy[p]),
            )
    for blk in design.blockages:
        piece = blk.rect.intersection(clipped)
        if piece is not None:
            builder.add_blockage(piece, blk.layer)
    return builder.build()
