"""Design transformations: cloning, mirroring, and window extraction.

Utilities an open-source placement framework needs around the core:
deep-copying a design so flows can run side by side, mirroring a
placement (symmetry checks and test-data augmentation), and extracting
the subcircuit inside a window (debugging congestion hotspots at full
fidelity without the whole chip).
"""

from __future__ import annotations

import numpy as np

from .builder import DesignBuilder
from .design import Design
from .geometry import Rect


def clone_design(design: Design) -> Design:
    """A deep, independent copy (topology shared semantics re-created)."""
    copy = Design(
        name=design.name,
        technology=design.technology,
        die=design.die,
        cell_names=list(design.cell_names),
        w=design.w.copy(),
        h=design.h.copy(),
        x=design.x.copy(),
        y=design.y.copy(),
        movable=design.movable.copy(),
        is_macro=design.is_macro.copy(),
        net_names=list(design.net_names),
        net_start=design.net_start.copy(),
        net_pins=design.net_pins.copy(),
        pin_cell=design.pin_cell.copy(),
        pin_net=design.pin_net.copy(),
        pin_dx=design.pin_dx.copy(),
        pin_dy=design.pin_dy.copy(),
        blockages=list(design.blockages),
    )
    return copy


def mirror_horizontal(design: Design) -> None:
    """Mirror the placement about the die's vertical center line.

    Positions (including fixed cells) and pin x-offsets flip; HPWL is
    invariant, which the tests assert.
    """
    die = design.die
    design.x[:] = die.xlo + die.xhi - design.x
    design.pin_dx[:] = -design.pin_dx


def extract_window(design: Design, window: Rect, name: str | None = None) -> Design:
    """The subcircuit whose cells lie (by center) inside ``window``.

    Nets keep only their in-window pins; nets left with a single pin are
    retained (they become placement anchors toward the boundary in the
    original but are simply degree-1 here).  Blockages are clipped to
    the window.  The result's die is the window itself.

    Args:
        design: source design.
        window: extraction region (must overlap the die).
        name: new design name (defaults to ``<name>_window``).

    Returns:
        A standalone :class:`Design`.  Raises ``ValueError`` when no
        cell lies inside the window.
    """
    clipped = window.intersection(design.die)
    if clipped is None:
        raise ValueError("window does not overlap the die")
    inside = np.asarray(
        [
            clipped.contains_point(float(design.x[i]), float(design.y[i]))
            for i in range(design.num_cells)
        ]
    )
    if not inside.any():
        raise ValueError("window contains no cells")

    builder = DesignBuilder(
        name or f"{design.name}_window", design.technology, clipped
    )
    new_id = {}
    for old in np.flatnonzero(inside):
        old = int(old)
        new_id[old] = builder.add_cell(
            design.cell_names[old],
            float(design.w[old]),
            float(design.h[old]),
            x=float(design.x[old]),
            y=float(design.y[old]),
            movable=bool(design.movable[old]),
            macro=bool(design.is_macro[old]),
        )
    for net in range(design.num_nets):
        pins = [p for p in design.pins_of_net(net) if int(design.pin_cell[p]) in new_id]
        if not pins:
            continue
        new_net = builder.add_net(design.net_names[net])
        for p in pins:
            builder.add_pin(
                new_id[int(design.pin_cell[p])],
                new_net,
                float(design.pin_dx[p]),
                float(design.pin_dy[p]),
            )
    for blk in design.blockages:
        piece = blk.rect.intersection(clipped)
        if piece is not None:
            builder.add_blockage(piece, blk.layer)
    return builder.build()
