"""Bookshelf-flavoured serialization for designs.

The format follows the classic GSRC Bookshelf split (``.nodes``, ``.nets``,
``.pl``) with a small ``.scl``-replacement header carrying die, technology,
and blockage information, so a design round-trips exactly.  Files live in
one directory named after the design:

``<name>.aux``    — manifest
``<name>.nodes``  — cells: name width height [terminal] [macro]
``<name>.nets``   — nets: NetDegree + pin lines ``name dx dy``
``<name>.pl``     — placements: name x y (cell centers)
``<name>.tech``   — die, rows, Gcells, metal stack, blockages
"""

from __future__ import annotations

import os

import numpy as np

from .builder import DesignBuilder
from .design import Design
from .geometry import Rect
from .technology import MetalLayer, Technology


def save_design(design: Design, directory: str) -> None:
    """Write ``design`` into ``directory`` in Bookshelf-flavoured files."""
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, design.name)
    _write_aux(design, base)
    _write_nodes(design, base)
    _write_nets(design, base)
    _write_pl(design, base)
    _write_tech(design, base)


def load_design(directory: str, name: str) -> Design:
    """Load the design called ``name`` from ``directory``."""
    base = os.path.join(directory, name)
    technology, die, blockages = _read_tech(base + ".tech")
    builder = DesignBuilder(name, technology, die)
    _read_nodes(base + ".nodes", builder)
    _read_nets(base + ".nets", builder)
    for rect, layer in blockages:
        builder.add_blockage(rect, layer)
    design = builder.build()
    _read_pl(base + ".pl", design)
    return design


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------


def _write_aux(design: Design, base: str) -> None:
    with open(base + ".aux", "w") as f:
        name = os.path.basename(base)
        f.write(
            f"RowBasedPlacement : {name}.nodes {name}.nets {name}.pl {name}.tech\n"
        )


def _write_nodes(design: Design, base: str) -> None:
    with open(base + ".nodes", "w") as f:
        f.write(f"NumNodes : {design.num_cells}\n")
        for i, name in enumerate(design.cell_names):
            flags = []
            if not design.movable[i]:
                flags.append("terminal")
            if design.is_macro[i]:
                flags.append("macro")
            suffix = (" " + " ".join(flags)) if flags else ""
            f.write(f"{name} {design.w[i]:.6g} {design.h[i]:.6g}{suffix}\n")


def _write_nets(design: Design, base: str) -> None:
    with open(base + ".nets", "w") as f:
        f.write(f"NumNets : {design.num_nets}\n")
        f.write(f"NumPins : {design.num_pins}\n")
        for n, net_name in enumerate(design.net_names):
            pins = design.pins_of_net(n)
            f.write(f"NetDegree : {len(pins)} {net_name}\n")
            for p in pins:
                cell = design.cell_names[design.pin_cell[p]]
                f.write(f"  {cell} {design.pin_dx[p]:.6g} {design.pin_dy[p]:.6g}\n")


def _write_pl(design: Design, base: str) -> None:
    with open(base + ".pl", "w") as f:
        f.write(f"NumNodes : {design.num_cells}\n")
        for i, name in enumerate(design.cell_names):
            f.write(f"{name} {design.x[i]:.8g} {design.y[i]:.8g}\n")


def _write_tech(design: Design, base: str) -> None:
    tech = design.technology
    die = design.die
    with open(base + ".tech", "w") as f:
        f.write(f"Die : {die.xlo:.6g} {die.ylo:.6g} {die.xhi:.6g} {die.yhi:.6g}\n")
        f.write(
            f"Sites : {tech.site_width:.6g} {tech.row_height:.6g} "
            f"{tech.gcell_size:.6g}\n"
        )
        f.write(f"RoutingLayersStart : {tech.routing_layers_start}\n")
        f.write(f"NumLayers : {len(tech.layers)}\n")
        for layer in tech.layers:
            f.write(
                f"Layer {layer.name} {layer.direction} "
                f"{layer.wire_width:.6g} {layer.wire_spacing:.6g}\n"
            )
        f.write(f"NumBlockages : {len(design.blockages)}\n")
        for blk in design.blockages:
            r = blk.rect
            f.write(
                f"Blockage {blk.layer} {r.xlo:.6g} {r.ylo:.6g} "
                f"{r.xhi:.6g} {r.yhi:.6g}\n"
            )


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------


def _data_lines(path: str):
    """Yield ``(lineno, line)`` for non-blank, non-comment lines.

    Line numbers are 1-based positions in the raw file so parse errors
    can point at the offending line even with comments interleaved.
    """
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if line and not line.startswith("#"):
                yield lineno, line


def _header_count(path: str, lineno: int, tokens: list) -> int:
    """Parse the count from a ``<Key> : <N>`` header line."""
    try:
        return int(tokens[2])
    except (IndexError, ValueError):
        raise ValueError(
            f"{path}:{lineno}: malformed header line {' '.join(tokens)!r}"
        ) from None


def _read_tech(path: str):
    layers = []
    blockages = []
    die = None
    site_width = row_height = gcell = None
    routing_start = 1
    for _lineno, line in _data_lines(path):
        tokens = line.split()
        if tokens[0] == "Die":
            die = Rect(*(float(t) for t in tokens[2:6]))
        elif tokens[0] == "Sites":
            site_width, row_height, gcell = (float(t) for t in tokens[2:5])
        elif tokens[0] == "RoutingLayersStart":
            routing_start = int(tokens[2])
        elif tokens[0] == "Layer":
            layers.append(
                MetalLayer(tokens[1], tokens[2], float(tokens[3]), float(tokens[4]))
            )
        elif tokens[0] == "Blockage":
            layer = int(tokens[1])
            rect = Rect(*(float(t) for t in tokens[2:6]))
            blockages.append((rect, layer))
    if die is None or site_width is None:
        raise ValueError(f"{path}: missing Die or Sites line")
    technology = Technology(
        site_width=site_width,
        row_height=row_height,
        gcell_size=gcell,
        layers=tuple(layers),
        routing_layers_start=routing_start,
    )
    return technology, die, blockages


def _read_nodes(path: str, builder: DesignBuilder) -> None:
    declared = None
    count = 0
    for lineno, line in _data_lines(path):
        tokens = line.split()
        if tokens[0] == "NumNodes":
            declared = _header_count(path, lineno, tokens)
            continue
        name, width, height = tokens[0], float(tokens[1]), float(tokens[2])
        flags = tokens[3:]
        builder.add_cell(
            name,
            width,
            height,
            movable="terminal" not in flags,
            macro="macro" in flags,
        )
        count += 1
    if declared is not None and count != declared:
        raise ValueError(
            f"{path}: NumNodes declares {declared} cells but {count} were found"
            " (truncated or padded file?)"
        )


def _read_nets(path: str, builder: DesignBuilder) -> None:
    declared_nets = declared_pins = None
    current_net = None
    current_degree = 0
    current_pins = 0
    net_lineno = 0
    num_nets = 0
    num_pins = 0

    def _check_current_degree() -> None:
        if current_net is not None and current_pins != current_degree:
            raise ValueError(
                f"{path}:{net_lineno}: NetDegree declares {current_degree} pins"
                f" but {current_pins} were found (truncated file?)"
            )

    for lineno, line in _data_lines(path):
        tokens = line.split()
        if tokens[0] in ("NumNets", "NumPins"):
            count = _header_count(path, lineno, tokens)
            if tokens[0] == "NumNets":
                declared_nets = count
            else:
                declared_pins = count
            continue
        if tokens[0] == "NetDegree":
            _check_current_degree()
            current_degree = _header_count(path, lineno, tokens)
            name = tokens[3] if len(tokens) > 3 else f"net{num_nets}"
            current_net = builder.add_net(name)
            current_pins = 0
            net_lineno = lineno
            num_nets += 1
        else:
            if current_net is None:
                raise ValueError(f"{path}:{lineno}: pin line before any NetDegree")
            try:
                cell = builder.cell_id(tokens[0])
            except KeyError:
                raise ValueError(
                    f"{path}:{lineno}: unknown cell {tokens[0]!r} in pin line"
                ) from None
            builder.add_pin(cell, current_net, float(tokens[1]), float(tokens[2]))
            current_pins += 1
            num_pins += 1
    _check_current_degree()
    if declared_nets is not None and num_nets != declared_nets:
        raise ValueError(
            f"{path}: NumNets declares {declared_nets} nets but {num_nets}"
            " were found (truncated file?)"
        )
    if declared_pins is not None and num_pins != declared_pins:
        raise ValueError(
            f"{path}: NumPins declares {declared_pins} pins but {num_pins}"
            " were found (truncated file?)"
        )


def _read_pl(path: str, design: Design) -> None:
    index = {name: i for i, name in enumerate(design.cell_names)}
    x = design.x.copy()
    y = design.y.copy()
    declared = None
    count = 0
    for lineno, line in _data_lines(path):
        tokens = line.split()
        if tokens[0] == "NumNodes":
            declared = _header_count(path, lineno, tokens)
            continue
        try:
            i = index[tokens[0]]
        except KeyError:
            raise ValueError(
                f"{path}:{lineno}: unknown cell {tokens[0]!r} in placement line"
            ) from None
        x[i] = float(tokens[1])
        y[i] = float(tokens[2])
        count += 1
    if declared is not None and count != declared:
        raise ValueError(
            f"{path}: NumNodes declares {declared} placements but {count}"
            " were found (truncated file?)"
        )
    design.x[:] = np.asarray(x)
    design.y[:] = np.asarray(y)
