"""Bookshelf-flavoured serialization for designs.

The format follows the classic GSRC Bookshelf split (``.nodes``, ``.nets``,
``.pl``) with a small ``.scl``-replacement header carrying die, technology,
and blockage information, so a design round-trips exactly.  Files live in
one directory named after the design:

``<name>.aux``    — manifest
``<name>.nodes``  — cells: name width height [terminal] [macro]
``<name>.nets``   — nets: NetDegree + pin lines ``name dx dy``
``<name>.pl``     — placements: name x y (cell centers)
``<name>.tech``   — die, rows, Gcells, metal stack, blockages
"""

from __future__ import annotations

import os

import numpy as np

from .builder import DesignBuilder
from .design import Design
from .geometry import Rect
from .technology import MetalLayer, Technology


def save_design(design: Design, directory: str) -> None:
    """Write ``design`` into ``directory`` in Bookshelf-flavoured files."""
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, design.name)
    _write_aux(design, base)
    _write_nodes(design, base)
    _write_nets(design, base)
    _write_pl(design, base)
    _write_tech(design, base)


def load_design(directory: str, name: str) -> Design:
    """Load the design called ``name`` from ``directory``."""
    base = os.path.join(directory, name)
    technology, die, blockages = _read_tech(base + ".tech")
    builder = DesignBuilder(name, technology, die)
    _read_nodes(base + ".nodes", builder)
    _read_nets(base + ".nets", builder)
    for rect, layer in blockages:
        builder.add_blockage(rect, layer)
    design = builder.build()
    _read_pl(base + ".pl", design)
    return design


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------


def _write_aux(design: Design, base: str) -> None:
    with open(base + ".aux", "w") as f:
        name = os.path.basename(base)
        f.write(
            f"RowBasedPlacement : {name}.nodes {name}.nets {name}.pl {name}.tech\n"
        )


def _write_nodes(design: Design, base: str) -> None:
    with open(base + ".nodes", "w") as f:
        f.write(f"NumNodes : {design.num_cells}\n")
        for i, name in enumerate(design.cell_names):
            flags = []
            if not design.movable[i]:
                flags.append("terminal")
            if design.is_macro[i]:
                flags.append("macro")
            suffix = (" " + " ".join(flags)) if flags else ""
            f.write(f"{name} {design.w[i]:.6g} {design.h[i]:.6g}{suffix}\n")


def _write_nets(design: Design, base: str) -> None:
    with open(base + ".nets", "w") as f:
        f.write(f"NumNets : {design.num_nets}\n")
        f.write(f"NumPins : {design.num_pins}\n")
        for n, net_name in enumerate(design.net_names):
            pins = design.pins_of_net(n)
            f.write(f"NetDegree : {len(pins)} {net_name}\n")
            for p in pins:
                cell = design.cell_names[design.pin_cell[p]]
                f.write(f"  {cell} {design.pin_dx[p]:.6g} {design.pin_dy[p]:.6g}\n")


def _write_pl(design: Design, base: str) -> None:
    with open(base + ".pl", "w") as f:
        f.write(f"NumNodes : {design.num_cells}\n")
        for i, name in enumerate(design.cell_names):
            f.write(f"{name} {design.x[i]:.8g} {design.y[i]:.8g}\n")


def _write_tech(design: Design, base: str) -> None:
    tech = design.technology
    die = design.die
    with open(base + ".tech", "w") as f:
        f.write(f"Die : {die.xlo:.6g} {die.ylo:.6g} {die.xhi:.6g} {die.yhi:.6g}\n")
        f.write(
            f"Sites : {tech.site_width:.6g} {tech.row_height:.6g} "
            f"{tech.gcell_size:.6g}\n"
        )
        f.write(f"RoutingLayersStart : {tech.routing_layers_start}\n")
        f.write(f"NumLayers : {len(tech.layers)}\n")
        for layer in tech.layers:
            f.write(
                f"Layer {layer.name} {layer.direction} "
                f"{layer.wire_width:.6g} {layer.wire_spacing:.6g}\n"
            )
        f.write(f"NumBlockages : {len(design.blockages)}\n")
        for blk in design.blockages:
            r = blk.rect
            f.write(
                f"Blockage {blk.layer} {r.xlo:.6g} {r.ylo:.6g} "
                f"{r.xhi:.6g} {r.yhi:.6g}\n"
            )


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------


def _data_lines(path: str):
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if line and not line.startswith("#"):
                yield line


def _read_tech(path: str):
    layers = []
    blockages = []
    die = None
    site_width = row_height = gcell = None
    routing_start = 1
    for line in _data_lines(path):
        tokens = line.split()
        if tokens[0] == "Die":
            die = Rect(*(float(t) for t in tokens[2:6]))
        elif tokens[0] == "Sites":
            site_width, row_height, gcell = (float(t) for t in tokens[2:5])
        elif tokens[0] == "RoutingLayersStart":
            routing_start = int(tokens[2])
        elif tokens[0] == "Layer":
            layers.append(
                MetalLayer(tokens[1], tokens[2], float(tokens[3]), float(tokens[4]))
            )
        elif tokens[0] == "Blockage":
            layer = int(tokens[1])
            rect = Rect(*(float(t) for t in tokens[2:6]))
            blockages.append((rect, layer))
    if die is None or site_width is None:
        raise ValueError(f"{path}: missing Die or Sites line")
    technology = Technology(
        site_width=site_width,
        row_height=row_height,
        gcell_size=gcell,
        layers=tuple(layers),
        routing_layers_start=routing_start,
    )
    return technology, die, blockages


def _read_nodes(path: str, builder: DesignBuilder) -> None:
    for line in _data_lines(path):
        if line.startswith("NumNodes"):
            continue
        tokens = line.split()
        name, width, height = tokens[0], float(tokens[1]), float(tokens[2])
        flags = tokens[3:]
        builder.add_cell(
            name,
            width,
            height,
            movable="terminal" not in flags,
            macro="macro" in flags,
        )


def _read_nets(path: str, builder: DesignBuilder) -> None:
    current_net = None
    for line in _data_lines(path):
        if line.startswith(("NumNets", "NumPins")):
            continue
        tokens = line.split()
        if tokens[0] == "NetDegree":
            current_net = builder.add_net(tokens[3])
        else:
            if current_net is None:
                raise ValueError(f"{path}: pin line before any NetDegree")
            cell = builder.cell_id(tokens[0])
            builder.add_pin(cell, current_net, float(tokens[1]), float(tokens[2]))


def _read_pl(path: str, design: Design) -> None:
    index = {name: i for i, name in enumerate(design.cell_names)}
    x = design.x.copy()
    y = design.y.copy()
    for line in _data_lines(path):
        if line.startswith("NumNodes"):
            continue
        tokens = line.split()
        i = index[tokens[0]]
        x[i] = float(tokens[1])
        y[i] = float(tokens[2])
    design.x[:] = np.asarray(x)
    design.y[:] = np.asarray(y)
