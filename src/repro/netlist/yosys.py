"""Yosys-JSON netlist frontend.

Parses the ``write_json`` output of a technology-mapped Yosys run (a
``*_mapped.json`` file) into a :class:`repro.netlist.design.Design`:

* module **cells** become movable standard cells sized by a liberty-lite
  :class:`CellLibrary` table (mapped cell type → footprint width in
  sites, one row tall);
* ``connections`` **bit ids** become nets (string constants ``"0"`` /
  ``"1"`` / ``"x"`` are power/ground/dontcare ties and produce no net);
* module **ports** become fixed one-site terminals spread around the
  die boundary, one per bit;
* the die is sized from the movable area at a target utilization, the
  same way :mod:`repro.benchgen` sizes synthetic designs.

The parser is strict: structural problems raise ``ValueError`` naming
the file and the JSON path that failed, never ``KeyError``.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field

from .builder import DesignBuilder
from .design import Design
from .geometry import Rect
from .technology import Technology

#: Footprint width in sites for common mapped-cell function bases.
#: Values are honest relative footprints (an inverter is one site, a
#: flip-flop several), not any foundry's real numbers.
_BASE_WIDTHS = {
    "a": 3,
    "and": 3,
    "aoi": 3,
    "buf": 2,
    "clkbuf": 2,
    "clkinv": 1,
    "conb": 1,
    "dff": 6,
    "dfrtp": 7,
    "dfstp": 7,
    "dfxtp": 6,
    "dlxtp": 5,
    "dlrtp": 6,
    "ebuf": 3,
    "einv": 2,
    "fa": 8,
    "ha": 5,
    "inv": 1,
    "latch": 5,
    "maj": 5,
    "mux": 4,
    "nand": 2,
    "nor": 2,
    "o": 3,
    "or": 3,
    "sdf": 8,
    "tie": 1,
    "xnor": 4,
    "xor": 4,
}

_TYPE_RE = re.compile(r"^([a-z]+)(\d*)(?:.*?)(?:_(\d+))?$")


@dataclass(frozen=True)
class CellLibrary:
    """Liberty-lite cell-size table: mapped cell type → width in sites.

    Exact entries in :attr:`widths` win; otherwise the width is inferred
    from the type name (vendor prefix up to ``__`` stripped, function
    base looked up in a built-in table, fanin and drive strength adding
    sites), falling back to :attr:`default_width`.  All cells are one
    row tall.

    Example:
        >>> lib = CellLibrary()
        >>> lib.width_sites("sky130_fd_sc_hd__inv_1")
        1
        >>> lib.width_sites("sky130_fd_sc_hd__dfxtp_2") > 4
        True
    """

    widths: dict = field(default_factory=dict)
    default_width: int = 4

    def width_sites(self, cell_type: str) -> int:
        """Footprint width in sites for ``cell_type`` (always >= 1)."""
        if cell_type in self.widths:
            return max(int(self.widths[cell_type]), 1)
        return max(self._infer(cell_type), 1)

    def _infer(self, cell_type: str) -> int:
        base = cell_type.rsplit("__", 1)[-1].lower().lstrip("$\\_")
        if base in self.widths:
            return int(self.widths[base])
        m = _TYPE_RE.match(base)
        if m is None:
            return self.default_width
        func, fanin, drive = m.group(1), m.group(2), m.group(3)
        width = _BASE_WIDTHS.get(func)
        if width is None:
            return self.default_width
        if fanin:
            width += max(int(fanin) - 2, 0)
        if drive:
            width += max(int(drive) - 1, 0)
        return min(width, 16)

    @classmethod
    def from_json(cls, path: str) -> "CellLibrary":
        """Load a table from JSON: ``{"default_width": N, "widths": {...}}``.

        Raises:
            ValueError: on malformed JSON or unknown keys.
        """
        try:
            with open(path) as f:
                data = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError(f"{path}: expected a JSON object")
        unknown = set(data) - {"default_width", "widths"}
        if unknown:
            raise ValueError(f"{path}: unknown keys {sorted(unknown)}")
        widths = data.get("widths", {})
        if not isinstance(widths, dict):
            raise ValueError(f"{path}: 'widths' must be an object")
        return cls(
            widths={str(k): int(v) for k, v in widths.items()},
            default_width=int(data.get("default_width", 4)),
        )


def load_yosys(
    path: str,
    *,
    top: str | None = None,
    library: CellLibrary | None = None,
    technology: Technology | None = None,
    utilization: float = 0.7,
    name: str | None = None,
) -> Design:
    """Load a Yosys ``write_json`` netlist into a :class:`Design`.

    Args:
        path: the ``*_mapped.json`` file.
        top: module to elaborate; defaults to the module carrying the
            Yosys ``top`` attribute, else the one with the most cells.
        library: liberty-lite size table (default :class:`CellLibrary`).
        technology: placement fabric (default :class:`Technology` with
            the standard metal stack).
        utilization: movable-area / die-area target used to size the die.
        name: design name (defaults to the top module name).

    Returns:
        An unplaced :class:`Design` — movable cells at the die center,
        port terminals fixed on the boundary.

    Raises:
        ValueError: on malformed JSON or netlist structure; the message
            names the file and the offending element.
    """
    if not 0.0 < utilization < 1.0:
        raise ValueError(f"utilization must be in (0, 1), got {utilization}")
    library = library or CellLibrary()
    technology = technology or Technology()
    try:
        with open(path) as f:
            data = json.load(f)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from None

    modules = data.get("modules") if isinstance(data, dict) else None
    if not isinstance(modules, dict) or not modules:
        raise ValueError(f"{path}: no 'modules' object — not a Yosys JSON netlist?")
    top_name, module = _pick_top(path, modules, top)

    ports = _get_dict(path, module, top_name, "ports")
    cells = _get_dict(path, module, top_name, "cells")
    netnames = _get_dict(path, module, top_name, "netnames")

    # ------------------------------------------------------------------
    # Collect cells and the bit ids they touch.
    # ------------------------------------------------------------------
    cell_specs = []  # (name, width, [(port, bit)])
    used_bits = set()
    for cell_name, cell in cells.items():
        if not isinstance(cell, dict):
            raise ValueError(f"{path}: cell {cell_name!r} is not an object")
        cell_type = cell.get("type")
        if not isinstance(cell_type, str):
            raise ValueError(f"{path}: cell {cell_name!r} has no 'type'")
        connections = cell.get("connections", {})
        if not isinstance(connections, dict):
            raise ValueError(f"{path}: cell {cell_name!r}: 'connections' not an object")
        pins = []
        for port_name, bits in connections.items():
            for bit in _iter_bits(path, f"cell {cell_name!r} port {port_name!r}", bits):
                pins.append((port_name, bit))
                used_bits.add(bit)
        width = library.width_sites(cell_type) * technology.site_width
        cell_specs.append((cell_name, width, pins))

    # ------------------------------------------------------------------
    # Collect port terminals (one per bit, in declaration order).
    # ------------------------------------------------------------------
    terminals = []  # (terminal_name, bit)
    for port_name, port in ports.items():
        if not isinstance(port, dict):
            raise ValueError(f"{path}: port {port_name!r} is not an object")
        direction = port.get("direction")
        if direction not in ("input", "output", "inout"):
            raise ValueError(
                f"{path}: port {port_name!r} has bad direction {direction!r}"
            )
        bits = port.get("bits", [])
        wide = isinstance(bits, list) and len(bits) > 1
        for i, bit in enumerate(_iter_bits(path, f"port {port_name!r}", bits)):
            terminals.append((f"{port_name}[{i}]" if wide else port_name, bit))
            used_bits.add(bit)

    if not cell_specs:
        raise ValueError(f"{path}: module {top_name!r} has no cells")

    # ------------------------------------------------------------------
    # Die sizing (benchgen-style: square-ish, whole rows and Gcells),
    # with enough boundary room for every terminal.
    # ------------------------------------------------------------------
    tech = technology
    movable_area = sum(w * tech.row_height for _n, w, _p in cell_specs)
    side = math.sqrt(movable_area / utilization)
    min_side = (len(terminals) / 4 + 2) * 2 * tech.site_width
    side = max(side, min_side, 2 * tech.row_height)
    height = math.ceil(side / tech.row_height) * tech.row_height
    width = math.ceil(side / tech.gcell_size) * tech.gcell_size
    height = math.ceil(height / tech.gcell_size) * tech.gcell_size
    die = Rect(0.0, 0.0, float(width), float(height))

    builder = DesignBuilder(name or top_name, tech, die)

    # Nets in ascending bit order so ingestion is deterministic even if
    # the JSON serializer reordered objects.
    bit_names = _bit_names(netnames)
    net_of_bit = {}
    seen_names = set()
    for bit in sorted(used_bits):
        net_name = bit_names.get(bit, f"net{bit}")
        if net_name in seen_names:
            net_name = f"{net_name}.bit{bit}"
        seen_names.add(net_name)
        net_of_bit[bit] = builder.add_net(net_name)

    term_ids = _place_terminals(builder, die, tech, terminals)
    for (term_name, bit), cell_id in zip(terminals, term_ids):
        builder.add_pin(cell_id, net_of_bit[bit])

    for cell_name, cell_w, pins in cell_specs:
        cell_id = builder.add_cell(cell_name, cell_w, tech.row_height)
        span = max(len(pins), 1)
        for j, (_port, bit) in enumerate(pins):
            dx = ((j + 0.5) / span - 0.5) * cell_w * 0.8
            builder.add_pin(cell_id, net_of_bit[bit], dx, 0.0)

    return builder.build()


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------


def _pick_top(path: str, modules: dict, top: str | None):
    """The module to elaborate: explicit, attribute-marked, or largest."""
    if top is not None:
        if top not in modules:
            raise ValueError(
                f"{path}: no module {top!r}; available: {', '.join(sorted(modules))}"
            )
        return top, modules[top]
    for mod_name, module in modules.items():
        attrs = module.get("attributes", {}) if isinstance(module, dict) else {}
        flag = attrs.get("top", 0)
        truthy = flag not in (0, "", None) and set(str(flag)) != {"0"}
        if truthy:
            return mod_name, module
    mod_name = max(
        modules,
        key=lambda m: len(modules[m].get("cells", {}))
        if isinstance(modules[m], dict)
        else -1,
    )
    return mod_name, modules[mod_name]


def _get_dict(path: str, module: dict, top_name: str, key: str) -> dict:
    value = module.get(key, {}) if isinstance(module, dict) else None
    if not isinstance(value, dict):
        raise ValueError(f"{path}: module {top_name!r}: {key!r} is not an object")
    return value


def _iter_bits(path: str, where: str, bits):
    """Integer net bits of a ``bits`` list; constants yield nothing."""
    if not isinstance(bits, list):
        raise ValueError(f"{path}: {where}: bits is not a list")
    for bit in bits:
        if isinstance(bit, bool) or not isinstance(bit, (int, str)):
            raise ValueError(f"{path}: {where}: bad bit {bit!r}")
        if isinstance(bit, int):
            yield bit
        # String bits are constants ("0", "1", "x", "z"): no net.


def _bit_names(netnames: dict) -> dict:
    """Map bit id → human name from the module's ``netnames`` (first wins)."""
    names = {}
    for net_name, info in netnames.items():
        bits = info.get("bits", []) if isinstance(info, dict) else []
        if not isinstance(bits, list):
            continue
        wide = len(bits) > 1
        for i, bit in enumerate(bits):
            if isinstance(bit, int) and not isinstance(bit, bool) and bit not in names:
                names[bit] = f"{net_name}[{i}]" if wide else net_name
    return names


def _place_terminals(builder: DesignBuilder, die: Rect, tech: Technology, terminals):
    """Fixed one-site terminals round-robin over the four die sides."""
    ids = []
    count = len(terminals)
    for k, (term_name, _bit) in enumerate(terminals):
        side = k % 4
        t = (k // 4 + 0.5) / max(count // 4, 1)
        w = h = tech.site_width
        if side == 0:
            x, y = die.xlo + w / 2, die.ylo + t * die.height
        elif side == 1:
            x, y = die.xhi - w / 2, die.ylo + t * die.height
        elif side == 2:
            x, y = die.xlo + t * die.width, die.ylo + h / 2
        else:
            x, y = die.xlo + t * die.width, die.yhi - h / 2
        x = min(max(x, die.xlo + w / 2), die.xhi - w / 2)
        y = min(max(y, die.ylo + h / 2), die.yhi - h / 2)
        ids.append(builder.add_cell(term_name, w, h, x=x, y=y, movable=False))
    return ids
