"""Incremental construction of :class:`repro.netlist.design.Design`."""

from __future__ import annotations

import numpy as np

from .design import Blockage, Design
from .geometry import Rect
from .technology import Technology


class DesignBuilder:
    """Accumulates cells, nets, pins, and blockages, then freezes a Design.

    Example:
        >>> from repro.netlist import DesignBuilder, Technology, Rect
        >>> b = DesignBuilder("tiny", Technology(), Rect(0, 0, 100, 100))
        >>> a = b.add_cell("a", 2, 8, x=10, y=10)
        >>> c = b.add_cell("c", 2, 8, x=20, y=20)
        >>> n = b.add_net("n0")
        >>> _ = b.add_pin(a, n)
        >>> _ = b.add_pin(c, n)
        >>> design = b.build()
        >>> design.num_cells, design.num_nets, design.num_pins
        (2, 1, 2)
    """

    def __init__(self, name: str, technology: Technology, die: Rect) -> None:
        self.name = name
        self.technology = technology
        self.die = die
        self._cell_names: list = []
        self._cell_index: dict = {}
        self._w: list = []
        self._h: list = []
        self._x: list = []
        self._y: list = []
        self._movable: list = []
        self._is_macro: list = []
        self._net_names: list = []
        self._net_index: dict = {}
        self._pin_cell: list = []
        self._pin_net: list = []
        self._pin_dx: list = []
        self._pin_dy: list = []
        self._blockages: list = []

    def add_cell(
        self,
        name: str,
        width: float,
        height: float,
        x: float | None = None,
        y: float | None = None,
        movable: bool = True,
        macro: bool = False,
    ) -> int:
        """Register a cell; returns its index.

        ``x``/``y`` are the cell *center*; they default to the die center
        so unplaced designs are still well-formed.
        """
        if name in self._cell_index:
            raise ValueError(f"duplicate cell name {name!r}")
        if width <= 0 or height <= 0:
            raise ValueError(f"cell {name!r}: non-positive size {width}x{height}")
        idx = len(self._cell_names)
        self._cell_index[name] = idx
        self._cell_names.append(name)
        self._w.append(float(width))
        self._h.append(float(height))
        center = self.die.center
        self._x.append(center.x if x is None else float(x))
        self._y.append(center.y if y is None else float(y))
        self._movable.append(bool(movable))
        self._is_macro.append(bool(macro))
        return idx

    def add_net(self, name: str) -> int:
        """Register a net; returns its index."""
        if name in self._net_index:
            raise ValueError(f"duplicate net name {name!r}")
        idx = len(self._net_names)
        self._net_index[name] = idx
        self._net_names.append(name)
        return idx

    def add_pin(self, cell: int, net: int, dx: float = 0.0, dy: float = 0.0) -> int:
        """Attach a pin of ``cell`` to ``net`` at offset ``(dx, dy)``.

        The offset is measured from the cell center and must stay inside
        the cell outline.
        """
        if not 0 <= cell < len(self._cell_names):
            raise IndexError(f"cell index {cell} out of range")
        if not 0 <= net < len(self._net_names):
            raise IndexError(f"net index {net} out of range")
        if abs(dx) > self._w[cell] / 2 + 1e-9 or abs(dy) > self._h[cell] / 2 + 1e-9:
            raise ValueError(
                f"pin offset ({dx}, {dy}) outside cell "
                f"{self._cell_names[cell]!r} of size {self._w[cell]}x{self._h[cell]}"
            )
        idx = len(self._pin_cell)
        self._pin_cell.append(cell)
        self._pin_net.append(net)
        self._pin_dx.append(float(dx))
        self._pin_dy.append(float(dy))
        return idx

    def add_blockage(self, rect: Rect, layer: int) -> None:
        """Register a routing obstruction on metal layer index ``layer``."""
        if not 0 <= layer < len(self.technology.layers):
            raise IndexError(f"layer {layer} out of range")
        self._blockages.append(Blockage(rect, layer))

    def cell_id(self, name: str) -> int:
        """Index of the cell called ``name``."""
        return self._cell_index[name]

    def net_id(self, name: str) -> int:
        """Index of the net called ``name``."""
        return self._net_index[name]

    def build(self) -> Design:
        """Freeze the accumulated netlist into a :class:`Design`."""
        pin_net = np.asarray(self._pin_net, dtype=np.int64)
        num_nets = len(self._net_names)
        order = np.argsort(pin_net, kind="stable") if len(pin_net) else np.zeros(0, np.int64)
        counts = np.bincount(pin_net, minlength=num_nets) if len(pin_net) else np.zeros(
            num_nets, np.int64
        )
        net_start = np.zeros(num_nets + 1, dtype=np.int64)
        np.cumsum(counts, out=net_start[1:])
        return Design(
            name=self.name,
            technology=self.technology,
            die=self.die,
            cell_names=self._cell_names,
            w=np.asarray(self._w, dtype=np.float64),
            h=np.asarray(self._h, dtype=np.float64),
            x=np.asarray(self._x, dtype=np.float64),
            y=np.asarray(self._y, dtype=np.float64),
            movable=np.asarray(self._movable, dtype=bool),
            is_macro=np.asarray(self._is_macro, dtype=bool),
            net_names=self._net_names,
            net_start=net_start,
            net_pins=order,
            pin_cell=np.asarray(self._pin_cell, dtype=np.int64),
            pin_net=pin_net,
            pin_dx=np.asarray(self._pin_dx, dtype=np.float64),
            pin_dy=np.asarray(self._pin_dy, dtype=np.float64),
            blockages=self._blockages,
        )
