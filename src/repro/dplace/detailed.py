"""The detailed placement driver.

An extension beyond the paper's flow (the paper stops at legalization):
wirelength-refines a *legal* placement with alternating global-swap and
intra-row reordering passes while preserving legality and any inherited
padding footprints.  Useful both as a quality add-on and as a stress
consumer of the padding interface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..netlist.design import Design
from .incremental import IncrementalHpwl
from .reorder import local_reorder_pass
from .rows import RowLayout
from .swap import global_swap_pass


@dataclass
class DetailedPlaceResult:
    """Outcome of a detailed-placement run.

    Attributes:
        hpwl_before / hpwl_after: wirelength around the refinement.
        swaps, reorders: accepted moves per kind.
        passes: alternating passes executed.
        runtime: seconds.
    """

    hpwl_before: float
    hpwl_after: float
    swaps: int
    reorders: int
    passes: int
    runtime: float

    @property
    def improvement(self) -> float:
        """Fractional HPWL reduction."""
        if self.hpwl_before <= 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


class DetailedPlacer:
    """Legality-preserving wirelength refinement.

    Args:
        design: a *legal* placement (checked lazily via layout
            invariants); positions mutate in place.
        widths: footprint widths (padded); defaults to native widths.
        window: reordering window size.
        swap_candidates: partners tried per cell in the swap pass.
    """

    def __init__(
        self,
        design: Design,
        widths: np.ndarray | None = None,
        window: int = 3,
        swap_candidates: int = 8,
    ) -> None:
        self.design = design
        self.layout = RowLayout(design, widths)
        self.window = window
        self.swap_candidates = swap_candidates
        if not self.layout.check():
            raise ValueError("detailed placement requires a legal input placement")

    def run(self, passes: int = 2, min_gain: float = 1e-4) -> DetailedPlaceResult:
        """Refine until ``passes`` exhausted or gains fall below
        ``min_gain`` (fraction of the running HPWL) per pass."""
        start = time.perf_counter()
        evaluator = IncrementalHpwl(self.design)
        hpwl_before = evaluator.total
        swaps = 0
        reorders = 0
        executed = 0
        for _ in range(passes):
            executed += 1
            before = evaluator.total
            swaps += global_swap_pass(
                self.design, self.layout, evaluator, self.swap_candidates
            )
            reorders += local_reorder_pass(
                self.design, self.layout, evaluator, self.window
            )
            if before - evaluator.total < min_gain * max(before, 1.0):
                break
        return DetailedPlaceResult(
            hpwl_before=hpwl_before,
            hpwl_after=evaluator.total,
            swaps=swaps,
            reorders=reorders,
            passes=executed,
            runtime=time.perf_counter() - start,
        )
