"""Intra-row local reordering.

Slides a window of ``k`` consecutive cells along every row and tries all
permutations of the window members inside their combined span, keeping
footprints abutted from the left.  Since footprints are site multiples
and the span start is site-aligned, every permutation stays legal.
"""

from __future__ import annotations

from itertools import permutations


from ..netlist.design import Design
from .incremental import IncrementalHpwl
from .rows import RowLayout


def local_reorder_pass(
    design: Design,
    layout: RowLayout,
    evaluator: IncrementalHpwl,
    window: int = 3,
) -> int:
    """One left-to-right reordering sweep over all rows.

    Args:
        design: the legally placed design (positions mutate).
        layout: current row layout (kept in sync with accepted moves).
        evaluator: incremental HPWL cache (kept in sync).
        window: cells per permutation window (3 keeps it cheap).

    Returns:
        Number of accepted window permutations.
    """
    accepted = 0
    for row_cells in layout.rows():
        if len(row_cells) < 2:
            continue
        for start in range(0, len(row_cells) - 1):
            members = row_cells[start : start + window]
            if len(members) < 2:
                continue
            if not layout.contiguous(members):
                continue
            best = _best_permutation(design, layout, evaluator, members)
            if best is not None:
                order, moves = best
                evaluator.commit(moves)
                layout.reorder(members, order)
                accepted += 1
    return accepted


def _best_permutation(design, layout, evaluator, members):
    """The best improving permutation of ``members``, if any."""
    span_start = layout.left_edge(members[0])
    widths = [layout.footprint(c) for c in members]
    best_delta = -1e-9
    best = None
    for order in permutations(range(len(members))):
        if order == tuple(range(len(members))):
            continue
        moves = {}
        cursor = span_start
        for idx in order:
            cell = members[idx]
            moves[cell] = (
                cursor + layout.cell_offset(cell) , design.y[cell],
            )
            cursor += widths[idx]
        delta = evaluator.delta(moves)
        if delta < best_delta:
            best_delta = delta
            best = (order, moves)
    return best
