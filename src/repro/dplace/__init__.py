"""Detailed placement: legality-preserving wirelength refinement."""

from .detailed import DetailedPlaceResult, DetailedPlacer
from .incremental import IncrementalHpwl
from .reorder import local_reorder_pass
from .rows import RowLayout
from .swap import global_swap_pass, optimal_position

__all__ = [
    "DetailedPlaceResult",
    "DetailedPlacer",
    "IncrementalHpwl",
    "RowLayout",
    "global_swap_pass",
    "local_reorder_pass",
    "optimal_position",
]
