"""Incremental HPWL evaluation for detailed placement.

Detailed placement evaluates thousands of tentative moves; recomputing
the full wirelength each time would dominate the runtime.  This
evaluator caches per-net bounding boxes and recomputes only the nets
touched by a move.
"""

from __future__ import annotations

import numpy as np

from ..netlist.design import Design


class IncrementalHpwl:
    """Cached per-net bounding boxes with tentative-move deltas."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self._px, self._py = design.pin_positions()
        self._bbox = {}
        self._total = 0.0
        for net in range(design.num_nets):
            pins = design.pins_of_net(net)
            if len(pins) == 0:
                continue
            box = self._net_box(net, {})
            self._bbox[net] = box
            self._total += (box[1] - box[0]) + (box[3] - box[2])

    @property
    def total(self) -> float:
        """Current total HPWL."""
        return self._total

    def _net_box(self, net: int, overrides: dict) -> tuple:
        """Net bbox with per-cell position overrides applied.

        A single numpy gather over the net's pins; the (typically tiny)
        ``overrides`` dict is applied as per-cell masks on top.
        """
        design = self.design
        pins = design.pins_of_net(net)
        cells = design.pin_cell[pins]
        dx = design.pin_dx[pins]
        dy = design.pin_dy[pins]
        xs = design.x[cells] + dx
        ys = design.y[cells] + dy
        for cell, (cx, cy) in overrides.items():
            mask = cells == int(cell)
            if mask.any():
                xs[mask] = cx + dx[mask]
                ys[mask] = cy + dy[mask]
        return (float(xs.min()), float(xs.max()), float(ys.min()), float(ys.max()))

    def _affected_nets(self, cells) -> set:
        nets = set()
        for cell in cells:
            for p in self.design.pins_of_cell(int(cell)):
                nets.add(int(self.design.pin_net[p]))
        return nets

    def delta(self, moves: dict) -> float:
        """HPWL change if each ``cell -> (x, y)`` in ``moves`` applied."""
        delta = 0.0
        for net in self._affected_nets(moves.keys()):
            old = self._bbox.get(net)
            if old is None:
                continue
            new = self._net_box(net, moves)
            delta += ((new[1] - new[0]) + (new[3] - new[2])) - (
                (old[1] - old[0]) + (old[3] - old[2])
            )
        return delta

    def commit(self, moves: dict) -> None:
        """Apply ``moves`` to the design and refresh the touched nets."""
        for cell, (x, y) in moves.items():
            self.design.x[int(cell)] = x
            self.design.y[int(cell)] = y
        for net in self._affected_nets(moves.keys()):
            old = self._bbox.get(net)
            if old is None:
                continue
            new = self._net_box(net, {})
            self._bbox[net] = new
            self._total += ((new[1] - new[0]) + (new[3] - new[2])) - (
                (old[1] - old[0]) + (old[3] - old[2])
            )

    def verify(self, tolerance: float = 1e-6) -> bool:
        """Cross-check the cache against a fresh HPWL computation."""
        return abs(self._total - self.design.hpwl()) <= tolerance * max(
            self._total, 1.0
        )
