"""Global cell swapping toward optimal regions.

For every cell, the wirelength-optimal location is (approximately) the
median of the bounding boxes of its nets computed without the cell — the
classic optimal-region argument.  A swap partner with the *same
footprint width* near that location is searched; the swap is accepted
when the incremental HPWL delta is negative.  Equal-footprint swaps keep
the placement trivially legal, padding included.
"""

from __future__ import annotations

import numpy as np

from ..netlist.design import Design
from .incremental import IncrementalHpwl
from .rows import RowLayout


def optimal_position(design: Design, cell: int) -> tuple:
    """Median-of-net-boxes optimal position for ``cell``."""
    xs = []
    ys = []
    for p in design.pins_of_cell(cell):
        net = int(design.pin_net[p])
        pins = design.pins_of_net(net)
        ox = []
        oy = []
        for q in pins:
            other = int(design.pin_cell[q])
            if other == cell:
                continue
            ox.append(design.x[other] + design.pin_dx[q])
            oy.append(design.y[other] + design.pin_dy[q])
        if ox:
            xs.extend([min(ox), max(ox)])
            ys.extend([min(oy), max(oy)])
    if not xs:
        return float(design.x[cell]), float(design.y[cell])
    return float(np.median(xs)), float(np.median(ys))


def global_swap_pass(
    design: Design,
    layout: RowLayout,
    evaluator: IncrementalHpwl,
    max_candidates: int = 8,
    sample: int | None = None,
    rng=None,
) -> int:
    """One global-swap sweep.

    Args:
        design: legally placed design (positions mutate).
        layout: row layout, kept in sync.
        evaluator: incremental HPWL cache, kept in sync.
        max_candidates: nearest equal-width partners tried per cell.
        sample: optionally restrict the sweep to this many cells
            (the ones farthest from their optimal regions first).
        rng: unused hook for future randomized variants.

    Returns:
        Number of accepted swaps.
    """
    movable = np.flatnonzero(design.movable & ~design.is_macro)
    buckets = {}
    for cell in movable:
        cell = int(cell)
        buckets.setdefault(layout.footprint(cell), []).append(cell)
    bucket_arrays = {
        w: np.asarray(cells, dtype=np.int64) for w, cells in buckets.items()
    }

    # Order candidates: cells farthest from their optimal region first.
    displacement = []
    optima = {}
    for cell in movable:
        cell = int(cell)
        ox, oy = optimal_position(design, cell)
        optima[cell] = (ox, oy)
        displacement.append(
            (abs(design.x[cell] - ox) + abs(design.y[cell] - oy), cell)
        )
    displacement.sort(reverse=True)
    work = [cell for _, cell in displacement]
    if sample is not None:
        work = work[:sample]

    accepted = 0
    for cell in work:
        width = layout.footprint(cell)
        bucket = bucket_arrays[width]
        if len(bucket) < 2:
            continue
        ox, oy = optima[cell]
        distance = np.abs(design.x[bucket] - ox) + np.abs(design.y[bucket] - oy)
        nearest = bucket[np.argsort(distance)[: max_candidates + 1]]
        best = None
        for partner in nearest:
            partner = int(partner)
            if partner == cell:
                continue
            moves = {
                cell: (
                    design.x[partner] - layout.cell_offset(partner)
                    + layout.cell_offset(cell),
                    design.y[partner] - design.h[partner] / 2 + design.h[cell] / 2,
                ),
                partner: (
                    design.x[cell] - layout.cell_offset(cell)
                    + layout.cell_offset(partner),
                    design.y[cell] - design.h[cell] / 2 + design.h[partner] / 2,
                ),
            }
            delta = evaluator.delta(moves)
            if delta < -1e-9 and (best is None or delta < best[0]):
                best = (delta, partner, moves)
        if best is not None:
            _, partner, moves = best
            evaluator.commit(moves)
            layout.swap(cell, partner)
            accepted += 1
    return accepted
