"""Row layout bookkeeping for detailed placement.

Tracks, for every movable standard cell of a *legalized* design, its row,
its footprint width (native width plus any inherited padding), and its
position within the row — the invariants the move generators rely on.
"""

from __future__ import annotations

import math

import numpy as np

from ..netlist.design import Design


class RowLayout:
    """Per-row ordered cell lists with footprint geometry."""

    def __init__(self, design: Design, widths: np.ndarray | None = None) -> None:
        self.design = design
        site = design.technology.site_width
        widths = design.w if widths is None else np.asarray(widths, dtype=np.float64)
        self._site = site
        self._footprint = {}
        self._offset = {}
        movable = np.flatnonzero(design.movable & ~design.is_macro)
        for cell in movable:
            cell = int(cell)
            width = max(
                int(math.ceil(widths[cell] / site - 1e-9)), 1
            ) * site
            slack = width - design.w[cell]
            left_pad = math.floor(slack / 2.0 / site + 1e-9) * site
            self._footprint[cell] = width
            self._offset[cell] = left_pad + design.w[cell] / 2.0
        row_height = design.technology.row_height
        self._rows = {}
        self._cell_row = {}
        for cell in movable:
            cell = int(cell)
            row = int(round((design.y[cell] - design.h[cell] / 2 - design.die.ylo) / row_height))
            self._rows.setdefault(row, []).append(cell)
            self._cell_row[cell] = row
        for cells in self._rows.values():
            cells.sort(key=lambda c: design.x[c])

    def rows(self) -> list:
        """Cell lists per row, each ordered left to right."""
        return [self._rows[r] for r in sorted(self._rows)]

    def footprint(self, cell: int) -> float:
        """Footprint width of ``cell`` (padding included)."""
        return self._footprint[cell]

    def cell_offset(self, cell: int) -> float:
        """Offset from the footprint's left edge to the cell center."""
        return self._offset[cell]

    def left_edge(self, cell: int) -> float:
        """Left edge of the cell's footprint."""
        return self.design.x[cell] - self._offset[cell]

    def right_edge(self, cell: int) -> float:
        """Right edge of the cell's footprint."""
        return self.left_edge(cell) + self._footprint[cell]

    def contiguous(self, members: list) -> bool:
        """Whether the members' footprints abut without gaps."""
        for a, b in zip(members[:-1], members[1:]):
            if abs(self.right_edge(a) - self.left_edge(b)) > 1e-6:
                return False
        return True

    def reorder(self, members: list, order: tuple) -> None:
        """Reflect an accepted window permutation in the row ordering."""
        row = self._cell_row[members[0]]
        cells = self._rows[row]
        start = cells.index(members[0])
        cells[start : start + len(members)] = [members[i] for i in order]

    def swap(self, a: int, b: int) -> None:
        """Reflect an accepted position swap of two cells.

        Call *after* committing the move; rows are tracked explicitly so
        the already-updated coordinates do not confuse the bookkeeping.
        """
        row_a = self._cell_row[a]
        row_b = self._cell_row[b]
        ia = self._rows[row_a].index(a)
        ib = self._rows[row_b].index(b)
        self._rows[row_a][ia] = b
        self._rows[row_b][ib] = a
        self._cell_row[a], self._cell_row[b] = row_b, row_a
        if row_a == row_b:
            self._rows[row_a].sort(key=lambda c: self.design.x[c])

    def row_of(self, cell: int) -> int:
        """Row index currently holding ``cell``."""
        return self._cell_row[cell]

    def check(self) -> bool:
        """Invariant check: per-row ordering matches x coordinates and
        footprints do not overlap."""
        for cells in self.rows():
            for a, b in zip(cells[:-1], cells[1:]):
                if self.right_edge(a) > self.left_edge(b) + 1e-6:
                    return False
        return True
