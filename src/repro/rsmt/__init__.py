"""Rectilinear Steiner minimal tree engine (FLUTE substitute)."""

from .batch import build_rsmt_batch
from .rmst import manhattan_matrix, rmst_edges, tree_length
from .steiner import build_rsmt
from .topology import Topology

__all__ = [
    "Topology",
    "build_rsmt",
    "build_rsmt_batch",
    "manhattan_matrix",
    "rmst_edges",
    "tree_length",
]
