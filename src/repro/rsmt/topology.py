"""Net routing topologies: point sets plus two-point segments.

PUFFER's congestion estimation decomposes every net into two-point nets
whose endpoints are either cell pins or Steiner points (Sec. III-A2); the
detour-imitating expansion treats the two endpoint kinds differently
(Sec. III-A3).  :class:`Topology` is that decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Topology:
    """A routing tree for one net.

    Attributes:
        x, y: point coordinates (pins first, then Steiner points).
        is_pin: per-point flag; ``True`` for cell pins.
        edges: ``(k, 2)`` array of point-index pairs (the two-point nets).
    """

    x: np.ndarray
    y: np.ndarray
    is_pin: np.ndarray
    edges: np.ndarray

    @property
    def num_points(self) -> int:
        return len(self.x)

    @property
    def num_segments(self) -> int:
        return len(self.edges)

    def wirelength(self) -> float:
        """Total Manhattan length of all segments."""
        if len(self.edges) == 0:
            return 0.0
        a, b = self.edges[:, 0], self.edges[:, 1]
        return float(np.abs(self.x[a] - self.x[b]).sum() + np.abs(self.y[a] - self.y[b]).sum())

    def segment_kinds(self) -> np.ndarray:
        """Per-segment classification: 0 = I-shaped, 1 = L-shaped.

        A segment is I-shaped when its endpoints align in x or y.
        """
        a, b = self.edges[:, 0], self.edges[:, 1]
        dx = np.abs(self.x[a] - self.x[b])
        dy = np.abs(self.y[a] - self.y[b])
        return np.where((dx < 1e-9) | (dy < 1e-9), 0, 1)

    def degree_of(self, point: int) -> int:
        """Tree degree of point index ``point``."""
        return int((self.edges == point).sum())

    def validate(self) -> None:
        """Raise on malformed structures (bad indices, self loops)."""
        n = self.num_points
        if len(self.is_pin) != n or len(self.y) != n:
            raise ValueError("point array length mismatch")
        if len(self.edges):
            if self.edges.min() < 0 or self.edges.max() >= n:
                raise ValueError("edge endpoint out of range")
            if (self.edges[:, 0] == self.edges[:, 1]).any():
                raise ValueError("self-loop segment")
