"""Rectilinear minimum spanning trees (Prim's algorithm).

Net degrees in placement are small (2-100 pins), so the dense O(n^2)
Prim with a numpy distance matrix is both simple and fast.
"""

from __future__ import annotations

import numpy as np


def manhattan_matrix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise Manhattan distances of the points ``(x_i, y_i)``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return np.abs(x[:, None] - x[None, :]) + np.abs(y[:, None] - y[None, :])


def rmst_edges(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Edges ``(k, 2)`` of a rectilinear MST over the given points.

    Duplicate points are connected with zero-length edges, keeping the
    result a spanning tree.
    """
    n = len(x)
    if n < 2:
        return np.zeros((0, 2), dtype=np.int64)
    dist_matrix = manhattan_matrix(x, y)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best = dist_matrix[0].copy()
    parent = np.zeros(n, dtype=np.int64)
    edges = np.zeros((n - 1, 2), dtype=np.int64)
    for k in range(n - 1):
        best_masked = np.where(in_tree, np.inf, best)
        j = int(np.argmin(best_masked))
        edges[k, 0] = parent[j]
        edges[k, 1] = j
        in_tree[j] = True
        closer = dist_matrix[j] < best
        parent[closer] = j
        best = np.minimum(best, dist_matrix[j])
    return edges


def tree_length(x: np.ndarray, y: np.ndarray, edges: np.ndarray) -> float:
    """Total Manhattan length of the tree ``edges``."""
    if len(edges) == 0:
        return 0.0
    a = edges[:, 0]
    b = edges[:, 1]
    return float(np.abs(x[a] - x[b]).sum() + np.abs(y[a] - y[b]).sum())
