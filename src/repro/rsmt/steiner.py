"""Rectilinear Steiner minimal tree construction (FLUTE substitute).

The paper uses FLUTE [18] to obtain RSMT topologies.  This module builds
near-minimal trees with the classic two-step heuristic: a rectilinear MST
(Prim) followed by local Steinerization — for every vertex and every pair
of its tree neighbours, the rectilinear median point is inserted when it
shortens the tree.  For three pins this recovers the exact RSMT (the
median point); in general it closes most of the RMST-vs-RSMT gap while
staying fast enough to run on every net in every padding round.
"""

from __future__ import annotations

import numpy as np

from .rmst import rmst_edges
from .topology import Topology

_EPS = 1e-9


def build_rsmt(x, y, steinerize_max_degree: int = 64) -> Topology:
    """Near-minimal rectilinear Steiner tree over the given pin points.

    Args:
        x, y: pin coordinates (one net).
        steinerize_max_degree: nets larger than this keep the plain RMST
            (Steinerization cost grows with degree; huge fan-out nets are
            rare and their demand is dominated by the MST anyway).

    Returns:
        A :class:`Topology` whose points start with the input pins.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = len(x)
    is_pin = np.ones(n, dtype=bool)
    if n <= 1:
        return Topology(x, y, is_pin, np.zeros((0, 2), dtype=np.int64))
    edges = rmst_edges(x, y)
    if n == 2 or n > steinerize_max_degree:
        return Topology(x, y, is_pin, edges)
    points_x = list(x)
    points_y = list(y)
    adjacency = _adjacency(n, edges)
    _steinerize(points_x, points_y, adjacency, num_pins=n)
    return _finalize(points_x, points_y, adjacency, num_pins=n)


def _adjacency(n: int, edges: np.ndarray) -> list:
    adjacency = [set() for _ in range(n)]
    for a, b in edges:
        adjacency[int(a)].add(int(b))
        adjacency[int(b)].add(int(a))
    return adjacency


def _dist(px, py, a: int, b: int) -> float:
    return abs(px[a] - px[b]) + abs(py[a] - py[b])


def _median3(a: float, b: float, c: float) -> float:
    return a + b + c - min(a, b, c) - max(a, b, c)


def _steinerize(px: list, py: list, adjacency: list, num_pins: int) -> None:
    """Insert median Steiner points while any insertion shortens the tree."""
    max_passes = 2 * num_pins
    for _ in range(max_passes):
        best = None  # (gain, u, v, w, sx, sy)
        for u in range(len(px)):
            neighbors = list(adjacency[u])
            if len(neighbors) < 2:
                continue
            for i in range(len(neighbors)):
                for j in range(i + 1, len(neighbors)):
                    v, w = neighbors[i], neighbors[j]
                    sx = _median3(px[u], px[v], px[w])
                    sy = _median3(py[u], py[v], py[w])
                    old = _dist(px, py, u, v) + _dist(px, py, u, w)
                    new = (
                        abs(px[u] - sx) + abs(py[u] - sy)
                        + abs(px[v] - sx) + abs(py[v] - sy)
                        + abs(px[w] - sx) + abs(py[w] - sy)
                    )
                    gain = old - new
                    if gain > _EPS and (best is None or gain > best[0]):
                        best = (gain, u, v, w, sx, sy)
        if best is None:
            return
        _, u, v, w, sx, sy = best
        s = len(px)
        px.append(sx)
        py.append(sy)
        adjacency.append({u, v, w})
        adjacency[u].discard(v)
        adjacency[u].discard(w)
        adjacency[v].discard(u)
        adjacency[w].discard(u)
        adjacency[u].add(s)
        adjacency[v].add(s)
        adjacency[w].add(s)


def _finalize(px: list, py: list, adjacency: list, num_pins: int) -> Topology:
    """Prune useless Steiner points and emit the topology.

    A Steiner point of tree degree <= 2 adds nothing: degree-2 points are
    spliced out (their neighbours reconnected), degree-<=1 points dropped.
    """
    n = len(px)
    alive = [True] * n
    changed = True
    while changed:
        changed = False
        for s in range(num_pins, n):
            if not alive[s]:
                continue
            neighbors = [t for t in adjacency[s] if alive[t]]
            if len(neighbors) <= 1:
                for t in neighbors:
                    adjacency[t].discard(s)
                adjacency[s].clear()
                alive[s] = False
                changed = True
            elif len(neighbors) == 2:
                a, b = neighbors
                adjacency[a].discard(s)
                adjacency[b].discard(s)
                if a != b:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
                adjacency[s].clear()
                alive[s] = False
                changed = True
    index = {}
    xs, ys, pins = [], [], []
    for i in range(n):
        if alive[i]:
            index[i] = len(xs)
            xs.append(px[i])
            ys.append(py[i])
            pins.append(i < num_pins)
    edge_list = []
    for a in range(n):
        if not alive[a]:
            continue
        for b in adjacency[a]:
            if alive[b] and a < b:
                edge_list.append((index[a], index[b]))
    edges = (
        np.asarray(edge_list, dtype=np.int64)
        if edge_list
        else np.zeros((0, 2), dtype=np.int64)
    )
    return Topology(
        np.asarray(xs), np.asarray(ys), np.asarray(pins, dtype=bool), edges
    )
